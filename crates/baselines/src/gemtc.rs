//! The GeMTC baseline (Krieder et al., HPDC'14): a persistent SuperKernel
//! whose workers each execute one task, fed *batches* of tasks through a
//! single FIFO queue.
//!
//! Structural properties the paper contrasts with Pagoda:
//!
//! * **1 task = 1 threadblock.** Each worker is one threadblock; a task
//!   occupies a whole worker regardless of its width, and the concurrent
//!   threadblock limit caps residency (32-thread workers → 50 % occupancy).
//! * **Batching.** No new tasks are admitted until every task of the
//!   current batch finishes; a batch's completion time is its longest
//!   task's (load imbalance).
//! * **Single FIFO queue.** Dequeues serialize on one queue lock.
//! * **No shared memory, no sub-block synchronization support** beyond the
//!   worker's own `__syncthreads` (fine, since 1 task = 1 TB).

use std::collections::{HashMap, VecDeque};

use desim::{Dur, SimTime};
use gpu_arch::TaskShape;
use gpu_sim::{DeviceConfig, GpuDevice, GroupId, Notify, PersistentTb};
use pagoda_core::TaskDesc;
use pcie::{Direction, PcieBus, PcieConfig};

use crate::summary::RunSummary;

/// GeMTC runner configuration.
#[derive(Debug, Clone)]
pub struct GemtcConfig {
    /// The device.
    pub device: DeviceConfig,
    /// The interconnect.
    pub pcie: PcieConfig,
    /// Worker threadblock width. The paper's modified GeMTC uses the task
    /// width (≥64 threads reaches 100 % occupancy); tasks wider than this
    /// are rejected.
    pub worker_threads: u32,
    /// Serialized cost of one FIFO dequeue (the single-queue bottleneck).
    pub dequeue_cost: Dur,
    /// Host CPU time per task for batch assembly.
    pub assemble_cpu_cost: Dur,
}

impl Default for GemtcConfig {
    fn default() -> Self {
        GemtcConfig {
            device: DeviceConfig::titan_x(),
            pcie: PcieConfig::default(),
            worker_threads: 128,
            // One atomic pop + parameter fetch from the single
            // device-memory FIFO per task; the paper calls this queue "a
            // significant task scheduling overhead".
            dequeue_cost: Dur::from_ns(1000),
            assemble_cpu_cost: Dur::from_ns(800),
        }
    }
}

#[derive(Debug)]
struct WorkerRun {
    task: usize,
    tb: u32,
    outstanding: u32,
    group: Option<GroupId>,
}

struct GemtcSim<'a> {
    cfg: &'a GemtcConfig,
    tasks: &'a [TaskDesc],
    device: GpuDevice,
    workers: Vec<PersistentTb>,
    running: Vec<Option<WorkerRun>>,
    pending: VecDeque<usize>,
    staged_pops: HashMap<u64, (usize, usize)>,
    next_pop_tag: u64,
    queue_free: SimTime,
    gpu_done: Vec<Option<SimTime>>,
    batch_remaining: usize,
}

impl GemtcSim<'_> {
    fn start_tb(&mut self, time: SimTime, w: usize, task: usize, tb: u32) {
        let desc = &self.tasks[task];
        let wpt = desc.warps_per_tb() as usize;
        let warps = &self.workers[w].warps[..wpt];
        let group = desc.sync.then(|| self.device.create_group(warps));
        let block = &desc.blocks[tb as usize];
        for (i, warp) in warps.iter().enumerate() {
            self.device
                .assign_warp(*warp, block.warps()[i].clone(), w as u64);
        }
        self.running[w] = Some(WorkerRun {
            task,
            tb,
            outstanding: wpt as u32,
            group,
        });
        let _ = time;
    }

    /// Schedules the serialized FIFO pop of the next pending task for a
    /// free worker.
    fn schedule_pop(&mut self, now: SimTime, w: usize) {
        let Some(task) = self.pending.pop_front() else {
            return;
        };
        let pop_at = now.max(self.queue_free) + self.cfg.dequeue_cost;
        self.queue_free = pop_at;
        let tag = self.next_pop_tag;
        self.next_pop_tag += 1;
        self.staged_pops.insert(tag, (w, task));
        self.device.schedule_host(pop_at, tag);
    }

    fn on_warp_done(&mut self, time: SimTime, w: usize) {
        let run = self.running[w].as_mut().expect("completion on idle worker");
        run.outstanding -= 1;
        if run.outstanding > 0 {
            return;
        }
        let task = run.task;
        let tb = run.tb;
        if let Some(g) = run.group.take() {
            self.device.release_group(g);
        }
        if tb + 1 < self.tasks[task].num_tbs {
            self.start_tb(time, w, task, tb + 1);
            return;
        }
        self.running[w] = None;
        self.gpu_done[task] = Some(time);
        self.batch_remaining -= 1;
        self.schedule_pop(time, w);
    }
}

/// Runs `tasks` under the GeMTC model.
///
/// # Panics
/// Panics if any task is wider than the configured worker, or requests
/// shared memory (GeMTC does not support it — the paper runs the no-smem
/// versions of every benchmark under GeMTC).
pub fn run_gemtc(cfg: &GemtcConfig, tasks: &[TaskDesc]) -> RunSummary {
    for t in tasks {
        assert!(
            t.threads_per_tb <= cfg.worker_threads,
            "task of {} threads exceeds the {}-thread GeMTC worker",
            t.threads_per_tb,
            cfg.worker_threads
        );
        assert_eq!(t.smem_per_tb, 0, "GeMTC has no shared-memory support");
    }
    let mut device = GpuDevice::new(cfg.device.clone());
    let spec = device.spec().clone();
    let worker_shape_one = TaskShape {
        threads_per_tb: cfg.worker_threads,
        num_tbs: 1,
        regs_per_thread: 32,
        smem_per_tb: 0,
    };
    let per_sm = spec
        .occupancy_of(&worker_shape_one)
        .expect("worker shape must be valid")
        .tbs_per_sm;
    let num_workers = (per_sm * spec.num_sms) as usize;
    let workers = device
        .launch_persistent(TaskShape {
            num_tbs: num_workers as u32,
            ..worker_shape_one
        })
        .expect("SuperKernel must fit");

    let mut bus = PcieBus::new(cfg.pcie.clone());
    let h2d = bus.create_stream();
    let d2h = bus.create_stream();

    let n = tasks.len();
    let mut sim = GemtcSim {
        cfg,
        tasks,
        device,
        workers,
        running: (0..num_workers).map(|_| None).collect(),
        pending: VecDeque::new(),
        staged_pops: HashMap::new(),
        next_pop_tag: 0,
        queue_free: SimTime::ZERO,
        gpu_done: vec![None; n],
        batch_remaining: 0,
    };

    let mut host_now = SimTime::ZERO;
    let mut spawn_time = vec![SimTime::ZERO; n];
    let batch_size = num_workers;

    let mut next = 0usize;
    while next < n {
        let batch: Vec<usize> = (next..(next + batch_size).min(n)).collect();
        next += batch.len();

        // Host assembles the batch. Task inputs travel as individual
        // `cudaMemcpyAsync` transactions (GeMTC moves each task's data to
        // its device-queue slot); the batch is ready when the last lands.
        host_now = host_now.max(sim.device.now())
            + Dur::from_ps(cfg.assemble_cpu_cost.as_ps() * batch.len() as u64);
        let mut batch_ready = host_now;
        for &i in &batch {
            spawn_time[i] = host_now;
            if tasks[i].input_bytes > 0 {
                batch_ready = bus
                    .transfer(host_now, h2d, Direction::HostToDevice, tasks[i].input_bytes)
                    .complete;
            }
        }

        sim.batch_remaining = batch.len();
        sim.pending.extend(batch.iter().copied());
        // Every worker is idle at a batch boundary; queue pops begin when
        // the batch lands on the device.
        sim.queue_free = sim.queue_free.max(batch_ready);
        for w in 0..num_workers {
            sim.schedule_pop(batch_ready, w);
        }

        // The batch barrier: run until every task of this batch retires.
        while sim.batch_remaining > 0 {
            let (t, notifications) = sim
                .device
                .step()
                .expect("GeMTC batch deadlocked with tasks outstanding");
            for nfy in notifications {
                match nfy {
                    Notify::Host(tag) => {
                        let (w, task) = sim.staged_pops.remove(&tag).expect("unknown pop");
                        sim.start_tb(t, w, task, 0);
                    }
                    Notify::WarpDone { tag, .. } => sim.on_warp_done(t, tag as usize),
                    Notify::KernelDone { .. } => unreachable!("no native kernels in GeMTC"),
                }
            }
        }
        let batch_done = sim.device.now();
        host_now = host_now.max(batch_done);

        // Bulk result copy-back before the next batch is admitted.
        let output_bytes: u64 = batch.iter().map(|&i| tasks[i].output_bytes).sum();
        if output_bytes > 0 {
            let tr = bus.transfer(host_now, d2h, Direction::DeviceToHost, output_bytes);
            host_now = host_now.max(tr.complete);
        }
    }

    let lat_sum: u64 = sim
        .gpu_done
        .iter()
        .zip(&spawn_time)
        .map(|(d, s)| (d.expect("incomplete task") - *s).as_ps())
        .sum();
    let compute_done = sim
        .gpu_done
        .iter()
        .map(|d| d.unwrap())
        .max()
        .unwrap_or(SimTime::ZERO);
    RunSummary {
        makespan: host_now - SimTime::ZERO,
        compute_done,
        tasks: n as u64,
        mean_task_latency: Dur::from_ps(lat_sum / n.max(1) as u64),
        avg_running_occupancy: sim.device.avg_running_occupancy(),
        h2d_busy: bus.stats(Direction::HostToDevice).busy,
        d2h_busy: bus.stats(Direction::DeviceToHost).busy,
        gpu_busy: {
            let s = sim.device.stats();
            Dur::from_ps(s.busy_ps / u64::from(sim.device.spec().num_sms))
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::WarpWork;

    fn narrow(n: usize, threads: u32, instrs: u64) -> Vec<TaskDesc> {
        (0..n)
            .map(|_| TaskDesc::uniform(threads, WarpWork::compute(instrs, 4.0)))
            .collect()
    }

    #[test]
    fn completes_all_tasks() {
        let s = run_gemtc(&GemtcConfig::default(), &narrow(500, 128, 20_000));
        assert_eq!(s.tasks, 500);
        assert!(s.makespan > Dur::ZERO);
    }

    #[test]
    fn worker_count_reaches_full_occupancy_at_128_threads() {
        // 128-thread workers: 2048/128 = 16 TBs/SMM -> 64 warps = 100 %.
        let spec = gpu_arch::GpuSpec::titan_x();
        let o = spec
            .occupancy_of(&TaskShape {
                threads_per_tb: 128,
                num_tbs: 1,
                regs_per_thread: 32,
                smem_per_tb: 0,
            })
            .unwrap();
        assert_eq!(o.warps_per_sm, 64);
    }

    #[test]
    fn batch_barrier_costs_on_imbalance() {
        // One straggler per batch: every batch takes the straggler's time.
        let cfg = GemtcConfig {
            worker_threads: 128,
            ..GemtcConfig::default()
        };
        let n_workers = 16 * 24;
        let mut tasks = narrow(n_workers * 2, 128, 1_000);
        tasks[0] = TaskDesc::uniform(128, WarpWork::compute(10_000_000, 4.0));
        tasks[n_workers] = TaskDesc::uniform(128, WarpWork::compute(10_000_000, 4.0));
        let imbalanced = run_gemtc(&cfg, &tasks);

        let balanced = run_gemtc(&cfg, &narrow(n_workers * 2, 128, 1_000));
        // Both batches pay for a straggler they could have overlapped.
        assert!(
            imbalanced.makespan.as_secs_f64() > 2.0 * balanced.makespan.as_secs_f64(),
            "imbalanced {:?} vs balanced {:?}",
            imbalanced.makespan,
            balanced.makespan
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn oversized_task_rejected() {
        run_gemtc(&GemtcConfig::default(), &narrow(1, 256, 100));
    }

    #[test]
    fn sync_tasks_supported_within_worker() {
        let tasks: Vec<TaskDesc> = (0..32)
            .map(|_| TaskDesc::uniform(128, WarpWork::phased(20_000, 3, 2.0)))
            .collect();
        let s = run_gemtc(&GemtcConfig::default(), &tasks);
        assert_eq!(s.tasks, 32);
    }
}
