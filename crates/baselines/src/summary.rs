//! The common result record every runner produces, so the benchmark
//! harness can compare Pagoda against each baseline uniformly.

use desim::{Dur, SimTime};
use pagoda_core::RunReport;

/// What one workload run measured.
#[derive(Debug, Clone, Copy)]
pub struct RunSummary {
    /// End-to-end time including data copies — the paper's "execution
    /// time" (Figs. 5, 6, 9, 11).
    pub makespan: Dur,
    /// Instant the last task finished computing — the paper's "compute
    /// time" (Figs. 7, 8, Table 5).
    pub compute_done: SimTime,
    /// Tasks completed.
    pub tasks: u64,
    /// Mean per-task spawn→completion latency (Fig. 10).
    pub mean_task_latency: Dur,
    /// Mean fraction of GPU warp slots doing useful work (0 for CPU runs).
    pub avg_running_occupancy: f64,
    /// Host→device DMA busy time (Table 3's copy-share numerator).
    pub h2d_busy: Dur,
    /// Device→host DMA busy time.
    pub d2h_busy: Dur,
    /// Average per-SMM busy time (≥1 warp running) — the profiler-style
    /// "kernel time" that Table 3's copy share is measured against.
    pub gpu_busy: Dur,
}

impl RunSummary {
    /// Speedup of this run over `other` on end-to-end time.
    pub fn speedup_over(&self, other: &RunSummary) -> f64 {
        other.makespan.as_secs_f64() / self.makespan.as_secs_f64()
    }

    /// Speedup of this run over `other` on compute time only.
    pub fn compute_speedup_over(&self, other: &RunSummary) -> f64 {
        other.compute_done.as_secs_f64() / self.compute_done.as_secs_f64()
    }
}

impl RunSummary {
    /// Fraction of profiler-visible activity spent moving data over PCIe:
    /// `memcpy_time / (memcpy_time + kernel_time)`, the way Table 3's
    /// "% time spent in data copy" is measured with nvprof.
    pub fn copy_share(&self) -> f64 {
        let copies = self.h2d_busy.as_ps() + self.d2h_busy.as_ps();
        copies as f64 / (copies + self.gpu_busy.as_ps()).max(1) as f64
    }
}

impl From<RunReport> for RunSummary {
    fn from(r: RunReport) -> Self {
        RunSummary {
            makespan: r.makespan,
            compute_done: r.compute_done,
            tasks: r.tasks,
            mean_task_latency: r.mean_task_latency,
            avg_running_occupancy: r.avg_running_occupancy,
            h2d_busy: r.h2d_busy,
            d2h_busy: r.d2h_busy,
            gpu_busy: r.gpu_busy,
        }
    }
}

/// Geometric mean of a slice of ratios (the paper reports geomean
/// speedups).
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_direction() {
        let zeroed = RunSummary {
            makespan: Dur::from_ms(10),
            compute_done: SimTime::from_ms(8),
            tasks: 1,
            mean_task_latency: Dur::ZERO,
            avg_running_occupancy: 0.0,
            h2d_busy: Dur::ZERO,
            d2h_busy: Dur::ZERO,
            gpu_busy: Dur::ZERO,
        };
        let fast = zeroed;
        let slow = RunSummary {
            makespan: Dur::from_ms(20),
            compute_done: SimTime::from_ms(24),
            ..zeroed
        };
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        assert!((fast.compute_speedup_over(&slow) - 3.0).abs() < 1e-12);
    }
}
