//! CPU baselines: PThreads-style task parallelism on a 20-core machine,
//! and single-thread sequential execution.
//!
//! The paper's strongest CPU comparator is PThreads task parallelism on
//! two 10-core Xeon E5-2660v3 sockets at 2.6 GHz ("PThreads obtained the
//! best results" among OpenMP, OS scheduling, thread pools). We model it as
//! greedy list scheduling: each task runs on one core; a free core takes
//! the next task from the queue. Task duration derives from the same
//! thread-instruction counts the GPU model executes, divided by a
//! calibrated per-core scalar/SIMD throughput, so CPU-vs-GPU ratios follow
//! from machine balance rather than per-benchmark fudging. The CPU pays no
//! PCIe cost (its data is already in host memory) — matching the paper's
//! measurement, which is exactly why copy-bound workloads (DCT) show small
//! GPU speedups.

use desim::{Dur, SimTime};
use pagoda_core::TaskDesc;

use crate::summary::RunSummary;

/// CPU model configuration.
#[derive(Debug, Clone)]
pub struct CpuConfig {
    /// Worker cores (the paper: 20).
    pub cores: u32,
    /// Sustained thread-ops per second of one core running alone: a
    /// 2.6 GHz E5-2660v3 sustains a few ops per cycle on `gcc -O3` code
    /// (superscalar issue plus occasional SSE/AVX) ≈ 8.5 G ops/s.
    pub ops_per_sec: f64,
    /// Aggregate socket-pair memory-system throughput in thread-ops/s.
    /// Narrow-task kernels stream their inputs, so 20 concurrent cores
    /// saturate DRAM long before 20× scaling: the paper's PThreads bars
    /// sit at ~7× its sequential baseline, which this cap reproduces.
    pub mem_bw_ops_per_sec: f64,
    /// Per-task queue/dispatch overhead.
    pub task_overhead: Dur,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            cores: 20,
            ops_per_sec: 8.5e9,
            mem_bw_ops_per_sec: 60.0e9,
            task_overhead: Dur::from_ns(250),
        }
    }
}

/// Effective per-core rate with all `cores` active: compute-bound alone,
/// bandwidth-shared together.
fn per_core_rate(cfg: &CpuConfig) -> f64 {
    cfg.ops_per_sec
        .min(cfg.mem_bw_ops_per_sec / f64::from(cfg.cores))
}

/// One task's CPU duration under the model (all cores active). Uses the
/// task's true sequential operation count, not the divergence-inflated
/// GPU charge.
pub fn cpu_task_time(cfg: &CpuConfig, t: &TaskDesc) -> Dur {
    cfg.task_overhead + Dur::from_secs_f64(t.cpu_ops as f64 / per_core_rate(cfg))
}

/// Greedy list scheduling of `tasks` (in order) over `cfg.cores` cores.
pub fn run_pthreads(cfg: &CpuConfig, tasks: &[TaskDesc]) -> RunSummary {
    assert!(cfg.cores > 0, "zero cores");
    let mut core_free = vec![SimTime::ZERO; cfg.cores as usize];
    let mut lat_sum = 0u64;
    let mut end = SimTime::ZERO;
    for t in tasks {
        // Earliest-free core takes the task.
        let (ci, _) = core_free
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| **f)
            .expect("non-empty core list");
        let start = core_free[ci];
        let done = start + cpu_task_time(cfg, t);
        core_free[ci] = done;
        lat_sum += (done - SimTime::ZERO).as_ps();
        end = end.max(done);
    }
    RunSummary {
        makespan: end - SimTime::ZERO,
        compute_done: end,
        tasks: tasks.len() as u64,
        mean_task_latency: Dur::from_ps(lat_sum / tasks.len().max(1) as u64),
        avg_running_occupancy: 0.0,
        h2d_busy: Dur::ZERO,
        d2h_busy: Dur::ZERO,
        gpu_busy: Dur::ZERO,
    }
}

/// Sequential single-core execution (the speedup-of-1 baseline the paper's
/// Fig. 5 bars normalize against).
pub fn run_sequential(cfg: &CpuConfig, tasks: &[TaskDesc]) -> RunSummary {
    let one_core = CpuConfig {
        cores: 1,
        ..cfg.clone()
    };
    run_pthreads(&one_core, tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::WarpWork;

    fn tasks(n: usize, instrs_each: u64) -> Vec<TaskDesc> {
        (0..n)
            .map(|_| TaskDesc::uniform(128, WarpWork::compute(instrs_each, 1.0)))
            .collect()
    }

    #[test]
    fn bandwidth_bound_scaling_on_uniform_tasks() {
        // 20 cores sharing the 60 G ops/s memory system scale to
        // 60/8.5 ≈ 7.1x, matching the paper's PThreads-vs-sequential gap.
        let cfg = CpuConfig::default();
        let ts = tasks(2000, 1_000_000);
        let seq = run_sequential(&cfg, &ts);
        let par = run_pthreads(&cfg, &ts);
        let speedup = par.speedup_over(&seq);
        assert!(
            (6.0..8.0).contains(&speedup),
            "expected ~7x bandwidth-bound scaling, got {speedup}"
        );
    }

    #[test]
    fn few_cores_scale_linearly() {
        // 4 cores stay under the bandwidth cap: ~4x.
        let cfg = CpuConfig {
            cores: 4,
            ..CpuConfig::default()
        };
        let ts = tasks(2000, 1_000_000);
        let seq = run_sequential(&cfg, &ts);
        let par = run_pthreads(&cfg, &ts);
        let speedup = par.speedup_over(&seq);
        assert!((3.7..4.1).contains(&speedup), "got {speedup}");
    }

    #[test]
    fn straggler_bounds_makespan() {
        let cfg = CpuConfig::default();
        let mut ts = tasks(19, 1_000);
        ts.push(TaskDesc::uniform(
            128,
            WarpWork::compute(1_000_000_000, 1.0),
        ));
        let s = run_pthreads(&cfg, &ts);
        let straggler = cpu_task_time(&cfg, &ts[19]);
        assert!(s.makespan >= straggler);
        assert!(s.makespan.as_secs_f64() < straggler.as_secs_f64() * 1.01);
    }

    #[test]
    fn task_time_includes_overhead() {
        let cfg = CpuConfig::default();
        let t = TaskDesc::uniform(32, WarpWork::compute(0, 1.0));
        assert_eq!(cpu_task_time(&cfg, &t), cfg.task_overhead);
    }
}
