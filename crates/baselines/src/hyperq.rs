//! The CUDA-HyperQ baseline: one native kernel per task, up to 32
//! concurrent kernels (paper §6, "we enabled 32 concurrent kernels in the
//! HyperQ by setting CUDA_DEVICE_MAX_CONNECTIONS to 32").
//!
//! Per task the host issues an async input copy, then launches the task as
//! its own kernel once the copy lands; the output is copied back when the
//! kernel retires. The costs HyperQ pays that Pagoda avoids:
//!
//! * the serialized kernel-launch front end (tens of thousands of launches);
//! * the 32-kernel concurrency cap — narrow kernels cannot fill the
//!   machine (paper §2: 32 × 8 warps = 16.67 % occupancy);
//! * threadblock-granularity resource recycling (§6.4).

use std::collections::HashMap;

use desim::{Dur, SimTime};
use gpu_arch::TaskShape;
use gpu_sim::{DeviceConfig, GpuDevice, KernelDesc, Notify};
use pagoda_core::TaskDesc;
use pagoda_obs::{Counter, Obs};
use pcie::{Direction, PcieBus, PcieConfig};

use crate::summary::RunSummary;

/// HyperQ runner configuration.
#[derive(Debug, Clone)]
pub struct HyperQConfig {
    /// The device (the concurrency cap comes from `spec.num_hw_queues`).
    pub device: DeviceConfig,
    /// The interconnect.
    pub pcie: PcieConfig,
    /// Host CPU time per task (API calls: memcpy enqueue + kernel launch).
    pub spawn_cpu_cost: Dur,
    /// Observability sink, attached to the device and bus for the run
    /// (kernel launches, engine events, PCIe counters, task counts).
    pub obs: Obs,
}

impl Default for HyperQConfig {
    fn default() -> Self {
        HyperQConfig {
            device: DeviceConfig::titan_x(),
            pcie: PcieConfig::default(),
            spawn_cpu_cost: Dur::from_ns(1000),
            obs: Obs::off(),
        }
    }
}

/// Runs `tasks` under the HyperQ model and reports timings.
///
/// # Panics
/// Panics if a task's shape is not launchable on the device (e.g. more
/// shared memory than an SMM owns).
pub fn run_hyperq(cfg: &HyperQConfig, tasks: &[TaskDesc]) -> RunSummary {
    let mut device = GpuDevice::new(cfg.device.clone());
    let mut bus = PcieBus::new(cfg.pcie.clone());
    device.attach_obs(cfg.obs.clone());
    bus.attach_obs(cfg.obs.clone());
    let h2d = bus.create_stream();
    let d2h = bus.create_stream();

    let mut host_now = SimTime::ZERO;
    let mut spawn_time = vec![SimTime::ZERO; tasks.len()];
    let mut gpu_done: Vec<Option<SimTime>> = vec![None; tasks.len()];
    let mut output_done: Vec<Option<SimTime>> = vec![None; tasks.len()];
    // Launches deferred until the task's input copy is visible.
    let mut staged: HashMap<u64, usize> = HashMap::new();

    // Handles one notification batch; used both while the host is still
    // spawning (bounded co-simulation) and during the final drain.
    #[allow(clippy::too_many_arguments)]
    fn handle(
        t: SimTime,
        batch: Vec<Notify>,
        tasks: &[TaskDesc],
        device: &mut GpuDevice,
        bus: &mut PcieBus,
        d2h: pcie::StreamId,
        staged: &mut HashMap<u64, usize>,
        gpu_done: &mut [Option<SimTime>],
        output_done: &mut [Option<SimTime>],
        obs: &Obs,
    ) {
        for n in batch {
            match n {
                Notify::Host(tag) => {
                    let i = staged.remove(&tag).expect("unknown launch tag");
                    let task = &tasks[i];
                    let shape = TaskShape {
                        threads_per_tb: task.threads_per_tb,
                        num_tbs: task.num_tbs,
                        regs_per_thread: 32,
                        smem_per_tb: task.smem_per_tb,
                    };
                    let k = KernelDesc::new(shape, task.blocks.clone(), i as u64);
                    device.launch_kernel(k).expect("unlaunchable task shape");
                }
                Notify::KernelDone { tag } => {
                    let i = tag as usize;
                    obs.count(Counter::TasksFreed, 1);
                    gpu_done[i] = Some(t);
                    output_done[i] = Some(if tasks[i].output_bytes > 0 {
                        bus.transfer(t, d2h, Direction::DeviceToHost, tasks[i].output_bytes)
                            .complete
                    } else {
                        t
                    });
                }
                Notify::WarpDone { .. } => unreachable!("no persistent warps in HyperQ"),
            }
        }
    }

    for (i, t) in tasks.iter().enumerate() {
        cfg.obs.count(Counter::TasksSpawned, 1);
        host_now = host_now.max(device.now()) + cfg.spawn_cpu_cost;
        // Keep the device co-simulated with the host timeline, launching
        // kernels whose input copies have already landed.
        while let Some((et, batch)) = device.step_bounded(host_now) {
            handle(
                et,
                batch,
                tasks,
                &mut device,
                &mut bus,
                d2h,
                &mut staged,
                &mut gpu_done,
                &mut output_done,
                &cfg.obs,
            );
        }
        spawn_time[i] = host_now;
        let launch_at = if t.input_bytes > 0 {
            bus.transfer(host_now, h2d, Direction::HostToDevice, t.input_bytes)
                .complete
        } else {
            host_now
        };
        staged.insert(i as u64, i);
        device.schedule_host(launch_at, i as u64);
    }

    // Drain the device, launching kernels as remaining inputs land.
    while let Some((t, batch)) = device.step() {
        handle(
            t,
            batch,
            tasks,
            &mut device,
            &mut bus,
            d2h,
            &mut staged,
            &mut gpu_done,
            &mut output_done,
            &cfg.obs,
        );
    }

    let end = output_done
        .iter()
        .map(|o| o.expect("task never completed"))
        .max()
        .unwrap_or(host_now)
        .max(host_now);
    let lat_sum: u64 = gpu_done
        .iter()
        .zip(&spawn_time)
        .map(|(d, s)| (d.unwrap() - *s).as_ps())
        .sum();
    let compute_done = gpu_done
        .iter()
        .map(|d| d.unwrap())
        .max()
        .unwrap_or(SimTime::ZERO);
    RunSummary {
        makespan: end - SimTime::ZERO,
        compute_done,
        tasks: tasks.len() as u64,
        mean_task_latency: Dur::from_ps(lat_sum / tasks.len().max(1) as u64),
        avg_running_occupancy: device.avg_running_occupancy(),
        h2d_busy: bus.stats(Direction::HostToDevice).busy,
        d2h_busy: bus.stats(Direction::DeviceToHost).busy,
        gpu_busy: avg_sm_busy(&mut device),
    }
}

/// Average per-SMM busy time: the profiler-style aggregate kernel time.
fn avg_sm_busy(device: &mut GpuDevice) -> Dur {
    let s = device.stats();
    Dur::from_ps(s.busy_ps / u64::from(device.spec().num_sms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::WarpWork;

    fn narrow_tasks(n: usize, instrs: u64) -> Vec<TaskDesc> {
        (0..n)
            .map(|_| TaskDesc::uniform(128, WarpWork::compute(instrs, 4.0)))
            .collect()
    }

    #[test]
    fn completes_all_tasks() {
        let s = run_hyperq(&HyperQConfig::default(), &narrow_tasks(64, 50_000));
        assert_eq!(s.tasks, 64);
        assert!(s.makespan > Dur::ZERO);
        assert!(s.compute_done > SimTime::ZERO);
    }

    #[test]
    fn concurrency_cap_limits_narrow_task_throughput() {
        // 256 narrow tasks: at most 32 concurrent kernels of 4 warps
        // = 128 warps over 1536 slots. Doubling the task count should
        // roughly double the time (no headroom from extra parallelism).
        let a = run_hyperq(&HyperQConfig::default(), &narrow_tasks(128, 400_000));
        let b = run_hyperq(&HyperQConfig::default(), &narrow_tasks(256, 400_000));
        let ratio = b.compute_done.as_secs_f64() / a.compute_done.as_secs_f64();
        assert!(ratio > 1.7, "expected ~2x scaling, got {ratio}");
    }

    #[test]
    fn obs_counts_launches_and_completions() {
        let (obs, rec) = Obs::recording();
        let cfg = HyperQConfig {
            obs,
            ..HyperQConfig::default()
        };
        let s = run_hyperq(&cfg, &narrow_tasks(16, 20_000));
        assert_eq!(s.tasks, 16);
        let buf = rec.snapshot();
        assert_eq!(buf.counter(Counter::TasksSpawned), 16);
        assert_eq!(buf.counter(Counter::TasksFreed), 16);
        assert_eq!(buf.counter(Counter::KernelLaunches), 16);
        assert!(buf.counter(Counter::EngineEvents) > 0);
        assert!(!buf.smm.is_empty(), "native launches emit SMM samples");
    }

    #[test]
    fn io_extends_makespan_beyond_compute() {
        let mut tasks = narrow_tasks(32, 10_000);
        for t in &mut tasks {
            t.input_bytes = 64 * 1024;
            t.output_bytes = 64 * 1024;
        }
        let s = run_hyperq(&HyperQConfig::default(), &tasks);
        assert!(s.makespan.as_ps() > s.compute_done.as_ps());
    }
}
