//! The static task-fusion baseline (paper §6.3): all tasks are merged into
//! one monolithic kernel, each task becoming one threadblock of a fixed
//! width (the paper uses 256 threads per sub-task).
//!
//! Consequences the evaluation measures:
//!
//! * every sub-task receives the *same* resource allocation — the kernel's
//!   shared-memory/register footprint is the maximum any task needs;
//! * no task completes before the batch: per-task latency equals the whole
//!   kernel's runtime (Fig. 10);
//! * irregular tasks leave threads idle inside their fixed-width block
//!   (Fig. 9).

use desim::{Dur, SimTime};
use gpu_arch::TaskShape;
use gpu_sim::{BlockWork, DeviceConfig, GpuDevice, KernelDesc, Notify, Segment, WarpWork};
use pagoda_core::TaskDesc;
use pcie::{Direction, PcieBus, PcieConfig};

use crate::summary::RunSummary;

/// Fusion runner configuration.
#[derive(Debug, Clone)]
pub struct FusionConfig {
    /// The device.
    pub device: DeviceConfig,
    /// The interconnect.
    pub pcie: PcieConfig,
    /// Host CPU cost to assemble the fused launch, per task fused.
    pub fuse_cpu_cost: Dur,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            device: DeviceConfig::titan_x(),
            pcie: PcieConfig::default(),
            fuse_cpu_cost: Dur::from_ns(300),
        }
    }
}

/// Pads a block to `to_warps` warps with zero-work warps that still attend
/// every barrier (a fused sub-task narrower than the fixed block width).
fn pad_block(block: &BlockWork, to_warps: u32) -> BlockWork {
    let have = block.num_warps();
    assert!(have <= to_warps, "cannot shrink a block");
    if have == to_warps {
        return block.clone();
    }
    let barriers = block.warps()[0].barrier_count();
    let pad = WarpWork {
        segments: vec![Segment::Barrier; barriers],
        cpi: block.warps()[0].cpi,
    };
    let mut warps = block.warps().to_vec();
    warps.resize(to_warps as usize, pad);
    BlockWork::new(warps)
}

/// Runs all `tasks` as one statically fused kernel with
/// `threads_per_subtask`-wide blocks.
///
/// # Panics
/// Panics if a task has more than one threadblock (fusion maps one task to
/// one block), is wider than the fused width, or the fused shape cannot
/// launch.
pub fn run_fusion(cfg: &FusionConfig, tasks: &[TaskDesc], threads_per_subtask: u32) -> RunSummary {
    assert!(!tasks.is_empty(), "fusing zero tasks");
    let warps = threads_per_subtask.div_ceil(32);
    let smem = tasks.iter().map(|t| t.smem_per_tb).max().unwrap();
    let blocks: Vec<BlockWork> = tasks
        .iter()
        .map(|t| {
            assert_eq!(t.num_tbs, 1, "fusion maps one task to one threadblock");
            assert!(
                t.warps_per_tb() <= warps,
                "task wider than the fused sub-task width"
            );
            pad_block(&t.blocks[0], warps)
        })
        .collect();
    let shape = TaskShape {
        threads_per_tb: threads_per_subtask,
        num_tbs: tasks.len() as u32,
        regs_per_thread: 32,
        smem_per_tb: smem,
    };

    let mut device = GpuDevice::new(cfg.device.clone());
    let mut bus = PcieBus::new(cfg.pcie.clone());
    let h2d = bus.create_stream();
    let d2h = bus.create_stream();

    let host_now = SimTime::ZERO + Dur::from_ps(cfg.fuse_cpu_cost.as_ps() * tasks.len() as u64);
    let input_bytes: u64 = tasks.iter().map(|t| t.input_bytes).sum();
    let launch_at = if input_bytes > 0 {
        bus.transfer(host_now, h2d, Direction::HostToDevice, input_bytes)
            .complete
    } else {
        host_now
    };
    device.schedule_host(launch_at, 0);

    let mut kernel_done = None;
    while let Some((t, batch)) = device.step() {
        for n in batch {
            match n {
                Notify::Host(_) => {
                    let k = KernelDesc::new(shape, blocks.clone(), 0);
                    device.launch_kernel(k).expect("fused kernel must launch");
                }
                Notify::KernelDone { .. } => kernel_done = Some(t),
                Notify::WarpDone { .. } => unreachable!("no persistent warps under fusion"),
            }
        }
    }
    let done = kernel_done.expect("fused kernel never finished");

    let output_bytes: u64 = tasks.iter().map(|t| t.output_bytes).sum();
    let end = if output_bytes > 0 {
        bus.transfer(done, d2h, Direction::DeviceToHost, output_bytes)
            .complete
    } else {
        done
    };

    RunSummary {
        makespan: end - SimTime::ZERO,
        compute_done: done,
        tasks: tasks.len() as u64,
        // Every task "completes" when the fused kernel does.
        mean_task_latency: done - host_now,
        avg_running_occupancy: device.avg_running_occupancy(),
        h2d_busy: bus.stats(Direction::HostToDevice).busy,
        d2h_busy: bus.stats(Direction::DeviceToHost).busy,
        gpu_busy: {
            let s = device.stats();
            Dur::from_ps(s.busy_ps / u64::from(device.spec().num_sms))
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::WarpWork;

    #[test]
    fn fused_latency_equals_kernel_time_for_all() {
        let tasks: Vec<TaskDesc> = (0..256)
            .map(|_| TaskDesc::uniform(128, WarpWork::compute(100_000, 4.0)))
            .collect();
        let s = run_fusion(&FusionConfig::default(), &tasks, 256);
        assert_eq!(s.tasks, 256);
        // More tasks -> proportionally longer per-task latency.
        let tasks2: Vec<TaskDesc> = (0..1024)
            .map(|_| TaskDesc::uniform(128, WarpWork::compute(100_000, 4.0)))
            .collect();
        let s2 = run_fusion(&FusionConfig::default(), &tasks2, 256);
        assert!(
            s2.mean_task_latency.as_secs_f64() > 2.5 * s.mean_task_latency.as_secs_f64(),
            "{:?} vs {:?}",
            s2.mean_task_latency,
            s.mean_task_latency
        );
    }

    #[test]
    fn pad_block_preserves_barrier_structure() {
        let b = BlockWork::uniform(2, WarpWork::phased(1000, 3, 1.5));
        let p = pad_block(&b, 8);
        assert_eq!(p.num_warps(), 8);
        assert_eq!(p.warps()[7].barrier_count(), 2);
        assert_eq!(p.warps()[7].total_instrs(), 0);
        assert_eq!(p.total_instrs(), b.total_instrs());
    }

    #[test]
    fn padded_sync_tasks_run_to_completion() {
        let tasks: Vec<TaskDesc> = (0..64)
            .map(|_| TaskDesc::uniform(96, WarpWork::phased(30_000, 2, 2.0)))
            .collect();
        let s = run_fusion(&FusionConfig::default(), &tasks, 256);
        assert_eq!(s.tasks, 64);
        assert!(s.compute_done > SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "wider than the fused")]
    fn oversized_task_rejected() {
        let t = TaskDesc::uniform(512, WarpWork::compute(1, 1.0));
        run_fusion(&FusionConfig::default(), &[t], 256);
    }
}
