//! Drivers that run a task list through the Pagoda runtime — continuous
//! spawning (the real system) and batched spawning (the Fig. 11 ablation).

use pagoda_core::{PagodaConfig, PagodaRuntime, SubmitError, TaskDesc};
use pagoda_obs::Obs;

use crate::summary::RunSummary;

/// The paper's blocking spawn loop: the non-blocking [`PagodaRuntime::submit`]
/// probe wrapped in the §4.2.2 retry idiom — on a full table, refresh the
/// CPU's view with an aggregate copy-back and, if still full, idle one
/// `wait_timeout` slice before retrying.
pub fn spawn_blocking(rt: &mut PagodaRuntime, t: &TaskDesc) {
    let mut desc = t.clone();
    let mut iterations = 0u64;
    loop {
        match rt.submit(desc) {
            Ok(_) => return,
            Err(SubmitError::Full(d)) => {
                rt.sync_table();
                if !rt.capacity().has_room() {
                    let timeout = rt.config().wait_timeout;
                    rt.advance_to(rt.host_now() + timeout);
                }
                desc = d;
            }
            Err(e) => panic!("invalid task for Pagoda: {e}"),
        }
        iterations += 1;
        assert!(iterations < 100_000_000, "blocking spawn livelocked");
    }
}

/// Continuous spawning: tasks are spawned as fast as the host can issue
/// them and reaped with one `waitAll` — the paper's Pagoda configuration.
pub fn run_pagoda(cfg: PagodaConfig, tasks: &[TaskDesc]) -> RunSummary {
    run_pagoda_with_obs(cfg, tasks, Obs::off())
}

/// [`run_pagoda`] with an observability sink attached to every layer
/// (runtime, device, bus) for the duration of the run.
pub fn run_pagoda_with_obs(cfg: PagodaConfig, tasks: &[TaskDesc], obs: Obs) -> RunSummary {
    let mut rt = PagodaRuntime::new(cfg);
    rt.attach_obs(obs);
    for t in tasks {
        spawn_blocking(&mut rt, t);
    }
    rt.wait_all();
    rt.report().into()
}

/// Batched spawning (Fig. 11, "Pagoda-Batching"): no task of batch *k+1*
/// is spawned until every task of batch *k* has completed. Concurrent
/// scheduling inside each batch is unchanged; only the continuous,
/// pipelined spawning is removed.
pub fn run_pagoda_batched(cfg: PagodaConfig, tasks: &[TaskDesc], batch_size: usize) -> RunSummary {
    assert!(batch_size > 0, "zero batch size");
    let mut rt = PagodaRuntime::new(cfg);
    for chunk in tasks.chunks(batch_size) {
        for t in chunk {
            spawn_blocking(&mut rt, t);
        }
        rt.wait_all();
    }
    rt.report().into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::WarpWork;

    fn narrow(n: usize, instrs: u64) -> Vec<TaskDesc> {
        (0..n)
            .map(|_| TaskDesc::uniform(128, WarpWork::compute(instrs, 4.0)))
            .collect()
    }

    #[test]
    fn continuous_beats_batched_on_many_tasks() {
        let tasks = narrow(2000, 60_000);
        let cont = run_pagoda(PagodaConfig::default(), &tasks);
        let batched = run_pagoda_batched(PagodaConfig::default(), &tasks, 384);
        assert_eq!(cont.tasks, 2000);
        assert_eq!(batched.tasks, 2000);
        assert!(
            cont.makespan < batched.makespan,
            "continuous {:?} vs batched {:?}",
            cont.makespan,
            batched.makespan
        );
    }
}
