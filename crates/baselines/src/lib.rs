//! Baseline runtimes the Pagoda paper evaluates against.
//!
//! | Runner | Paper role |
//! |---|---|
//! | [`hyperq::run_hyperq`] | CUDA-HyperQ: one kernel per task, 32 concurrent |
//! | [`gemtc::run_gemtc`] | GeMTC: SuperKernel workers, batch FIFO, 1 task = 1 TB |
//! | [`fusion::run_fusion`] | Static task fusion: one monolithic kernel |
//! | [`cpu::run_pthreads`] | 20-core PThreads task parallelism |
//! | [`cpu::run_sequential`] | Single-core CPU (the speedup-1 reference) |
//! | [`driver::run_pagoda`] | Pagoda with continuous spawning |
//! | [`driver::run_pagoda_batched`] | Fig. 11 ablation: Pagoda minus continuous spawning |
//!
//! All runners consume the same [`pagoda_core::TaskDesc`] lists and produce
//! a [`summary::RunSummary`], so every figure harness is a straight
//! comparison.

pub mod cpu;
pub mod driver;
pub mod fusion;
pub mod gemtc;
pub mod hyperq;
pub mod summary;

pub use cpu::{run_pthreads, run_sequential, CpuConfig};
pub use driver::{run_pagoda, run_pagoda_batched, run_pagoda_with_obs, spawn_blocking};
pub use fusion::{run_fusion, FusionConfig};
pub use gemtc::{run_gemtc, GemtcConfig};
pub use hyperq::{run_hyperq, HyperQConfig};
pub use summary::{geomean, RunSummary};
