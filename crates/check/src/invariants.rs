//! The invariant catalog: what [`CheckCore`] validates on every event.
//!
//! Each invariant restates a contract the rest of the workspace relies
//! on informally. The checker sees only the observability stream — task
//! lifecycle events, resource samples, device samples, sync marks,
//! counters — so every rule here is phrased over that stream, never
//! over runtime internals:
//!
//! 1. **Lifecycle order** — a task's states strictly advance along
//!    spawned → enqueued → placed → running → freed; no event names a
//!    task before its `Spawned`.
//! 2. **Conservation** — at end of run, every spawned task reached a
//!    terminal `Freed` (completion and loss both free the entry), and
//!    every device's final sample shows zero outstanding tasks.
//! 3. **SMM capacity** — per-SMM samples never exceed the device spec:
//!    resident warps, free registers/shared memory, TB slots.
//! 4. **MTB capacity** — per-MTB samples never exceed the MasterKernel
//!    shape: 31 executor-warp slots, the buddy-pool bytes, the
//!    TaskTable column depth.
//! 5. **Dead devices stay dead** — a device sampled `alive = false`
//!    never reports outstanding work and never comes back.
//! 6. **Merge order** — within one fleet sync batch, completions apply
//!    in non-decreasing fleet time (the `(instant, device, key)` sorted
//!    merge).
//! 7. **Fleet causality** — inside a regular sync batch, no completion
//!    is fleet-visible past the batch's fleet instant (the
//!    causal-harvest gate). Kill-harvest batches are exempt: a dying
//!    device's local clock legitimately ran ahead.
//! 8. **Staging accounting** — staged transfers never exceed off-home
//!    placements (a transfer is only ever charged for an off-home
//!    placement).
//! 9. **Phase decomposition** — at end of run, every completed task's
//!    `pagoda-prof` phase decomposition sums exactly to its sojourn
//!    (the telescoping contract the profiler's attribution rests on),
//!    recomputed here from the checker's own cut timeline.

use std::collections::BTreeMap;
use std::fmt;

use pagoda_core::warptable::EXECUTORS_PER_MTB;
use pagoda_core::PagodaConfig;
use pagoda_obs::{
    Counter, DeviceSample, MtbSample, SmmSample, SyncKind, SyncMark, TaskEvent, TaskMark, TaskState,
};
use pagoda_prof::{decompose, Cuts};

/// Resource ceilings the capacity invariants compare samples against,
/// derived once from the runtime configuration of the (uniform) devices
/// under check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckLimits {
    /// Warps an SMM can hold resident ([`gpu_arch::GpuSpec`]).
    pub max_warps_per_sm: u32,
    /// Register-file registers per SMM.
    pub regs_per_sm: u64,
    /// Shared-memory bytes per SMM.
    pub smem_per_sm: u64,
    /// Threadblock slots per SMM.
    pub max_tbs_per_sm: u32,
    /// Executor-warp slots per MTB WarpTable (31: one warp schedules).
    pub mtb_warp_slots: u32,
    /// Bytes of each MTB's buddy shared-memory pool.
    pub mtb_pool_bytes: u64,
    /// TaskTable entries per MTB column.
    pub rows_per_column: u32,
}

impl CheckLimits {
    /// Ceilings for devices built from `cfg`.
    pub fn of(cfg: &PagodaConfig) -> Self {
        let spec = &cfg.device.spec;
        CheckLimits {
            max_warps_per_sm: spec.max_warps_per_sm,
            regs_per_sm: u64::from(spec.regs_per_sm),
            smem_per_sm: u64::from(spec.smem_per_sm),
            max_tbs_per_sm: spec.max_tbs_per_sm,
            mtb_warp_slots: EXECUTORS_PER_MTB as u32,
            mtb_pool_bytes: u64::from(cfg.mtb_pool_bytes()),
            rows_per_column: cfg.rows_per_column,
        }
    }
}

/// One invariant violation, with enough context to act on it.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A task's lifecycle went backwards (or repeated a state).
    LifecycleOrder {
        /// The task.
        task: u64,
        /// State it was last seen in.
        from: TaskState,
        /// State the offending event claims.
        to: TaskState,
        /// Instant of the offending event, picoseconds.
        at_ps: u64,
    },
    /// An event named a task never seen `Spawned`.
    UnknownTask {
        /// The task.
        task: u64,
        /// The state the event claims.
        state: TaskState,
        /// Instant of the offending event, picoseconds.
        at_ps: u64,
    },
    /// An SMM sample exceeds a device-spec ceiling.
    SmmOverCapacity {
        /// SMM index.
        sm: u32,
        /// Which field overflowed.
        field: &'static str,
        /// Observed value.
        value: u64,
        /// The ceiling.
        limit: u64,
        /// Sample instant, picoseconds.
        at_ps: u64,
    },
    /// An MTB sample exceeds a MasterKernel-shape ceiling.
    MtbOverCapacity {
        /// MTB index.
        mtb: u32,
        /// Which field overflowed.
        field: &'static str,
        /// Observed value.
        value: u64,
        /// The ceiling.
        limit: u64,
        /// Sample instant, picoseconds.
        at_ps: u64,
    },
    /// A dead device reported in-flight tasks.
    DeadDeviceActivity {
        /// Device index.
        device: u32,
        /// Outstanding tasks it claimed.
        outstanding: u32,
        /// Sample instant, picoseconds.
        at_ps: u64,
    },
    /// A device sampled dead later sampled alive.
    DeviceResurrected {
        /// Device index.
        device: u32,
        /// Sample instant, picoseconds.
        at_ps: u64,
    },
    /// Completions within one sync batch regressed in fleet time — the
    /// sorted-merge contract broke.
    MergeOrder {
        /// Task whose completion regressed.
        task: u64,
        /// Its completion instant, picoseconds.
        at_ps: u64,
        /// The later instant already applied in this batch.
        prev_ps: u64,
    },
    /// A completion became fleet-visible past its sync point — the
    /// causal-harvest gate broke.
    CausalityBreach {
        /// The task.
        task: u64,
        /// Its completion instant, picoseconds.
        at_ps: u64,
        /// The batch's fleet instant, picoseconds.
        mark_ps: u64,
    },
    /// Staged transfers overtook off-home placements.
    StagingOverCharge {
        /// Staged-transfer count.
        staged: u64,
        /// Off-home placement count.
        off_affinity: u64,
    },
    /// End of run: spawned tasks never reached a terminal `Freed`.
    ConservationLeak {
        /// Tasks seen `Spawned`.
        spawned: u64,
        /// Tasks seen `Freed`.
        terminal: u64,
        /// An example leaked task.
        example: u64,
    },
    /// End of run: a device's final sample still holds in-flight tasks.
    DeviceOutstandingLeak {
        /// Device index.
        device: u32,
        /// Outstanding tasks in its final sample.
        outstanding: u32,
    },
    /// End of run: a completed task's phase decomposition does not sum
    /// to its sojourn — the profiler's telescoping contract broke.
    PhaseSumMismatch {
        /// The task.
        task: u64,
        /// Sum of the seven phase durations, picoseconds.
        phase_sum_ps: u64,
        /// The sojourn the phases must partition, picoseconds.
        sojourn_ps: u64,
    },
    /// A QoS scheduler broke its ordering contract (reported by
    /// [`QosCheck`](crate::QosCheck)).
    QosOrder {
        /// Policy name.
        policy: &'static str,
        /// What the contract demanded next.
        expected: u64,
        /// What the scheduler produced.
        got: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::LifecycleOrder {
                task,
                from,
                to,
                at_ps,
            } => write!(
                f,
                "task {task} lifecycle went {} -> {} at {at_ps} ps",
                from.name(),
                to.name()
            ),
            Violation::UnknownTask { task, state, at_ps } => write!(
                f,
                "task {task} reached {} at {at_ps} ps without being spawned",
                state.name()
            ),
            Violation::SmmOverCapacity {
                sm,
                field,
                value,
                limit,
                at_ps,
            } => write!(
                f,
                "smm {sm} {field} = {value} exceeds limit {limit} at {at_ps} ps"
            ),
            Violation::MtbOverCapacity {
                mtb,
                field,
                value,
                limit,
                at_ps,
            } => write!(
                f,
                "mtb {mtb} {field} = {value} exceeds limit {limit} at {at_ps} ps"
            ),
            Violation::DeadDeviceActivity {
                device,
                outstanding,
                at_ps,
            } => write!(
                f,
                "dead device {device} reports {outstanding} outstanding task(s) at {at_ps} ps"
            ),
            Violation::DeviceResurrected { device, at_ps } => {
                write!(f, "dead device {device} came back alive at {at_ps} ps")
            }
            Violation::MergeOrder {
                task,
                at_ps,
                prev_ps,
            } => write!(
                f,
                "completion of task {task} at {at_ps} ps applied after one at {prev_ps} ps \
                 in the same sync batch (merge unsorted)"
            ),
            Violation::CausalityBreach {
                task,
                at_ps,
                mark_ps,
            } => write!(
                f,
                "task {task} completed at {at_ps} ps, past its sync point {mark_ps} ps \
                 (causal-harvest gate broken)"
            ),
            Violation::StagingOverCharge {
                staged,
                off_affinity,
            } => write!(
                f,
                "staged transfers ({staged}) exceed off-home placements ({off_affinity})"
            ),
            Violation::ConservationLeak {
                spawned,
                terminal,
                example,
            } => write!(
                f,
                "conservation: {spawned} task(s) spawned but only {terminal} freed \
                 (e.g. task {example} never terminal)"
            ),
            Violation::DeviceOutstandingLeak {
                device,
                outstanding,
            } => write!(
                f,
                "device {device} ended the run with {outstanding} task(s) outstanding"
            ),
            Violation::PhaseSumMismatch {
                task,
                phase_sum_ps,
                sojourn_ps,
            } => write!(
                f,
                "task {task} phase decomposition sums to {phase_sum_ps} ps, \
                 sojourn is {sojourn_ps} ps"
            ),
            Violation::QosOrder {
                policy,
                expected,
                got,
            } => write!(
                f,
                "{policy} scheduler popped seq {got}, contract demanded seq {expected}"
            ),
        }
    }
}

/// Keep at most this many violations; a broken run can flood millions of
/// identical reports, and the first few localize the bug.
pub const MAX_VIOLATIONS: usize = 64;

/// The invariant state machine. Feed it the observability stream (the
/// [`CheckRecorder`](crate::CheckRecorder) does this as a tee), then
/// call [`CheckCore::finish`] once the run is over for the end-of-run
/// conservation checks.
#[derive(Debug)]
pub struct CheckCore {
    limits: Option<CheckLimits>,
    /// task → last lifecycle state seen.
    task_state: BTreeMap<u64, TaskState>,
    /// task → phase-cut timeline, rebuilt from lifecycle events and
    /// marks for the end-of-run decomposition check (invariant 9).
    cuts: BTreeMap<u64, Cuts>,
    spawned: u64,
    terminal: u64,
    staged: u64,
    off_affinity: u64,
    staging_flagged: bool,
    /// device → (alive, outstanding) from its latest sample.
    device_last: BTreeMap<u32, (bool, u32)>,
    /// The current sync batch, if any mark has been seen.
    batch: Option<SyncMark>,
    /// Latest `Freed` instant applied in the current batch.
    batch_freed: Option<u64>,
    violations: Vec<Violation>,
    dropped: u64,
}

impl CheckCore {
    /// A fresh checker. Pass [`CheckLimits`] to enable the capacity
    /// invariants; without them only stream-shape invariants run (a
    /// fleet of non-uniform devices has no single ceiling set).
    pub fn new(limits: Option<CheckLimits>) -> Self {
        CheckCore {
            limits,
            task_state: BTreeMap::new(),
            cuts: BTreeMap::new(),
            spawned: 0,
            terminal: 0,
            staged: 0,
            off_affinity: 0,
            staging_flagged: false,
            device_last: BTreeMap::new(),
            batch: None,
            batch_freed: None,
            violations: Vec::new(),
            dropped: 0,
        }
    }

    fn flag(&mut self, v: Violation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        } else {
            self.dropped += 1;
        }
    }

    /// Violations found so far (capped at [`MAX_VIOLATIONS`]).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Violations beyond the cap that were counted but not stored.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether the stream has been clean so far.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.dropped == 0
    }

    /// Invariant 1 (lifecycle), 6 (merge order), 7 (causality); also
    /// feeds the cut timeline for invariant 9.
    pub fn on_task(&mut self, ev: TaskEvent) {
        self.cuts
            .entry(ev.task)
            .or_default()
            .note_state(ev.state, ev.at_ps);
        match self.task_state.get(&ev.task).copied() {
            None => {
                if ev.state == TaskState::Spawned {
                    self.spawned += 1;
                    self.task_state.insert(ev.task, ev.state);
                } else {
                    self.flag(Violation::UnknownTask {
                        task: ev.task,
                        state: ev.state,
                        at_ps: ev.at_ps,
                    });
                    // Adopt the state anyway so one missing Spawned does
                    // not cascade into a violation per later event.
                    self.task_state.insert(ev.task, ev.state);
                }
            }
            Some(prev) => {
                if ev.state <= prev {
                    self.flag(Violation::LifecycleOrder {
                        task: ev.task,
                        from: prev,
                        to: ev.state,
                        at_ps: ev.at_ps,
                    });
                }
                self.task_state.insert(ev.task, ev.state);
            }
        }
        if ev.state == TaskState::Freed {
            self.terminal += 1;
            if let Some(mark) = self.batch {
                if mark.kind == SyncKind::Sync {
                    if ev.at_ps > mark.at_ps {
                        self.flag(Violation::CausalityBreach {
                            task: ev.task,
                            at_ps: ev.at_ps,
                            mark_ps: mark.at_ps,
                        });
                    }
                    if let Some(prev) = self.batch_freed {
                        if ev.at_ps < prev {
                            self.flag(Violation::MergeOrder {
                                task: ev.task,
                                at_ps: ev.at_ps,
                                prev_ps: prev,
                            });
                        }
                    }
                }
                self.batch_freed = Some(ev.at_ps.max(self.batch_freed.unwrap_or(0)));
            }
        }
    }

    /// Feeds arrival/admission/observation marks into the cut timeline
    /// for the end-of-run decomposition check (invariant 9).
    pub fn on_mark(&mut self, m: TaskMark) {
        self.cuts
            .entry(m.task)
            .or_default()
            .note_mark(m.kind, m.at_ps);
    }

    /// Invariant 3 (SMM capacity).
    pub fn on_smm(&mut self, s: SmmSample) {
        let Some(l) = self.limits else { return };
        let checks: [(&'static str, u64, u64); 5] = [
            (
                "resident_warps",
                u64::from(s.resident_warps),
                u64::from(l.max_warps_per_sm),
            ),
            (
                "running_warps",
                u64::from(s.running_warps),
                u64::from(s.resident_warps),
            ),
            ("free_regs", s.free_regs, l.regs_per_sm),
            ("free_smem", s.free_smem, l.smem_per_sm),
            (
                "free_tb_slots",
                u64::from(s.free_tb_slots),
                u64::from(l.max_tbs_per_sm),
            ),
        ];
        for (field, value, limit) in checks {
            if value > limit {
                self.flag(Violation::SmmOverCapacity {
                    sm: s.sm,
                    field,
                    value,
                    limit,
                    at_ps: s.at_ps,
                });
            }
        }
    }

    /// Invariant 4 (MTB capacity).
    pub fn on_mtb(&mut self, s: MtbSample) {
        let Some(l) = self.limits else { return };
        let checks: [(&'static str, u64, u64); 3] = [
            (
                "free_warp_slots",
                u64::from(s.free_warp_slots),
                u64::from(l.mtb_warp_slots),
            ),
            ("free_smem", s.free_smem, l.mtb_pool_bytes),
            (
                "used_entries",
                u64::from(s.used_entries),
                u64::from(l.rows_per_column),
            ),
        ];
        for (field, value, limit) in checks {
            if value > limit {
                self.flag(Violation::MtbOverCapacity {
                    mtb: s.mtb,
                    field,
                    value,
                    limit,
                    at_ps: s.at_ps,
                });
            }
        }
    }

    /// Invariant 5 (dead devices stay dead and idle).
    pub fn on_device(&mut self, s: DeviceSample) {
        if let Some((was_alive, _)) = self.device_last.get(&s.device) {
            if !was_alive && s.alive {
                self.flag(Violation::DeviceResurrected {
                    device: s.device,
                    at_ps: s.at_ps,
                });
            }
        }
        if !s.alive && s.outstanding > 0 {
            self.flag(Violation::DeadDeviceActivity {
                device: s.device,
                outstanding: s.outstanding,
                at_ps: s.at_ps,
            });
        }
        self.device_last.insert(s.device, (s.alive, s.outstanding));
    }

    /// Opens a new sync batch (invariants 6 and 7 reset their window).
    pub fn on_sync_mark(&mut self, m: SyncMark) {
        self.batch = Some(m);
        self.batch_freed = None;
    }

    /// Invariant 8 (staging accounting), tracked online from counters.
    pub fn on_count(&mut self, c: Counter, delta: u64) {
        match c {
            Counter::ClusterStagedTransfers => self.staged += delta,
            Counter::ClusterOffAffinity => self.off_affinity += delta,
            _ => return,
        }
        if self.staged > self.off_affinity && !self.staging_flagged {
            self.staging_flagged = true;
            self.flag(Violation::StagingOverCharge {
                staged: self.staged,
                off_affinity: self.off_affinity,
            });
        }
    }

    /// Invariant 2 (conservation), checked once the run is over: every
    /// spawned task must have reached `Freed`, and every device's final
    /// sample must show zero outstanding tasks.
    pub fn finish(&mut self) {
        if self.terminal < self.spawned {
            let example = self
                .task_state
                .iter()
                .find(|(_, &st)| st != TaskState::Freed)
                .map_or(u64::MAX, |(&t, _)| t);
            self.flag(Violation::ConservationLeak {
                spawned: self.spawned,
                terminal: self.terminal,
                example,
            });
        }
        let leaks: Vec<(u32, u32)> = self
            .device_last
            .iter()
            .filter(|(_, &(_, outstanding))| outstanding > 0)
            .map(|(&d, &(_, o))| (d, o))
            .collect();
        for (device, outstanding) in leaks {
            self.flag(Violation::DeviceOutstandingLeak {
                device,
                outstanding,
            });
        }
        // Invariant 9: every completed task's phase decomposition must
        // partition its sojourn exactly (the telescoping contract all
        // pagoda-prof attribution rests on).
        let mismatches: Vec<Violation> = self
            .cuts
            .iter()
            .filter(|(_, c)| c.complete())
            .filter_map(|(&task, c)| {
                let d = decompose(c)?;
                let phase_sum_ps: u64 = d.phases.iter().sum();
                (phase_sum_ps != d.sojourn_ps).then_some(Violation::PhaseSumMismatch {
                    task,
                    phase_sum_ps,
                    sojourn_ps: d.sojourn_ps,
                })
            })
            .collect();
        for v in mismatches {
            self.flag(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ps: u64, task: u64, state: TaskState) -> TaskEvent {
        TaskEvent { at_ps, task, state }
    }

    #[test]
    fn clean_lifecycle_passes() {
        let mut c = CheckCore::new(None);
        for (t, s) in [
            (0, TaskState::Spawned),
            (1, TaskState::Spawned),
            (0, TaskState::Enqueued),
            (0, TaskState::Running),
            (0, TaskState::Freed),
            (1, TaskState::Freed),
        ] {
            c.on_task(ev(t * 10, t, s));
        }
        c.finish();
        assert!(c.is_clean(), "{:?}", c.violations());
    }

    #[test]
    fn marks_feed_cuts_and_phase_sums_reconcile() {
        use pagoda_obs::MarkKind;
        let mut c = CheckCore::new(None);
        c.on_mark(TaskMark {
            at_ps: 5,
            task: 0,
            kind: MarkKind::Arrived,
        });
        c.on_mark(TaskMark {
            at_ps: 8,
            task: 0,
            kind: MarkKind::Admitted,
        });
        for (at, s) in [
            (10, TaskState::Spawned),
            (20, TaskState::Enqueued),
            (35, TaskState::Running),
            (60, TaskState::Freed),
        ] {
            c.on_task(ev(at, 0, s));
        }
        c.on_mark(TaskMark {
            at_ps: 70,
            task: 0,
            kind: MarkKind::Observed,
        });
        c.finish();
        assert!(c.is_clean(), "{:?}", c.violations());
        let d = decompose(&c.cuts[&0]).expect("task completed");
        assert_eq!(d.sojourn_ps, 65); // arrival (5) → observed (70)
        assert_eq!(d.phases.iter().sum::<u64>(), 65);
    }

    #[test]
    fn backwards_lifecycle_is_flagged() {
        let mut c = CheckCore::new(None);
        c.on_task(ev(0, 7, TaskState::Spawned));
        c.on_task(ev(1, 7, TaskState::Running));
        c.on_task(ev(2, 7, TaskState::Enqueued));
        assert!(matches!(
            c.violations()[0],
            Violation::LifecycleOrder { task: 7, .. }
        ));
    }

    #[test]
    fn event_before_spawn_is_flagged_once() {
        let mut c = CheckCore::new(None);
        c.on_task(ev(5, 3, TaskState::Running));
        c.on_task(ev(9, 3, TaskState::Freed));
        assert_eq!(c.violations().len(), 1);
        assert!(matches!(
            c.violations()[0],
            Violation::UnknownTask { task: 3, .. }
        ));
    }

    #[test]
    fn conservation_leak_is_flagged_at_finish() {
        let mut c = CheckCore::new(None);
        c.on_task(ev(0, 0, TaskState::Spawned));
        c.on_task(ev(0, 1, TaskState::Spawned));
        c.on_task(ev(5, 0, TaskState::Freed));
        assert!(c.is_clean());
        c.finish();
        assert!(matches!(
            c.violations()[0],
            Violation::ConservationLeak {
                spawned: 2,
                terminal: 1,
                example: 1
            }
        ));
    }

    #[test]
    fn merge_regression_within_sync_batch_is_flagged() {
        let mut c = CheckCore::new(None);
        c.on_task(ev(0, 0, TaskState::Spawned));
        c.on_task(ev(0, 1, TaskState::Spawned));
        c.on_sync_mark(SyncMark {
            at_ps: 100,
            kind: SyncKind::Sync,
        });
        c.on_task(ev(90, 0, TaskState::Freed));
        c.on_task(ev(40, 1, TaskState::Freed)); // regressed
        assert!(matches!(
            c.violations()[0],
            Violation::MergeOrder {
                task: 1,
                at_ps: 40,
                prev_ps: 90
            }
        ));
    }

    #[test]
    fn kill_harvest_batch_is_exempt_from_merge_and_causality() {
        let mut c = CheckCore::new(None);
        c.on_task(ev(0, 0, TaskState::Spawned));
        c.on_task(ev(0, 1, TaskState::Spawned));
        c.on_sync_mark(SyncMark {
            at_ps: 100,
            kind: SyncKind::KillHarvest,
        });
        c.on_task(ev(250, 0, TaskState::Freed)); // past the mark: fine
        c.on_task(ev(100, 1, TaskState::Freed)); // regression: fine
        c.finish();
        assert!(c.is_clean(), "{:?}", c.violations());
    }

    #[test]
    fn future_completion_in_sync_batch_breaches_causality() {
        let mut c = CheckCore::new(None);
        c.on_task(ev(0, 0, TaskState::Spawned));
        c.on_sync_mark(SyncMark {
            at_ps: 100,
            kind: SyncKind::Sync,
        });
        c.on_task(ev(130, 0, TaskState::Freed));
        assert!(matches!(
            c.violations()[0],
            Violation::CausalityBreach {
                task: 0,
                at_ps: 130,
                mark_ps: 100
            }
        ));
    }

    #[test]
    fn staging_may_trail_but_never_exceed_off_affinity() {
        let mut c = CheckCore::new(None);
        c.on_count(Counter::ClusterOffAffinity, 2);
        c.on_count(Counter::ClusterStagedTransfers, 1);
        assert!(c.is_clean());
        c.on_count(Counter::ClusterStagedTransfers, 2);
        assert!(matches!(
            c.violations()[0],
            Violation::StagingOverCharge {
                staged: 3,
                off_affinity: 2
            }
        ));
    }

    #[test]
    fn dead_device_with_outstanding_is_flagged() {
        let mut c = CheckCore::new(None);
        let s = |at_ps, alive, outstanding| DeviceSample {
            at_ps,
            device: 1,
            known_free: 0,
            outstanding,
            alive,
        };
        c.on_device(s(10, true, 3));
        c.on_device(s(20, false, 0));
        assert!(c.is_clean());
        c.on_device(s(30, false, 2));
        assert!(matches!(
            c.violations()[0],
            Violation::DeadDeviceActivity {
                device: 1,
                outstanding: 2,
                ..
            }
        ));
        c.on_device(s(40, true, 0));
        assert!(matches!(
            c.violations()[1],
            Violation::DeviceResurrected { device: 1, .. }
        ));
    }

    #[test]
    fn capacity_limits_bound_samples() {
        let cfg = PagodaConfig::default();
        let l = CheckLimits::of(&cfg);
        assert_eq!(l.mtb_warp_slots, 31);
        assert_eq!(l.rows_per_column, 32);
        let mut c = CheckCore::new(Some(l));
        c.on_mtb(MtbSample {
            at_ps: 5,
            mtb: 0,
            free_warp_slots: 31,
            free_smem: l.mtb_pool_bytes,
            used_entries: 32,
        });
        assert!(c.is_clean());
        c.on_mtb(MtbSample {
            at_ps: 6,
            mtb: 0,
            free_warp_slots: 32, // one more slot than the WarpTable has
            free_smem: 0,
            used_entries: 0,
        });
        assert!(matches!(
            c.violations()[0],
            Violation::MtbOverCapacity {
                field: "free_warp_slots",
                ..
            }
        ));
        c.on_smm(SmmSample {
            at_ps: 7,
            sm: 2,
            resident_warps: l.max_warps_per_sm + 1,
            running_warps: 0,
            free_regs: 0,
            free_smem: 0,
            free_tb_slots: 0,
        });
        assert!(matches!(
            c.violations()[1],
            Violation::SmmOverCapacity {
                sm: 2,
                field: "resident_warps",
                ..
            }
        ));
    }

    #[test]
    fn violation_cap_counts_overflow() {
        let mut c = CheckCore::new(None);
        for t in 0..(MAX_VIOLATIONS as u64 + 10) {
            c.on_task(ev(0, t, TaskState::Freed)); // all unknown tasks
        }
        assert_eq!(c.violations().len(), MAX_VIOLATIONS);
        assert_eq!(c.dropped(), 10);
    }
}
