//! pagoda_check — CLI front-end for the invariant checker.
//!
//! ```text
//! pagoda_check explore [--extended]     sweep scenarios under the checker
//! pagoda_check mutation-smoke           assert seeded bugs are all caught
//! pagoda_check replay [OPTIONS]         re-run one scenario (reproducers)
//! pagoda_check fingerprint [--extended] dump per-scenario fingerprints
//! ```
//!
//! `explore` checks every scenario under both fleet drivers
//! (byte-compared) and shrinks failures to minimal reproducers, printed
//! as replayable `pagoda_check replay` command lines. The extended
//! cross-product sweep runs with `--extended` or
//! `PAGODA_CHECK_EXTENDED=1`. Exit status is nonzero on any finding.

use pagoda_check::{
    check_scenario, explore, mutation_smoke, parse_fault, parse_placement, run_one,
    sweep_scenarios, Scenario,
};

fn usage() -> ! {
    eprintln!(
        "usage: pagoda_check <explore [--extended] | mutation-smoke | replay [OPTIONS] | fingerprint [--extended]>\n\
         replay options:\n\
           --devices N            fleet size (default 4)\n\
           --placement P          round-robin | least-outstanding | power-of-two | tenant-affinity\n\
           --seed S               placement seed (default 1)\n\
           --run-ahead-us U       run-ahead window, us (default 20)\n\
           --tasks T              batch size (default 32)\n\
           --tenants K            tenants round-robined over (default 4)\n\
           --spread W             home-set width (default 1)\n\
           --base-cycles C        base task cycles (default 40000)\n\
           --max-attempts A       submit attempts per task, 0 = fail-fast (default 3)\n\
           --fault kill@US:DEV | slow@US:DEV:FACTOR   (repeatable)"
    );
    std::process::exit(2);
}

fn explore_main(mut args: std::env::Args) -> i32 {
    let mut extended = std::env::var("PAGODA_CHECK_EXTENDED").is_ok_and(|v| v == "1");
    for a in args.by_ref() {
        match a.as_str() {
            "--extended" => extended = true,
            _ => usage(),
        }
    }
    let out = explore(extended, |line| eprintln!("{line}"));
    eprintln!(
        "explore: {} scenario(s) checked ({}), {} failure(s)",
        out.checked,
        if extended { "extended" } else { "smoke" },
        out.failures.len()
    );
    for (sc, findings) in &out.failures {
        eprintln!("FAILURE — minimal reproducer:");
        eprintln!("  {}", sc.replay_cli());
        for f in findings {
            eprintln!("  {f}");
        }
    }
    i32::from(!out.failures.is_empty())
}

fn smoke_main() -> i32 {
    let results = mutation_smoke();
    let mut failed = false;
    for r in &results {
        let verdict = if r.pass() {
            "caught"
        } else if !r.baseline_clean {
            failed = true;
            "NOISY BASELINE"
        } else {
            failed = true;
            "MISSED"
        };
        eprintln!("mutation {:22} {}", r.mutation.name(), verdict);
        if !r.pass() {
            eprintln!("  scenario: {}", r.scenario.replay_cli());
            for f in &r.findings {
                eprintln!("  saw: {f}");
            }
        }
    }
    eprintln!(
        "mutation-smoke: {}/{} seeded bug(s) detected",
        results.iter().filter(|r| r.pass()).count(),
        results.len()
    );
    i32::from(failed)
}

fn replay_main(mut args: std::env::Args) -> i32 {
    let mut sc = Scenario::default();
    sc.faults.clear();
    let need = |args: &mut std::env::Args, flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--devices" => {
                sc.devices = need(&mut args, "--devices")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--placement" => {
                sc.placement =
                    parse_placement(&need(&mut args, "--placement")).unwrap_or_else(|| usage())
            }
            "--seed" => {
                sc.seed = need(&mut args, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--run-ahead-us" => {
                sc.run_ahead_us = need(&mut args, "--run-ahead-us")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--tasks" => {
                sc.tasks = need(&mut args, "--tasks")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--tenants" => {
                sc.tenants = need(&mut args, "--tenants")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--spread" => {
                sc.spread = need(&mut args, "--spread")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--base-cycles" => {
                sc.base_cycles = need(&mut args, "--base-cycles")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--max-attempts" => {
                sc.max_attempts = need(&mut args, "--max-attempts")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--fault" => sc
                .faults
                .push(parse_fault(&need(&mut args, "--fault")).unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if sc.devices == 0 || sc.tasks == 0 || sc.tenants == 0 {
        usage();
    }
    eprintln!("replaying: {}", sc.replay_cli());
    match check_scenario(&sc) {
        None => {
            eprintln!("clean: no violations, drivers byte-identical");
            0
        }
        Some(fail) => {
            for f in &fail.findings {
                eprintln!("{f}");
            }
            1
        }
    }
}

/// Dumps every sweep scenario's serial and parallel fingerprints to
/// stdout, one record per line. Capturing this before and after a
/// hot-path change is how "byte-identical behavior" is audited: diff
/// the dumps and every divergence is pinned to a scenario and driver.
fn fingerprint_main(mut args: std::env::Args) -> i32 {
    let mut extended = std::env::var("PAGODA_CHECK_EXTENDED").is_ok_and(|v| v == "1");
    for a in args.by_ref() {
        match a.as_str() {
            "--extended" => extended = true,
            _ => usage(),
        }
    }
    for sc in sweep_scenarios(extended) {
        for (label, parallel) in [("serial", false), ("parallel", true)] {
            let out = run_one(&sc, None, parallel);
            println!("{} [{label}] {}", sc.replay_cli(), out.fingerprint);
        }
    }
    0
}

fn main() {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let code = match args.next().as_deref() {
        Some("explore") => explore_main(args),
        Some("mutation-smoke") => smoke_main(),
        Some("replay") => replay_main(args),
        Some("fingerprint") => fingerprint_main(args),
        _ => usage(),
    };
    std::process::exit(code);
}
