//! Ordering-contract auditors for the serve-layer QoS schedulers.
//!
//! [`QosCheck`] implements [`pagoda_serve::QosAudit`] by mirroring the
//! queue discipline with an independent model and comparing every pop
//! against what the contract demands:
//!
//! * **fifo** — pops must follow global arrival order (a requeued task
//!   re-enters at the back, exactly like the real queue);
//! * **edf** — every pop must carry the minimum `(deadline, seq)` key
//!   currently queued, with missing deadlines sorting last;
//! * **wfq** — weighted sharing leaves the global order policy-defined,
//!   but *within* a tenant the queue is FIFO: each pop must be the
//!   oldest queued task of its tenant.
//!
//! The mirror never touches the scheduler under test; it only listens
//! to the [`QosAudit`] hooks the serving loop already emits.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Mutex;

use pagoda_serve::{QosAudit, QueuedTask};

use crate::invariants::{Violation, MAX_VIOLATIONS};

/// Independent model of one queue discipline.
#[derive(Debug)]
enum Model {
    /// Global arrival order: queued seqs, oldest first.
    Fifo(VecDeque<u64>),
    /// Ordered `(deadline_ps-or-MAX, seq)` keys.
    Edf(BTreeSet<(u64, u64)>),
    /// Per-tenant arrival order: tenant → queued seqs, oldest first.
    Wfq(HashMap<usize, VecDeque<u64>>),
}

#[derive(Debug)]
struct QosState {
    model: Model,
    violations: Vec<Violation>,
    dropped: u64,
}

/// A [`QosAudit`] that validates scheduler pops against a mirror model.
#[derive(Debug)]
pub struct QosCheck {
    policy: &'static str,
    state: Mutex<QosState>,
}

impl QosCheck {
    fn new(policy: &'static str, model: Model) -> Self {
        QosCheck {
            policy,
            state: Mutex::new(QosState {
                model,
                violations: Vec::new(),
                dropped: 0,
            }),
        }
    }

    /// Auditor for [`pagoda_serve::Fifo`].
    pub fn fifo() -> Self {
        QosCheck::new("fifo", Model::Fifo(VecDeque::new()))
    }

    /// Auditor for [`pagoda_serve::Edf`].
    pub fn edf() -> Self {
        QosCheck::new("edf", Model::Edf(BTreeSet::new()))
    }

    /// Auditor for [`pagoda_serve::WeightedFair`] (per-tenant FIFO
    /// contract; the cross-tenant interleaving is policy-defined).
    pub fn weighted_fair() -> Self {
        QosCheck::new("wfq", Model::Wfq(HashMap::new()))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QosState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Ordering violations observed so far.
    pub fn violations(&self) -> Vec<Violation> {
        self.lock().violations.clone()
    }

    /// Violations discarded after the reporting cap.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Whether every pop so far honoured the contract.
    pub fn is_clean(&self) -> bool {
        let s = self.lock();
        s.violations.is_empty() && s.dropped == 0
    }

    fn admit(&self, t: &QueuedTask) {
        let mut s = self.lock();
        match &mut s.model {
            Model::Fifo(q) => q.push_back(t.seq),
            Model::Edf(set) => {
                set.insert((edf_key(t), t.seq));
            }
            Model::Wfq(map) => map.entry(t.tenant).or_default().push_back(t.seq),
        }
    }
}

fn edf_key(t: &QueuedTask) -> u64 {
    t.deadline.map_or(u64::MAX, desim::SimTime::as_ps)
}

impl QosAudit for QosCheck {
    fn on_push(&self, t: &QueuedTask) {
        self.admit(t);
    }

    /// A requeued task re-enters the discipline as if newly arrived
    /// (the real queues treat it exactly that way).
    fn on_requeue(&self, t: &QueuedTask) {
        self.admit(t);
    }

    fn on_pop(&self, t: &QueuedTask) {
        let mut s = self.lock();
        let expected = match &mut s.model {
            Model::Fifo(q) => {
                let expected = q.front().copied();
                // Remove the popped seq wherever it sits so one bad pop
                // yields one violation, not a cascade.
                if let Some(pos) = q.iter().position(|&seq| seq == t.seq) {
                    q.remove(pos);
                }
                expected
            }
            Model::Edf(set) => {
                let expected = set.iter().next().map(|&(_, seq)| seq);
                set.remove(&(edf_key(t), t.seq));
                expected
            }
            Model::Wfq(map) => {
                let q = map.entry(t.tenant).or_default();
                let expected = q.front().copied();
                if let Some(pos) = q.iter().position(|&seq| seq == t.seq) {
                    q.remove(pos);
                }
                expected
            }
        };
        // A pop the mirror never saw pushed (expected = None) is also a
        // contract breach; report it against the popped seq itself.
        let expected = expected.unwrap_or(t.seq.wrapping_add(1));
        if expected != t.seq {
            if s.violations.len() < MAX_VIOLATIONS {
                let policy = self.policy;
                s.violations.push(Violation::QosOrder {
                    policy,
                    expected,
                    got: t.seq,
                });
            } else {
                s.dropped += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimTime;
    use gpu_sim::WarpWork;
    use pagoda_core::TaskDesc;
    use pagoda_serve::{Edf, Fifo, QosScheduler, WeightedFair};

    fn qt(tenant: usize, seq: u64, deadline_us: Option<u64>) -> QueuedTask {
        QueuedTask {
            tenant,
            seq,
            arrival: SimTime::from_us(seq),
            admitted: SimTime::from_us(seq),
            deadline: deadline_us.map(SimTime::from_us),
            desc: TaskDesc::uniform(32, WarpWork::compute(100, 1.0)),
        }
    }

    /// Drive a real scheduler through the audit hooks, as the serving
    /// loop would.
    fn drive<S: QosScheduler>(sched: &mut S, audit: &QosCheck, tasks: Vec<QueuedTask>) {
        for t in tasks {
            audit.on_push(&t);
            sched.push(t);
        }
        while let Some(t) = sched.pop() {
            audit.on_pop(&t);
        }
    }

    #[test]
    fn real_fifo_is_clean() {
        let audit = QosCheck::fifo();
        drive(
            &mut Fifo::new(),
            &audit,
            (0..16).map(|s| qt(s as usize % 3, s, None)).collect(),
        );
        assert!(audit.is_clean(), "{:?}", audit.violations());
    }

    #[test]
    fn real_edf_is_clean() {
        let audit = QosCheck::edf();
        let tasks = vec![
            qt(0, 0, Some(300)),
            qt(1, 1, Some(100)),
            qt(0, 2, None),
            qt(1, 3, Some(100)),
        ];
        drive(&mut Edf::new(), &audit, tasks);
        assert!(audit.is_clean(), "{:?}", audit.violations());
    }

    #[test]
    fn real_wfq_is_clean() {
        let audit = QosCheck::weighted_fair();
        drive(
            &mut WeightedFair::new(&[3, 1]),
            &audit,
            (0..16).map(|s| qt((s % 2) as usize, s, None)).collect(),
        );
        assert!(audit.is_clean(), "{:?}", audit.violations());
    }

    #[test]
    fn lifo_pops_break_the_fifo_contract() {
        let audit = QosCheck::fifo();
        let a = qt(0, 0, None);
        let b = qt(0, 1, None);
        audit.on_push(&a);
        audit.on_push(&b);
        audit.on_pop(&b); // newest first: wrong
        audit.on_pop(&a); // mirror already removed b, so this is "clean"
        let v = audit.violations();
        assert_eq!(v.len(), 1);
        match v[0] {
            Violation::QosOrder { expected, got, .. } => {
                assert_eq!((expected, got), (0, 1));
            }
            ref other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn edf_flags_a_deadline_inversion() {
        let audit = QosCheck::edf();
        let urgent = qt(0, 0, Some(100));
        let lax = qt(0, 1, Some(900));
        audit.on_push(&urgent);
        audit.on_push(&lax);
        audit.on_pop(&lax);
        assert!(!audit.is_clean());
    }

    #[test]
    fn wfq_interleaving_is_free_but_tenant_order_is_not() {
        let audit = QosCheck::weighted_fair();
        let t0a = qt(0, 0, None);
        let t1a = qt(1, 1, None);
        let t0b = qt(0, 2, None);
        for t in [&t0a, &t1a, &t0b] {
            audit.on_push(t);
        }
        // Cross-tenant order is the policy's business...
        audit.on_pop(&t1a);
        // ...but within tenant 0, seq 2 before seq 0 is a breach.
        audit.on_pop(&t0b);
        assert_eq!(audit.violations().len(), 1);
    }

    #[test]
    fn requeue_reenters_as_newly_arrived() {
        let audit = QosCheck::fifo();
        let a = qt(0, 0, None);
        let b = qt(0, 1, None);
        audit.on_push(&a);
        audit.on_push(&b);
        audit.on_pop(&a);
        audit.on_requeue(&a); // dispatch raced capacity away
        audit.on_pop(&b); // b is now ahead of the requeued a
        audit.on_pop(&a);
        assert!(audit.is_clean(), "{:?}", audit.violations());
    }
}
