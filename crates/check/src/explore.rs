//! Deterministic schedule exploration: sweep fleet configurations and
//! fault schedules under the invariant checker, byte-compare serial vs
//! parallel drivers, and shrink failures to minimal reproducers.
//!
//! A [`Scenario`] is a complete, replayable description of one fleet
//! run — seed, topology, placement policy, run-ahead window, task
//! batch, and fault schedule. [`check_scenario`] runs it under both
//! drivers with a [`CheckRecorder`] attached and reports every
//! invariant violation plus any serial/parallel divergence.
//! [`shrink`] greedily reduces a failing scenario (drop faults, halve
//! the batch) to the smallest configuration that still fails, and
//! [`Scenario::replay_cli`] prints the exact `pagoda_check replay`
//! invocation that reproduces it.

use desim::{Dur, SimTime};
use gpu_sim::WarpWork;
use pagoda_cluster::{
    ClusterConfig, ClusterHandle, FaultKind, FaultSpec, Mutation, Placement, RetryPolicy,
};
use pagoda_core::{SubmitError, TaskDesc};

use crate::invariants::{CheckLimits, Violation};
use crate::recorder::CheckRecorder;

/// A complete, replayable fleet-run description.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Placement-sampling seed ([`ClusterConfig::seed`]).
    pub seed: u64,
    /// Fleet size.
    pub devices: usize,
    /// Routing policy.
    pub placement: Placement,
    /// Run-ahead window, microseconds.
    pub run_ahead_us: u64,
    /// Tasks submitted.
    pub tasks: usize,
    /// Tenants the batch round-robins over.
    pub tenants: u32,
    /// Home-set width ([`ClusterConfig::affinity_spread`]).
    pub spread: u32,
    /// Base device cycles per task; sizes vary deterministically around
    /// this so completions interleave across devices.
    pub base_cycles: u64,
    /// Submit attempts per task ([`RetryPolicy::Resubmit`]); 0 means
    /// [`RetryPolicy::Fail`].
    pub max_attempts: u32,
    /// Scheduled device faults.
    pub faults: Vec<FaultSpec>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            seed: 1,
            devices: 4,
            placement: Placement::LeastOutstanding,
            run_ahead_us: 20,
            tasks: 32,
            tenants: 4,
            spread: 1,
            base_cycles: 40_000,
            max_attempts: 3,
            faults: Vec::new(),
        }
    }
}

/// Stable CLI name of a placement policy.
pub fn placement_name(p: Placement) -> &'static str {
    match p {
        Placement::RoundRobin => "round-robin",
        Placement::LeastOutstanding => "least-outstanding",
        Placement::PowerOfTwo => "power-of-two",
        Placement::TenantAffinity => "tenant-affinity",
    }
}

/// Inverse of [`placement_name`].
pub fn parse_placement(s: &str) -> Option<Placement> {
    Some(match s {
        "round-robin" => Placement::RoundRobin,
        "least-outstanding" => Placement::LeastOutstanding,
        "power-of-two" => Placement::PowerOfTwo,
        "tenant-affinity" => Placement::TenantAffinity,
        _ => return None,
    })
}

/// `kill@US:DEV` or `slow@US:DEV:FACTOR` — the `--fault` argument form.
pub fn fault_arg(f: &FaultSpec) -> String {
    let us = f.at.as_ps() / 1_000_000;
    match f.kind {
        FaultKind::Kill => format!("kill@{us}:{}", f.device),
        FaultKind::Slow { factor } => format!("slow@{us}:{}:{factor}", f.device),
    }
}

/// Inverse of [`fault_arg`].
pub fn parse_fault(s: &str) -> Option<FaultSpec> {
    let (kind, rest) = s.split_once('@')?;
    let mut parts = rest.split(':');
    let at = SimTime::from_us(parts.next()?.parse().ok()?);
    let device: usize = parts.next()?.parse().ok()?;
    let kind = match kind {
        "kill" => {
            if parts.next().is_some() {
                return None;
            }
            FaultKind::Kill
        }
        "slow" => {
            let factor: f64 = parts.next()?.parse().ok()?;
            if parts.next().is_some() || !factor.is_finite() || factor < 1.0 {
                return None;
            }
            FaultKind::Slow { factor }
        }
        _ => return None,
    };
    Some(FaultSpec { at, device, kind })
}

impl Scenario {
    /// The fleet configuration this scenario describes.
    pub fn cluster_config(&self, parallel: bool) -> ClusterConfig {
        let mut cfg = ClusterConfig::uniform(self.devices);
        cfg.placement = self.placement;
        cfg.seed = self.seed;
        cfg.affinity_spread = self.spread;
        cfg.run_ahead = Dur::from_us(self.run_ahead_us);
        cfg.parallel = parallel;
        cfg.faults = self.faults.clone();
        cfg.retry = if self.max_attempts == 0 {
            RetryPolicy::Fail
        } else {
            RetryPolicy::Resubmit {
                max_attempts: self.max_attempts,
            }
        };
        cfg
    }

    /// Task `i` of the batch: sizes cycle through five classes around
    /// [`base_cycles`](Scenario::base_cycles) so per-device completion
    /// times interleave (a uniform batch would finish in lockstep and
    /// never exercise the merge).
    pub fn task(&self, i: usize) -> TaskDesc {
        let cycles = self.base_cycles + (i % 5) as u64 * 70_000;
        let mut t = TaskDesc::uniform(64, WarpWork::compute(cycles, 4.0));
        t.input_bytes = 1024;
        t.output_bytes = 1024;
        t
    }

    /// The exact `pagoda_check replay` invocation reproducing this
    /// scenario.
    pub fn replay_cli(&self) -> String {
        let mut s = format!(
            "pagoda_check replay --devices {} --placement {} --seed {} \
             --run-ahead-us {} --tasks {} --tenants {} --spread {} \
             --base-cycles {} --max-attempts {}",
            self.devices,
            placement_name(self.placement),
            self.seed,
            self.run_ahead_us,
            self.tasks,
            self.tenants,
            self.spread,
            self.base_cycles,
            self.max_attempts,
        );
        for f in &self.faults {
            s.push_str(&format!(" --fault {}", fault_arg(f)));
        }
        s
    }
}

/// Everything one run produces that exploration cares about.
#[derive(Debug)]
pub struct RunOutcome {
    /// Invariant violations (including end-of-run conservation).
    pub violations: Vec<Violation>,
    /// Violations beyond the reporting cap.
    pub dropped: u64,
    /// Determinism fingerprint: recorder stream, per-task completion
    /// instants, engine stats, fleet report. Byte-identical across
    /// drivers for a correct fleet.
    pub fingerprint: String,
}

/// Runs one scenario under one driver, with the invariant checker
/// attached and an optional seeded [`Mutation`].
pub fn run_one(sc: &Scenario, mutation: Option<Mutation>, parallel: bool) -> RunOutcome {
    let cfg = sc.cluster_config(parallel);
    let limits = CheckLimits::of(&cfg.devices[0]);
    let (obs, rec) = CheckRecorder::recording(Some(limits));
    let mut fleet = ClusterHandle::new(cfg).expect("scenario config is valid");
    fleet.attach_obs(obs);
    if let Some(m) = mutation {
        fleet.inject_mutation(m);
    }
    let mut keys = Vec::with_capacity(sc.tasks);
    for i in 0..sc.tasks {
        let tenant = i as u32 % sc.tenants;
        let mut desc = sc.task(i);
        loop {
            match fleet.submit_for(tenant, desc) {
                Ok(k) => {
                    keys.push(k);
                    break;
                }
                Err(SubmitError::Full(d)) => {
                    fleet.sync();
                    if !fleet.capacity().has_room() {
                        let t = fleet.now() + Dur::from_us(20);
                        fleet.advance_to(t);
                    }
                    desc = d;
                }
                Err(e) => panic!("unspawnable scenario task: {e}"),
            }
        }
    }
    fleet.wait_all();
    let violations = rec.finish();
    let times: Vec<Option<u64>> = keys
        .iter()
        .map(|&k| fleet.completion_time(k).map(|t| t.as_ps()))
        .collect();
    let fingerprint = format!(
        "{}|{times:?}|{:?}|{:?}",
        rec.snapshot().to_json(),
        fleet.engine_stats(),
        fleet.report(),
    );
    RunOutcome {
        violations,
        dropped: rec.dropped(),
        fingerprint,
    }
}

/// One failed scenario check: what went wrong, phrased for a human.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Human-readable findings (violations and/or divergence).
    pub findings: Vec<String>,
}

/// Runs `sc` under the serial and the parallel driver, checks
/// invariants on both streams, and byte-compares the fingerprints.
/// Returns `None` when everything holds.
pub fn check_scenario(sc: &Scenario) -> Option<Failure> {
    let serial = run_one(sc, None, false);
    let parallel = run_one(sc, None, true);
    let mut findings = Vec::new();
    for (label, out) in [("serial", &serial), ("parallel", &parallel)] {
        for v in &out.violations {
            findings.push(format!("[{label}] {v}"));
        }
        if out.dropped > 0 {
            findings.push(format!("[{label}] (+{} more violations)", out.dropped));
        }
    }
    if serial.fingerprint != parallel.fingerprint {
        findings.push(
            "serial and parallel drivers diverged (recorder stream / completion \
             times / engine stats / report are not byte-identical)"
                .to_string(),
        );
    }
    if findings.is_empty() {
        None
    } else {
        Some(Failure { findings })
    }
}

/// Greedy delta-debugging shrink: starting from a scenario on which
/// `fails` holds, repeatedly drop single faults and halve the batch
/// while the failure persists. Returns the smallest still-failing
/// scenario found. `fails` is re-evaluated on every candidate, so it
/// must be deterministic (every run here is).
pub fn shrink(sc: &Scenario, fails: &dyn Fn(&Scenario) -> bool) -> Scenario {
    debug_assert!(fails(sc), "shrink needs a failing scenario");
    let mut best = sc.clone();
    let mut progress = true;
    while progress {
        progress = false;
        // Drop one fault at a time.
        for i in 0..best.faults.len() {
            let mut cand = best.clone();
            cand.faults.remove(i);
            if fails(&cand) {
                best = cand;
                progress = true;
                break;
            }
        }
        if progress {
            continue;
        }
        // Halve the batch.
        if best.tasks > 1 {
            let mut cand = best.clone();
            cand.tasks /= 2;
            if fails(&cand) {
                best = cand;
                progress = true;
            }
        }
    }
    best
}

/// The scenario grid of one exploration run.
pub fn sweep_scenarios(extended: bool) -> Vec<Scenario> {
    let mut out = Vec::new();
    if extended {
        // Full cross-product: seeds x placements x windows x fault
        // schedules. Small batches keep each run cheap; the coverage is
        // in the combinations, not the batch size.
        for seed in [1, 2, 3] {
            for placement in [
                Placement::RoundRobin,
                Placement::LeastOutstanding,
                Placement::PowerOfTwo,
                Placement::TenantAffinity,
            ] {
                for run_ahead_us in [3, 5, 20] {
                    for faults in fault_schedules() {
                        out.push(Scenario {
                            seed,
                            placement,
                            run_ahead_us,
                            tasks: 24,
                            faults,
                            ..Scenario::default()
                        });
                    }
                }
            }
        }
    } else {
        // Smoke: one representative of each interesting axis.
        out.push(Scenario::default());
        out.push(Scenario {
            placement: Placement::RoundRobin,
            spread: 4,
            ..Scenario::default()
        });
        out.push(Scenario {
            placement: Placement::PowerOfTwo,
            seed: 0xb17e,
            run_ahead_us: 5,
            faults: vec![kill(40, 2)],
            ..Scenario::default()
        });
        out.push(Scenario {
            placement: Placement::TenantAffinity,
            run_ahead_us: 7,
            faults: vec![slow(15, 1, 4.0)],
            ..Scenario::default()
        });
        out.push(Scenario {
            devices: 2,
            tasks: 24,
            max_attempts: 0,
            faults: vec![kill(10, 0)],
            ..Scenario::default()
        });
        out.push(Scenario {
            devices: 3,
            run_ahead_us: 5,
            base_cycles: 200_000,
            faults: vec![slow(5, 0, 8.0), kill(60, 2)],
            ..Scenario::default()
        });
    }
    out
}

fn fault_schedules() -> Vec<Vec<FaultSpec>> {
    vec![
        Vec::new(),
        vec![kill(40, 2)],
        vec![slow(10, 1, 8.0)],
        vec![slow(5, 0, 4.0), kill(50, 3)],
    ]
}

/// `kill@us:device` as a [`FaultSpec`].
pub fn kill(us: u64, device: usize) -> FaultSpec {
    FaultSpec {
        at: SimTime::from_us(us),
        device,
        kind: FaultKind::Kill,
    }
}

/// `slow@us:device:factor` as a [`FaultSpec`].
pub fn slow(us: u64, device: usize, factor: f64) -> FaultSpec {
    FaultSpec {
        at: SimTime::from_us(us),
        device,
        kind: FaultKind::Slow { factor },
    }
}

/// Outcome of [`explore`]: scenarios checked and shrunk reproducers for
/// every failure.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Scenarios checked (each runs twice: serial + parallel).
    pub checked: usize,
    /// `(shrunk scenario, findings)` per failing scenario.
    pub failures: Vec<(Scenario, Vec<String>)>,
}

/// Runs the exploration sweep, shrinking every failure to a minimal
/// reproducer. `progress` receives one line per scenario.
pub fn explore(extended: bool, mut progress: impl FnMut(&str)) -> ExploreOutcome {
    let scenarios = sweep_scenarios(extended);
    let total = scenarios.len();
    let mut failures = Vec::new();
    for (i, sc) in scenarios.iter().enumerate() {
        match check_scenario(sc) {
            None => progress(&format!("[{}/{total}] ok: {}", i + 1, sc.replay_cli())),
            Some(fail) => {
                progress(&format!(
                    "[{}/{total}] FAIL ({} finding(s)): {}",
                    i + 1,
                    fail.findings.len(),
                    sc.replay_cli()
                ));
                let shrunk = shrink(sc, &|cand| check_scenario(cand).is_some());
                let findings = check_scenario(&shrunk)
                    .map(|f| f.findings)
                    .unwrap_or_else(|| fail.findings.clone());
                progress(&format!("    minimal reproducer: {}", shrunk.replay_cli()));
                failures.push((shrunk, findings));
            }
        }
    }
    ExploreOutcome {
        checked: total,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_args_round_trip() {
        for f in [kill(40, 2), slow(5, 0, 8.0)] {
            assert_eq!(parse_fault(&fault_arg(&f)), Some(f));
        }
        assert_eq!(parse_fault("melt@3:0"), None);
        assert_eq!(parse_fault("slow@3:0:0.5"), None);
        assert_eq!(parse_fault("kill@3:0:9"), None);
    }

    #[test]
    fn placement_names_round_trip() {
        for p in [
            Placement::RoundRobin,
            Placement::LeastOutstanding,
            Placement::PowerOfTwo,
            Placement::TenantAffinity,
        ] {
            assert_eq!(parse_placement(placement_name(p)), Some(p));
        }
        assert_eq!(parse_placement("random"), None);
    }

    #[test]
    fn clean_scenario_checks_clean() {
        let sc = Scenario {
            tasks: 16,
            ..Scenario::default()
        };
        assert!(check_scenario(&sc).is_none());
    }

    #[test]
    fn kill_scenario_checks_clean() {
        let sc = Scenario {
            run_ahead_us: 5,
            placement: Placement::PowerOfTwo,
            faults: vec![kill(40, 2)],
            ..Scenario::default()
        };
        assert!(check_scenario(&sc).is_none());
    }

    #[test]
    fn shrink_reaches_a_minimal_failing_scenario() {
        // A synthetic failure predicate: "fails" iff the schedule still
        // contains the kill on device 1 and at least 4 tasks. Shrink
        // must strip the irrelevant faults and halve 32 -> 4.
        let sc = Scenario {
            tasks: 32,
            faults: vec![slow(1, 0, 2.0), kill(10, 1), slow(20, 2, 4.0)],
            ..Scenario::default()
        };
        let fails = |c: &Scenario| {
            c.tasks >= 4
                && c.faults
                    .iter()
                    .any(|f| f.device == 1 && f.kind == FaultKind::Kill)
        };
        let min = shrink(&sc, &fails);
        assert_eq!(min.faults.len(), 1);
        assert_eq!(min.tasks, 4);
    }
}
