//! pagoda-check — online invariant checking and deterministic schedule
//! exploration for the Pagoda workspace.
//!
//! The workspace's determinism story ("same seed, byte-identical
//! results") makes every run a potential test oracle; this crate turns
//! that into machinery:
//!
//! * [`CheckCore`] / [`CheckRecorder`] — an invariant state machine fed
//!   by the observability stream, packaged as a [`pagoda_obs::Recorder`]
//!   tee so it drops into any `attach_obs` site without perturbing the
//!   stream it checks. Validated on every lifecycle event: task
//!   conservation, SMM/MTB capacity ceilings, dead devices staying
//!   dead, sorted-merge order, the causal-harvest gate, and staging
//!   accounting. See `DESIGN.md` §14 for the catalog.
//! * [`QosCheck`] — a [`pagoda_serve::QosAudit`] mirroring each queue
//!   discipline (FIFO arrival order, EDF deadline order, per-tenant
//!   order under weighted fairness) and flagging contract breaches.
//! * [`explore`] — a schedule-exploration driver sweeping seeds,
//!   placement policies, run-ahead windows, and kill/slow fault
//!   schedules; every scenario runs under the serial *and* parallel
//!   fleet driver, byte-compared, with failures shrunk to minimal
//!   reproducers replayable via `pagoda_check replay`.
//! * [`mutation_smoke`] — seeds known bugs ([`pagoda_cluster::Mutation`])
//!   into tailored scenarios and asserts the checker flags each: the
//!   checker is itself under test.
//!
//! The `pagoda_check` binary fronts all of it for CI (`ci.sh` runs the
//! smoke sweep and the mutation gate on every push; set
//! `PAGODA_CHECK_EXTENDED=1` for the full cross-product).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod invariants;
pub mod qos;
pub mod recorder;
pub mod smoke;

pub use explore::{
    check_scenario, explore, fault_arg, kill, parse_fault, parse_placement, placement_name,
    run_one, shrink, slow, sweep_scenarios, ExploreOutcome, Failure, RunOutcome, Scenario,
};
pub use invariants::{CheckCore, CheckLimits, Violation, MAX_VIOLATIONS};
pub use qos::QosCheck;
pub use recorder::CheckRecorder;
pub use smoke::{mutation_smoke, smoke_case, SmokeResult};
