//! [`CheckRecorder`]: the online checker as an observability tee.
//!
//! Implements [`Recorder`] so it drops into any `attach_obs` site: each
//! event is validated by a [`CheckCore`] and then forwarded verbatim to
//! an inner [`MemRecorder`], so the buffered stream is byte-identical
//! to what a plain recorder would have captured — attaching the checker
//! never perturbs the determinism fingerprint it is checking.
//!
//! Parallel fleets fork per-device buffers and join them back in device
//! order (the default [`Recorder::fork`]/[`Recorder::join`]); the
//! checker inherits that, so forked events reach [`CheckCore`] at join
//! time in the same deterministic order a serial run produces, and the
//! checker sees one canonical stream under either driver.

use std::sync::{Arc, Mutex};

use pagoda_obs::{
    Counter, DeviceSample, MtbSample, Obs, ObsBuffer, Recorder, SmmSample, SyncMark, TaskEvent,
    TaskMark, TaskRoute, TenantTag,
};

use crate::invariants::{CheckCore, CheckLimits, Violation};

/// A [`Recorder`] that checks every event against the invariant catalog
/// and tees it into an inner [`pagoda_obs::MemRecorder`].
#[derive(Debug)]
pub struct CheckRecorder {
    inner: pagoda_obs::MemRecorder,
    core: Mutex<CheckCore>,
}

impl CheckRecorder {
    /// A checking recorder plus the [`Obs`] handle to attach. Pass
    /// [`CheckLimits`] to enable the capacity invariants.
    pub fn recording(limits: Option<CheckLimits>) -> (Obs, Arc<CheckRecorder>) {
        let rec = Arc::new(CheckRecorder {
            inner: pagoda_obs::MemRecorder::new(),
            core: Mutex::new(CheckCore::new(limits)),
        });
        (Obs::new(rec.clone()), rec)
    }

    fn core(&self) -> std::sync::MutexGuard<'_, CheckCore> {
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The buffered stream, exactly as a plain recorder would hold it.
    pub fn snapshot(&self) -> ObsBuffer {
        self.inner.snapshot()
    }

    /// Runs the end-of-run conservation checks and returns every
    /// violation found over the whole stream. Call after the run
    /// completes (e.g. after `wait_all`).
    pub fn finish(&self) -> Vec<Violation> {
        let mut core = self.core();
        core.finish();
        core.violations().to_vec()
    }

    /// Violations found so far, without the end-of-run checks.
    pub fn violations(&self) -> Vec<Violation> {
        self.core().violations().to_vec()
    }

    /// Violations beyond the reporting cap, counted but not stored.
    pub fn dropped(&self) -> u64 {
        self.core().dropped()
    }

    /// Whether the stream has been clean so far.
    pub fn is_clean(&self) -> bool {
        self.core().is_clean()
    }
}

impl Recorder for CheckRecorder {
    fn task(&self, ev: TaskEvent) {
        self.core().on_task(ev);
        self.inner.task(ev);
    }

    fn tenant(&self, tag: TenantTag) {
        self.inner.tenant(tag);
    }

    fn mark(&self, m: TaskMark) {
        self.core().on_mark(m);
        self.inner.mark(m);
    }

    fn route(&self, r: TaskRoute) {
        self.inner.route(r);
    }

    fn smm(&self, s: SmmSample) {
        self.core().on_smm(s);
        self.inner.smm(s);
    }

    fn mtb(&self, s: MtbSample) {
        self.core().on_mtb(s);
        self.inner.mtb(s);
    }

    fn device(&self, s: DeviceSample) {
        self.core().on_device(s);
        self.inner.device(s);
    }

    fn sync_mark(&self, m: SyncMark) {
        self.core().on_sync_mark(m);
        self.inner.sync_mark(m);
    }

    fn count(&self, c: Counter, delta: u64) {
        self.core().on_count(c, delta);
        self.inner.count(c, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagoda_obs::TaskState;

    #[test]
    fn tee_preserves_the_buffered_stream() {
        let (plain, plain_rec) = Obs::recording();
        let (checked, check_rec) = CheckRecorder::recording(None);
        for obs in [&plain, &checked] {
            obs.task(1, 0, TaskState::Spawned);
            obs.task(9, 0, TaskState::Freed);
            obs.count(Counter::TasksSpawned, 1);
            obs.sync_mark(9, pagoda_obs::SyncKind::Sync);
        }
        assert_eq!(
            plain_rec.snapshot().to_json(),
            check_rec.snapshot().to_json()
        );
        assert!(check_rec.finish().is_empty());
    }

    #[test]
    fn fork_join_checks_in_join_order() {
        let (obs, rec) = CheckRecorder::recording(None);
        obs.task(0, 0, TaskState::Spawned);
        obs.task(0, 1, TaskState::Spawned);
        let f0 = obs.fork();
        let f1 = obs.fork();
        // Events land in forks "out of order" (as worker threads would
        // produce them); joining in device order restores the canonical
        // stream, so the checker sees a clean lifecycle.
        f1.obs().task(20, 1, TaskState::Freed);
        f0.obs().task(10, 0, TaskState::Freed);
        obs.join(f0);
        obs.join(f1);
        assert!(rec.finish().is_empty(), "{:?}", rec.violations());
        assert_eq!(rec.snapshot().tasks.len(), 4);
    }

    #[test]
    fn violations_surface_through_the_obs_handle() {
        let (obs, rec) = CheckRecorder::recording(None);
        obs.task(5, 42, TaskState::Running); // never spawned
        assert!(!rec.is_clean());
        assert_eq!(rec.violations().len(), 1);
    }
}
