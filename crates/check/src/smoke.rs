//! Mutation smoke: prove the checker can actually catch bugs.
//!
//! A checker that silently passes everything is worse than none. This
//! module seeds each known [`Mutation`] into a fleet run tailored to
//! trip exactly that bug and asserts the invariant checker flags it —
//! and that the *same* scenario runs clean without the mutation, so a
//! flag means detection, not a noisy scenario.
//!
//! | mutation               | scenario shape                          | expected violation        |
//! |------------------------|-----------------------------------------|---------------------------|
//! | `skip_merge_sort`      | 3 devices, varied task sizes, all-home  | [`Violation::MergeOrder`] |
//! | `double_charge_staging`| spread 1, round-robin off-home spawns   | [`Violation::StagingOverCharge`] |
//! | `drop_resubmit`        | kill mid-flight under `Resubmit`        | [`Violation::ConservationLeak`] |
//! | `skip_causal_gate`     | slowed device, long tasks, tight window | [`Violation::CausalityBreach`] |

use pagoda_cluster::{Mutation, Placement};

use crate::explore::{kill, run_one, slow, Scenario};
use crate::invariants::Violation;

/// The scenario tuned to trip `m`, and a predicate recognizing the
/// violation the checker must raise for it.
pub fn smoke_case(m: Mutation) -> (Scenario, fn(&Violation) -> bool) {
    match m {
        // All-home (spread = devices) so no staging noise; round-robin
        // spreads the five task-size classes across devices, so one
        // sync batch harvests interleaved completion times — exactly
        // what the sorted merge exists for.
        Mutation::SkipMergeSort => (
            Scenario {
                devices: 3,
                placement: Placement::RoundRobin,
                spread: 3,
                tasks: 48,
                tenants: 1,
                ..Scenario::default()
            },
            |v| matches!(v, Violation::MergeOrder { .. }),
        ),
        // One tenant homed on a single device: every round-robin
        // placement off device 0 stages state, and the first
        // double-charged transfer pushes staged past off-affinity.
        Mutation::DoubleChargeStaging => (
            Scenario {
                devices: 4,
                placement: Placement::RoundRobin,
                spread: 1,
                tasks: 16,
                tenants: 1,
                ..Scenario::default()
            },
            |v| matches!(v, Violation::StagingOverCharge { .. }),
        ),
        // Long tasks guarantee in-flight work when the kill lands; the
        // mutation silently discards one stranded task, which only
        // end-of-run conservation can see.
        Mutation::DropResubmit => (
            Scenario {
                devices: 2,
                tasks: 24,
                base_cycles: 200_000,
                max_attempts: 3,
                faults: vec![kill(5, 0)],
                ..Scenario::default()
            },
            |v| matches!(v, Violation::ConservationLeak { .. }),
        ),
        // An 8x-slowed device maps its run-ahead window far into the
        // fleet's future; with the harvest gate off, its completions
        // become fleet-visible past the sync instant.
        Mutation::SkipCausalGate => (
            Scenario {
                devices: 2,
                run_ahead_us: 20,
                tasks: 16,
                base_cycles: 2_000_000,
                faults: vec![slow(2, 1, 8.0)],
                ..Scenario::default()
            },
            |v| matches!(v, Violation::CausalityBreach { .. }),
        ),
    }
}

/// Result of one mutation-smoke case.
#[derive(Debug)]
pub struct SmokeResult {
    /// The seeded mutation.
    pub mutation: Mutation,
    /// The scenario it ran under.
    pub scenario: Scenario,
    /// Whether the unmutated run was violation-free (it must be).
    pub baseline_clean: bool,
    /// Whether the mutated run raised the expected violation class.
    pub detected: bool,
    /// Every violation the mutated run raised, rendered.
    pub findings: Vec<String>,
}

impl SmokeResult {
    /// Baseline clean *and* mutant detected.
    pub fn pass(&self) -> bool {
        self.baseline_clean && self.detected
    }
}

/// Runs every known mutation through its tailored scenario. The serial
/// driver is used throughout: mutations model fleet-logic bugs, not
/// thread-scheduling ones, and serial runs keep the smoke fast.
pub fn mutation_smoke() -> Vec<SmokeResult> {
    Mutation::ALL
        .iter()
        .map(|&m| {
            let (scenario, expected) = smoke_case(m);
            let baseline = run_one(&scenario, None, false);
            let mutated = run_one(&scenario, Some(m), false);
            SmokeResult {
                mutation: m,
                baseline_clean: baseline.violations.is_empty() && baseline.dropped == 0,
                detected: mutated.violations.iter().any(expected),
                findings: mutated.violations.iter().map(|v| v.to_string()).collect(),
                scenario,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seeded_mutation_is_detected() {
        for r in mutation_smoke() {
            assert!(
                r.baseline_clean,
                "{}: unmutated scenario must run clean: {:?}",
                r.mutation.name(),
                r.findings
            );
            assert!(
                r.detected,
                "{}: checker missed the seeded bug (saw: {:?})",
                r.mutation.name(),
                r.findings
            );
        }
    }
}
