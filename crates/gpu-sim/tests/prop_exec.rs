//! Property tests of the device simulator: resource conservation, timing
//! bounds, and completion guarantees for arbitrary kernel soups.

use gpu_arch::TaskShape;
use gpu_sim::{DeviceConfig, GpuDevice, KernelDesc, Notify, WarpWork};
use proptest::prelude::*;

fn quiet() -> DeviceConfig {
    let mut c = DeviceConfig::titan_x();
    c.launch_issue_cost = desim::Dur::from_ps(0);
    c
}

#[derive(Debug, Clone)]
struct KSpec {
    threads: u32,
    tbs: u32,
    instrs: u64,
    cpi_tenths: u32,
    smem_kb: u32,
}

fn arb_kernel() -> impl Strategy<Value = KSpec> {
    (1u32..=1024, 1u32..=8, 0u64..500_000, 10u32..200, 0u32..=48).prop_map(
        |(threads, tbs, instrs, cpi_tenths, smem_kb)| KSpec {
            threads,
            tbs,
            instrs,
            cpi_tenths,
            smem_kb,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn every_launched_kernel_completes(specs in prop::collection::vec(arb_kernel(), 1..24)) {
        let mut dev = GpuDevice::new(quiet());
        let mut launched = Vec::new();
        for (i, s) in specs.iter().enumerate() {
            let shape = TaskShape {
                threads_per_tb: s.threads,
                num_tbs: s.tbs,
                regs_per_thread: 32,
                smem_per_tb: s.smem_kb * 1024,
            };
            let k = KernelDesc::uniform(
                shape,
                WarpWork::compute(s.instrs, f64::from(s.cpi_tenths) / 10.0),
                i as u64,
            );
            if dev.launch_kernel(k).is_ok() {
                launched.push(i as u64);
            }
        }
        let mut done = Vec::new();
        while let Some((_, batch)) = dev.step() {
            for n in batch {
                if let Notify::KernelDone { tag } = n {
                    done.push(tag);
                }
            }
        }
        done.sort_unstable();
        prop_assert_eq!(done, launched, "every accepted kernel must retire");
    }

    #[test]
    fn makespan_bounded_by_serial_and_ideal(specs in prop::collection::vec(arb_kernel(), 1..12)) {
        // The device can never beat perfect issue-bound parallelism, nor
        // be slower than running every warp alone back to back.
        let mut dev = GpuDevice::new(quiet());
        let mut total_work = 0f64;       // thread-instructions
        let mut serial_bound = 0f64;     // seconds
        for (i, s) in specs.iter().enumerate() {
            let cpi = f64::from(s.cpi_tenths) / 10.0;
            let shape = TaskShape {
                threads_per_tb: s.threads,
                num_tbs: s.tbs,
                regs_per_thread: 32,
                smem_per_tb: 0,
            };
            let warps = shape.total_warps() as f64;
            total_work += warps * s.instrs as f64;
            serial_bound += warps * (s.instrs as f64 * cpi / 32.0 / 1e9);
            let k = KernelDesc::uniform(shape, WarpWork::compute(s.instrs, cpi), i as u64);
            prop_assume!(dev.launch_kernel(k).is_ok());
        }
        while dev.step().is_some() {}
        let t = dev.now().as_secs_f64();
        let ideal = total_work / (24.0 * 128e9);
        prop_assert!(t + 1e-12 >= ideal, "t={t} ideal={ideal}");
        prop_assert!(t <= serial_bound + 1e-6, "t={t} serial={serial_bound}");
    }

    #[test]
    fn occupancy_metrics_stay_in_range(specs in prop::collection::vec(arb_kernel(), 1..10)) {
        let mut dev = GpuDevice::new(quiet());
        for (i, s) in specs.iter().enumerate() {
            let shape = TaskShape {
                threads_per_tb: s.threads,
                num_tbs: s.tbs,
                regs_per_thread: 32,
                smem_per_tb: 0,
            };
            let k = KernelDesc::uniform(shape, WarpWork::compute(s.instrs, 4.0), i as u64);
            let _ = dev.launch_kernel(k);
        }
        while dev.step().is_some() {}
        let run = dev.avg_running_occupancy();
        let res = dev.avg_resident_occupancy();
        prop_assert!((0.0..=1.0).contains(&run));
        prop_assert!((0.0..=1.0).contains(&res));
        prop_assert!(run <= res + 1e-9, "running {run} cannot exceed resident {res}");
    }
}
