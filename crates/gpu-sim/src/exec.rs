//! The processor-sharing warp execution engine.
//!
//! Each SMM executes its *running* warps under a bounded fair-share model.
//! A warp alone on an SMM cannot issue faster than its own dependency/
//! latency structure allows (one warp-instruction per `CPI` cycles); the SMM
//! as a whole cannot issue more than `issue_width` warp-instructions per
//! cycle. With `W` running warps, each executes at
//!
//! ```text
//! rate = min( 32·f / CPI ,  issue_width·32·f / W )   thread-instr / s
//! ```
//!
//! This is the minimal model that reproduces the paper's utilization story:
//! a narrow task's few warps leave the SMM latency-bound (adding warps is
//! free), while a full complement of 64 warps saturates issue bandwidth.
//! Unused share of latency-bound warps is *not* redistributed to others —
//! a deliberate simplification that slightly underestimates mixed-CPI
//! throughput and affects all runtimes equally.
//!
//! Completion times are predicted per SMM and re-predicted whenever the
//! running set changes (warp assigned, finished, blocked on or released
//! from a barrier). Between events, remaining work decreases linearly, so
//! prediction is exact.

use desim::SimTime;
use gpu_arch::{GpuSpec, WARP_SIZE};

use crate::work::{Segment, WarpWork};

/// Handle to a warp context. Stable for the warp's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WarpHandle(pub(crate) u32);

/// Handle to a barrier group (the set of warps that synchronize together —
/// a hardware threadblock, or a Pagoda task-threadblock inside an MTB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupId(pub(crate) u32);

/// Remaining-work threshold below which a warp counts as finished
/// (thread-instructions). Absorbs floating-point dust from rate arithmetic.
const EPS: f64 = 1e-3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpState {
    /// No assignment; consumes no issue bandwidth (an executor warp spinning
    /// on its `exec` flag, or a retired-but-not-freed native warp).
    Idle,
    /// Executing a compute segment; member of the SMM running set.
    Running,
    /// Arrived at a barrier, waiting for the rest of its group.
    AtBarrier,
}

#[derive(Debug)]
struct WarpCtx {
    sm: u32,
    state: WarpState,
    segments: Vec<Segment>,
    /// Index of the current segment.
    cur: usize,
    /// Thread-instructions left in the current compute segment.
    remaining: f64,
    cpi: f64,
    /// Latency-bound issue rate for the current assignment,
    /// thread-instructions per picosecond (`32·f / CPI`, precomputed at
    /// assign time so the advance loop does no divisions).
    r_single: f64,
    group: Option<GroupId>,
    /// Caller correlation tag for the current assignment.
    tag: u64,
    /// Live (not retired).
    alive: bool,
}

#[derive(Debug)]
struct GroupCtx {
    members: Vec<WarpHandle>,
    /// Members currently waiting at the barrier.
    arrived: u32,
    /// Members that have completed their current assignment.
    finished: u32,
    alive: bool,
}

#[derive(Debug, Default)]
struct SmExec {
    running: Vec<WarpHandle>,
    last_advance: SimTime,
    /// Fair-share issue cap per running warp, thread-instructions per
    /// picosecond — `issue_width·32·f / |running|`, refreshed whenever
    /// the running set changes so the advance and prediction loops
    /// never recompute the denominator. Infinite while nothing runs.
    cap: f64,
    /// Integral of |running| over time, warp·ps.
    running_integral: f64,
    /// Time with ≥1 running warp, ps.
    busy_ps: u64,
}

/// Utilization integrals for one SMM (or summed over the device).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ExecStats {
    /// ∫ |running warps| dt, in warp·picoseconds.
    pub running_warp_ps: f64,
    /// Time with at least one running warp, picoseconds.
    pub busy_ps: u64,
}

/// All execution state: warp arena, barrier groups, per-SMM engines.
#[derive(Debug)]
pub struct ExecState {
    warps: Vec<WarpCtx>,
    groups: Vec<GroupCtx>,
    sms: Vec<SmExec>,
    /// `issue_width·32·f / 1000`: the SMM issue bandwidth in
    /// thread-instructions per picosecond, the numerator of every
    /// fair-share cap. Evaluated in the same operation order the inline
    /// expression used, so cached rates stay bit-identical.
    cap_base: f64,
    /// `32·f`: numerator of the latency-bound per-warp rate.
    rs_base: f64,
    /// Warps finished since the last [`ExecState::drain_finished`] call,
    /// as `(warp, tag)` in completion order.
    finished: Vec<(WarpHandle, u64)>,
}

impl ExecState {
    pub fn new(spec: &GpuSpec) -> Self {
        ExecState {
            warps: Vec::new(),
            groups: Vec::new(),
            sms: (0..spec.num_sms).map(|_| SmExec::default()).collect(),
            cap_base: spec.issue_width() as f64 * WARP_SIZE as f64 * spec.clock_ghz / 1000.0,
            rs_base: WARP_SIZE as f64 * spec.clock_ghz,
            finished: Vec::new(),
        }
    }

    /// Creates an idle warp resident on `sm`.
    pub fn create_warp(&mut self, sm: u32) -> WarpHandle {
        assert!((sm as usize) < self.sms.len(), "SM index out of range");
        let h = WarpHandle(self.warps.len() as u32);
        self.warps.push(WarpCtx {
            sm,
            state: WarpState::Idle,
            segments: Vec::new(),
            cur: 0,
            remaining: 0.0,
            cpi: 1.0,
            r_single: 0.0,
            group: None,
            tag: 0,
            alive: true,
        });
        h
    }

    /// Retires a warp. It must be idle (hardware cannot reclaim a warp slot
    /// mid-flight).
    pub fn retire_warp(&mut self, w: WarpHandle) {
        let ctx = &mut self.warps[w.0 as usize];
        assert!(ctx.alive, "double retire of {w:?}");
        assert_eq!(ctx.state, WarpState::Idle, "retiring a non-idle warp");
        ctx.alive = false;
        ctx.group = None;
    }

    /// SMM a warp resides on.
    pub fn warp_sm(&self, w: WarpHandle) -> u32 {
        self.warps[w.0 as usize].sm
    }

    /// Creates a barrier group over `members`. All members must reside on
    /// the same SMM (groups model intra-threadblock synchronization).
    pub fn create_group(&mut self, members: &[WarpHandle]) -> GroupId {
        assert!(!members.is_empty(), "empty barrier group");
        let sm = self.warps[members[0].0 as usize].sm;
        for m in members {
            let c = &self.warps[m.0 as usize];
            assert!(c.alive, "group member {m:?} is retired");
            assert_eq!(c.sm, sm, "barrier group spans SMMs");
        }
        let g = GroupId(self.groups.len() as u32);
        self.groups.push(GroupCtx {
            members: members.to_vec(),
            arrived: 0,
            finished: 0,
            alive: true,
        });
        for m in members {
            let c = &mut self.warps[m.0 as usize];
            assert!(c.group.is_none(), "warp {m:?} already in a group");
            c.group = Some(g);
        }
        g
    }

    /// Dissolves a group. Every member must have finished its assignment.
    pub fn release_group(&mut self, g: GroupId) {
        let ctx = &mut self.groups[g.0 as usize];
        assert!(ctx.alive, "double release of {g:?}");
        assert_eq!(
            ctx.finished as usize,
            ctx.members.len(),
            "releasing group with unfinished members"
        );
        ctx.alive = false;
        let members = std::mem::take(&mut ctx.members);
        for m in members {
            self.warps[m.0 as usize].group = None;
        }
    }

    /// Assigns `work` to an idle warp at time `now`. Completion is reported
    /// by [`ExecState::drain_finished`] with `tag`.
    ///
    /// The caller must have advanced the warp's SMM to `now` first (the
    /// device layer does this); the assertion enforces it.
    pub fn assign(&mut self, now: SimTime, w: WarpHandle, work: WarpWork, tag: u64) {
        let ctx = &mut self.warps[w.0 as usize];
        assert!(ctx.alive, "assigning to retired warp {w:?}");
        assert_eq!(ctx.state, WarpState::Idle, "warp {w:?} already has work");
        let sm = ctx.sm;
        assert_eq!(
            self.sms[sm as usize].last_advance, now,
            "SM {sm} not advanced to now before assign"
        );
        if work.barrier_count() > 0 {
            assert!(
                ctx.group.is_some(),
                "work with barriers assigned to warp {w:?} outside any group"
            );
        }
        let rs_base = self.rs_base;
        let ctx = &mut self.warps[w.0 as usize];
        ctx.segments = work.segments;
        ctx.cpi = work.cpi;
        ctx.r_single = rs_base / work.cpi / 1000.0;
        ctx.cur = 0;
        ctx.remaining = 0.0;
        ctx.tag = tag;
        ctx.state = WarpState::Running; // provisional; step() settles it
        self.sms[sm as usize].running.push(w);
        self.refresh_cap(sm);
        // Enter the first segment (may immediately block or even finish).
        self.settle(now, w);
    }

    /// Advances SMM `sm` to `now`, integrating work and utilization.
    pub fn advance_sm(&mut self, sm: u32, now: SimTime) {
        // Split-borrow: the SMM entry and the warp arena are disjoint
        // fields, so the running set is iterated in place (no clone).
        let ExecState { warps, sms, .. } = self;
        let sme = &mut sms[sm as usize];
        let dt = now.saturating_since(sme.last_advance).as_ps();
        if dt == 0 {
            sme.last_advance = now;
            return;
        }
        let nrun = sme.running.len();
        sme.running_integral += nrun as f64 * dt as f64;
        if nrun > 0 {
            sme.busy_ps += dt;
            let cap = sme.cap;
            for &w in &sme.running {
                let c = &mut warps[w.0 as usize];
                let rate = c.r_single.min(cap);
                c.remaining -= rate * dt as f64;
            }
        }
        sme.last_advance = now;
    }

    /// After [`ExecState::advance_sm`], finishes every warp whose current
    /// segment is exhausted, cascading through barrier releases. Finished
    /// assignments are queued for [`ExecState::drain_finished`].
    pub fn process_completions(&mut self, sm: u32, now: SimTime) {
        debug_assert_eq!(self.sms[sm as usize].last_advance, now);
        // Collect exhausted warps in deterministic (handle) order.
        let mut exhausted: Vec<WarpHandle> = self.sms[sm as usize]
            .running
            .iter()
            .copied()
            .filter(|w| self.warps[w.0 as usize].remaining <= EPS)
            .collect();
        exhausted.sort();
        for w in exhausted {
            // The warp may have been re-settled by a cascade already.
            if self.warps[w.0 as usize].state == WarpState::Running
                && self.warps[w.0 as usize].remaining <= EPS
            {
                // `settle` removes the warp from the running set as part of
                // whatever transition the next segment dictates.
                self.warps[w.0 as usize].cur += 1;
                self.settle(now, w);
            }
        }
    }

    /// Earliest predicted completion on `sm`, given the current running
    /// set. `None` if nothing is running.
    pub fn next_completion(&self, sm: u32, now: SimTime) -> Option<SimTime> {
        let sme = &self.sms[sm as usize];
        debug_assert_eq!(sme.last_advance, now);
        if sme.running.is_empty() {
            return None;
        }
        let cap = sme.cap;
        let mut best = f64::INFINITY;
        for w in &sme.running {
            let c = &self.warps[w.0 as usize];
            let rate = c.r_single.min(cap);
            let dt = (c.remaining.max(0.0)) / rate;
            best = best.min(dt);
        }
        Some(now + desim::Dur::from_ps(best.ceil() as u64))
    }

    /// Number of running warps on `sm`.
    pub fn sm_running(&self, sm: u32) -> u32 {
        self.sms[sm as usize].running.len() as u32
    }

    /// Takes the queue of `(warp, tag)` assignment completions.
    pub fn drain_finished(&mut self) -> Vec<(WarpHandle, u64)> {
        std::mem::take(&mut self.finished)
    }

    /// Utilization integrals for one SMM.
    pub fn sm_stats(&self, sm: u32) -> ExecStats {
        let sme = &self.sms[sm as usize];
        ExecStats {
            running_warp_ps: sme.running_integral,
            busy_ps: sme.busy_ps,
        }
    }

    /// Utilization integrals summed over the device.
    pub fn total_stats(&self) -> ExecStats {
        let mut t = ExecStats::default();
        for sm in &self.sms {
            t.running_warp_ps += sm.running_integral;
            t.busy_ps += sm.busy_ps;
        }
        t
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Re-derives the cached fair-share cap after a running-set change.
    #[inline]
    fn refresh_cap(&mut self, sm: u32) {
        let sme = &mut self.sms[sm as usize];
        let nrun = sme.running.len();
        sme.cap = if nrun == 0 {
            f64::INFINITY
        } else {
            self.cap_base / nrun as f64
        };
    }

    fn leave_running(&mut self, w: WarpHandle) {
        let sm = self.warps[w.0 as usize].sm;
        let running = &mut self.sms[sm as usize].running;
        let pos = running
            .iter()
            .position(|x| *x == w)
            .expect("warp not in running set");
        running.swap_remove(pos);
        self.refresh_cap(sm);
    }

    /// Places warp `w` (whose `cur` points at the segment to enter) into
    /// the right state, cascading zero-length segments, barrier arrivals,
    /// and assignment completion. The warp is *not* in the running set on
    /// entry unless freshly assigned.
    fn settle(&mut self, now: SimTime, w: WarpHandle) {
        loop {
            let ctx = &mut self.warps[w.0 as usize];
            match ctx.segments.get(ctx.cur).copied() {
                Some(Segment::Compute(n)) if n > 0 => {
                    ctx.remaining = n as f64;
                    if ctx.state != WarpState::Running {
                        ctx.state = WarpState::Running;
                        let sm = ctx.sm;
                        self.sms[sm as usize].running.push(w);
                        self.refresh_cap(sm);
                    }
                    return;
                }
                Some(Segment::Compute(_)) => {
                    // zero-length: skip
                    ctx.cur += 1;
                }
                Some(Segment::Barrier) => {
                    let g = ctx.group.expect("barrier without group");
                    if ctx.state == WarpState::Running {
                        ctx.state = WarpState::AtBarrier;
                        self.leave_running(w);
                    } else {
                        ctx.state = WarpState::AtBarrier;
                    }
                    self.groups[g.0 as usize].arrived += 1;
                    self.maybe_release_barrier(now, g);
                    return;
                }
                None => {
                    // Assignment complete.
                    if ctx.state == WarpState::Running {
                        self.leave_running(w);
                    }
                    let ctx = &mut self.warps[w.0 as usize];
                    ctx.state = WarpState::Idle;
                    let tag = ctx.tag;
                    let group = ctx.group;
                    ctx.segments = Vec::new();
                    self.finished.push((w, tag));
                    if let Some(g) = group {
                        self.groups[g.0 as usize].finished += 1;
                        self.maybe_release_barrier(now, g);
                    }
                    return;
                }
            }
        }
    }

    /// Releases the group's barrier if every unfinished member has arrived.
    fn maybe_release_barrier(&mut self, now: SimTime, g: GroupId) {
        let ctx = &self.groups[g.0 as usize];
        let expected = ctx.members.len() as u32 - ctx.finished;
        if expected == 0 || ctx.arrived < expected {
            return;
        }
        debug_assert_eq!(ctx.arrived, expected, "more arrivals than members");
        self.groups[g.0 as usize].arrived = 0;
        // Everyone steps past the barrier. `settle` may re-arrive at a
        // following barrier; that recursion terminates because segments are
        // finite and strictly consumed. Members are re-indexed through the
        // group each iteration (instead of iterating a clone) — the member
        // list itself is immutable until `release_group`, which the settle
        // cascade never calls.
        for i in 0..self.groups[g.0 as usize].members.len() {
            let m = self.groups[g.0 as usize].members[i];
            let c = &mut self.warps[m.0 as usize];
            if c.state == WarpState::AtBarrier {
                c.cur += 1;
                self.settle(now, m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::WarpWork;
    use desim::Dur;

    fn titan_exec() -> ExecState {
        ExecState::new(&GpuSpec::titan_x())
    }

    /// Runs the SM until quiescent, returning (time, finished tags).
    fn run_sm(ex: &mut ExecState, sm: u32, mut now: SimTime) -> (SimTime, Vec<u64>) {
        let mut tags = Vec::new();
        while let Some(t) = ex.next_completion(sm, now) {
            ex.advance_sm(sm, t);
            ex.process_completions(sm, t);
            now = t;
            tags.extend(ex.drain_finished().into_iter().map(|(_, tag)| tag));
        }
        (now, tags)
    }

    #[test]
    fn single_warp_latency_bound() {
        // One warp, CPI 4, 32000 thread-instructions = 1000 warp-instrs
        // = 4000 cycles = 4 us at 1 GHz.
        let mut ex = titan_exec();
        let w = ex.create_warp(0);
        ex.advance_sm(0, SimTime::ZERO);
        ex.assign(SimTime::ZERO, w, WarpWork::compute(32_000, 4.0), 9);
        let (t, tags) = run_sm(&mut ex, 0, SimTime::ZERO);
        assert_eq!(tags, vec![9]);
        let us = t.as_us_f64();
        assert!((us - 4.0).abs() < 0.01, "took {us}us");
    }

    #[test]
    fn saturated_sm_is_issue_bound() {
        // 64 warps, CPI 1: per-warp cap = 128/64 = 2 lanes-instr/cycle...
        // each warp does 32000 thread-instr. Aggregate = 64*32000 over
        // 128e9/s = 16 us.
        let mut ex = titan_exec();
        ex.advance_sm(0, SimTime::ZERO);
        for i in 0..64 {
            let w = ex.create_warp(0);
            ex.assign(SimTime::ZERO, w, WarpWork::compute(32_000, 1.0), i);
        }
        let (t, tags) = run_sm(&mut ex, 0, SimTime::ZERO);
        assert_eq!(tags.len(), 64);
        let us = t.as_us_f64();
        assert!((us - 16.0).abs() < 0.05, "took {us}us");
    }

    #[test]
    fn few_warps_leave_sm_underutilized() {
        // 8 warps CPI 4 run no slower than 1 warp CPI 4 (latency bound):
        // the narrow-task premise.
        let mut ex = titan_exec();
        ex.advance_sm(0, SimTime::ZERO);
        for i in 0..8 {
            let w = ex.create_warp(0);
            ex.assign(SimTime::ZERO, w, WarpWork::compute(32_000, 4.0), i);
        }
        let (t, _) = run_sm(&mut ex, 0, SimTime::ZERO);
        assert!(
            (t.as_us_f64() - 4.0).abs() < 0.01,
            "took {}us",
            t.as_us_f64()
        );
    }

    #[test]
    fn barrier_synchronizes_group() {
        // Two warps; warp 0 has 10x the work per phase. Both must meet at
        // the barrier, so total time is 2 phases of warp 0's work.
        let mut ex = titan_exec();
        let w0 = ex.create_warp(0);
        let w1 = ex.create_warp(0);
        ex.create_group(&[w0, w1]);
        ex.advance_sm(0, SimTime::ZERO);
        ex.assign(SimTime::ZERO, w0, WarpWork::phased(64_000, 2, 4.0), 0);
        ex.assign(SimTime::ZERO, w1, WarpWork::phased(6_400, 2, 4.0), 1);
        let (t, tags) = run_sm(&mut ex, 0, SimTime::ZERO);
        assert_eq!(tags.len(), 2);
        // warp0: 2 phases x 32000 ti @ CPI4 = 8us total; warp1 waits.
        assert!(
            (t.as_us_f64() - 8.0).abs() < 0.05,
            "took {}us",
            t.as_us_f64()
        );
    }

    #[test]
    fn late_join_increases_completion_time() {
        // Saturate with 64 warps; adding work mid-flight shares issue slots.
        let mut ex = titan_exec();
        ex.advance_sm(0, SimTime::ZERO);
        let warps: Vec<_> = (0..64).map(|_| ex.create_warp(0)).collect();
        for (i, w) in warps.iter().enumerate() {
            ex.assign(SimTime::ZERO, *w, WarpWork::compute(32_000, 1.0), i as u64);
        }
        // Let it run 8us (half way), then drop in nothing; total stays 16us.
        let mid = SimTime::from_us(8);
        ex.advance_sm(0, mid);
        ex.process_completions(0, mid);
        let (t, _) = run_sm(&mut ex, 0, mid);
        assert!((t.as_us_f64() - 16.0).abs() < 0.05);
    }

    #[test]
    fn unequal_warps_finish_shortest_first() {
        // 4 warps CPI 1 (4·32 = 128 lanes = exactly issue width, so every
        // warp stays latency-bound at 32 ti/cycle throughout). Work sizes
        // 1000..4000 ti -> completions at 31.25, 62.5, 93.75, 125 ns.
        let mut ex = titan_exec();
        ex.advance_sm(0, SimTime::ZERO);
        for i in 0..4u64 {
            let w = ex.create_warp(0);
            ex.assign(SimTime::ZERO, w, WarpWork::compute(1000 * (i + 1), 1.0), i);
        }
        let (t, tags) = run_sm(&mut ex, 0, SimTime::ZERO);
        assert_eq!(tags, vec![0, 1, 2, 3], "shortest-first completion order");
        assert!(
            (t.as_ns_f64() - 125.0).abs() < 1.0,
            "took {}ns",
            t.as_ns_f64()
        );
    }

    #[test]
    fn idle_warp_consumes_nothing() {
        let mut ex = titan_exec();
        let _idle = ex.create_warp(0);
        let w = ex.create_warp(0);
        ex.advance_sm(0, SimTime::ZERO);
        ex.assign(SimTime::ZERO, w, WarpWork::compute(3_200, 1.0), 0);
        let (t, _) = run_sm(&mut ex, 0, SimTime::ZERO);
        // 100 warp-instr @ CPI1 = 100 cycles, unaffected by the idle warp.
        assert!((t.as_ns_f64() - 100.0).abs() < 1.0);
    }

    #[test]
    fn reassignment_after_completion() {
        let mut ex = titan_exec();
        let w = ex.create_warp(0);
        ex.advance_sm(0, SimTime::ZERO);
        ex.assign(SimTime::ZERO, w, WarpWork::compute(3_200, 1.0), 1);
        let (t1, tags) = run_sm(&mut ex, 0, SimTime::ZERO);
        assert_eq!(tags, vec![1]);
        ex.advance_sm(0, t1);
        ex.assign(t1, w, WarpWork::compute(3_200, 1.0), 2);
        let (t2, tags) = run_sm(&mut ex, 0, t1);
        assert_eq!(tags, vec![2]);
        assert_eq!((t2 - t1).as_ps(), t1.as_ps());
    }

    #[test]
    #[should_panic(expected = "already has work")]
    fn double_assign_panics() {
        let mut ex = titan_exec();
        let w = ex.create_warp(0);
        ex.advance_sm(0, SimTime::ZERO);
        ex.assign(SimTime::ZERO, w, WarpWork::compute(100, 1.0), 0);
        ex.assign(SimTime::ZERO, w, WarpWork::compute(100, 1.0), 1);
    }

    #[test]
    #[should_panic(expected = "outside any group")]
    fn barrier_work_requires_group() {
        let mut ex = titan_exec();
        let w = ex.create_warp(0);
        ex.advance_sm(0, SimTime::ZERO);
        ex.assign(SimTime::ZERO, w, WarpWork::phased(100, 2, 1.0), 0);
    }

    #[test]
    #[should_panic(expected = "spans SMMs")]
    fn cross_sm_group_rejected() {
        let mut ex = titan_exec();
        let a = ex.create_warp(0);
        let b = ex.create_warp(1);
        ex.create_group(&[a, b]);
    }

    #[test]
    fn group_release_after_all_finish() {
        let mut ex = titan_exec();
        let a = ex.create_warp(0);
        let b = ex.create_warp(0);
        let g = ex.create_group(&[a, b]);
        ex.advance_sm(0, SimTime::ZERO);
        ex.assign(SimTime::ZERO, a, WarpWork::phased(6_400, 2, 1.0), 0);
        ex.assign(SimTime::ZERO, b, WarpWork::phased(6_400, 2, 1.0), 1);
        let (_, tags) = run_sm(&mut ex, 0, SimTime::ZERO);
        assert_eq!(tags.len(), 2);
        ex.release_group(g);
        // Members can join a new group afterwards.
        let g2 = ex.create_group(&[a, b]);
        let _ = g2;
    }

    #[test]
    fn zero_work_assignment_finishes_immediately() {
        let mut ex = titan_exec();
        let w = ex.create_warp(0);
        ex.advance_sm(0, SimTime::ZERO);
        ex.assign(SimTime::ZERO, w, WarpWork::compute(0, 1.0), 5);
        let done = ex.drain_finished();
        assert_eq!(done, vec![(w, 5)]);
        assert!(ex.next_completion(0, SimTime::ZERO).is_none());
    }

    #[test]
    fn utilization_integrals() {
        let mut ex = titan_exec();
        let w = ex.create_warp(0);
        ex.advance_sm(0, SimTime::ZERO);
        ex.assign(SimTime::ZERO, w, WarpWork::compute(32_000, 1.0), 0);
        let (t, _) = run_sm(&mut ex, 0, SimTime::ZERO);
        let s = ex.sm_stats(0);
        assert_eq!(s.busy_ps, t.as_ps());
        // 1 warp running the whole time.
        assert!((s.running_warp_ps - t.as_ps() as f64).abs() < 1.0);
        assert_eq!(ex.total_stats().busy_ps, t.as_ps());
    }

    #[test]
    fn retire_requires_idle() {
        let mut ex = titan_exec();
        let w = ex.create_warp(0);
        ex.retire_warp(w);
    }

    #[test]
    #[should_panic(expected = "retired warp")]
    fn assign_to_retired_warp_panics() {
        let mut ex = titan_exec();
        let w = ex.create_warp(0);
        ex.retire_warp(w);
        ex.advance_sm(0, SimTime::ZERO);
        ex.assign(SimTime::ZERO, w, WarpWork::compute(1, 1.0), 0);
    }

    #[test]
    fn different_sms_are_independent() {
        let mut ex = titan_exec();
        let a = ex.create_warp(0);
        let b = ex.create_warp(1);
        ex.advance_sm(0, SimTime::ZERO);
        ex.advance_sm(1, SimTime::ZERO);
        ex.assign(SimTime::ZERO, a, WarpWork::compute(32_000, 1.0), 0);
        ex.assign(SimTime::ZERO, b, WarpWork::compute(32_000, 1.0), 1);
        let ta = ex.next_completion(0, SimTime::ZERO).unwrap();
        let tb = ex.next_completion(1, SimTime::ZERO).unwrap();
        assert_eq!(ta, tb, "no cross-SM interference");
        let _ = Dur::ZERO;
    }
}
