//! Descriptions of the work a warp, threadblock, or kernel performs.
//!
//! The simulator does not interpret instructions; it accounts for them. A
//! warp's work is a sequence of [`Segment`]s: compute phases measured in
//! *thread-instructions* (one lane-operation each; a full warp instruction
//! is 32 of them) separated by threadblock-level barriers. Per-workload
//! memory intensity is folded into a cycles-per-warp-instruction figure
//! ([`WarpWork::cpi`]): a streaming kernel that stalls on DRAM has a high
//! CPI, a register-resident kernel sits near 1.

use gpu_arch::TaskShape;

/// One phase of a warp's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// Execute this many thread-instructions.
    Compute(u64),
    /// Arrive at the threadblock barrier and wait for the group
    /// (`__syncthreads()` / Pagoda `syncBlock()`).
    Barrier,
}

/// The work one warp performs, with its effective CPI.
#[derive(Debug, Clone, PartialEq)]
pub struct WarpWork {
    /// Phases in execution order.
    pub segments: Vec<Segment>,
    /// Average cycles per warp-instruction for this warp (≥ 1.0); encodes
    /// memory stalls and divergence.
    pub cpi: f64,
}

impl WarpWork {
    /// A single compute phase of `instrs` thread-instructions.
    pub fn compute(instrs: u64, cpi: f64) -> Self {
        assert!(cpi >= 1.0, "CPI below 1 is super-scalar fiction: {cpi}");
        WarpWork {
            segments: vec![Segment::Compute(instrs)],
            cpi,
        }
    }

    /// Work split into `phases` equal compute phases with a barrier between
    /// consecutive phases (the FilterBank / DCT pattern).
    pub fn phased(total_instrs: u64, phases: usize, cpi: f64) -> Self {
        assert!(phases > 0, "at least one phase");
        assert!(cpi >= 1.0, "CPI below 1: {cpi}");
        let per = total_instrs / phases as u64;
        let mut rem = total_instrs - per * phases as u64;
        let mut segments = Vec::with_capacity(phases * 2 - 1);
        for i in 0..phases {
            let extra = u64::from(rem > 0);
            rem = rem.saturating_sub(1);
            if i > 0 {
                segments.push(Segment::Barrier);
            }
            segments.push(Segment::Compute(per + extra));
        }
        WarpWork { segments, cpi }
    }

    /// Total thread-instructions across all compute segments.
    pub fn total_instrs(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Compute(n) => *n,
                Segment::Barrier => 0,
            })
            .sum()
    }

    /// Number of barrier arrivals in this work.
    pub fn barrier_count(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::Barrier))
            .count()
    }
}

/// The work of one threadblock: one [`WarpWork`] per warp.
///
/// All warps of a block synchronize at the same barriers, so their
/// [`WarpWork::barrier_count`]s must agree; [`BlockWork::new`] enforces it.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockWork {
    warps: Vec<WarpWork>,
}

impl BlockWork {
    /// Builds a block from per-warp work.
    ///
    /// # Panics
    /// Panics if `warps` is empty or barrier counts differ between warps
    /// (such a block would deadlock on real hardware).
    pub fn new(warps: Vec<WarpWork>) -> Self {
        assert!(!warps.is_empty(), "block with zero warps");
        let b0 = warps[0].barrier_count();
        for (i, w) in warps.iter().enumerate() {
            assert_eq!(
                w.barrier_count(),
                b0,
                "warp {i} has {} barriers, warp 0 has {b0}: block would deadlock",
                w.barrier_count()
            );
        }
        BlockWork { warps }
    }

    /// A block of `num_warps` identical warps.
    pub fn uniform(num_warps: u32, work: WarpWork) -> Self {
        assert!(num_warps > 0, "block with zero warps");
        BlockWork {
            warps: vec![work; num_warps as usize],
        }
    }

    /// Per-warp work, in warp order.
    pub fn warps(&self) -> &[WarpWork] {
        &self.warps
    }

    /// Warp count.
    pub fn num_warps(&self) -> u32 {
        self.warps.len() as u32
    }

    /// Total thread-instructions in the block.
    pub fn total_instrs(&self) -> u64 {
        self.warps.iter().map(WarpWork::total_instrs).sum()
    }
}

/// A full kernel: launch shape plus the work of each threadblock.
#[derive(Debug, Clone)]
pub struct KernelDesc {
    /// Resource shape (threads/block, registers, shared memory, grid size).
    pub shape: TaskShape,
    /// Work per threadblock; `blocks.len()` must equal `shape.num_tbs`.
    pub blocks: Vec<BlockWork>,
    /// Caller correlation tag, echoed in completion notifications.
    pub tag: u64,
}

impl KernelDesc {
    /// Builds and validates a kernel description.
    ///
    /// # Panics
    /// Panics if the block list length disagrees with the shape, or any
    /// block's warp count disagrees with the shape's threads-per-block.
    pub fn new(shape: TaskShape, blocks: Vec<BlockWork>, tag: u64) -> Self {
        assert_eq!(
            blocks.len(),
            shape.num_tbs as usize,
            "shape declares {} TBs but {} BlockWork given",
            shape.num_tbs,
            blocks.len()
        );
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(
                b.num_warps(),
                shape.warps_per_tb(),
                "block {i}: {} warps but shape implies {}",
                b.num_warps(),
                shape.warps_per_tb()
            );
        }
        KernelDesc { shape, blocks, tag }
    }

    /// A kernel whose blocks all run the same per-warp work.
    pub fn uniform(shape: TaskShape, work: WarpWork, tag: u64) -> Self {
        let block = BlockWork::uniform(shape.warps_per_tb(), work);
        KernelDesc::new(shape, vec![block; shape.num_tbs as usize], tag)
    }

    /// Total thread-instructions in the kernel.
    pub fn total_instrs(&self) -> u64 {
        self.blocks.iter().map(BlockWork::total_instrs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_builder() {
        let w = WarpWork::compute(1000, 2.0);
        assert_eq!(w.total_instrs(), 1000);
        assert_eq!(w.barrier_count(), 0);
    }

    #[test]
    fn phased_builder_splits_work_and_inserts_barriers() {
        let w = WarpWork::phased(10, 3, 1.5);
        assert_eq!(w.total_instrs(), 10);
        assert_eq!(w.barrier_count(), 2);
        // 10 over 3 phases: 4, 3, 3.
        assert_eq!(
            w.segments,
            vec![
                Segment::Compute(4),
                Segment::Barrier,
                Segment::Compute(3),
                Segment::Barrier,
                Segment::Compute(3),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn mismatched_barrier_counts_rejected() {
        BlockWork::new(vec![
            WarpWork::compute(10, 1.0),
            WarpWork::phased(10, 2, 1.0),
        ]);
    }

    #[test]
    #[should_panic(expected = "CPI below 1")]
    fn cpi_below_one_rejected() {
        WarpWork::compute(10, 0.5);
    }

    #[test]
    fn kernel_desc_validates_block_count() {
        let shape = TaskShape {
            threads_per_tb: 64,
            num_tbs: 2,
            regs_per_thread: 32,
            smem_per_tb: 0,
        };
        let k = KernelDesc::uniform(shape, WarpWork::compute(100, 1.0), 7);
        assert_eq!(k.blocks.len(), 2);
        assert_eq!(k.blocks[0].num_warps(), 2);
        assert_eq!(k.total_instrs(), 400);
    }

    #[test]
    #[should_panic(expected = "shape declares")]
    fn kernel_desc_rejects_wrong_block_count() {
        let shape = TaskShape::narrow(64);
        KernelDesc::new(shape, vec![], 0);
    }
}
