//! Discrete-event GPU device simulator.
//!
//! This crate models the machine the Pagoda paper evaluates on — an NVIDIA
//! Maxwell Titan X — at the granularity its arguments are made at: warps,
//! threadblocks, SMM resource pools, and the kernel-launch front end. See
//! the module docs of [`device`] and [`exec`] for the execution model, and
//! `DESIGN.md` at the repository root for why a simulator stands in for the
//! real hardware.
//!
//! # Quick tour
//!
//! ```
//! use gpu_sim::{DeviceConfig, GpuDevice, KernelDesc, Notify, WarpWork};
//! use gpu_arch::TaskShape;
//!
//! let mut dev = GpuDevice::new(DeviceConfig::titan_x());
//! // One narrow task: 128 threads, 1 threadblock.
//! let k = KernelDesc::uniform(
//!     TaskShape::narrow(128),
//!     WarpWork::compute(100_000, 4.0),
//!     /*tag=*/ 7,
//! );
//! dev.launch_kernel(k).unwrap();
//! let mut completed = None;
//! while let Some((t, batch)) = dev.step() {
//!     for n in batch {
//!         if let Notify::KernelDone { tag } = n {
//!             completed = Some((tag, t));
//!         }
//!     }
//! }
//! let (tag, _t) = completed.unwrap();
//! assert_eq!(tag, 7);
//! ```

pub mod device;
pub mod exec;
pub mod work;

pub use device::{DeviceConfig, DeviceStats, GpuDevice, Notify, PersistentTb};
pub use exec::{ExecStats, GroupId, WarpHandle};
pub use work::{BlockWork, KernelDesc, Segment, WarpWork};
