//! The GPU device: resource accounting, the hardware threadblock
//! dispatcher, kernel-launch machinery, and the event loop.
//!
//! Two execution paths coexist, mirroring the paper's world:
//!
//! * **Native kernels** ([`GpuDevice::launch_kernel`]): the hardware work
//!   distributor places threadblocks on SMMs subject to warp-slot, thread,
//!   TB-slot, register, and shared-memory limits, with at most
//!   `max_concurrent_kernels` kernels in flight (the HyperQ cap). Resources
//!   are freed at *threadblock* granularity — a new TB cannot launch until a
//!   whole resident TB retires (paper §6.4) — unless
//!   [`DeviceConfig::free_warps_individually`] is set (an ablation of
//!   Pagoda's warp-level freeing applied to the hardware path).
//!
//! * **Persistent kernels** ([`GpuDevice::launch_persistent`]): the
//!   MasterKernel path. Threadblocks are placed once and never retire; their
//!   warps start idle and receive work dynamically via
//!   [`GpuDevice::assign_warp`] — this is how Pagoda's executor warps run
//!   task work and how its scheduler warps are charged for scheduling
//!   cycles.
//!
//! The device is driven by [`GpuDevice::step`], which delivers batches of
//! [`Notify`] events to the owning runtime in deterministic order.

use std::collections::VecDeque;

use desim::{Dur, Engine, EventKey, SimTime};
use gpu_arch::{GpuSpec, LaunchError, TaskShape};
use pagoda_obs::{Counter, Obs, SmmSample};

use crate::exec::{ExecState, GroupId, WarpHandle};
use crate::work::{KernelDesc, WarpWork};

/// Tag bit marking device-internal (native-TB) warp assignments. External
/// tags passed to [`GpuDevice::assign_warp`] must stay below this.
const NATIVE_BIT: u64 = 1 << 63;

/// Externally visible simulation events, delivered by [`GpuDevice::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Notify {
    /// A warp finished an assignment made with [`GpuDevice::assign_warp`].
    WarpDone {
        /// The warp that completed.
        warp: WarpHandle,
        /// The tag given at assignment.
        tag: u64,
    },
    /// A native kernel's last threadblock retired.
    KernelDone {
        /// The tag from its [`KernelDesc`].
        tag: u64,
    },
    /// A host-scheduled timer ([`GpuDevice::schedule_host`]).
    Host(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    SmWake { sm: u32 },
    LaunchIssued { kid: u32 },
    Drain,
    Host(u64),
}

/// Device configuration: the machine plus front-end behaviour knobs.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// The hardware.
    pub spec: GpuSpec,
    /// Concurrent-kernel cap; defaults to `spec.num_hw_queues` (HyperQ 32).
    pub max_concurrent_kernels: u32,
    /// Serialized per-kernel launch processing cost in the grid management
    /// unit (driver + front-end). With tens of thousands of one-task
    /// kernels this is a first-order cost for the HyperQ baseline.
    pub launch_issue_cost: Dur,
    /// Free a native TB's warp slots as each warp retires instead of when
    /// the whole TB retires. Hardware does not do this; Pagoda does. Used
    /// by the §6.4 ablation.
    pub free_warps_individually: bool,
}

impl DeviceConfig {
    /// Default configuration for a given machine.
    pub fn new(spec: GpuSpec) -> Self {
        let q = spec.num_hw_queues;
        DeviceConfig {
            spec,
            max_concurrent_kernels: q,
            // Driver + grid-management-unit processing per kernel launch.
            // Measured end-to-end launch overheads on Maxwell-era CUDA sit
            // at 3-10 µs; narrow-task workloads hit the pipelined floor.
            launch_issue_cost: Dur::from_ns(3000),
            free_warps_individually: false,
        }
    }

    /// The paper's evaluation device.
    pub fn titan_x() -> Self {
        Self::new(GpuSpec::titan_x())
    }
}

/// Per-SMM free-resource counters.
#[derive(Debug, Clone, Copy)]
struct SmRes {
    warps: u32,
    threads: u32,
    tbs: u32,
    regs: u32,
    smem: u32,
}

/// Cached per-TB resource footprint of a kernel.
#[derive(Debug, Clone, Copy)]
struct Footprint {
    warps: u32,
    threads: u32,
    regs: u32,
    smem: u32,
}

#[derive(Debug)]
struct KernelCtx {
    desc: KernelDesc,
    foot: Footprint,
    next_tb: usize,
    retired_tbs: u32,
    done: bool,
}

#[derive(Debug)]
struct TbCtx {
    kid: u32,
    sm: u32,
    warps: Vec<WarpHandle>,
    group: GroupId,
    done_warps: u32,
    /// Warp slots already returned via individual freeing.
    warps_prefreed: u32,
    /// Threads already returned via individual freeing.
    threads_prefreed: u32,
    /// Registers already returned via individual freeing.
    regs_prefreed: u32,
    retired: bool,
}

/// A placed persistent threadblock (one Pagoda MTB).
#[derive(Debug, Clone)]
pub struct PersistentTb {
    /// The SMM it resides on.
    pub sm: u32,
    /// Its warps, in warp-index order; all start idle.
    pub warps: Vec<WarpHandle>,
}

/// Device-level counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct DeviceStats {
    /// Native kernels launched.
    pub kernels_launched: u64,
    /// Native threadblocks placed.
    pub tbs_placed: u64,
    /// ∫ resident warps dt (warp·ps).
    pub resident_warp_ps: f64,
    /// ∫ running warps dt (warp·ps) — from the execution engine.
    pub running_warp_ps: f64,
    /// Time with ≥1 running warp anywhere, summed per SMM (warp·ps
    /// granularity: each SMM contributes its own busy time).
    pub busy_ps: u64,
}

/// The simulated GPU.
#[derive(Debug)]
pub struct GpuDevice {
    cfg: DeviceConfig,
    engine: Engine<Ev>,
    exec: ExecState,
    sm_res: Vec<SmRes>,
    kernels: Vec<KernelCtx>,
    tbs: Vec<TbCtx>,
    /// Active (placing/executing) kernel ids in launch order.
    active: Vec<u32>,
    /// Issued kernels waiting for a free concurrency slot.
    waiting: VecDeque<u32>,
    /// Launch front-end serialization point.
    next_launch_free: SimTime,
    /// Resident-warp integral bookkeeping.
    resident_count: u32,
    resident_integral: f64,
    last_resident_update: SimTime,
    kernels_launched: u64,
    tbs_placed: u64,
    drain_pending: bool,
    /// The single armed next-completion prediction per SMM. Re-aimed in
    /// place on running-set changes ([`Engine::reschedule`]), cleared at
    /// delivery, cancelled outright when the SMM empties — the event
    /// queue never carries superseded predictions.
    sm_wake: Vec<Option<EventKey>>,
    obs: Obs,
}

impl GpuDevice {
    /// Creates a device.
    pub fn new(cfg: DeviceConfig) -> Self {
        let spec = &cfg.spec;
        let sm_res = (0..spec.num_sms)
            .map(|_| SmRes {
                warps: spec.max_warps_per_sm,
                threads: spec.max_threads_per_sm,
                tbs: spec.max_tbs_per_sm,
                regs: spec.regs_per_sm,
                smem: spec.smem_per_sm,
            })
            .collect();
        let exec = ExecState::new(spec);
        let sm_wake = vec![None; spec.num_sms as usize];
        GpuDevice {
            cfg,
            engine: Engine::new(),
            exec,
            sm_res,
            kernels: Vec::new(),
            tbs: Vec::new(),
            active: Vec::new(),
            waiting: VecDeque::new(),
            next_launch_free: SimTime::ZERO,
            resident_count: 0,
            resident_integral: 0.0,
            last_resident_update: SimTime::ZERO,
            kernels_launched: 0,
            tbs_placed: 0,
            drain_pending: false,
            sm_wake,
            obs: Obs::off(),
        }
    }

    /// Attaches an observability handle. The event engine's pop hook
    /// counts delivered events; launch/placement/retire/assignment paths
    /// emit per-SMM resource samples at each residency change.
    pub fn attach_obs(&mut self, obs: Obs) {
        if obs.enabled() {
            let tap = obs.clone();
            self.engine
                .set_pop_hook(Box::new(move |_| tap.count(Counter::EngineEvents, 1)));
        } else {
            self.engine.clear_pop_hook();
        }
        self.obs = obs;
    }

    /// A Titan X with default front-end parameters.
    pub fn titan_x() -> Self {
        Self::new(DeviceConfig::titan_x())
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The machine description.
    pub fn spec(&self) -> &GpuSpec {
        &self.cfg.spec
    }

    // ------------------------------------------------------------------
    // Native kernel path
    // ------------------------------------------------------------------

    /// Launches a native kernel. The launch front-end serializes launches
    /// (`launch_issue_cost` each); once issued, the kernel waits for a
    /// concurrency slot and its TBs are then placed as resources permit.
    /// Completion is announced via [`Notify::KernelDone`] with `desc.tag`.
    pub fn launch_kernel(&mut self, desc: KernelDesc) -> Result<(), LaunchError> {
        self.cfg.spec.occupancy_of(&desc.shape)?; // also proves ≥1 TB fits
        let foot = self.footprint(&desc.shape);
        let kid = self.kernels.len() as u32;
        self.kernels.push(KernelCtx {
            desc,
            foot,
            next_tb: 0,
            retired_tbs: 0,
            done: false,
        });
        self.kernels_launched += 1;
        self.obs.count(Counter::KernelLaunches, 1);
        let issue_at = self.now().max(self.next_launch_free) + self.cfg.launch_issue_cost;
        self.next_launch_free = issue_at;
        self.engine.schedule(issue_at, Ev::LaunchIssued { kid });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Persistent (MasterKernel) path
    // ------------------------------------------------------------------

    /// Places every threadblock of a persistent kernel immediately. Fails
    /// if the full grid cannot be resident at once (a persistent kernel
    /// must own its resources for its lifetime).
    ///
    /// Returned TBs never retire; their warps are idle until given work via
    /// [`GpuDevice::assign_warp`].
    pub fn launch_persistent(
        &mut self,
        shape: TaskShape,
    ) -> Result<Vec<PersistentTb>, LaunchError> {
        self.cfg.spec.validate(&shape)?;
        let foot = self.footprint(&shape);
        // Feasibility check before mutating anything.
        {
            let mut free: Vec<SmRes> = self.sm_res.clone();
            for _ in 0..shape.num_tbs {
                let Some(sm) = Self::pick_sm(&free, &foot) else {
                    return Err(LaunchError::SmemPerBlockTooLarge {
                        requested: foot.smem,
                        max: 0, // grid does not fit resident; see docs
                    });
                };
                Self::take(&mut free[sm], &foot);
            }
        }
        let now = self.now();
        let mut out = Vec::with_capacity(shape.num_tbs as usize);
        for _ in 0..shape.num_tbs {
            let sm = Self::pick_sm(&self.sm_res, &foot).expect("checked above") as u32;
            Self::take(&mut self.sm_res[sm as usize], &foot);
            let warps = (0..shape.warps_per_tb())
                .map(|_| self.exec.create_warp(sm))
                .collect::<Vec<_>>();
            self.add_resident(now, shape.warps_per_tb() as i64);
            self.sample_sm(now, sm);
            out.push(PersistentTb { sm, warps });
        }
        Ok(out)
    }

    /// Assigns work to an idle (persistent-kernel) warp. Completion is
    /// announced via [`Notify::WarpDone`] with `tag`.
    ///
    /// # Panics
    /// Panics if `tag` has the reserved top bit set, the warp is retired,
    /// or it already has work.
    pub fn assign_warp(&mut self, w: WarpHandle, work: WarpWork, tag: u64) {
        assert_eq!(tag & NATIVE_BIT, 0, "tag uses reserved bit");
        let now = self.now();
        let sm = self.exec.warp_sm(w);
        self.exec.advance_sm(sm, now);
        self.exec.assign(now, w, work, tag);
        self.reschedule_sm(sm, now);
        self.request_drain();
        self.sample_sm(now, sm);
    }

    /// Creates a barrier group over persistent warps (a Pagoda task
    /// sub-threadblock). All members must be on one SMM.
    pub fn create_group(&mut self, members: &[WarpHandle]) -> GroupId {
        self.exec.create_group(members)
    }

    /// Releases a barrier group once all members finished.
    pub fn release_group(&mut self, g: GroupId) {
        self.exec.release_group(g);
    }

    // ------------------------------------------------------------------
    // Host timers
    // ------------------------------------------------------------------

    /// Schedules [`Notify::Host`]`(tag)` at absolute time `at`.
    pub fn schedule_host(&mut self, at: SimTime, tag: u64) -> EventKey {
        self.engine.schedule(at, Ev::Host(tag))
    }

    /// Cancels a host timer.
    pub fn cancel_host(&mut self, key: EventKey) -> bool {
        self.engine.cancel(key)
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Advances the simulation to the next instant at which something
    /// externally visible happens, returning the notifications of that
    /// instant. Returns `None` when the simulation is quiescent.
    pub fn step(&mut self) -> Option<(SimTime, Vec<Notify>)> {
        self.step_impl(None)
    }

    /// Like [`GpuDevice::step`], but refuses to process any event scheduled
    /// after `bound`. Used by host-side runtimes to co-simulate a host
    /// timeline: the device may never run ahead of the host instant being
    /// modelled.
    pub fn step_bounded(&mut self, bound: SimTime) -> Option<(SimTime, Vec<Notify>)> {
        self.step_impl(Some(bound))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.engine.peek_time()
    }

    fn step_impl(&mut self, bound: Option<SimTime>) -> Option<(SimTime, Vec<Notify>)> {
        loop {
            if let Some(b) = bound {
                match self.engine.peek_time() {
                    Some(t) if t <= b => {}
                    _ => return None,
                }
            }
            let (t, ev) = self.engine.pop()?;
            let mut out = Vec::new();
            match ev {
                Ev::Host(tag) => out.push(Notify::Host(tag)),
                Ev::Drain => {
                    self.drain_pending = false;
                    self.settle(t, &mut out);
                }
                Ev::LaunchIssued { kid } => {
                    self.waiting.push_back(kid);
                    self.settle(t, &mut out);
                }
                Ev::SmWake { sm } => {
                    // This SMM's one armed prediction just fired; a new
                    // one is armed below iff work remains.
                    self.sm_wake[sm as usize] = None;
                    self.exec.advance_sm(sm, t);
                    self.exec.process_completions(sm, t);
                    self.settle(t, &mut out);
                    self.reschedule_sm(sm, t);
                }
            }
            if !out.is_empty() {
                return Some((t, out));
            }
        }
    }

    /// Runs until quiescent, invoking `f` for each notification batch.
    pub fn run<F: FnMut(&mut GpuDevice, SimTime, Vec<Notify>)>(&mut self, mut f: F) {
        while let Some((t, batch)) = self.step() {
            f(self, t, batch);
        }
    }

    /// Device counters, with utilization integrals current as of `now`.
    pub fn stats(&mut self) -> DeviceStats {
        let now = self.now();
        self.add_resident(now, 0); // flush integral
        let ex = self.exec.total_stats();
        DeviceStats {
            kernels_launched: self.kernels_launched,
            tbs_placed: self.tbs_placed,
            resident_warp_ps: self.resident_integral,
            running_warp_ps: ex.running_warp_ps,
            busy_ps: ex.busy_ps,
        }
    }

    /// Average *running* occupancy over `[0, now]`: mean fraction of the
    /// device's warp slots doing useful work.
    pub fn avg_running_occupancy(&mut self) -> f64 {
        let now = self.now().as_ps();
        if now == 0 {
            return 0.0;
        }
        let s = self.stats();
        s.running_warp_ps / (self.cfg.spec.max_resident_warps() as f64 * now as f64)
    }

    /// Average *resident* occupancy over `[0, now]` — the CUDA notion of
    /// occupancy (warps holding slots, running or not).
    pub fn avg_resident_occupancy(&mut self) -> f64 {
        let now = self.now().as_ps();
        if now == 0 {
            return 0.0;
        }
        let s = self.stats();
        s.resident_warp_ps / (self.cfg.spec.max_resident_warps() as f64 * now as f64)
    }

    /// Event-engine counters (scheduled/delivered/cancelled), the
    /// denominator for the `obs_overhead` bench's events/sec.
    pub fn engine_stats(&self) -> desim::EngineStats {
        self.engine.stats()
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Emits a per-SMM resource sample if a recorder is attached. Called
    /// at residency state changes only, never on a timer.
    fn sample_sm(&self, now: SimTime, sm: u32) {
        if !self.obs.enabled() {
            return;
        }
        let r = &self.sm_res[sm as usize];
        self.obs.smm(SmmSample {
            at_ps: now.as_ps(),
            sm,
            resident_warps: self.cfg.spec.max_warps_per_sm - r.warps,
            running_warps: self.exec.sm_running(sm),
            free_regs: u64::from(r.regs),
            free_smem: u64::from(r.smem),
            free_tb_slots: r.tbs,
        });
    }

    fn footprint(&self, shape: &TaskShape) -> Footprint {
        Footprint {
            warps: shape.warps_per_tb(),
            threads: shape.threads_per_tb,
            regs: self.cfg.spec.regs_per_tb(shape),
            smem: self.cfg.spec.smem_per_tb(shape),
        }
    }

    fn pick_sm(res: &[SmRes], f: &Footprint) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, r) in res.iter().enumerate() {
            if r.warps >= f.warps
                && r.threads >= f.threads
                && r.tbs >= 1
                && r.regs >= f.regs
                && r.smem >= f.smem
            {
                best = match best {
                    Some(b) if res[b].warps >= r.warps => Some(b),
                    _ => Some(i),
                };
            }
        }
        best
    }

    fn take(r: &mut SmRes, f: &Footprint) {
        r.warps -= f.warps;
        r.threads -= f.threads;
        r.tbs -= 1;
        r.regs -= f.regs;
        r.smem -= f.smem;
    }

    fn give(r: &mut SmRes, f: &Footprint, pre: (u32, u32, u32)) {
        let (warps_freed, threads_freed, regs_freed) = pre;
        r.warps += f.warps - warps_freed;
        r.threads += f.threads - threads_freed;
        r.tbs += 1;
        r.regs += f.regs - regs_freed;
        r.smem += f.smem;
    }

    fn add_resident(&mut self, now: SimTime, delta: i64) {
        let dt = now.saturating_since(self.last_resident_update).as_ps();
        self.resident_integral += self.resident_count as f64 * dt as f64;
        self.last_resident_update = now;
        self.resident_count = (self.resident_count as i64 + delta) as u32;
    }

    fn request_drain(&mut self) {
        if !self.drain_pending {
            self.drain_pending = true;
            self.engine.schedule_now(Ev::Drain);
        }
    }

    /// Re-aims SMM `sm`'s single armed completion prediction at the
    /// current earliest completion. A re-aim takes a fresh engine
    /// sequence number (see [`Engine::reschedule`]), so same-instant
    /// delivery order is exactly what cancel-plus-schedule would give.
    fn reschedule_sm(&mut self, sm: u32, now: SimTime) {
        match self.exec.next_completion(sm, now) {
            Some(t) => {
                if let Some(key) = self.sm_wake[sm as usize] {
                    if self.engine.reschedule(key, t) {
                        return;
                    }
                }
                let key = self.engine.schedule(t, Ev::SmWake { sm });
                self.sm_wake[sm as usize] = Some(key);
            }
            None => {
                if let Some(key) = self.sm_wake[sm as usize].take() {
                    self.engine.cancel(key);
                }
            }
        }
    }

    /// Promotes waiting kernels, places TBs, and drains finished-warp
    /// events, iterating to a fixed point. `out` receives external
    /// notifications. Touched SMMs get their wake events re-predicted.
    fn settle(&mut self, now: SimTime, out: &mut Vec<Notify>) {
        let mut dirty = vec![false; self.sm_res.len()];
        loop {
            while self.active.len() < self.cfg.max_concurrent_kernels as usize {
                match self.waiting.pop_front() {
                    Some(kid) => self.active.push(kid),
                    None => break,
                }
            }
            let placed = self.try_place(now, &mut dirty);
            let finished = self.exec.drain_finished();
            if !placed && finished.is_empty() {
                break;
            }
            for (w, tag) in finished {
                self.one_finished(now, w, tag, out, &mut dirty);
            }
        }
        for (sm, d) in dirty.into_iter().enumerate() {
            if d {
                self.reschedule_sm(sm as u32, now);
            }
        }
    }

    /// One placement sweep over active kernels. Returns whether any TB was
    /// placed.
    fn try_place(&mut self, now: SimTime, dirty: &mut [bool]) -> bool {
        let mut placed = false;
        for idx in 0..self.active.len() {
            let kid = self.active[idx];
            loop {
                let (foot, tb_index, total) = {
                    let k = &self.kernels[kid as usize];
                    (k.foot, k.next_tb, k.desc.blocks.len())
                };
                if tb_index >= total {
                    break;
                }
                let Some(sm) = Self::pick_sm(&self.sm_res, &foot) else {
                    break;
                };
                self.place_tb(now, kid, sm as u32);
                dirty[sm] = true;
                placed = true;
            }
        }
        placed
    }

    fn place_tb(&mut self, now: SimTime, kid: u32, sm: u32) {
        let (foot, tb_index) = {
            let k = &mut self.kernels[kid as usize];
            let i = k.next_tb;
            k.next_tb += 1;
            (k.foot, i)
        };
        Self::take(&mut self.sm_res[sm as usize], &foot);
        let warps: Vec<WarpHandle> = (0..foot.warps).map(|_| self.exec.create_warp(sm)).collect();
        let group = self.exec.create_group(&warps);
        self.add_resident(now, foot.warps as i64);
        let tb_id = self.tbs.len() as u32;
        self.tbs.push(TbCtx {
            kid,
            sm,
            warps: warps.clone(),
            group,
            done_warps: 0,
            warps_prefreed: 0,
            threads_prefreed: 0,
            regs_prefreed: 0,
            retired: false,
        });
        self.tbs_placed += 1;
        self.exec.advance_sm(sm, now);
        let block = self.kernels[kid as usize].desc.blocks[tb_index].clone();
        for (w, work) in warps.iter().zip(block.warps().iter().cloned()) {
            self.exec
                .assign(now, *w, work, NATIVE_BIT | u64::from(tb_id));
        }
        self.sample_sm(now, sm);
    }

    fn one_finished(
        &mut self,
        now: SimTime,
        warp: WarpHandle,
        tag: u64,
        out: &mut Vec<Notify>,
        dirty: &mut [bool],
    ) {
        if tag & NATIVE_BIT == 0 {
            self.sample_sm(now, self.exec.warp_sm(warp));
            out.push(Notify::WarpDone { warp, tag });
            return;
        }
        let tb_id = (tag & !NATIVE_BIT) as usize;
        let (sm, done, total, kid) = {
            let tb = &mut self.tbs[tb_id];
            tb.done_warps += 1;
            (tb.kid, tb.done_warps, tb.warps.len() as u32, tb.kid)
        };
        let _ = sm;
        if self.cfg.free_warps_individually && done < total {
            // Pagoda-style early release (§6.4 ablation): the warp slot and
            // its threads return to the pool before the TB retires, so a
            // queued TB can launch while this one's stragglers run. Regs,
            // shared memory, and the TB slot still wait for full retire.
            let foot = self.kernels[self.tbs[tb_id].kid as usize].foot;
            let tb = &mut self.tbs[tb_id];
            let tb_sm = tb.sm as usize;
            let threads = (foot.threads - tb.threads_prefreed).min(32);
            let regs = (foot.regs / foot.warps).min(foot.regs - tb.regs_prefreed);
            tb.warps_prefreed += 1;
            tb.threads_prefreed += threads;
            tb.regs_prefreed += regs;
            self.sm_res[tb_sm].warps += 1;
            self.sm_res[tb_sm].threads += threads;
            self.sm_res[tb_sm].regs += regs;
            self.add_resident(now, -1);
            dirty[tb_sm] = true;
            self.sample_sm(now, tb_sm as u32);
        }
        if done == total {
            self.retire_tb(now, tb_id, out, dirty);
            let _ = kid;
        }
    }

    fn retire_tb(&mut self, now: SimTime, tb_id: usize, out: &mut Vec<Notify>, dirty: &mut [bool]) {
        let (kid, sm, group, warps, pre) = {
            let tb = &mut self.tbs[tb_id];
            assert!(!tb.retired, "double TB retire");
            tb.retired = true;
            (
                tb.kid,
                tb.sm,
                tb.group,
                std::mem::take(&mut tb.warps),
                (tb.warps_prefreed, tb.threads_prefreed, tb.regs_prefreed),
            )
        };
        let foot = self.kernels[kid as usize].foot;
        Self::give(&mut self.sm_res[sm as usize], &foot, pre);
        self.add_resident(now, -((foot.warps - pre.0) as i64));
        self.exec.release_group(group);
        for w in warps {
            self.exec.retire_warp(w);
        }
        dirty[sm as usize] = true;
        self.sample_sm(now, sm);
        let k = &mut self.kernels[kid as usize];
        k.retired_tbs += 1;
        if k.retired_tbs as usize == k.desc.blocks.len() && !k.done {
            k.done = true;
            let tag = k.desc.tag;
            out.push(Notify::KernelDone { tag });
            self.active.retain(|&a| a != kid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{BlockWork, WarpWork};

    fn quiet_cfg() -> DeviceConfig {
        let mut c = DeviceConfig::titan_x();
        c.launch_issue_cost = Dur::from_ps(0);
        c
    }

    fn shape(threads: u32, tbs: u32) -> TaskShape {
        TaskShape {
            threads_per_tb: threads,
            num_tbs: tbs,
            regs_per_thread: 32,
            smem_per_tb: 0,
        }
    }

    /// Drains the device, returning kernel completions as (tag, time).
    fn run_all(dev: &mut GpuDevice) -> Vec<(u64, SimTime)> {
        let mut done = Vec::new();
        while let Some((t, batch)) = dev.step() {
            for n in batch {
                if let Notify::KernelDone { tag } = n {
                    done.push((tag, t));
                }
            }
        }
        done
    }

    #[test]
    fn single_kernel_runs_to_completion() {
        let mut dev = GpuDevice::new(quiet_cfg());
        // 1 TB x 1 warp, 32000 ti @ CPI 4 -> 4 us.
        let k = KernelDesc::uniform(shape(32, 1), WarpWork::compute(32_000, 4.0), 1);
        dev.launch_kernel(k).unwrap();
        let done = run_all(&mut dev);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 1);
        assert!((done[0].1.as_us_f64() - 4.0).abs() < 0.01, "{}", done[0].1);
    }

    #[test]
    fn launch_cost_serializes_front_end() {
        let mut cfg = quiet_cfg();
        cfg.launch_issue_cost = Dur::from_us(2);
        let mut dev = GpuDevice::new(cfg);
        for i in 0..4 {
            let k = KernelDesc::uniform(shape(32, 1), WarpWork::compute(0, 1.0), i);
            dev.launch_kernel(k).unwrap();
        }
        let done = run_all(&mut dev);
        assert_eq!(done.len(), 4);
        // Zero work: completion at issue time = 2, 4, 6, 8 us.
        let times: Vec<f64> = done.iter().map(|(_, t)| t.as_us_f64()).collect();
        assert_eq!(times, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn concurrency_cap_enforced() {
        // 33 one-TB kernels of 64 warps... each kernel occupies 2048
        // threads = 1 full SM's thread budget? Use 1024-thread TBs: 32
        // warps. 24 SMs hold 48 such TBs, so resources allow all 33; the
        // HyperQ cap (set to 2) must serialize instead.
        let mut cfg = quiet_cfg();
        cfg.max_concurrent_kernels = 2;
        let mut dev = GpuDevice::new(cfg);
        for i in 0..4 {
            let k = KernelDesc::uniform(shape(1024, 1), WarpWork::compute(32_000, 1.0), i);
            dev.launch_kernel(k).unwrap();
        }
        let done = run_all(&mut dev);
        assert_eq!(done.len(), 4);
        // Each kernel: 32 warps on an SM, issue-bound? 32 warps*32 lanes =
        // 1024 = 8x the 128 lanes -> per-warp rate 128e9/32 = 4e9;
        // 32000/4e9 = 8us. First two finish at 8us, next two at 16us.
        let t: Vec<f64> = done.iter().map(|(_, t)| t.as_us_f64()).collect();
        assert!(
            (t[0] - 8.0).abs() < 0.1 && (t[1] - 8.0).abs() < 0.1,
            "{t:?}"
        );
        assert!(
            (t[2] - 16.0).abs() < 0.1 && (t[3] - 16.0).abs() < 0.1,
            "{t:?}"
        );
    }

    #[test]
    fn tb_granularity_blocks_new_tb_until_whole_tb_retires() {
        // SM capacity trick: kernel A has TBs of 1024 threads with one
        // short warp and 31 long warps... verify that a second TB cannot
        // start until the whole first TB ends when resources are exhausted.
        let mut cfg = quiet_cfg();
        cfg.spec.num_sms = 1; // single-SM device for determinism
        let mut dev = GpuDevice::new(cfg);
        // Each TB: 32 warps (1024 threads). SM holds 2 TBs (2048 threads).
        // 3 TBs total: third must wait for a full TB retire.
        let mut warps = vec![WarpWork::compute(32_000, 1.0); 31];
        warps.push(WarpWork::compute(320_000, 1.0)); // one straggler warp
        let block = BlockWork::new(warps);
        let k = KernelDesc::new(shape(1024, 3), vec![block.clone(); 3], 7);
        dev.launch_kernel(k).unwrap();
        let done = run_all(&mut dev);
        assert_eq!(done.len(), 1);
        // Straggler dominates; with TB-granularity the third TB starts only
        // after a full TB (straggler included) retires.
        // Phase 1: TBs 0,1 resident (64 warps). Short warps finish, then
        // stragglers run. Completion must be strictly later than the
        // straggler-only bound of one TB.
        let t_end = done[0].1;
        assert!(t_end.as_us_f64() > 20.0, "end {}us", t_end.as_us_f64());
    }

    #[test]
    fn warp_granularity_frees_slots_earlier() {
        let mk = |free_individually: bool| {
            let mut cfg = quiet_cfg();
            cfg.spec.num_sms = 1;
            cfg.free_warps_individually = free_individually;
            let mut dev = GpuDevice::new(cfg);
            // TBs of 64 warps? max per TB is 32 warps. Use 32-warp TBs with
            // one straggler each; 4 TBs; SM fits 2 at a time by threads.
            let mut warps = vec![WarpWork::compute(3_200, 1.0); 31];
            warps.push(WarpWork::compute(3_200_000, 1.0));
            let block = BlockWork::new(warps);
            let k = KernelDesc::new(shape(1024, 4), vec![block.clone(); 4], 1);
            dev.launch_kernel(k).unwrap();
            let done = run_all(&mut dev);
            done[0].1
        };
        let tb_gran = mk(false);
        let warp_gran = mk(true);
        // Early warp freeing can only help (more issue share for
        // stragglers? no—slots don't change rate; but TB placement is
        // warp-slot limited? threads still held). With thread limits held,
        // times are equal; assert no regression.
        assert!(warp_gran <= tb_gran);
    }

    #[test]
    fn persistent_kernel_occupies_and_executes_assigned_work() {
        let mut dev = GpuDevice::new(quiet_cfg());
        // The MasterKernel shape: 48 TBs x 1024 threads, 32 KB smem.
        let mk = TaskShape {
            threads_per_tb: 1024,
            num_tbs: 48,
            regs_per_thread: 32,
            smem_per_tb: 32 * 1024,
        };
        let tbs = dev.launch_persistent(mk).unwrap();
        assert_eq!(tbs.len(), 48);
        // Two MTBs per SMM.
        let mut per_sm = vec![0; 24];
        for tb in &tbs {
            per_sm[tb.sm as usize] += 1;
        }
        assert!(per_sm.iter().all(|&c| c == 2), "{per_sm:?}");

        // Assign work to one executor warp and watch it complete.
        let w = tbs[0].warps[1];
        dev.assign_warp(w, WarpWork::compute(32_000, 4.0), 42);
        let mut seen = Vec::new();
        while let Some((t, batch)) = dev.step() {
            for n in batch {
                if let Notify::WarpDone { tag, .. } = n {
                    seen.push((tag, t));
                }
            }
        }
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, 42);
        assert!((seen[0].1.as_us_f64() - 4.0).abs() < 0.01);
    }

    #[test]
    fn persistent_grid_that_cannot_fit_fails() {
        let mut dev = GpuDevice::new(quiet_cfg());
        let mk = TaskShape {
            threads_per_tb: 1024,
            num_tbs: 49, // one more than fits
            regs_per_thread: 32,
            smem_per_tb: 32 * 1024,
        };
        assert!(dev.launch_persistent(mk).is_err());
    }

    #[test]
    fn native_and_persistent_share_the_machine() {
        let mut dev = GpuDevice::new(quiet_cfg());
        // Persistent kernel takes half of each SM (1 TB of 32 warps per SM).
        let mk = TaskShape {
            threads_per_tb: 1024,
            num_tbs: 24,
            regs_per_thread: 32,
            smem_per_tb: 0,
        };
        dev.launch_persistent(mk).unwrap();
        // Native kernel of 24 TBs fits in the other half.
        let k = KernelDesc::uniform(shape(1024, 24), WarpWork::compute(32_000, 1.0), 5);
        dev.launch_kernel(k).unwrap();
        let done = run_all(&mut dev);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn host_timers_fire_in_order() {
        let mut dev = GpuDevice::titan_x();
        dev.schedule_host(SimTime::from_us(10), 1);
        let key = dev.schedule_host(SimTime::from_us(5), 2);
        dev.schedule_host(SimTime::from_us(1), 3);
        dev.cancel_host(key);
        let mut seen = Vec::new();
        while let Some((_, batch)) = dev.step() {
            for n in batch {
                if let Notify::Host(tag) = n {
                    seen.push(tag);
                }
            }
        }
        assert_eq!(seen, vec![3, 1]);
    }

    #[test]
    fn occupancy_stats_reflect_residency() {
        let mut dev = GpuDevice::new(quiet_cfg());
        let mk = TaskShape {
            threads_per_tb: 1024,
            num_tbs: 48,
            regs_per_thread: 32,
            smem_per_tb: 32 * 1024,
        };
        let tbs = dev.launch_persistent(mk).unwrap();
        let w = tbs[0].warps[0];
        dev.assign_warp(w, WarpWork::compute(32_000, 4.0), 1);
        while dev.step().is_some() {}
        // All 1536 warps resident the whole time.
        assert!((dev.avg_resident_occupancy() - 1.0).abs() < 1e-9);
        // Only one warp ever ran.
        let run = dev.avg_running_occupancy();
        assert!((run - 1.0 / 1536.0).abs() < 1e-6, "running occ {run}");
    }

    #[test]
    fn invalid_kernel_rejected() {
        let mut dev = GpuDevice::titan_x();
        let bad = TaskShape {
            threads_per_tb: 64,
            num_tbs: 1,
            regs_per_thread: 32,
            smem_per_tb: 100 * 1024,
        };
        let k = KernelDesc::uniform(
            TaskShape {
                smem_per_tb: 0,
                ..bad
            },
            WarpWork::compute(1, 1.0),
            0,
        );
        // Rebuild with the bad smem but valid work shape:
        let k = KernelDesc { shape: bad, ..k };
        assert!(dev.launch_kernel(k).is_err());
    }

    #[test]
    fn obs_samples_residency_changes() {
        let mut dev = GpuDevice::new(quiet_cfg());
        let (obs, rec) = Obs::recording();
        dev.attach_obs(obs);
        let k = KernelDesc::uniform(shape(256, 2), WarpWork::compute(32_000, 4.0), 9);
        dev.launch_kernel(k).unwrap();
        run_all(&mut dev);
        let buf = rec.snapshot();
        assert_eq!(buf.counter(Counter::KernelLaunches), 1);
        assert!(buf.counter(Counter::EngineEvents) > 0);
        // One sample per TB place + one per TB retire.
        assert_eq!(buf.smm.len(), 4);
        let placed = &buf.smm[0];
        assert_eq!(placed.resident_warps, 8, "256 threads = 8 warps");
        assert_eq!(placed.free_tb_slots, dev.spec().max_tbs_per_sm - 1);
        let retired = buf.smm.last().unwrap();
        assert_eq!(retired.resident_warps, 0);
        assert_eq!(retired.running_warps, 0);
    }

    #[test]
    fn many_narrow_kernels_fill_device_breadth_first() {
        // 48 kernels x 1 TB x 8 warps: all fit simultaneously (8*48=384
        // warps over 1536 slots); with cap 48 they run concurrently and all
        // finish at the single-task time.
        let mut cfg = quiet_cfg();
        cfg.max_concurrent_kernels = 48;
        let mut dev = GpuDevice::new(cfg);
        for i in 0..48 {
            let k = KernelDesc::uniform(shape(256, 1), WarpWork::compute(32_000, 4.0), i);
            dev.launch_kernel(k).unwrap();
        }
        let done = run_all(&mut dev);
        assert_eq!(done.len(), 48);
        let last = done.last().unwrap().1;
        assert!(
            (last.as_us_f64() - 4.0).abs() < 0.05,
            "{}",
            last.as_us_f64()
        );
    }
}
