//! The [`Backend`] trait: the one task-execution surface every Pagoda
//! executor exposes.
//!
//! The serving loop (`pagoda-serve`), the examples, and the benches were
//! originally written against [`PagodaRuntime`]; the fleet manager
//! (`pagoda-cluster`) then grew a near-duplicate API and a `ServeBackend`
//! adapter to look like one. This trait replaces both: a single runtime
//! and an N-device fleet implement the same narrow surface — non-blocking
//! `submit`, `capacity` probe, completion `check`/`wait`, clock control,
//! `sync` — and everything above them is generic over `B: Backend`.
//!
//! Task keys are plain `u64`s: a single runtime uses its `TaskId` values,
//! a cluster uses fleet-unique keys that never collide across devices.
//! All simulated time is the backend's own clock ([`Backend::now`]);
//! implementations must be deterministic for the
//! records-are-byte-identical contract to hold.

use desim::{Dur, EngineStats, SimTime};
use pagoda_core::trace::TaskTrace;
use pagoda_core::{Capacity, PagodaError, PagodaRuntime, SubmitError, TaskDesc, TaskId};
use pagoda_obs::Obs;

/// The executor surface behind the serving loop, the examples, and the
/// benches. Implemented by `PagodaRuntime` (one simulated device) and by
/// `pagoda-cluster`'s `ClusterHandle` (an N-device fleet).
pub trait Backend {
    /// Non-blocking spawn of `desc` on behalf of `tenant` (a routing
    /// hint; a single runtime ignores it). Returns a backend-unique task
    /// key, or hands the descriptor back via [`SubmitError::Full`].
    fn submit(&mut self, tenant: u32, desc: TaskDesc) -> Result<u64, SubmitError>;

    /// Admission headroom in the backend's current view.
    fn capacity(&self) -> Capacity;

    /// Non-blocking completion check: refreshes the host view and reports
    /// whether `key` has finished. Errors on keys this backend never
    /// issued, or on tasks lost to a device failure.
    fn check(&mut self, key: u64) -> Result<bool, PagodaError>;

    /// Blocks (in simulated time) until `key` completes, returning the
    /// instant its output landed in host memory. Errors on unknown or
    /// lost tasks.
    fn wait(&mut self, key: u64) -> Result<SimTime, PagodaError>;

    /// Whether the completion of `key` has been observed host-side.
    /// Unlike [`Backend::check`] this neither syncs nor costs simulated
    /// time — it reads the current host view.
    ///
    /// # Panics
    /// May panic if `key` was not issued by this backend.
    fn observed_done(&self, key: u64) -> bool;

    /// When `key`'s output landed in host memory; `None` until its
    /// completion has been observed.
    fn completion_time(&self, key: u64) -> Option<SimTime>;

    /// The backend's current clock.
    fn now(&self) -> SimTime;

    /// Idles the backend to `t` (no-op if in the past), co-simulating
    /// whatever it owns up to that instant.
    fn advance_to(&mut self, t: SimTime);

    /// Refreshes the host view of completions (the §4.2.2 aggregate
    /// copy-back, fleet-wide for a cluster). Costs simulated time.
    fn sync(&mut self);

    /// The polling slice loops idle for when blocked on capacity.
    fn wait_timeout(&self) -> Dur;

    /// Mean fraction of device warp slots doing useful work so far.
    fn warp_occupancy(&mut self) -> f64;

    /// Runtime-level timelines of spawned tasks, in spawn order. May be
    /// empty for backends whose task keys do not map to one runtime's
    /// trace ids (a cluster exports per-device timelines via `pagoda-obs`
    /// instead).
    fn traces(&self) -> Vec<TaskTrace>;

    /// Attaches an observability sink; events from here on flow to it.
    fn attach_obs(&mut self, obs: Obs);

    /// Per-engine determinism fingerprints, one per simulated device in
    /// a stable order: two runs of the same configuration must produce
    /// identical vectors. Checkers and exploration harnesses compare
    /// these across serial/parallel drivers. Defaults to empty for
    /// backends without engines to fingerprint.
    fn engine_stats(&self) -> Vec<EngineStats> {
        Vec::new()
    }

    /// Number of simulated devices behind this backend (profiling group
    /// cardinality). A single runtime is one device; clusters override.
    fn num_devices(&self) -> u32 {
        1
    }
}

impl Backend for PagodaRuntime {
    fn submit(&mut self, _tenant: u32, desc: TaskDesc) -> Result<u64, SubmitError> {
        PagodaRuntime::submit(self, desc).map(|id| id.0)
    }

    fn capacity(&self) -> Capacity {
        PagodaRuntime::capacity(self)
    }

    fn check(&mut self, key: u64) -> Result<bool, PagodaError> {
        PagodaRuntime::check(self, TaskId(key))
    }

    fn wait(&mut self, key: u64) -> Result<SimTime, PagodaError> {
        PagodaRuntime::wait(self, TaskId(key))?;
        Ok(self
            .trace(TaskId(key))?
            .output_done
            .expect("invariant: wait returned, so the output landed"))
    }

    fn observed_done(&self, key: u64) -> bool {
        PagodaRuntime::observed_done(self, TaskId(key))
            .expect("invariant: callers only pass keys this runtime issued")
    }

    fn completion_time(&self, key: u64) -> Option<SimTime> {
        self.trace(TaskId(key))
            .expect("invariant: callers only pass keys this runtime issued")
            .output_done
    }

    fn now(&self) -> SimTime {
        self.host_now()
    }

    fn advance_to(&mut self, t: SimTime) {
        PagodaRuntime::advance_to(self, t);
    }

    fn sync(&mut self) {
        self.sync_table();
    }

    fn wait_timeout(&self) -> Dur {
        self.config().wait_timeout
    }

    fn warp_occupancy(&mut self) -> f64 {
        self.report().avg_running_occupancy
    }

    fn traces(&self) -> Vec<TaskTrace> {
        PagodaRuntime::traces(self)
    }

    fn attach_obs(&mut self, obs: Obs) {
        PagodaRuntime::attach_obs(self, obs);
    }

    fn engine_stats(&self) -> Vec<EngineStats> {
        vec![PagodaRuntime::engine_stats(self)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::WarpWork;

    #[test]
    fn runtime_backend_round_trips_a_task() {
        let mut rt = PagodaRuntime::titan_x();
        let b: &mut dyn Backend = &mut rt;
        assert!(b.capacity().has_room());
        let key = b
            .submit(0, TaskDesc::uniform(64, WarpWork::compute(10_000, 8.0)))
            .expect("empty table accepts");
        assert!(!b.observed_done(key));
        assert_eq!(b.completion_time(key), None);
        let mut guard = 0;
        while !b.check(key).expect("key was issued") {
            let t = b.now() + b.wait_timeout();
            b.advance_to(t);
            guard += 1;
            assert!(guard < 10_000, "task never completed");
        }
        let done = b.completion_time(key).expect("observed done has a time");
        assert!(done <= b.now());
        assert_eq!(b.traces().len(), 1);
    }

    #[test]
    fn runtime_backend_wait_returns_completion_instant() {
        let mut rt = PagodaRuntime::titan_x();
        let b: &mut dyn Backend = &mut rt;
        let key = b
            .submit(0, TaskDesc::uniform(64, WarpWork::compute(10_000, 8.0)))
            .expect("empty table accepts");
        let done = Backend::wait(b, key).expect("key was issued");
        assert_eq!(b.completion_time(key), Some(done));
        assert!(done <= b.now());
        assert!(matches!(
            b.check(u64::MAX),
            Err(PagodaError::UnknownTask { .. })
        ));
    }
}
