//! The native slot table: Pagoda's TaskTable with release/acquire
//! ordering instead of PCIe copies.
//!
//! Each slot moves through `FREE → CLAIMED → READY → RUNNING → FREE`:
//!
//! * a **spawner** CASes `FREE → CLAIMED` (acquiring exclusive write
//!   access to the slot's job cell), writes the job, then stores `READY`
//!   with `Release` — the publish;
//! * a **worker** CASes `READY → RUNNING` with `Acquire` (synchronizing
//!   with the publish), takes the job out, and stores `FREE` with
//!   `Release` once the cell is empty again.
//!
//! The single-CAS hand-off on each side is the whole synchronization
//! story: slots are independent, so spawners and workers only ever
//! contend when they race for the *same* slot, and the column-ownership
//! scan (own column first, then steal) keeps that rare. Compare with
//! `pagoda_core::table`, where the identical lifecycle needs the ready/
//! sched two-flag protocol, pipelined copies, and lazy aggregate
//! copy-backs purely because PCIe offers no atomics.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// A published task.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

const FREE: u8 = 0;
const CLAIMED: u8 = 1;
const READY: u8 = 2;
const RUNNING: u8 = 3;

struct Slot {
    state: AtomicU8,
    job: UnsafeCell<Option<Job>>,
}

// SAFETY: the `job` cell is only accessed by the thread that owns the
// slot's current state-machine stage: the spawner that CASed FREE→CLAIMED
// writes it; the worker that CASed READY→RUNNING takes it. The CAS +
// Release/Acquire pairs order those accesses.
unsafe impl Sync for Slot {}
unsafe impl Send for Slot {}

impl Slot {
    fn new() -> Self {
        Slot {
            state: AtomicU8::new(FREE),
            job: UnsafeCell::new(None),
        }
    }
}

/// Columns × rows of slots; column `c` is worker `c`'s home column.
pub(crate) struct SlotTable {
    slots: Vec<Slot>,
    cols: usize,
    rows: usize,
    /// Spawner round-robin cursor over columns (load spreading, like the
    /// GPU runtime's column cursor).
    spawn_cursor: AtomicUsize,
    /// Fast emptiness hint for parking decisions (monotonic counters).
    published: AtomicUsize,
    claimed: AtomicUsize,
}

impl SlotTable {
    pub(crate) fn new(cols: usize, rows: usize) -> Self {
        SlotTable {
            slots: (0..cols * rows).map(|_| Slot::new()).collect(),
            cols,
            rows,
            spawn_cursor: AtomicUsize::new(0),
            published: AtomicUsize::new(0),
            claimed: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn slot(&self, col: usize, row: usize) -> &Slot {
        &self.slots[col * self.rows + row]
    }

    /// Attempts to publish a job into some free slot; returns the job
    /// back if the whole table is busy.
    pub(crate) fn try_publish(&self, job: Job) -> Result<(), Job> {
        let start = self.spawn_cursor.fetch_add(1, Ordering::Relaxed) % self.cols;
        for k in 0..self.cols {
            let col = (start + k) % self.cols;
            for row in 0..self.rows {
                let s = self.slot(col, row);
                if s.state.load(Ordering::Relaxed) == FREE
                    && s.state
                        .compare_exchange(FREE, CLAIMED, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                {
                    // SAFETY: CLAIMED grants us exclusive access (see Slot).
                    unsafe { *s.job.get() = Some(job) };
                    s.state.store(READY, Ordering::Release);
                    self.published.fetch_add(1, Ordering::Release);
                    return Ok(());
                }
            }
        }
        Err(job)
    }

    /// Attempts to claim a ready job, scanning the worker's own column
    /// first and then stealing from the others.
    pub(crate) fn try_claim(&self, own_col: usize) -> Option<Job> {
        for k in 0..self.cols {
            let col = (own_col + k) % self.cols;
            for row in 0..self.rows {
                let s = self.slot(col, row);
                if s.state.load(Ordering::Relaxed) == READY
                    && s.state
                        .compare_exchange(READY, RUNNING, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                {
                    // SAFETY: RUNNING grants us exclusive access.
                    let job = unsafe { (*s.job.get()).take() }.expect("READY slot holds a job");
                    s.state.store(FREE, Ordering::Release);
                    self.claimed.fetch_add(1, Ordering::Release);
                    return Some(job);
                }
            }
        }
        None
    }

    /// Whether any published job might still be unclaimed (may spuriously
    /// say yes; never spuriously says no — safe for parking decisions).
    pub(crate) fn any_ready(&self) -> bool {
        self.published.load(Ordering::Acquire) > self.claimed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;
    use std::sync::Arc;

    #[test]
    fn publish_claim_roundtrip() {
        let t = SlotTable::new(2, 2);
        let hit = Arc::new(Counter::new(0));
        let h = Arc::clone(&hit);
        t.try_publish(Box::new(move || {
            h.fetch_add(1, Ordering::Relaxed);
        }))
        .map_err(|_| ())
        .unwrap();
        assert!(t.any_ready());
        let job = t.try_claim(0).expect("claimable");
        job();
        assert_eq!(hit.load(Ordering::Relaxed), 1);
        assert!(!t.any_ready());
        assert!(t.try_claim(0).is_none());
    }

    #[test]
    fn table_capacity_is_cols_times_rows() {
        let t = SlotTable::new(2, 3);
        for _ in 0..6 {
            assert!(t.try_publish(Box::new(|| {})).is_ok());
        }
        assert!(t.try_publish(Box::new(|| {})).is_err(), "7th must bounce");
        // Claiming one frees one.
        let _ = t.try_claim(1).unwrap();
        assert!(t.try_publish(Box::new(|| {})).is_ok());
    }

    #[test]
    fn stealing_reaches_other_columns() {
        let t = SlotTable::new(4, 1);
        t.try_publish(Box::new(|| {})).map_err(|_| ()).unwrap();
        // Whichever column it landed in, worker 3 can steal it.
        assert!(t.try_claim(3).is_some());
    }

    #[test]
    fn concurrent_publishers_and_claimers_conserve_jobs() {
        let t = Arc::new(SlotTable::new(4, 8));
        let executed = Arc::new(Counter::new(0));
        let produced = 4 * 2000;
        let claimers: Vec<_> = (0..4)
            .map(|w| {
                let t = Arc::clone(&t);
                let executed = Arc::clone(&executed);
                std::thread::spawn(move || {
                    let mut got = 0;
                    while got < 2000 {
                        if let Some(job) = t.try_claim(w) {
                            job();
                            got += 1;
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    let _ = &executed;
                })
            })
            .collect();
        let publishers: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                let executed = Arc::clone(&executed);
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        let e = Arc::clone(&executed);
                        let mut job: Job = Box::new(move || {
                            e.fetch_add(1, Ordering::Relaxed);
                        });
                        loop {
                            match t.try_publish(job) {
                                Ok(()) => break,
                                Err(back) => {
                                    job = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for h in publishers.into_iter().chain(claimers) {
            h.join().unwrap();
        }
        assert_eq!(executed.load(Ordering::Relaxed), produced);
    }
}
