//! **pagoda-host** — Pagoda's TaskTable scheduling design on real CPU
//! threads.
//!
//! The simulated runtime in `pagoda-core` reproduces the paper; this
//! crate demonstrates that the *design* — a fixed table of task slots,
//! single-writer hand-off per slot, executors that claim work at the
//! finest granularity available — is a useful native scheduler in its own
//! right. It is what Pagoda looks like when "warp" means "worker thread"
//! and "PCIe visibility" means "release/acquire ordering":
//!
//! * a fixed **slot table** (columns × rows) replaces the TaskTable; a
//!   spawner claims a `FREE` slot with one CAS, writes the job, and
//!   publishes it with a `Release` store — no queue, no global lock;
//! * each **worker owns a column** (its "MTB"), scanning it first and
//!   stealing from neighbours when idle — the same load-spreading that
//!   the GPU runtime gets from per-column scheduler warps;
//! * the paper's ready-field pipelining disappears: shared-memory
//!   atomics give the ordering guarantees that Pagoda had to build from
//!   one-way DMA writes. This contrast is the point — the TaskTable
//!   protocol *is* the price of PCIe.
//!
//! The crate also defines [`Backend`], the host-side trait every Pagoda
//! executor implements (`PagodaRuntime` here; `ClusterHandle` in
//! `pagoda-cluster`) so serving loops, examples, and benches are generic
//! over one surface.
//!
//! ```
//! use pagoda_host::HostPagoda;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let rt = HostPagoda::new(4, 64);
//! let sum = Arc::new(AtomicU64::new(0));
//! for i in 0..1000u64 {
//!     let sum = Arc::clone(&sum);
//!     rt.spawn(move || {
//!         sum.fetch_add(i, Ordering::Relaxed);
//!     });
//! }
//! rt.wait_all();
//! assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
//! ```

mod backend;
mod slots;

pub use backend::Backend;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use pagoda_obs::{Counter, Obs};
use parking_lot::{Condvar, Mutex};

use slots::{Job, SlotTable};

/// A handle to one spawned task.
#[derive(Debug, Clone)]
pub struct TaskHandle {
    done: Arc<AtomicBool>,
}

impl TaskHandle {
    /// Non-blocking completion check (the paper's `check`).
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

struct Shared {
    table: SlotTable,
    obs: Obs,
    spawned: AtomicU64,
    completed: AtomicU64,
    panicked: AtomicU64,
    shutdown: AtomicBool,
    /// Sleep/wake for idle workers and blocked waiters.
    idle_lock: Mutex<()>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// The native narrow-task executor. Dropping it shuts the workers down
/// (after outstanding tasks finish).
pub struct HostPagoda {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl HostPagoda {
    /// Creates an executor with `workers` threads and `rows` task slots
    /// per worker column.
    ///
    /// # Panics
    /// Panics if either parameter is zero.
    pub fn new(workers: usize, rows: usize) -> Self {
        Self::with_obs(workers, rows, Obs::off())
    }

    /// [`HostPagoda::new`] with an observability sink: spawn/completion
    /// counters flow to the same recorder as the simulated runtimes',
    /// so native and simulated executions are comparable side by side.
    ///
    /// # Panics
    /// Panics if either size parameter is zero.
    pub fn with_obs(workers: usize, rows: usize, obs: Obs) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(rows > 0, "need at least one slot per column");
        let shared = Arc::new(Shared {
            table: SlotTable::new(workers, rows),
            obs,
            spawned: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pagoda-host-{w}"))
                    .spawn(move || worker_loop(w, &shared))
                    .expect("spawn worker thread")
            })
            .collect();
        HostPagoda {
            shared,
            workers: handles,
        }
    }

    /// An executor sized to the machine (one worker per core, 32 rows —
    /// the paper's TaskTable depth).
    pub fn with_default_size() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self::new(workers, 32)
    }

    /// Spawns a task (the paper's `taskSpawn`): finds a free slot —
    /// blocking briefly if the table is full, exactly the paper's
    /// admission throttle — publishes the job, and wakes a worker.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, job: F) -> TaskHandle {
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        let boxed: Job = Box::new(move || {
            job();
            flag.store(true, Ordering::Release);
        });
        self.shared.spawned.fetch_add(1, Ordering::Relaxed);
        self.shared.obs.count(Counter::TasksSpawned, 1);
        let mut job = boxed;
        loop {
            match self.shared.table.try_publish(job) {
                Ok(()) => break,
                Err(returned) => {
                    job = returned;
                    // Table full: let workers drain a little (the lazy
                    // aggregate copy-back analogue is just a short sleep —
                    // completion is immediately visible here).
                    std::thread::yield_now();
                }
            }
        }
        self.shared.work_cv.notify_one();
        TaskHandle { done }
    }

    /// Unified spawn name: the simulated `pagoda-core` runtime, the
    /// fleet-level `pagoda-cluster` handle, and this native executor all
    /// expose `submit` as the one spawn entry point; this is an alias of
    /// [`HostPagoda::spawn`] for call sites written against that shape.
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) -> TaskHandle {
        self.spawn(job)
    }

    /// Blocks until `handle`'s task completes (the paper's `wait`).
    pub fn wait(&self, handle: &TaskHandle) {
        let mut guard = self.shared.idle_lock.lock();
        while !handle.is_done() {
            self.shared
                .done_cv
                .wait_for(&mut guard, std::time::Duration::from_millis(1));
        }
    }

    /// Blocks until every spawned task has completed (`waitAll`).
    pub fn wait_all(&self) {
        let mut guard = self.shared.idle_lock.lock();
        while self.shared.completed.load(Ordering::Acquire)
            < self.shared.spawned.load(Ordering::Acquire)
        {
            self.shared
                .done_cv
                .wait_for(&mut guard, std::time::Duration::from_millis(1));
        }
    }

    /// Tasks that panicked so far (panics are contained per task).
    pub fn panicked_tasks(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Tasks completed so far.
    pub fn completed_tasks(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }
}

impl Drop for HostPagoda {
    fn drop(&mut self) {
        self.wait_all();
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// One executor: scan the own column first (cache-warm, contention-free
/// in the common case), then steal round-robin — Pagoda's per-MTB
/// scheduling with idle-warp stealing replaced by idle-thread stealing.
fn worker_loop(own_col: usize, shared: &Shared) {
    let mut backoff = 0u32;
    loop {
        if let Some(job) = shared.table.try_claim(own_col) {
            backoff = 0;
            let result = catch_unwind(AssertUnwindSafe(job));
            if result.is_err() {
                shared.panicked.fetch_add(1, Ordering::Relaxed);
            }
            shared.completed.fetch_add(1, Ordering::Release);
            shared.obs.count(Counter::TasksFreed, 1);
            shared.done_cv.notify_all();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Nothing claimable: spin briefly, then park until a spawn.
        backoff += 1;
        if backoff < 16 {
            std::hint::spin_loop();
        } else {
            let mut guard = shared.idle_lock.lock();
            if !shared.table.any_ready() && !shared.shutdown.load(Ordering::Acquire) {
                shared
                    .work_cv
                    .wait_for(&mut guard, std::time::Duration::from_millis(1));
            }
            backoff = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_tasks() {
        let rt = HostPagoda::new(4, 8);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..10_000 {
            let c = Arc::clone(&count);
            rt.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.wait_all();
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
        assert_eq!(rt.panicked_tasks(), 0);
    }

    #[test]
    fn submit_is_spawn() {
        let rt = HostPagoda::new(2, 4);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let c = Arc::clone(&count);
            rt.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.wait_all();
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn obs_counters_match_native_counters() {
        let (obs, rec) = Obs::recording();
        let rt = HostPagoda::with_obs(4, 8, obs);
        for _ in 0..500 {
            rt.spawn(|| {});
        }
        rt.wait_all();
        let buf = rec.snapshot();
        assert_eq!(buf.counter(Counter::TasksSpawned), 500);
        assert_eq!(buf.counter(Counter::TasksFreed), rt.completed_tasks());
        assert_eq!(rt.completed_tasks(), 500);
    }

    #[test]
    fn wait_on_single_task() {
        let rt = HostPagoda::new(2, 4);
        let flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&flag);
        let h = rt.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            f.store(true, Ordering::Release);
        });
        rt.wait(&h);
        assert!(flag.load(Ordering::Acquire));
        assert!(h.is_done());
    }

    #[test]
    fn tasks_actually_run_in_parallel() {
        use std::time::{Duration, Instant};
        let rt = HostPagoda::new(4, 16);
        let t0 = Instant::now();
        for _ in 0..8 {
            rt.spawn(|| std::thread::sleep(Duration::from_millis(50)));
        }
        rt.wait_all();
        let elapsed = t0.elapsed();
        // 8 x 50 ms over 4 workers = ~100 ms; serial would be 400 ms.
        assert!(elapsed < Duration::from_millis(320), "took {elapsed:?}");
    }

    #[test]
    fn panics_are_contained() {
        let rt = HostPagoda::new(2, 4);
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..100 {
            let c = Arc::clone(&count);
            rt.spawn(move || {
                if i % 10 == 0 {
                    panic!("task {i} blew up");
                }
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.wait_all();
        assert_eq!(rt.panicked_tasks(), 10);
        assert_eq!(count.load(Ordering::Relaxed), 90);
    }

    #[test]
    fn full_table_throttles_but_never_loses_tasks() {
        // 1 worker, 1 slot: the spawner must repeatedly wait for the slot.
        let rt = HostPagoda::new(1, 1);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..500 {
            let c = Arc::clone(&count);
            rt.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.wait_all();
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn drop_waits_for_outstanding_tasks() {
        let count = Arc::new(AtomicUsize::new(0));
        {
            let rt = HostPagoda::new(3, 8);
            for _ in 0..200 {
                let c = Arc::clone(&count);
                rt.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No wait_all: Drop must flush.
        }
        assert_eq!(count.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn narrow_task_flood_from_multiple_spawners() {
        let rt = Arc::new(HostPagoda::new(4, 32));
        let count = Arc::new(AtomicUsize::new(0));
        let spawners: Vec<_> = (0..4)
            .map(|_| {
                let rt = Arc::clone(&rt);
                let count = Arc::clone(&count);
                std::thread::spawn(move || {
                    for _ in 0..2_500 {
                        let c = Arc::clone(&count);
                        rt.spawn(move || {
                            c.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for s in spawners {
            s.join().unwrap();
        }
        rt.wait_all();
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
    }
}
