//! Throughput of the native slot-table executor vs a plain
//! mutex-protected queue — the DESIGN.md "buddy vs free-list"-style
//! ablation applied to the spawning path: how much does Pagoda's
//! slot-CAS hand-off buy over the obvious lock?

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pagoda_host::HostPagoda;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

const TASKS: usize = 20_000;

fn bench_slot_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("host/spawn_drain_20k");
    g.sample_size(10);
    g.throughput(Throughput::Elements(TASKS as u64));
    g.bench_function("pagoda_host", |b| {
        b.iter(|| {
            let rt = HostPagoda::new(4, 64);
            let count = Arc::new(AtomicUsize::new(0));
            for _ in 0..TASKS {
                let c = Arc::clone(&count);
                rt.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            rt.wait_all();
            assert_eq!(count.load(Ordering::Relaxed), TASKS);
        })
    });
    g.bench_function("mutex_queue", |b| {
        b.iter(|| {
            // The baseline every textbook reaches for first.
            type Job = Box<dyn FnOnce() + Send>;
            struct Q {
                q: Mutex<VecDeque<Job>>,
                cv: Condvar,
                done: AtomicBool,
            }
            let q = Arc::new(Q {
                q: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                done: AtomicBool::new(false),
            });
            let count = Arc::new(AtomicUsize::new(0));
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || loop {
                        let job = {
                            let mut g = q.q.lock();
                            loop {
                                if let Some(j) = g.pop_front() {
                                    break Some(j);
                                }
                                if q.done.load(Ordering::Acquire) {
                                    break None;
                                }
                                q.cv.wait_for(&mut g, std::time::Duration::from_millis(1));
                            }
                        };
                        match job {
                            Some(j) => j(),
                            None => return,
                        }
                    })
                })
                .collect();
            for _ in 0..TASKS {
                let c = Arc::clone(&count);
                q.q.lock().push_back(Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }));
                q.cv.notify_one();
            }
            q.done.store(true, Ordering::Release);
            q.cv.notify_all();
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(count.load(Ordering::Relaxed), TASKS);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_slot_table);
criterion_main!(benches);
