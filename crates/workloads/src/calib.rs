//! Calibration: the machine-balance constants that turn algorithm
//! operation counts into simulated time.
//!
//! One set of constants serves every figure — nothing here is tuned per
//! experiment. Two numbers matter:
//!
//! * **CPU throughput**: one Xeon E5-2660v3 core running `gcc -O3`
//!   narrow-task code sustains [`CPU_OPS_PER_SEC`] ≈ 8.5 G thread-ops/s
//!   alone; all 20 cores together are capped by the socket-pair memory
//!   system at [`CPU_MEM_BW_OPS_PER_SEC`] ≈ 60 G ops/s (~7× scaling, the
//!   paper's PThreads-vs-sequential gap).
//! * **Per-warp CPI**: the *unhidden* latency a lone warp of each kernel
//!   sees between issued instructions. This is the knob that encodes the
//!   whole underutilization story — a lone warp with CPI 12 runs at
//!   32·f/12 ≈ 2.7 G thread-ops/s while a full SMM sustains 128 G, so a
//!   device occupied at 8 % runs ~12× below peak, which is precisely the
//!   gap Pagoda closes. Memory-bound kernels (DCT, CONV) have CPI above
//!   16, meaning even a fully occupied SMM cannot reach issue peak —
//!   modelling bandwidth-boundedness.

/// Sustained single-core CPU throughput, thread-ops per second.
pub const CPU_OPS_PER_SEC: f64 = 8.5e9;
/// Aggregate CPU memory-system throughput cap, thread-ops per second.
pub const CPU_MEM_BW_OPS_PER_SEC: f64 = 60.0e9;

/// Per-benchmark cost model: per-warp CPI with and without shared memory.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// CPI of the kernel's global-memory version.
    pub cpi: f64,
    /// CPI when staging through shared memory (only differs for the
    /// benchmarks Table 3 marks as shared-memory candidates).
    pub cpi_smem: f64,
}

/// Mandelbrot: compute-dense but divergent (warp lanes escape at
/// different iterations).
pub const MB: CostModel = CostModel {
    cpi: 12.0,
    cpi_smem: 12.0,
};
/// FilterBank: FIR taps stream from global memory.
pub const FB: CostModel = CostModel {
    cpi: 10.0,
    cpi_smem: 10.0,
};
/// BeamFormer: highest arithmetic density of the suite (87 % compute).
pub const BF: CostModel = CostModel {
    cpi: 8.0,
    cpi_smem: 8.0,
};
/// Image convolution: neighbourhood reads dominate.
pub const CONV: CostModel = CostModel {
    cpi: 14.0,
    cpi_smem: 14.0,
};
/// DCT8x8: short arithmetic bursts between strided loads; shared-memory
/// staging removes most of the stall (Table 5).
pub const DCT: CostModel = CostModel {
    cpi: 20.0,
    cpi_smem: 13.0,
};
/// Matrix multiply: classic smem-tiling beneficiary (Table 5).
pub const MM: CostModel = CostModel {
    cpi: 24.0,
    cpi_smem: 10.0,
};
/// Sparse LU: small dense tiles, decent locality.
pub const SLUD: CostModel = CostModel {
    cpi: 12.0,
    cpi_smem: 12.0,
};
/// 3DES: S-box table lookups.
pub const DES3: CostModel = CostModel {
    cpi: 10.0,
    cpi_smem: 10.0,
};

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_arch::GpuSpec;

    #[test]
    fn saturation_occupancy_is_reachable_for_compute_kernels() {
        // A kernel with CPI c saturates an SMM once W >= issue_width * c.
        // For the compute-dense kernels that point must lie within the 64
        // warp slots, otherwise full occupancy could never reach peak.
        let spec = GpuSpec::titan_x();
        for m in [MB, FB, BF, CONV] {
            let w_needed = spec.issue_width() as f64 * m.cpi;
            assert!(
                w_needed <= spec.max_warps_per_sm as f64,
                "CPI {} needs {} warps to saturate",
                m.cpi,
                w_needed
            );
        }
    }

    #[test]
    fn memory_bound_kernels_never_reach_issue_peak() {
        let spec = GpuSpec::titan_x();
        for m in [DCT, MM] {
            let w_needed = spec.issue_width() as f64 * m.cpi;
            assert!(w_needed > spec.max_warps_per_sm as f64);
            // ...unless shared memory staging lowers the CPI (Table 5).
            let w_smem = spec.issue_width() as f64 * m.cpi_smem;
            assert!(w_smem < 1.5 * spec.max_warps_per_sm as f64);
        }
    }

    #[test]
    fn gpu_cpu_balance_is_in_range() {
        // Whole-GPU peak over one CPU core should sit in the hundreds —
        // 3072 CUDA cores vs one 2.6 GHz core.
        let spec = GpuSpec::titan_x();
        let gpu_peak = spec.sm_peak_ops_per_sec() * spec.num_sms as f64;
        let ratio = gpu_peak / CPU_OPS_PER_SEC;
        assert!((100.0..1000.0).contains(&ratio), "balance {ratio}");
        // And over the whole bandwidth-bound 20-core machine: tens.
        let machine = gpu_peak / CPU_MEM_BW_OPS_PER_SEC;
        assert!(
            (10.0..100.0).contains(&machine),
            "machine balance {machine}"
        );
    }
}
