//! BeamFormer (BF): delay-and-sum beamforming (StreamIt). One task steers
//! one beam from an array of sensor channels — the most arithmetically
//! dense benchmark of the suite (Table 3: 87 % compute). Regular, no
//! synchronization.

use pagoda_core::TaskDesc;

use crate::calib;
use crate::gen::uniform_block;
use crate::GenOpts;

/// Samples per channel (signals of width 2 K).
pub const N_SIM: usize = 2048;
/// Sensor channels combined per beam.
pub const CHANNELS: usize = 64;

/// Delay-and-sum with per-channel complex weights: for each output sample
/// `t`, `out[t] = Σ_c (wr_c + i·wi_c) · x_c[t - delay_c]`, magnitude
/// output.
pub fn beamform(
    channels: &[Vec<f32>],
    weights_re: &[f32],
    weights_im: &[f32],
    delays: &[usize],
) -> Vec<f32> {
    let n = channels[0].len();
    assert!(channels.iter().all(|c| c.len() == n), "ragged channels");
    assert_eq!(channels.len(), weights_re.len());
    assert_eq!(channels.len(), weights_im.len());
    assert_eq!(channels.len(), delays.len());
    let mut out = vec![0.0f32; n];
    for (t, o) in out.iter_mut().enumerate() {
        let mut acc_re = 0.0f32;
        let mut acc_im = 0.0f32;
        for (c, ch) in channels.iter().enumerate() {
            let idx = t.checked_sub(delays[c]);
            let x = idx.map_or(0.0, |i| ch[i]);
            acc_re += weights_re[c] * x;
            acc_im += weights_im[c] * x;
        }
        *o = (acc_re * acc_re + acc_im * acc_im).sqrt();
    }
    out
}

/// Per-task thread-op count: per sample, each channel contributes a
/// complex MAC (~6 ops) plus delayed-load math (~2), then the magnitude
/// (~6).
fn task_ops() -> u64 {
    (N_SIM * (CHANNELS * 8 + 6)) as u64
}

/// Generates `n` BeamFormer tasks.
pub fn tasks(n: usize, opts: &GenOpts) -> Vec<TaskDesc> {
    let scaled = crate::gen::scale_ops(task_ops(), opts.work_scale);
    let ops_per_thread = scaled / u64::from(opts.threads_per_task);
    let block = uniform_block(opts.threads_per_task, ops_per_thread, calib::BF.cpi, &[1.0]);
    let t = TaskDesc {
        threads_per_tb: opts.threads_per_task,
        num_tbs: 1,
        smem_per_tb: 0,
        sync: false,
        blocks: vec![block],
        input_bytes: if opts.with_io { (N_SIM * 4) as u64 } else { 0 },
        output_bytes: if opts.with_io { (N_SIM * 4) as u64 } else { 0 },
        cpu_ops: crate::gen::scale_ops(task_ops(), opts.work_scale),
    };
    vec![t; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_channel_unit_weight_is_magnitude_identity() {
        let x: Vec<f32> = (0..32).map(|i| i as f32 - 16.0).collect();
        let out = beamform(std::slice::from_ref(&x), &[1.0], &[0.0], &[0]);
        for (o, v) in out.iter().zip(&x) {
            assert!((o - v.abs()).abs() < 1e-5);
        }
    }

    #[test]
    fn delays_shift_contributions() {
        let mut imp = vec![0.0f32; 16];
        imp[0] = 1.0;
        let out = beamform(&[imp], &[1.0], &[0.0], &[3]);
        assert_eq!(out[2], 0.0);
        assert!((out[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn coherent_channels_add() {
        let x = vec![1.0f32; 8];
        let out = beamform(&[x.clone(), x.clone()], &[1.0, 1.0], &[0.0, 0.0], &[0, 0]);
        assert!((out[0] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn tasks_shape() {
        let ts = tasks(3, &GenOpts::default());
        assert_eq!(ts.len(), 3);
        assert!(!ts[0].sync);
        ts[0].validate().unwrap();
        // Compute-dense: more ops than FilterBank per byte of I/O.
        assert!(ts[0].total_instrs() > 200_000);
    }
}
