//! FilterBank (FB): multi-stage FIR signal processing (StreamIt), the
//! paper's running example (Fig. 1c). One task processes one signal of
//! width 2 K through: convolve-H → downsample → upsample → convolve-F,
//! with a `syncBlock()` between stages. Regular work, threadblock
//! synchronization required (Table 3).

use pagoda_core::TaskDesc;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::calib;
use crate::gen::uniform_block;
use crate::GenOpts;

/// Signal width per task (paper Table 3: "signals of width 2K").
pub const N_SIM: usize = 2048;
/// FIR taps per filter (the `N_col` of Fig. 1c).
pub const N_COL: usize = 32;
/// Downsampling factor.
pub const N_SAMP: usize = 8;

/// Causal FIR convolution: `out[t] = Σ_k h[k]·x[t-k]` (zero history).
pub fn convolve(x: &[f32], h: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; x.len()];
    for t in 0..x.len() {
        let mut acc = 0.0;
        for (k, &hk) in h.iter().enumerate() {
            if t >= k {
                acc += hk * x[t - k];
            }
        }
        out[t] = acc;
    }
    out
}

/// Keeps every `factor`-th sample.
pub fn downsample(x: &[f32], factor: usize) -> Vec<f32> {
    x.iter().step_by(factor).copied().collect()
}

/// Zero-stuffing upsample back to `len`.
pub fn upsample(x: &[f32], factor: usize, len: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; len];
    for (i, &v) in x.iter().enumerate() {
        let j = i * factor;
        if j < len {
            out[j] = v;
        }
    }
    out
}

/// The whole FilterBank pipeline for one signal (the reference the GPU
/// kernel in Fig. 1c computes).
pub fn filterbank(signal: &[f32], h: &[f32], f: &[f32]) -> Vec<f32> {
    let a = convolve(signal, h);
    let d = downsample(&a, N_SAMP);
    let u = upsample(&d, N_SAMP, signal.len());
    convolve(&u, f)
}

/// Per-task GPU thread-op count: two dense convolutions dominate — per
/// tap a MAC (2 ops), two loads, and boundary/index arithmetic (~6 ops
/// total) — plus the resample stages.
fn task_ops() -> u64 {
    let conv = (N_SIM * N_COL * 6) as u64;
    let resample = (2 * N_SIM / N_SAMP) as u64;
    2 * conv + resample
}

/// Generates `n` FilterBank tasks. Work is regular, so every task is
/// identical up to its (irrelevant to timing) signal contents.
pub fn tasks(n: usize, opts: &GenOpts) -> Vec<TaskDesc> {
    let _rng = SmallRng::seed_from_u64(opts.seed ^ 0x6662);
    let scaled = crate::gen::scale_ops(task_ops(), opts.work_scale);
    let ops_per_thread = scaled / u64::from(opts.threads_per_task);
    // Four synchronized stages: H-convolution, down, up, F-convolution.
    let block = uniform_block(
        opts.threads_per_task,
        ops_per_thread,
        calib::FB.cpi,
        &[0.48, 0.02, 0.02, 0.48],
    );
    let t = TaskDesc {
        threads_per_tb: opts.threads_per_task,
        num_tbs: 1,
        smem_per_tb: 0,
        sync: true,
        blocks: vec![block],
        input_bytes: if opts.with_io { (N_SIM * 4) as u64 } else { 0 },
        output_bytes: if opts.with_io { (N_SIM * 4) as u64 } else { 0 },
        cpu_ops: crate::gen::scale_ops(task_ops(), opts.work_scale),
    };
    vec![t; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convolve_identity() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let h = vec![1.0];
        assert_eq!(convolve(&x, &h), x);
    }

    #[test]
    fn convolve_delay() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let h = vec![0.0, 1.0]; // one-sample delay
        assert_eq!(convolve(&x, &h), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn down_up_roundtrip_keeps_kept_samples() {
        let x: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let d = downsample(&x, 8);
        assert_eq!(d.len(), 8);
        let u = upsample(&d, 8, 64);
        assert_eq!(u[0], 0.0);
        assert_eq!(u[8], 8.0);
        assert_eq!(u[9], 0.0, "zero-stuffed");
    }

    #[test]
    fn pipeline_linear_in_input() {
        // Filterbank is linear: F(2x) = 2 F(x).
        let h: Vec<f32> = (0..N_COL).map(|k| 1.0 / (k + 1) as f32).collect();
        let f: Vec<f32> = (0..N_COL).map(|k| 0.5 / (k + 1) as f32).collect();
        let x: Vec<f32> = (0..256).map(|i| (i as f32 * 0.1).sin()).collect();
        let y1 = filterbank(&x, &h, &f);
        let x2: Vec<f32> = x.iter().map(|v| v * 2.0).collect();
        let y2 = filterbank(&x2, &h, &f);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((2.0 * a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn tasks_are_sync_and_regular() {
        let ts = tasks(5, &GenOpts::default());
        assert!(ts.iter().all(|t| t.sync));
        assert!(ts.iter().all(|t| t.total_instrs() == ts[0].total_instrs()));
        ts[0].validate().unwrap();
        assert_eq!(ts[0].blocks[0].warps()[0].barrier_count(), 3);
    }
}
