//! Sparse LU Decomposition (SLUD): a multifrontal-style block-sparse LU
//! solver (Barcelona OpenMP Task Suite's sparselu). The matrix is a grid
//! of 32×32 dense tiles, many of which are empty; factorization proceeds
//! in waves — factor the diagonal tile, triangular-solve its row and
//! column, then Schur-update the trailing submatrix, *creating fill-in*.
//!
//! Two properties matter for the paper:
//!
//! * the task count is **not known statically** (fill-in depends on the
//!   pattern), which is why GeMTC cannot run SLUD (§6.2) and static fusion
//!   cannot fuse it (§6.3);
//! * tasks are tiny (one 32×32 tile of dense work) and irregular in count
//!   per wave — the extreme narrow-task case (273 K tasks in the paper).

use pagoda_core::TaskDesc;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::calib;
use crate::gen::uniform_block;
use crate::GenOpts;

/// Tile side (paper Table 3: 32×32 matrix per task).
pub const TILE: usize = 32;

/// Dense LU (Doolittle, no pivoting) of a row-major `n×n` matrix.
/// Returns `(l, u)` with unit-diagonal `L`. Callers supply diagonally
/// dominant matrices (the BOTS benchmark does the same).
pub fn dense_lu(a: &[f32], n: usize) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(a.len(), n * n);
    let mut u = a.to_vec();
    let mut l = vec![0.0f32; n * n];
    for i in 0..n {
        l[i * n + i] = 1.0;
    }
    for k in 0..n {
        let pivot = u[k * n + k];
        assert!(
            pivot.abs() > 1e-12,
            "zero pivot at {k}; matrix not factorable"
        );
        for i in k + 1..n {
            let m = u[i * n + k] / pivot;
            l[i * n + k] = m;
            u[i * n + k] = 0.0; // exactly, not m·pivot rounding dust
            for j in k + 1..n {
                u[i * n + j] -= m * u[k * n + j];
            }
        }
    }
    (l, u)
}

/// The kind of tile task a factorization step generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileTask {
    /// LU-factor the diagonal tile (`lu0` in BOTS).
    Factor,
    /// Triangular solve of a row/column tile (`fwd`/`bdiv`).
    Solve,
    /// Schur-complement GEMM update of a trailing tile (`bmod`).
    Update,
}

impl TileTask {
    /// Thread-ops of one tile task (dense 32×32 kernels: ~2/3·b³ for the
    /// factor, b³ per triangular solve, 2·b³ for the GEMM update, with ~2
    /// ops per MAC plus addressing).
    pub fn ops(self) -> u64 {
        let b = TILE as u64;
        match self {
            TileTask::Factor => 2 * b * b * b / 3 * 3,
            TileTask::Solve => b * b * b * 3,
            TileTask::Update => 2 * b * b * b * 3,
        }
    }
}

/// Symbolic block factorization of an `nb×nb` tile grid with random
/// off-diagonal density. Returns dependency *waves*: all tasks within one
/// wave are independent; wave *k+1* depends on wave *k*. Three waves per
/// elimination step: `[factor]`, `[solves…]`, `[updates…]`.
pub fn symbolic_waves(nb: usize, density: f64, seed: u64) -> Vec<Vec<TileTask>> {
    assert!(nb > 0, "empty grid");
    assert!((0.0..=1.0).contains(&density), "density out of range");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x515d);
    let mut nz = vec![false; nb * nb];
    for i in 0..nb {
        nz[i * nb + i] = true; // structurally nonsingular diagonal
        for j in 0..nb {
            if i != j && rng.gen_bool(density) {
                nz[i * nb + j] = true;
            }
        }
    }
    let mut waves = Vec::new();
    for k in 0..nb {
        waves.push(vec![TileTask::Factor]);
        let mut solves = Vec::new();
        for i in k + 1..nb {
            if nz[i * nb + k] {
                solves.push(TileTask::Solve);
            }
            if nz[k * nb + i] {
                solves.push(TileTask::Solve);
            }
        }
        if !solves.is_empty() {
            waves.push(solves);
        }
        let mut updates = Vec::new();
        for i in k + 1..nb {
            if !nz[i * nb + k] {
                continue;
            }
            for j in k + 1..nb {
                if nz[k * nb + j] {
                    updates.push(TileTask::Update);
                    nz[i * nb + j] = true; // fill-in
                }
            }
        }
        if !updates.is_empty() {
            waves.push(updates);
        }
    }
    waves
}

fn task_of(t: TileTask, opts: &GenOpts) -> TaskDesc {
    let scaled = crate::gen::scale_ops(t.ops(), opts.work_scale);
    let ops_per_thread = scaled.div_ceil(u64::from(opts.threads_per_task));
    let block = uniform_block(
        opts.threads_per_task,
        ops_per_thread,
        calib::SLUD.cpi,
        &[1.0],
    );
    TaskDesc {
        threads_per_tb: opts.threads_per_task,
        num_tbs: 1,
        smem_per_tb: 0,
        sync: false,
        blocks: vec![block],
        // The matrix lives in device memory for the whole factorization
        // (Table 3: SLUD spends 3 % in data copy — only control traffic).
        input_bytes: 0,
        output_bytes: 0,
        cpu_ops: crate::gen::scale_ops(t.ops(), opts.work_scale),
    }
}

/// Dependency waves of `TaskDesc`s for an `nb×nb` grid.
pub fn waves_as_tasks(nb: usize, density: f64, opts: &GenOpts) -> Vec<Vec<TaskDesc>> {
    symbolic_waves(nb, density, opts.seed)
        .into_iter()
        .map(|w| w.into_iter().map(|t| task_of(t, opts)).collect())
        .collect()
}

/// Default off-diagonal block density.
pub const DENSITY: f64 = 0.35;

/// Smallest grid size whose factorization generates at least `n` tasks
/// (task count grows ~cubically with fill-in, so this is a short search).
pub fn grid_for(n: usize, seed: u64) -> usize {
    let mut nb = 4;
    while nb < 160 {
        let count: usize = symbolic_waves(nb, DENSITY, seed).iter().map(Vec::len).sum();
        if count >= n {
            break;
        }
        nb += 4;
    }
    nb
}

/// A flat task list whose total count approximates `n` (at least `n`,
/// input-dependent). Used by harnesses that treat SLUD like the
/// fixed-count benchmarks.
pub fn tasks(n: usize, opts: &GenOpts) -> Vec<TaskDesc> {
    let nb = grid_for(n, opts.seed);
    waves_as_tasks(nb, DENSITY, opts)
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dominant(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut a: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for i in 0..n {
            a[i * n + i] = n as f32 + rng.gen_range(0.0f32..1.0);
        }
        a
    }

    #[test]
    fn lu_reconstructs_matrix() {
        let n = TILE;
        let a = dominant(n, 3);
        let (l, u) = dense_lu(&a, n);
        // L·U == A within float tolerance.
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0f32;
                for k in 0..=i.min(j) {
                    acc += l[i * n + k] * u[k * n + j];
                }
                assert!(
                    (acc - a[i * n + j]).abs() < 1e-3,
                    "A[{i}][{j}]: {acc} vs {}",
                    a[i * n + j]
                );
            }
        }
    }

    #[test]
    fn l_is_unit_lower_u_is_upper() {
        let n = 16;
        let (l, u) = dense_lu(&dominant(n, 9), n);
        for i in 0..n {
            assert_eq!(l[i * n + i], 1.0);
            for j in i + 1..n {
                assert_eq!(l[i * n + j], 0.0, "L upper part");
            }
            for j in 0..i {
                assert_eq!(u[i * n + j], 0.0, "U lower part");
            }
        }
    }

    #[test]
    fn waves_respect_structure() {
        let waves = symbolic_waves(8, 0.3, 42);
        // First wave is always the first diagonal factor.
        assert_eq!(waves[0], vec![TileTask::Factor]);
        // Factor waves are singletons.
        for w in &waves {
            if w.contains(&TileTask::Factor) {
                assert_eq!(w.len(), 1);
            }
        }
    }

    #[test]
    fn fill_in_grows_task_count() {
        let sparse: usize = symbolic_waves(16, 0.1, 1).iter().map(Vec::len).sum();
        let dense: usize = symbolic_waves(16, 0.6, 1).iter().map(Vec::len).sum();
        assert!(dense > 2 * sparse, "{sparse} vs {dense}");
    }

    #[test]
    fn task_count_is_input_dependent_not_closed_form() {
        // Same size, different seeds -> different counts: the property
        // that rules GeMTC out.
        let a: usize = symbolic_waves(16, 0.25, 1).iter().map(Vec::len).sum();
        let b: usize = symbolic_waves(16, 0.25, 2).iter().map(Vec::len).sum();
        assert_ne!(a, b);
    }

    #[test]
    fn flat_tasks_reach_requested_scale() {
        let ts = tasks(5_000, &GenOpts::default());
        assert!(ts.len() >= 5_000, "got {}", ts.len());
        ts[0].validate().unwrap();
    }
}
