//! Functional task execution: the *data* half of every benchmark.
//!
//! The simulator accounts for time; this module computes actual outputs.
//! A [`FuncTask`] carries a benchmark's real inputs (a packet, a frame, a
//! signal, matrices, a complex-plane window); [`run`] produces its real
//! output bytes using the same reference algorithms the timing models
//! were derived from. [`run_batch`] executes a whole task set in parallel
//! with rayon — the host-side oracle used by the examples and the
//! golden-output tests.
//!
//! Keeping functional execution separate from timing is what lets one
//! task description run under every runtime scheme while provably
//! computing the same result (`tests/end_to_end.rs` checks this).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::{beamformer, conv, dct, des3, filterbank, mandelbrot, matmul, slud};

/// A benchmark task with its concrete input data.
#[derive(Debug, Clone)]
pub enum FuncTask {
    /// Render one Mandelbrot window.
    Mandelbrot {
        /// The complex-plane window.
        region: mandelbrot::Region,
    },
    /// Run one signal through the filter bank.
    FilterBank {
        /// Input signal (length [`filterbank::N_SIM`]).
        signal: Vec<f32>,
        /// First filter taps.
        h: Vec<f32>,
        /// Second filter taps.
        f: Vec<f32>,
    },
    /// Steer one beam.
    BeamFormer {
        /// Per-channel sensor data.
        channels: Vec<Vec<f32>>,
        /// Real weights.
        wr: Vec<f32>,
        /// Imaginary weights.
        wi: Vec<f32>,
        /// Per-channel delays.
        delays: Vec<usize>,
    },
    /// Convolve one image.
    Convolution {
        /// Square u8 image.
        image: Vec<u8>,
        /// Image side.
        dim: usize,
        /// 5×5 kernel.
        kernel: Vec<f32>,
    },
    /// Transform one frame.
    Dct {
        /// Square f32 image.
        image: Vec<f32>,
        /// Image side (multiple of 8).
        dim: usize,
    },
    /// Multiply two matrices.
    MatMul {
        /// Left operand, row-major n×n.
        a: Vec<f32>,
        /// Right operand.
        b: Vec<f32>,
        /// Side length.
        n: usize,
    },
    /// Factor one dense tile.
    LuFactor {
        /// Row-major tile (diagonally dominant).
        tile: Vec<f32>,
        /// Side length.
        n: usize,
    },
    /// Encrypt one packet.
    Des3 {
        /// Packet bytes (multiple of 8).
        packet: Vec<u8>,
        /// Key 1.
        k1: u64,
        /// Key 2.
        k2: u64,
        /// Key 3.
        k3: u64,
    },
}

/// A task's computed output, as raw bytes (what the D2H copy would carry).
pub fn run(task: &FuncTask) -> Vec<u8> {
    match task {
        FuncTask::Mandelbrot { region } => {
            mandelbrot::render(*region, mandelbrot::DIM, mandelbrot::MAX_ITER)
                .into_iter()
                .flat_map(u16::to_le_bytes)
                .collect()
        }
        FuncTask::FilterBank { signal, h, f } => filterbank::filterbank(signal, h, f)
            .into_iter()
            .flat_map(f32::to_le_bytes)
            .collect(),
        FuncTask::BeamFormer {
            channels,
            wr,
            wi,
            delays,
        } => beamformer::beamform(channels, wr, wi, delays)
            .into_iter()
            .flat_map(f32::to_le_bytes)
            .collect(),
        FuncTask::Convolution { image, dim, kernel } => conv::convolve2d(image, *dim, kernel),
        FuncTask::Dct { image, dim } => dct::dct_image(image, *dim)
            .into_iter()
            .flat_map(f32::to_le_bytes)
            .collect(),
        FuncTask::MatMul { a, b, n } => matmul::matmul_tiled(a, b, *n)
            .into_iter()
            .flat_map(f32::to_le_bytes)
            .collect(),
        FuncTask::LuFactor { tile, n } => {
            let (l, u) = slud::dense_lu(tile, *n);
            l.into_iter().chain(u).flat_map(f32::to_le_bytes).collect()
        }
        FuncTask::Des3 { packet, k1, k2, k3 } => des3::encrypt_packet(packet, *k1, *k2, *k3),
    }
}

/// Executes a batch in parallel on the host (rayon), preserving order.
pub fn run_batch(tasks: &[FuncTask]) -> Vec<Vec<u8>> {
    tasks.par_iter().map(run).collect()
}

/// Deterministically generates a mixed batch of functional tasks — the
/// data-side twin of [`crate::mpe::tasks`].
pub fn sample_batch(n: usize, seed: u64) -> Vec<FuncTask> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xf17c);
    (0..n)
        .map(|i| match i % 8 {
            0 => FuncTask::Mandelbrot {
                region: mandelbrot::Region {
                    x0: rng.gen_range(-2.0..0.5),
                    y0: rng.gen_range(-1.2..1.0),
                    w: 0.05,
                    h: 0.05,
                },
            },
            1 => FuncTask::FilterBank {
                signal: (0..filterbank::N_SIM)
                    .map(|t| (t as f32 * rng.gen_range(0.001f32..0.1)).sin())
                    .collect(),
                h: (0..filterbank::N_COL)
                    .map(|k| 1.0 / (k + 1) as f32)
                    .collect(),
                f: (0..filterbank::N_COL)
                    .map(|k| 0.5 / (k + 1) as f32)
                    .collect(),
            },
            2 => {
                let ch = 4;
                FuncTask::BeamFormer {
                    channels: (0..ch)
                        .map(|c| {
                            (0..256)
                                .map(|t| ((t + c * 17) as f32 * 0.05).sin())
                                .collect()
                        })
                        .collect(),
                    wr: vec![0.5; ch],
                    wi: vec![0.1; ch],
                    delays: (0..ch).collect(),
                }
            }
            3 => FuncTask::Convolution {
                image: (0..64 * 64).map(|_| rng.gen()).collect(),
                dim: 64,
                kernel: conv::box_kernel(),
            },
            4 => FuncTask::Dct {
                image: (0..64 * 64).map(|_| rng.gen_range(-128.0..128.0)).collect(),
                dim: 64,
            },
            5 => {
                let n = 32;
                FuncTask::MatMul {
                    a: (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                    b: (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                    n,
                }
            }
            6 => {
                let n = slud::TILE;
                let mut tile: Vec<f32> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                for d in 0..n {
                    tile[d * n + d] = n as f32 + 1.0;
                }
                FuncTask::LuFactor { tile, n }
            }
            _ => FuncTask::Des3 {
                packet: (0..256).map(|_| rng.gen()).collect::<Vec<u8>>(),
                k1: rng.gen(),
                k2: rng.gen(),
                k3: rng.gen(),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_outputs_match_serial_execution() {
        let tasks = sample_batch(32, 5);
        let par = run_batch(&tasks);
        let ser: Vec<Vec<u8>> = tasks.iter().map(run).collect();
        assert_eq!(par, ser, "rayon execution must not change results");
    }

    #[test]
    fn outputs_are_nonempty_and_sized_sensibly() {
        for t in sample_batch(16, 9) {
            let out = run(&t);
            assert!(!out.is_empty());
            match t {
                FuncTask::Mandelbrot { .. } => assert_eq!(out.len(), 64 * 64 * 2),
                FuncTask::Convolution { dim, .. } => assert_eq!(out.len(), dim * dim),
                FuncTask::Dct { dim, .. } => assert_eq!(out.len(), dim * dim * 4),
                FuncTask::Des3 { ref packet, .. } => assert_eq!(out.len(), packet.len()),
                _ => {}
            }
        }
    }

    #[test]
    fn sample_batch_is_deterministic() {
        let a = run_batch(&sample_batch(16, 3));
        let b = run_batch(&sample_batch(16, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn des3_output_decrypts_back() {
        let t = FuncTask::Des3 {
            packet: (0..64).map(|i| i as u8).collect(),
            k1: 0x0123456789ABCDEF,
            k2: 0x1122334455667788,
            k3: 0xFEDCBA9876543210,
        };
        let ct = run(&t);
        if let FuncTask::Des3 { packet, k1, k2, k3 } = &t {
            let mut back = Vec::new();
            for chunk in ct.chunks_exact(8) {
                let b = u64::from_be_bytes(chunk.try_into().unwrap());
                back.extend_from_slice(&des3::des3_decrypt(b, *k1, *k2, *k3).to_be_bytes());
            }
            assert_eq!(&back, packet);
        }
    }

    #[test]
    fn lu_output_contains_unit_diagonal_l() {
        let n = slud::TILE;
        let t = match &sample_batch(16, 1)[6] {
            t @ FuncTask::LuFactor { .. } => t.clone(),
            _ => unreachable!("slot 6 is LuFactor"),
        };
        let out = run(&t);
        // First n*n floats are L; its diagonal must be exactly 1.0.
        for d in 0..n {
            let off = (d * n + d) * 4;
            let v = f32::from_le_bytes(out[off..off + 4].try_into().unwrap());
            assert_eq!(v, 1.0);
        }
    }
}
