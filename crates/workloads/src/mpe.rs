//! MPE: the multi-programmed environment benchmark (paper Table 4). Four
//! applications chosen for heterogeneity — 3DES and Mandelbrot (irregular
//! computation), FilterBank (threadblock synchronization), MatrixMul
//! (shared memory) — each contribute 8 K tasks, interleaved as if arriving
//! asynchronously from independent programs.

use pagoda_core::TaskDesc;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{des3, filterbank, mandelbrot, matmul, GenOpts};

/// Generates an MPE mix of `n` tasks (n/4 from each constituent),
/// shuffled deterministically to model asynchronous multi-program
/// arrival.
pub fn tasks(n: usize, opts: &GenOpts) -> Vec<TaskDesc> {
    let quarter = n / 4;
    let mut all = Vec::with_capacity(n);
    all.extend(des3::tasks(quarter, opts));
    all.extend(mandelbrot::tasks(quarter, opts));
    all.extend(filterbank::tasks(quarter, opts));
    all.extend(matmul::tasks(n - 3 * quarter, opts));
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x3b9e);
    all.shuffle(&mut rng);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_contains_all_four_behaviours() {
        let ts = tasks(64, &GenOpts::default());
        assert_eq!(ts.len(), 64);
        assert!(ts.iter().any(|t| t.sync), "FilterBank/MM present");
        assert!(ts.iter().any(|t| !t.sync), "3DES/MB present");
        // Heterogeneous work.
        let min = ts.iter().map(|t| t.total_instrs()).min().unwrap();
        let max = ts.iter().map(|t| t.total_instrs()).max().unwrap();
        assert!(max > min * 2);
    }

    #[test]
    fn smem_flag_flows_through() {
        let o = GenOpts {
            use_smem: true,
            ..GenOpts::default()
        };
        let ts = tasks(40, &o);
        assert!(ts.iter().any(|t| t.smem_per_tb > 0), "MM smem variant");
    }

    #[test]
    fn shuffle_is_deterministic() {
        let o = GenOpts::default();
        let a = tasks(32, &o);
        let b = tasks(32, &o);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total_instrs(), y.total_instrs());
        }
    }
}
