//! The Pagoda evaluation workloads (paper Tables 3-4), implemented as
//! real algorithms plus simulator work models.
//!
//! Every benchmark module contains (a) the **actual algorithm** — FIR
//! filter banks, 8×8 DCTs, full FIPS 46-3 DES, dense/sparse LU, … — with
//! correctness tests, and (b) a **task generator** whose operation counts
//! are derived from that algorithm (for the irregular benchmarks, by
//! running it: Mandelbrot iteration images drive the divergence model,
//! NetBench-style packet sizes drive 3DES task sizes).
//!
//! | Bench | Source | Irregular? | Sync | Smem | I/O per task |
//! |---|---|---|---|---|---|
//! | MB   | Quinn | per-pixel iterations | – | – | 64 B / 8 KB |
//! | FB   | StreamIt | – | ✓ | – | 8 KB / 8 KB |
//! | BF   | StreamIt | – | – | – | 8 KB / 8 KB |
//! | CONV | CUDA SDK | – | – | – | 16 KB / 16 KB |
//! | DCT  | CUDA SDK | – | ✓ | ✓ | 64 KB / 64 KB |
//! | MM   | CUDA SDK | – | ✓ | ✓ | 32 KB / 16 KB |
//! | SLUD | BOTS | dynamic task count | – | – | resident |
//! | 3DES | NIST | packet sizes | – | – | packet / packet |
//! | MPE  | mix | ✓ | ✓ | ✓ | mixed |
//!
//! When a `pagoda_obs` recorder is attached to the runtime serving these
//! benchmarks (directly or through `pagoda-serve` tenants), each task
//! stream appears as its own span track in the chrome://tracing export,
//! which is how the irregular benchmarks' size distributions become
//! visible next to the per-SMM resource timelines.

pub mod beamformer;
pub mod calib;
pub mod conv;
pub mod dct;
pub mod des3;
pub mod filterbank;
pub mod func;
pub mod gen;
pub mod mandelbrot;
pub mod matmul;
pub mod mpe;
pub mod slud;

use gpu_sim::Segment;
use pagoda_core::TaskDesc;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Knobs common to every generator.
#[derive(Debug, Clone)]
pub struct GenOpts {
    /// GPU threads per task (the paper's default evaluation point: 128).
    pub threads_per_task: u32,
    /// Generate the shared-memory variants of DCT/MM (Table 5).
    pub use_smem: bool,
    /// Attach the benchmark's input/output copy volume; cleared for the
    /// compute-only experiments (Figs. 7, 8).
    pub with_io: bool,
    /// Generator seed (irregular benchmarks).
    pub seed: u64,
    /// Multiplier on each task's computational work (1.0 = the default
    /// input sizes). The compute-bound experiments (Fig. 9, Table 5) use
    /// larger inputs per task — still narrow in *threads* — so that
    /// kernel time rather than the spawn path is the contended resource.
    pub work_scale: f64,
}

impl Default for GenOpts {
    fn default() -> Self {
        GenOpts {
            threads_per_task: 128,
            use_smem: false,
            with_io: true,
            seed: 42,
            work_scale: 1.0,
        }
    }
}

/// The benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bench {
    /// Mandelbrot.
    Mb,
    /// FilterBank.
    Fb,
    /// BeamFormer.
    Bf,
    /// Image convolution.
    Conv,
    /// DCT8x8.
    Dct,
    /// Matrix multiply.
    Mm,
    /// Sparse LU decomposition.
    Slud,
    /// 3DES packet encryption.
    Des3,
    /// Multi-programmed mix.
    Mpe,
}

impl Bench {
    /// Every benchmark, in the paper's figure order.
    pub const ALL: [Bench; 9] = [
        Bench::Mb,
        Bench::Fb,
        Bench::Bf,
        Bench::Conv,
        Bench::Dct,
        Bench::Mm,
        Bench::Slud,
        Bench::Des3,
        Bench::Mpe,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Bench::Mb => "MB",
            Bench::Fb => "FB",
            Bench::Bf => "BF",
            Bench::Conv => "CONV",
            Bench::Dct => "DCT",
            Bench::Mm => "MM",
            Bench::Slud => "SLUD",
            Bench::Des3 => "3DES",
            Bench::Mpe => "MPE",
        }
    }

    /// Generates `n` tasks (SLUD generates its natural, input-dependent
    /// count of at least `n` — see [`slud::tasks`]).
    pub fn tasks(self, n: usize, opts: &GenOpts) -> Vec<TaskDesc> {
        match self {
            Bench::Mb => mandelbrot::tasks(n, opts),
            Bench::Fb => filterbank::tasks(n, opts),
            Bench::Bf => beamformer::tasks(n, opts),
            Bench::Conv => conv::tasks(n, opts),
            Bench::Dct => dct::tasks(n, opts),
            Bench::Mm => matmul::tasks(n, opts),
            Bench::Slud => slud::tasks(n, opts),
            Bench::Des3 => des3::tasks(n, opts),
            Bench::Mpe => mpe::tasks(n, opts),
        }
    }

    /// GeMTC needs the task count up front; SLUD's is input-dependent
    /// (paper §6.2: "We could not implement SLUD in GeMTC").
    pub fn supports_gemtc(self) -> bool {
        self != Bench::Slud
    }

    /// Static fusion needs a static task list; SLUD has none (§6.3).
    pub fn supports_fusion(self) -> bool {
        self != Bench::Slud
    }

    /// Table 3's "May benefit from shared memory".
    pub fn uses_smem(self) -> bool {
        matches!(self, Bench::Dct | Bench::Mm | Bench::Mpe)
    }

    /// Table 3's task counts: 32 K everywhere, 273 K for SLUD.
    pub fn paper_task_count(self) -> usize {
        if self == Bench::Slud {
            273_000
        } else {
            32_768
        }
    }
}

/// How the Fig. 9 irregular tasks pick their thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadPolicy {
    /// Runtime schemes (Pagoda, HyperQ) size each task to its input:
    /// 32-256 threads.
    Matched,
    /// Static fusion fixes every sub-task at this width (the paper: 256);
    /// small tasks leave lanes idle.
    Fixed(u32),
}

/// Fig. 9 workload: pseudo-random input sizes. Each task draws a size
/// class `s ∈ {32, 64, 128, 256}` threads-worth of work; under
/// [`ThreadPolicy::Matched`] the task launches with `s` threads, under
/// [`ThreadPolicy::Fixed`] it launches at the fixed width with only `s`
/// lanes active.
pub fn irregular_tasks(
    bench: Bench,
    n: usize,
    policy: ThreadPolicy,
    opts: &GenOpts,
) -> Vec<TaskDesc> {
    assert!(bench.supports_fusion(), "Fig. 9 excludes SLUD");
    // Base profile: the benchmark at 256 threads. Irregular benchmarks
    // (MB, 3DES) vary task-to-task, so take the median-work sample of a
    // small batch as the representative profile.
    let mut base_opts = opts.clone();
    base_opts.threads_per_task = 256;
    let mut samples = bench.tasks(11, &base_opts);
    samples.sort_by_key(|t| t.total_instrs());
    let base = samples.swap_remove(samples.len() / 2);
    let w0 = &base.blocks[0].warps()[0];
    let per_thread_ops = w0.total_instrs() / 32;
    let cpi = w0.cpi;
    let total: u64 = w0.total_instrs().max(1);
    let fracs: Vec<f64> = w0
        .segments
        .iter()
        .filter_map(|s| match s {
            Segment::Compute(c) => Some(*c as f64 / total as f64),
            Segment::Barrier => None,
        })
        .collect();
    // Normalize (guard against rounding dust).
    let fsum: f64 = fracs.iter().sum();
    let fracs: Vec<f64> = fracs.iter().map(|f| f / fsum).collect();

    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xf193);
    (0..n)
        .map(|_| {
            let s: u32 = [32u32, 64, 128, 256][rng.gen_range(0..4usize)];
            let scale = f64::from(s) / 256.0;
            let (threads, thread_ops): (u32, Vec<u64>) = match policy {
                ThreadPolicy::Matched => (s, vec![per_thread_ops; s as usize]),
                ThreadPolicy::Fixed(w) => {
                    assert!(s <= w, "size class exceeds fixed width");
                    let mut v = vec![0u64; w as usize];
                    v[..s as usize].fill(per_thread_ops);
                    (w, v)
                }
            };
            let block = gen::build_block(&thread_ops, cpi, &fracs);
            TaskDesc {
                threads_per_tb: threads,
                num_tbs: 1,
                smem_per_tb: base.smem_per_tb,
                sync: base.sync,
                blocks: vec![block],
                input_bytes: (base.input_bytes as f64 * scale) as u64,
                output_bytes: (base.output_bytes as f64 * scale) as u64,
                cpu_ops: u64::from(s) * per_thread_ops,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benches_generate_valid_tasks() {
        let opts = GenOpts::default();
        for b in Bench::ALL {
            let ts = b.tasks(32, &opts);
            assert!(ts.len() >= 32, "{}", b.name());
            for t in &ts {
                t.validate().unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            }
        }
    }

    #[test]
    fn smem_benches_respond_to_flag() {
        let opts = GenOpts {
            use_smem: true,
            ..GenOpts::default()
        };
        for b in [Bench::Dct, Bench::Mm] {
            let ts = b.tasks(4, &opts);
            assert!(ts.iter().all(|t| t.smem_per_tb > 0), "{}", b.name());
        }
        for b in [Bench::Mb, Bench::Fb, Bench::Bf, Bench::Conv, Bench::Des3] {
            let ts = b.tasks(4, &opts);
            assert!(ts.iter().all(|t| t.smem_per_tb == 0), "{}", b.name());
        }
    }

    #[test]
    fn thread_count_sweep_conserves_work() {
        // Fig. 7: "the amount of work per task remains constant in all
        // thread configurations".
        for threads in [32u32, 64, 128, 256, 512] {
            let o = GenOpts {
                threads_per_task: threads,
                ..GenOpts::default()
            };
            let a = Bench::Fb.tasks(1, &o)[0].total_instrs();
            let o128 = GenOpts::default();
            let b = Bench::Fb.tasks(1, &o128)[0].total_instrs();
            let ratio = a as f64 / b as f64;
            assert!((0.8..1.25).contains(&ratio), "{threads} threads: {ratio}");
        }
    }

    #[test]
    fn irregular_matched_tasks_vary_in_threads_and_work() {
        let ts = irregular_tasks(Bench::Conv, 64, ThreadPolicy::Matched, &GenOpts::default());
        let threads: Vec<u32> = ts.iter().map(|t| t.threads_per_tb).collect();
        assert!(threads.contains(&32));
        assert!(threads.contains(&256));
        let works: Vec<u64> = ts.iter().map(|t| t.total_instrs()).collect();
        assert!(works.iter().max().unwrap() > &(works.iter().min().unwrap() * 4));
    }

    #[test]
    fn irregular_fixed_concentrates_work_on_active_lanes() {
        let matched = irregular_tasks(Bench::Conv, 64, ThreadPolicy::Matched, &GenOpts::default());
        let fixed = irregular_tasks(
            Bench::Conv,
            64,
            ThreadPolicy::Fixed(256),
            &GenOpts::default(),
        );
        // Same total work per index (same seed -> same size classes)...
        for (m, f) in matched.iter().zip(&fixed) {
            assert_eq!(m.total_instrs(), f.total_instrs());
            // ...but the fixed version always ships 256 threads (8 warps).
            assert_eq!(f.threads_per_tb, 256);
        }
    }

    #[test]
    fn irregular_sync_structure_preserved() {
        let ts = irregular_tasks(Bench::Fb, 8, ThreadPolicy::Fixed(256), &GenOpts::default());
        assert!(ts[0].sync);
        assert_eq!(ts[0].blocks[0].warps()[0].barrier_count(), 3);
        for t in &ts {
            t.validate().unwrap();
        }
    }

    #[test]
    fn paper_task_counts() {
        assert_eq!(Bench::Mb.paper_task_count(), 32_768);
        assert_eq!(Bench::Slud.paper_task_count(), 273_000);
        assert!(!Bench::Slud.supports_gemtc());
    }
}
