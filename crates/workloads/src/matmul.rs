//! MatrixMul (MM): small dense matrix multiplication, one multiplication
//! per task (refactored CUDA SDK sample). The paper motivates it with an
//! earthquake-engineering simulator that concurrently multiplies many
//! small, differently-sized matrices (Table 4). Uses shared-memory tiling
//! and synchronization; the matrix dimension is parameterizable because
//! Fig. 8 sweeps it.

use pagoda_core::TaskDesc;

use crate::calib;
use crate::gen::uniform_block;
use crate::GenOpts;

/// Default matrix side (paper Table 3: 64×64).
pub const DIM: usize = 64;
/// Shared-memory tile side for the tiled variant.
pub const TILE: usize = 16;

/// Row-major `n×n` matrix product `C = A·B`.
pub fn matmul(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Tiled matrix product — the shared-memory algorithm the GPU kernel
/// implements; must agree with [`matmul`] exactly in exact arithmetic and
/// closely in floats.
pub fn matmul_tiled(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    assert_eq!(n % TILE, 0, "dimension must be a multiple of the tile");
    let mut c = vec![0.0f32; n * n];
    for bi in (0..n).step_by(TILE) {
        for bj in (0..n).step_by(TILE) {
            for bk in (0..n).step_by(TILE) {
                for i in bi..bi + TILE {
                    for k in bk..bk + TILE {
                        let aik = a[i * n + k];
                        for j in bj..bj + TILE {
                            c[i * n + j] += aik * b[k * n + j];
                        }
                    }
                }
            }
        }
    }
    c
}

/// Per-task thread-ops for an `n×n` product: 2n³ MAC ops plus addressing.
fn task_ops(n: usize) -> u64 {
    (2 * n * n * n + n * n) as u64
}

/// Tasks multiplying `dim`×`dim` matrices (Fig. 8 sweeps `dim`).
pub fn tasks_sized(n: usize, dim: usize, opts: &GenOpts) -> Vec<TaskDesc> {
    let cpi = if opts.use_smem {
        calib::MM.cpi_smem
    } else {
        calib::MM.cpi
    };
    let scaled = crate::gen::scale_ops(task_ops(dim), opts.work_scale);
    let ops_per_thread = scaled.div_ceil(u64::from(opts.threads_per_task));
    // The k-tile loop synchronizes after each staged tile; model the
    // barrier structure with dim/TILE phases (≥1).
    let phases = (dim / TILE).max(1);
    let fracs = vec![1.0 / phases as f64; phases];
    let block = uniform_block(opts.threads_per_task, ops_per_thread, cpi, &fracs);
    let bytes = (dim * dim * 4) as u64;
    let t = TaskDesc {
        threads_per_tb: opts.threads_per_task,
        num_tbs: 1,
        smem_per_tb: if opts.use_smem {
            (2 * TILE * TILE * 4) as u32
        } else {
            0
        },
        sync: true,
        blocks: vec![block],
        input_bytes: if opts.with_io { 2 * bytes } else { 0 }, // A and B
        output_bytes: if opts.with_io { bytes } else { 0 },
        cpu_ops: crate::gen::scale_ops(task_ops(dim), opts.work_scale),
    };
    vec![t; n]
}

/// Tasks at the paper's default 64×64 size.
pub fn tasks(n: usize, opts: &GenOpts) -> Vec<TaskDesc> {
    tasks_sized(n, DIM, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, mul: f32) -> Vec<f32> {
        (0..n * n).map(|i| ((i % 13) as f32 - 6.0) * mul).collect()
    }

    #[test]
    fn identity_product() {
        let n = 16;
        let mut id = vec![0.0f32; n * n];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        let a = seq(n, 0.5);
        assert_eq!(matmul(&a, &id, n), a);
        assert_eq!(matmul(&id, &a, n), a);
    }

    #[test]
    fn tiled_matches_naive() {
        let n = 32;
        let a = seq(n, 0.25);
        let b = seq(n, 0.75);
        let c1 = matmul(&a, &b, n);
        let c2 = matmul_tiled(&a, &b, n);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn work_scales_cubically() {
        let o = GenOpts::default();
        let small = tasks_sized(1, 32, &o)[0].total_instrs();
        let large = tasks_sized(1, 64, &o)[0].total_instrs();
        let ratio = large as f64 / small as f64;
        assert!((7.0..9.0).contains(&ratio), "cubic scaling, got {ratio}");
    }

    #[test]
    fn smem_variant_shape() {
        let o = GenOpts {
            use_smem: true,
            ..GenOpts::default()
        };
        let t = &tasks(1, &o)[0];
        assert_eq!(t.smem_per_tb, 2048);
        assert!(t.sync);
        t.validate().unwrap();
        // 64/16 = 4 tile phases -> 3 barriers.
        assert_eq!(t.blocks[0].warps()[0].barrier_count(), 3);
    }
}
