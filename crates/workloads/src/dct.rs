//! DCT8x8 (DCT): 2D discrete cosine transform over 8×8 blocks of one
//! image per task (CUDA SDK / JPEG style). The paper's surveillance
//! scenario processes one camera frame per task. Copy-bound (Table 3:
//! 81 % copy), uses shared memory and threadblock synchronization.

use pagoda_core::TaskDesc;

use crate::calib;
use crate::gen::uniform_block;
use crate::GenOpts;

/// Image side per task (128×128 f32 pixels).
pub const DIM: usize = 128;
/// Transform block side.
pub const B: usize = 8;

/// The 8-point DCT-II basis coefficient `c(k) · cos((2n+1)kπ/16)`.
fn basis(k: usize, n: usize) -> f32 {
    let ck = if k == 0 {
        (1.0f64 / B as f64).sqrt()
    } else {
        (2.0f64 / B as f64).sqrt()
    };
    (ck * ((2 * n + 1) as f64 * k as f64 * std::f64::consts::PI / (2.0 * B as f64)).cos()) as f32
}

/// 2D DCT-II of one 8×8 block (row-major), separable implementation.
pub fn dct8x8_block(block: &[f32]) -> Vec<f32> {
    assert_eq!(block.len(), B * B);
    // Rows.
    let mut tmp = vec![0.0f32; B * B];
    for r in 0..B {
        for k in 0..B {
            let mut acc = 0.0;
            for n in 0..B {
                acc += block[r * B + n] * basis(k, n);
            }
            tmp[r * B + k] = acc;
        }
    }
    // Columns.
    let mut out = vec![0.0f32; B * B];
    for c in 0..B {
        for k in 0..B {
            let mut acc = 0.0;
            for n in 0..B {
                acc += tmp[n * B + c] * basis(k, n);
            }
            out[k * B + c] = acc;
        }
    }
    out
}

/// Inverse 2D DCT of one 8×8 block (for the round-trip test).
pub fn idct8x8_block(coeff: &[f32]) -> Vec<f32> {
    assert_eq!(coeff.len(), B * B);
    let mut tmp = vec![0.0f32; B * B];
    for c in 0..B {
        for n in 0..B {
            let mut acc = 0.0;
            for k in 0..B {
                acc += coeff[k * B + c] * basis(k, n);
            }
            tmp[n * B + c] = acc;
        }
    }
    let mut out = vec![0.0f32; B * B];
    for r in 0..B {
        for n in 0..B {
            let mut acc = 0.0;
            for k in 0..B {
                acc += tmp[r * B + k] * basis(k, n);
            }
            out[r * B + n] = acc;
        }
    }
    out
}

/// Whole-image DCT: transforms each 8×8 tile independently.
pub fn dct_image(img: &[f32], dim: usize) -> Vec<f32> {
    assert_eq!(img.len(), dim * dim);
    assert_eq!(dim % B, 0);
    let mut out = vec![0.0f32; dim * dim];
    for by in (0..dim).step_by(B) {
        for bx in (0..dim).step_by(B) {
            let mut block = [0.0f32; B * B];
            for y in 0..B {
                for x in 0..B {
                    block[y * B + x] = img[(by + y) * dim + bx + x];
                }
            }
            let t = dct8x8_block(&block);
            for y in 0..B {
                for x in 0..B {
                    out[(by + y) * dim + bx + x] = t[y * B + x];
                }
            }
        }
    }
    out
}

/// Per-task thread-ops: two 8-tap dot products per pixel (row + column
/// pass), 2 ops per MAC plus indexing.
fn task_ops() -> u64 {
    (DIM * DIM * 2 * B * 5 / 2) as u64
}

/// Generates `n` DCT tasks. `opts.use_smem` selects the shared-memory
/// staged variant (Table 5): 8 image rows staged per pass, 4 KB per
/// threadblock, lower CPI.
pub fn tasks(n: usize, opts: &GenOpts) -> Vec<TaskDesc> {
    let cpi = if opts.use_smem {
        calib::DCT.cpi_smem
    } else {
        calib::DCT.cpi
    };
    let scaled = crate::gen::scale_ops(task_ops(), opts.work_scale);
    let ops_per_thread = scaled / u64::from(opts.threads_per_task);
    // Two synchronized passes: rows, then columns.
    let block = uniform_block(opts.threads_per_task, ops_per_thread, cpi, &[0.5, 0.5]);
    let io = (DIM * DIM * 4) as u64; // f32 pixels
    let t = TaskDesc {
        threads_per_tb: opts.threads_per_task,
        num_tbs: 1,
        smem_per_tb: if opts.use_smem { 4 * 1024 } else { 0 },
        sync: true,
        blocks: vec![block],
        input_bytes: if opts.with_io { io } else { 0 },
        output_bytes: if opts.with_io { io } else { 0 },
        cpu_ops: crate::gen::scale_ops(task_ops(), opts.work_scale),
    };
    vec![t; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_block_transforms_to_single_coefficient() {
        let block = vec![1.0f32; 64];
        let out = dct8x8_block(&block);
        assert!((out[0] - 8.0).abs() < 1e-4, "DC = 8·mean, got {}", out[0]);
        for &c in &out[1..] {
            assert!(c.abs() < 1e-4, "AC of constant block must vanish");
        }
    }

    #[test]
    fn dct_idct_roundtrip() {
        let block: Vec<f32> = (0..64).map(|i| ((i * 7 + 3) % 17) as f32).collect();
        let back = idct8x8_block(&dct8x8_block(&block));
        for (a, b) in block.iter().zip(&back) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let block: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let out = dct8x8_block(&block);
        let e_in: f32 = block.iter().map(|v| v * v).sum();
        let e_out: f32 = out.iter().map(|v| v * v).sum();
        assert!((e_in - e_out).abs() / e_in < 1e-4);
    }

    #[test]
    fn image_tiling_matches_per_block_transform() {
        let img: Vec<f32> = (0..16 * 16).map(|i| (i % 31) as f32).collect();
        let full = dct_image(&img, 16);
        // Top-left tile.
        let mut tile = [0.0f32; 64];
        for y in 0..8 {
            for x in 0..8 {
                tile[y * 8 + x] = img[y * 16 + x];
            }
        }
        let t = dct8x8_block(&tile);
        for y in 0..8 {
            for x in 0..8 {
                assert!((full[y * 16 + x] - t[y * 8 + x]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn smem_variant_lowers_cpi_and_requests_memory() {
        let mut o = GenOpts {
            use_smem: false,
            ..GenOpts::default()
        };
        let plain = tasks(1, &o);
        o.use_smem = true;
        let smem = tasks(1, &o);
        assert_eq!(plain[0].smem_per_tb, 0);
        assert_eq!(smem[0].smem_per_tb, 4096);
        assert!(smem[0].blocks[0].warps()[0].cpi < plain[0].blocks[0].warps()[0].cpi);
        smem[0].validate().unwrap();
    }
}
