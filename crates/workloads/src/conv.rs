//! Image Convolution (CONV): 5×5 box-style convolution filters over one
//! image per task (CUDA SDK style; blur/edge detection). Regular, no
//! synchronization, moderate copy share (Table 3: 30 % copy).
//!
//! The image side length is parameterizable because Fig. 8 sweeps it
//! (16² … 256²).

use pagoda_core::TaskDesc;

use crate::calib;
use crate::gen::uniform_block;
use crate::GenOpts;

/// Default image side (paper Table 3: 128×128 images).
pub const DIM: usize = 128;
/// Kernel side (5×5).
pub const K: usize = 5;

/// 2D convolution with clamp-to-edge borders over a `dim`×`dim` u8 image,
/// producing u8 with saturation. `kernel` is K×K row-major weights.
pub fn convolve2d(img: &[u8], dim: usize, kernel: &[f32]) -> Vec<u8> {
    assert_eq!(img.len(), dim * dim, "image size mismatch");
    assert_eq!(kernel.len(), K * K, "kernel must be {K}x{K}");
    let r = (K / 2) as isize;
    let mut out = vec![0u8; dim * dim];
    for y in 0..dim as isize {
        for x in 0..dim as isize {
            let mut acc = 0.0f32;
            for ky in -r..=r {
                for kx in -r..=r {
                    let sy = (y + ky).clamp(0, dim as isize - 1) as usize;
                    let sx = (x + kx).clamp(0, dim as isize - 1) as usize;
                    let w = kernel[((ky + r) * K as isize + (kx + r)) as usize];
                    acc += w * f32::from(img[sy * dim + sx]);
                }
            }
            out[(y * dim as isize + x) as usize] = acc.round().clamp(0.0, 255.0) as u8;
        }
    }
    out
}

/// A normalized box-blur kernel.
pub fn box_kernel() -> Vec<f32> {
    vec![1.0 / (K * K) as f32; K * K]
}

/// Per-task thread-ops for a `dim`×`dim` image: per pixel, K² MACs plus
/// address clamping (~3 ops per tap).
fn task_ops(dim: usize) -> u64 {
    (dim * dim * K * K * 3) as u64
}

/// Tasks over `dim`×`dim` images (Fig. 8 sweeps `dim`).
pub fn tasks_sized(n: usize, dim: usize, opts: &GenOpts) -> Vec<TaskDesc> {
    let scaled = crate::gen::scale_ops(task_ops(dim), opts.work_scale);
    let ops_per_thread = scaled.div_ceil(u64::from(opts.threads_per_task));
    let block = uniform_block(
        opts.threads_per_task,
        ops_per_thread,
        calib::CONV.cpi,
        &[1.0],
    );
    let io = (dim * dim) as u64; // u8 pixels
    let t = TaskDesc {
        threads_per_tb: opts.threads_per_task,
        num_tbs: 1,
        smem_per_tb: 0,
        sync: false,
        blocks: vec![block],
        input_bytes: if opts.with_io { io } else { 0 },
        output_bytes: if opts.with_io { io } else { 0 },
        cpu_ops: crate::gen::scale_ops(task_ops(dim), opts.work_scale),
    };
    vec![t; n]
}

/// Tasks at the paper's default 128×128 size.
pub fn tasks(n: usize, opts: &GenOpts) -> Vec<TaskDesc> {
    tasks_sized(n, DIM, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_preserves_image() {
        let mut k = vec![0.0f32; K * K];
        k[K * K / 2] = 1.0; // center tap
        let img: Vec<u8> = (0..64).map(|i| (i * 3 % 251) as u8).collect();
        assert_eq!(convolve2d(&img, 8, &k), img);
    }

    #[test]
    fn box_blur_flattens_constant_image() {
        let img = vec![100u8; 16 * 16];
        let out = convolve2d(&img, 16, &box_kernel());
        assert!(out.iter().all(|&p| p == 100), "constant stays constant");
    }

    #[test]
    fn blur_smooths_impulse() {
        let mut img = vec![0u8; 32 * 32];
        img[16 * 32 + 16] = 255;
        let out = convolve2d(&img, 32, &box_kernel());
        // Energy spreads: center is 255/25 ≈ 10.
        assert_eq!(out[16 * 32 + 16], 10);
        assert_eq!(out[14 * 32 + 14], 10, "within the 5x5 support");
        assert_eq!(out[10 * 32 + 10], 0, "outside the support");
    }

    #[test]
    fn work_scales_with_image_area() {
        let o = GenOpts::default();
        let small = tasks_sized(1, 64, &o)[0].total_instrs();
        let large = tasks_sized(1, 128, &o)[0].total_instrs();
        let ratio = large as f64 / small as f64;
        assert!((ratio - 4.0).abs() < 0.1, "area scaling, got {ratio}");
    }
}
