//! Shared machinery for turning per-thread operation counts into the
//! simulator's [`BlockWork`] descriptions.
//!
//! The SIMT divergence rule: a warp's issue count is the **maximum** over
//! its 32 lanes (inactive lanes still occupy the issued instruction), so a
//! warp's thread-instruction charge is `32 × max(lane_ops)`. For regular
//! kernels this equals the per-thread count; for Mandelbrot-style kernels
//! it is the divergence penalty the paper's "irregular" benchmarks pay.

use gpu_sim::{BlockWork, Segment, WarpWork};

/// Scales an operation count by a workload's `work_scale` factor.
pub fn scale_ops(ops: u64, scale: f64) -> u64 {
    if scale == 1.0 {
        ops
    } else {
        (ops as f64 * scale).round() as u64
    }
}

/// Distributes `item_ops[i]` work items cyclically over `threads` threads
/// (item `i` goes to thread `i % threads` — the standard grid-stride
/// pattern), returning per-thread operation totals.
pub fn distribute_cyclic(item_ops: &[u64], threads: usize) -> Vec<u64> {
    assert!(threads > 0, "zero threads");
    let mut per_thread = vec![0u64; threads];
    for (i, ops) in item_ops.iter().enumerate() {
        per_thread[i % threads] += ops;
    }
    per_thread
}

/// Builds one threadblock's work from per-thread op counts.
///
/// `phase_fracs` splits each warp's work into synchronized phases: a
/// barrier separates consecutive phases (`&[1.0]` means no barriers). The
/// fractions must sum to ~1.
pub fn build_block(thread_ops: &[u64], cpi: f64, phase_fracs: &[f64]) -> BlockWork {
    assert!(!thread_ops.is_empty(), "block with zero threads");
    assert!(!phase_fracs.is_empty(), "at least one phase");
    let sum: f64 = phase_fracs.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6, "phase fractions sum to {sum}");
    let warps = thread_ops.len().div_ceil(32);
    let mut out = Vec::with_capacity(warps);
    for w in 0..warps {
        let lanes = &thread_ops[w * 32..thread_ops.len().min((w + 1) * 32)];
        let warp_ti = 32 * lanes.iter().copied().max().unwrap_or(0);
        let mut segments = Vec::with_capacity(phase_fracs.len() * 2 - 1);
        let mut assigned = 0u64;
        for (p, frac) in phase_fracs.iter().enumerate() {
            if p > 0 {
                segments.push(Segment::Barrier);
            }
            let ti = if p + 1 == phase_fracs.len() {
                warp_ti - assigned // exact remainder to the last phase
            } else {
                (warp_ti as f64 * frac).round() as u64
            };
            assigned += ti;
            segments.push(Segment::Compute(ti));
        }
        out.push(WarpWork { segments, cpi });
    }
    BlockWork::new(out)
}

/// Uniform per-thread work: every thread does `ops_per_thread` operations.
pub fn uniform_block(
    threads: u32,
    ops_per_thread: u64,
    cpi: f64,
    phase_fracs: &[f64],
) -> BlockWork {
    build_block(&vec![ops_per_thread; threads as usize], cpi, phase_fracs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_distribution_balances() {
        let items = vec![10u64; 100];
        let per = distribute_cyclic(&items, 32);
        // 100 items over 32 threads: 4 threads get 4 items, 28 get 3.
        assert_eq!(per.iter().sum::<u64>(), 1000);
        assert_eq!(*per.iter().max().unwrap(), 40);
        assert_eq!(*per.iter().min().unwrap(), 30);
    }

    #[test]
    fn divergence_charges_warp_maximum() {
        let mut ops = vec![1u64; 32];
        ops[7] = 1000; // one slow lane stalls the whole warp
        let b = build_block(&ops, 1.0, &[1.0]);
        assert_eq!(b.total_instrs(), 32 * 1000);
    }

    #[test]
    fn phases_conserve_work_and_insert_barriers() {
        let b = build_block(&vec![100u64; 64], 2.0, &[0.5, 0.3, 0.2]);
        assert_eq!(b.num_warps(), 2);
        assert_eq!(b.total_instrs(), 2 * 32 * 100);
        assert_eq!(b.warps()[0].barrier_count(), 2);
    }

    #[test]
    fn partial_warp_rounds_up() {
        let b = build_block(&vec![10u64; 40], 1.0, &[1.0]);
        assert_eq!(b.num_warps(), 2);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn bad_fractions_rejected() {
        build_block(&[1], 1.0, &[0.5, 0.2]);
    }
}
