//! 3DES: Triple-DES packet encryption (FIPS 46-3). A network router
//! encrypts packets as they arrive; each packet is one narrow task, and
//! NetBench-style packet sizes (2 KB – 64 KB) make the tasks irregular
//! (Table 3).
//!
//! This is a complete software DES: initial/final permutations, the 16
//! Feistel rounds with expansion, S-boxes and P-permutation, and the
//! PC-1/PC-2 key schedule — verified against the classic known-answer
//! vector and DES's complementation property.

use pagoda_core::TaskDesc;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::calib;
use crate::gen::{build_block, distribute_cyclic};
use crate::GenOpts;

// FIPS 46-3 tables; entries are 1-based bit positions, bit 1 = MSB.
#[rustfmt::skip]
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17,  9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];
#[rustfmt::skip]
const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41,  9, 49, 17, 57, 25,
];
#[rustfmt::skip]
const E: [u8; 48] = [
    32,  1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,
     8,  9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32,  1,
];
#[rustfmt::skip]
const P: [u8; 32] = [
    16,  7, 20, 21, 29, 12, 28, 17,  1, 15, 23, 26,  5, 18, 31, 10,
     2,  8, 24, 14, 32, 27,  3,  9, 19, 13, 30,  6, 22, 11,  4, 25,
];
#[rustfmt::skip]
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17,  9,  1, 58, 50, 42, 34, 26, 18,
    10,  2, 59, 51, 43, 35, 27, 19, 11,  3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15,  7, 62, 54, 46, 38, 30, 22,
    14,  6, 61, 53, 45, 37, 29, 21, 13,  5, 28, 20, 12,  4,
];
#[rustfmt::skip]
const PC2: [u8; 48] = [
    14, 17, 11, 24,  1,  5,  3, 28, 15,  6, 21, 10,
    23, 19, 12,  4, 26,  8, 16,  7, 27, 20, 13,  2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];
const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];
#[rustfmt::skip]
const SBOX: [[u8; 64]; 8] = [
    [14,  4, 13,  1,  2, 15, 11,  8,  3, 10,  6, 12,  5,  9,  0,  7,
      0, 15,  7,  4, 14,  2, 13,  1, 10,  6, 12, 11,  9,  5,  3,  8,
      4,  1, 14,  8, 13,  6,  2, 11, 15, 12,  9,  7,  3, 10,  5,  0,
     15, 12,  8,  2,  4,  9,  1,  7,  5, 11,  3, 14, 10,  0,  6, 13],
    [15,  1,  8, 14,  6, 11,  3,  4,  9,  7,  2, 13, 12,  0,  5, 10,
      3, 13,  4,  7, 15,  2,  8, 14, 12,  0,  1, 10,  6,  9, 11,  5,
      0, 14,  7, 11, 10,  4, 13,  1,  5,  8, 12,  6,  9,  3,  2, 15,
     13,  8, 10,  1,  3, 15,  4,  2, 11,  6,  7, 12,  0,  5, 14,  9],
    [10,  0,  9, 14,  6,  3, 15,  5,  1, 13, 12,  7, 11,  4,  2,  8,
     13,  7,  0,  9,  3,  4,  6, 10,  2,  8,  5, 14, 12, 11, 15,  1,
     13,  6,  4,  9,  8, 15,  3,  0, 11,  1,  2, 12,  5, 10, 14,  7,
      1, 10, 13,  0,  6,  9,  8,  7,  4, 15, 14,  3, 11,  5,  2, 12],
    [ 7, 13, 14,  3,  0,  6,  9, 10,  1,  2,  8,  5, 11, 12,  4, 15,
     13,  8, 11,  5,  6, 15,  0,  3,  4,  7,  2, 12,  1, 10, 14,  9,
     10,  6,  9,  0, 12, 11,  7, 13, 15,  1,  3, 14,  5,  2,  8,  4,
      3, 15,  0,  6, 10,  1, 13,  8,  9,  4,  5, 11, 12,  7,  2, 14],
    [ 2, 12,  4,  1,  7, 10, 11,  6,  8,  5,  3, 15, 13,  0, 14,  9,
     14, 11,  2, 12,  4,  7, 13,  1,  5,  0, 15, 10,  3,  9,  8,  6,
      4,  2,  1, 11, 10, 13,  7,  8, 15,  9, 12,  5,  6,  3,  0, 14,
     11,  8, 12,  7,  1, 14,  2, 13,  6, 15,  0,  9, 10,  4,  5,  3],
    [12,  1, 10, 15,  9,  2,  6,  8,  0, 13,  3,  4, 14,  7,  5, 11,
     10, 15,  4,  2,  7, 12,  9,  5,  6,  1, 13, 14,  0, 11,  3,  8,
      9, 14, 15,  5,  2,  8, 12,  3,  7,  0,  4, 10,  1, 13, 11,  6,
      4,  3,  2, 12,  9,  5, 15, 10, 11, 14,  1,  7,  6,  0,  8, 13],
    [ 4, 11,  2, 14, 15,  0,  8, 13,  3, 12,  9,  7,  5, 10,  6,  1,
     13,  0, 11,  7,  4,  9,  1, 10, 14,  3,  5, 12,  2, 15,  8,  6,
      1,  4, 11, 13, 12,  3,  7, 14, 10, 15,  6,  8,  0,  5,  9,  2,
      6, 11, 13,  8,  1,  4, 10,  7,  9,  5,  0, 15, 14,  2,  3, 12],
    [13,  2,  8,  4,  6, 15, 11,  1, 10,  9,  3, 14,  5,  0, 12,  7,
      1, 15, 13,  8, 10,  3,  7,  4, 12,  5,  6, 11,  0, 14,  9,  2,
      7, 11,  4,  1,  9, 12, 14,  2,  0,  6, 10, 13, 15,  3,  5,  8,
      2,  1, 14,  7,  4, 10,  8, 13, 15, 12,  9,  0,  3,  5,  6, 11],
];

/// Applies a 1-based MSB-first bit permutation: output bit *i* (MSB
/// first, `table.len()` bits total) = input bit `table[i]` of an
/// `in_bits`-wide value.
fn permute(x: u64, table: &[u8], in_bits: u32) -> u64 {
    let mut out = 0u64;
    for &t in table {
        out = (out << 1) | ((x >> (in_bits - u32::from(t))) & 1);
    }
    out
}

/// The 16 round keys (48 bits each) from a 64-bit key (parity bits
/// ignored, per PC-1).
pub fn key_schedule(key: u64) -> [u64; 16] {
    let cd = permute(key, &PC1, 64);
    let mut c = (cd >> 28) & 0x0FFF_FFFF;
    let mut d = cd & 0x0FFF_FFFF;
    let mut out = [0u64; 16];
    for (r, &s) in SHIFTS.iter().enumerate() {
        let s = u32::from(s);
        c = ((c << s) | (c >> (28 - s))) & 0x0FFF_FFFF;
        d = ((d << s) | (d >> (28 - s))) & 0x0FFF_FFFF;
        out[r] = permute((c << 28) | d, &PC2, 56);
    }
    out
}

/// The Feistel function: expand, mix key, S-boxes, P-permute.
fn feistel(r: u32, k: u64) -> u32 {
    let x = permute(u64::from(r), &E, 32) ^ k;
    let mut s_out = 0u32;
    for (i, sbox) in SBOX.iter().enumerate() {
        let six = ((x >> (42 - 6 * i)) & 0x3F) as usize;
        let row = ((six >> 4) & 2) | (six & 1);
        let col = (six >> 1) & 0xF;
        s_out = (s_out << 4) | u32::from(sbox[row * 16 + col]);
    }
    permute(u64::from(s_out), &P, 32) as u32
}

fn des_rounds(block: u64, keys: &[u64; 16], decrypt: bool) -> u64 {
    let ip = permute(block, &IP, 64);
    let mut l = (ip >> 32) as u32;
    let mut r = ip as u32;
    for i in 0..16 {
        let k = if decrypt { keys[15 - i] } else { keys[i] };
        let next_r = l ^ feistel(r, k);
        l = r;
        r = next_r;
    }
    // Final swap + inverse permutation.
    permute((u64::from(r) << 32) | u64::from(l), &FP, 64)
}

/// Single-DES encryption of one 64-bit block.
pub fn des_encrypt(block: u64, key: u64) -> u64 {
    des_rounds(block, &key_schedule(key), false)
}

/// Single-DES decryption of one 64-bit block.
pub fn des_decrypt(block: u64, key: u64) -> u64 {
    des_rounds(block, &key_schedule(key), true)
}

/// 3DES EDE encryption of one block.
pub fn des3_encrypt(block: u64, k1: u64, k2: u64, k3: u64) -> u64 {
    des_encrypt(des_decrypt(des_encrypt(block, k1), k2), k3)
}

/// 3DES EDE decryption of one block.
pub fn des3_decrypt(block: u64, k1: u64, k2: u64, k3: u64) -> u64 {
    des_decrypt(des_encrypt(des_decrypt(block, k3), k2), k1)
}

/// Encrypts a packet (ECB over 8-byte blocks; length must be a multiple
/// of 8 — routers pad).
pub fn encrypt_packet(data: &[u8], k1: u64, k2: u64, k3: u64) -> Vec<u8> {
    assert_eq!(data.len() % 8, 0, "packet must be block-aligned");
    let mut out = Vec::with_capacity(data.len());
    for chunk in data.chunks_exact(8) {
        let block = u64::from_be_bytes(chunk.try_into().unwrap());
        out.extend_from_slice(&des3_encrypt(block, k1, k2, k3).to_be_bytes());
    }
    out
}

/// Packet-size range (paper Table 3: "network packets sized 2K-64K",
/// generated with NetBench).
pub const MIN_PACKET: usize = 2 * 1024;
/// Upper packet bound.
pub const MAX_PACKET: usize = 64 * 1024;

/// Thread-ops per 8-byte block: 16 rounds × 3 DES passes of table-driven
/// expansion/S-box/permute work (~22 ops per round in a LUT
/// implementation), plus block I/O.
const OPS_PER_BLOCK: u64 = 16 * 3 * 10 + 30;

/// Log-uniform NetBench-like packet size, block-aligned.
pub fn packet_size(rng: &mut SmallRng) -> usize {
    let lo = (MIN_PACKET as f64).ln();
    let hi = (MAX_PACKET as f64).ln();
    let s = rng.gen_range(lo..hi).exp() as usize;
    (s / 8) * 8
}

/// Generates `n` packet-encryption tasks with irregular sizes.
pub fn tasks(n: usize, opts: &GenOpts) -> Vec<TaskDesc> {
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x3de5);
    (0..n)
        .map(|_| {
            let bytes = packet_size(&mut rng);
            let blocks = bytes / 8;
            let per_block = crate::gen::scale_ops(OPS_PER_BLOCK, opts.work_scale);
            let item_ops = vec![per_block; blocks];
            let per_thread = distribute_cyclic(&item_ops, opts.threads_per_task as usize);
            let block = build_block(&per_thread, calib::DES3.cpi, &[1.0]);
            TaskDesc {
                threads_per_tb: opts.threads_per_task,
                num_tbs: 1,
                smem_per_tb: 0,
                sync: false,
                blocks: vec![block],
                input_bytes: if opts.with_io { bytes as u64 } else { 0 },
                output_bytes: if opts.with_io { bytes as u64 } else { 0 },
                cpu_ops: blocks as u64 * per_block,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_known_answer_vector() {
        // The canonical worked example (appears in FIPS material and
        // countless references).
        let key = 0x133457799BBCDFF1;
        let pt = 0x0123456789ABCDEF;
        assert_eq!(des_encrypt(pt, key), 0x85E813540F0AB405);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = 0xA1B2C3D4E5F60718;
        for pt in [0u64, u64::MAX, 0x0123456789ABCDEF, 0xDEADBEEFCAFEBABE] {
            assert_eq!(des_decrypt(des_encrypt(pt, key), key), pt);
        }
    }

    #[test]
    fn complementation_property() {
        // DES(~k, ~p) == ~DES(k, p) — a structural property of DES.
        let key = 0x133457799BBCDFF1;
        let pt = 0x0123456789ABCDEF;
        assert_eq!(des_encrypt(!pt, !key), !des_encrypt(pt, key));
    }

    #[test]
    fn triple_des_with_equal_keys_is_single_des() {
        let key = 0x133457799BBCDFF1;
        let pt = 0x0123456789ABCDEF;
        assert_eq!(des3_encrypt(pt, key, key, key), des_encrypt(pt, key));
    }

    #[test]
    fn triple_des_roundtrip() {
        let (k1, k2, k3) = (0x0123456789ABCDEF, 0x23456789ABCDEF01, 0x456789ABCDEF0123);
        let pt = 0x6BC1BEE22E409F96;
        let ct = des3_encrypt(pt, k1, k2, k3);
        assert_ne!(ct, pt);
        assert_eq!(des3_decrypt(ct, k1, k2, k3), pt);
    }

    #[test]
    fn packet_roundtrip() {
        let (k1, k2, k3) = (0x0123456789ABCDEF, 0xFEDCBA9876543210, 0x1122334455667788);
        let data: Vec<u8> = (0..64).map(|i| i as u8).collect();
        let ct = encrypt_packet(&data, k1, k2, k3);
        assert_eq!(ct.len(), data.len());
        assert_ne!(ct, data);
        // Decrypt block-wise.
        let mut back = Vec::new();
        for chunk in ct.chunks_exact(8) {
            let b = u64::from_be_bytes(chunk.try_into().unwrap());
            back.extend_from_slice(&des3_decrypt(b, k1, k2, k3).to_be_bytes());
        }
        assert_eq!(back, data);
    }

    #[test]
    fn packet_sizes_span_the_netbench_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        let sizes: Vec<usize> = (0..500).map(|_| packet_size(&mut rng)).collect();
        assert!(sizes
            .iter()
            .all(|&s| (MIN_PACKET - 8..=MAX_PACKET).contains(&s)));
        assert!(sizes.iter().any(|&s| s < 2 * MIN_PACKET));
        assert!(sizes.iter().any(|&s| s > MAX_PACKET / 3));
    }

    #[test]
    fn tasks_are_irregular() {
        let ts = tasks(64, &GenOpts::default());
        let min = ts.iter().map(|t| t.total_instrs()).min().unwrap();
        let max = ts.iter().map(|t| t.total_instrs()).max().unwrap();
        assert!(max > min * 4, "packet-size irregularity: {min} vs {max}");
        ts[0].validate().unwrap();
    }
}
