//! Mandelbrot (MB): fractal escape-time rendering, the paper's archetypal
//! *irregular* narrow task — each task renders one 64×64 image whose
//! per-pixel iteration counts vary wildly, so warp lanes diverge and task
//! durations are unpredictable (Table 4: "the required computation per
//! pixel is highly irregular").

use pagoda_core::TaskDesc;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::calib;
use crate::gen::{build_block, distribute_cyclic};
use crate::GenOpts;

/// Image side length per task (paper Table 3: 64×64 images).
pub const DIM: usize = 64;
/// Iteration cap.
pub const MAX_ITER: u32 = 256;

/// A rectangular window of the complex plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// Left edge (real axis).
    pub x0: f64,
    /// Top edge (imaginary axis).
    pub y0: f64,
    /// Window width.
    pub w: f64,
    /// Window height.
    pub h: f64,
}

/// Escape iterations for one point `c = cx + i·cy` (the classic z←z²+c).
pub fn escape_iters(cx: f64, cy: f64, max_iter: u32) -> u32 {
    let (mut zx, mut zy) = (0.0f64, 0.0f64);
    for i in 0..max_iter {
        let zx2 = zx * zx;
        let zy2 = zy * zy;
        if zx2 + zy2 > 4.0 {
            return i;
        }
        zy = 2.0 * zx * zy + cy;
        zx = zx2 - zy2 + cx;
    }
    max_iter
}

/// Renders a `dim`×`dim` iteration image of `region`.
pub fn render(region: Region, dim: usize, max_iter: u32) -> Vec<u16> {
    let mut out = Vec::with_capacity(dim * dim);
    for py in 0..dim {
        for px in 0..dim {
            let cx = region.x0 + region.w * (px as f64 + 0.5) / dim as f64;
            let cy = region.y0 + region.h * (py as f64 + 0.5) / dim as f64;
            out.push(escape_iters(cx, cy, max_iter) as u16);
        }
    }
    out
}

/// GPU operation count for one pixel: the loop body is ~10 thread-ops per
/// iteration plus setup.
fn pixel_ops(iters: u16) -> u64 {
    8 + 10 * u64::from(iters)
}

/// Random windows over the whole interesting plane. Some land entirely
/// inside the set (every pixel runs to `MAX_ITER` — heavy tiles), some in
/// far-escaping regions (a few iterations per pixel), most straddle the
/// boundary. Task durations therefore vary by well over an order of
/// magnitude, which is exactly what defeats batch schedulers on this
/// benchmark (§6.2: "GeMTC performs worse than HyperQ in MB … because
/// these applications contain irregular workloads").
fn random_region(rng: &mut SmallRng) -> Region {
    let (cx, cy) = if rng.gen_bool(0.05) {
        // Rare deep-interior tile: every pixel runs to MAX_ITER.
        (rng.gen_range(-0.4..0.1), rng.gen_range(-0.2..0.2))
    } else {
        // Exterior-leaning window: rejection-sample a centre that escapes
        // quickly-ish, giving mostly light tiles with boundary texture.
        loop {
            let cx = rng.gen_range(-2.0..0.6);
            let cy = rng.gen_range(-1.2..1.2);
            let it = escape_iters(cx, cy, MAX_ITER);
            if (1..64).contains(&it) {
                break (cx, cy);
            }
        }
    };
    let scale = 10f64.powf(rng.gen_range(-2.5..-0.3));
    Region {
        x0: cx - scale / 2.0,
        y0: cy - scale / 2.0,
        w: scale,
        h: scale,
    }
}

/// One task's work description, derived from a *real* render of the
/// variant's region (the iteration image drives the divergence model).
fn task_from_region(region: Region, opts: &GenOpts) -> TaskDesc {
    let img = render(region, DIM, MAX_ITER);
    let item_ops: Vec<u64> = img
        .iter()
        .map(|&it| crate::gen::scale_ops(pixel_ops(it), opts.work_scale))
        .collect();
    let cpu_ops = item_ops.iter().sum();
    let per_thread = distribute_cyclic(&item_ops, opts.threads_per_task as usize);
    let block = build_block(&per_thread, calib::MB.cpi, &[1.0]);
    TaskDesc {
        threads_per_tb: opts.threads_per_task,
        num_tbs: 1,
        smem_per_tb: 0,
        sync: false,
        blocks: vec![block],
        input_bytes: if opts.with_io { 64 } else { 0 }, // region params
        output_bytes: if opts.with_io {
            (DIM * DIM * 2) as u64
        } else {
            0
        },
        cpu_ops,
    }
}

/// Generates `n` Mandelbrot tasks. A pool of 64 distinct regions is
/// rendered once and sampled, so generation stays cheap at 32 K tasks
/// while preserving cross-task irregularity.
pub fn tasks(n: usize, opts: &GenOpts) -> Vec<TaskDesc> {
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x6d62);
    let pool: Vec<TaskDesc> = (0..64)
        .map(|_| task_from_region(random_region(&mut rng), opts))
        .collect();
    (0..n)
        .map(|_| pool[rng.gen_range(0..pool.len())].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_points() {
        // Origin is in the set; a far point escapes after one step
        // (z1 = c already has |z| > 2).
        assert_eq!(escape_iters(0.0, 0.0, 256), 256);
        assert_eq!(escape_iters(2.5, 2.5, 256), 1);
        // c = -1 is periodic (in the set).
        assert_eq!(escape_iters(-1.0, 0.0, 256), 256);
    }

    #[test]
    fn render_is_deterministic_and_irregular() {
        let r = Region {
            x0: -1.5,
            y0: -1.0,
            w: 2.0,
            h: 2.0,
        };
        let a = render(r, 32, 128);
        let b = render(r, 32, 128);
        assert_eq!(a, b);
        let min = *a.iter().min().unwrap();
        let max = *a.iter().max().unwrap();
        assert!(max > min, "boundary window must be irregular");
    }

    #[test]
    fn tasks_have_irregular_work() {
        let opts = GenOpts::default();
        let ts = tasks(100, &opts);
        assert_eq!(ts.len(), 100);
        let works: Vec<u64> = ts.iter().map(|t| t.total_instrs()).collect();
        let min = works.iter().min().unwrap();
        let max = works.iter().max().unwrap();
        assert!(max > &(min * 2), "iteration irregularity: {min} vs {max}");
        for t in &ts {
            t.validate().unwrap();
            assert!(!t.sync);
        }
    }

    #[test]
    fn io_toggle() {
        let mut opts = GenOpts {
            with_io: false,
            ..GenOpts::default()
        };
        assert_eq!(tasks(1, &opts)[0].output_bytes, 0);
        opts.with_io = true;
        assert_eq!(tasks(1, &opts)[0].output_bytes, 8192);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let opts = GenOpts::default();
        let a = tasks(10, &opts);
        let b = tasks(10, &opts);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total_instrs(), y.total_instrs());
        }
    }
}
