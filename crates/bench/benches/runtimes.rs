//! Simulator wall-clock throughput per runtime scheme: how many simulated
//! tasks each co-simulation processes per host second. This bounds how
//! large an experiment the harness can run, and doubles as a regression
//! bench for the DES/runtime hot paths.

use baselines::{
    run_fusion, run_gemtc, run_hyperq, run_pagoda, FusionConfig, GemtcConfig, HyperQConfig,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pagoda_core::{PagodaConfig, TaskDesc};
use std::hint::black_box;
use workloads::{Bench, GenOpts};

fn tasks() -> Vec<TaskDesc> {
    Bench::Fb.tasks(256, &GenOpts::default())
}

fn bench_runtimes(c: &mut Criterion) {
    let ts = tasks();
    let mut g = c.benchmark_group("runtimes/fb_256_tasks");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ts.len() as u64));
    g.bench_function("pagoda", |b| {
        b.iter(|| black_box(run_pagoda(PagodaConfig::default(), &ts)))
    });
    g.bench_function("hyperq", |b| {
        b.iter(|| black_box(run_hyperq(&HyperQConfig::default(), &ts)))
    });
    g.bench_function("gemtc", |b| {
        b.iter(|| black_box(run_gemtc(&GemtcConfig::default(), &ts)))
    });
    g.bench_function("fusion", |b| {
        b.iter(|| black_box(run_fusion(&FusionConfig::default(), &ts, 256)))
    });
    g.finish();
}

fn bench_task_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtimes/task_generation");
    g.sample_size(10);
    for b in [Bench::Mb, Bench::Des3, Bench::Slud] {
        g.bench_function(b.name(), |bench| {
            bench.iter(|| black_box(b.tasks(1024, &GenOpts::default())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_runtimes, bench_task_generation);
criterion_main!(benches);
