//! Microbenchmarks of the discrete-event engine: schedule/pop throughput
//! at various queue depths and cancellation cost — the substrate every
//! simulated second rides on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use desim::{Engine, SimTime};
use std::hint::black_box;

fn bench_schedule_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("desim/schedule_pop");
    for depth in [64usize, 1024, 16384] {
        g.bench_function(format!("depth_{depth}"), |b| {
            b.iter_batched_ref(
                || {
                    let mut e = Engine::new();
                    for i in 0..depth {
                        e.schedule(SimTime::from_ns(i as u64), i as u32);
                    }
                    (e, depth as u64)
                },
                |(e, next)| {
                    let (_, v) = e.pop().unwrap();
                    e.schedule(SimTime::from_ns(black_box(*next)), v);
                    *next += 1;
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_cancel(c: &mut Criterion) {
    c.bench_function("desim/cancel", |b| {
        b.iter_batched_ref(
            || {
                let mut e = Engine::new();
                let keys: Vec<_> = (0..1024)
                    .map(|i| e.schedule(SimTime::from_ns(i), i as u32))
                    .collect();
                (e, keys, 0usize)
            },
            |(e, keys, i)| {
                if *i < keys.len() {
                    black_box(e.cancel(keys[*i]));
                    *i += 1;
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_drain_full_run(c: &mut Criterion) {
    // A representative event storm: 100K events scheduled with mixed
    // timestamps, fully drained.
    c.bench_function("desim/drain_100k", |b| {
        b.iter_batched(
            || {
                let mut e = Engine::new();
                for i in 0..100_000u64 {
                    e.schedule(SimTime::from_ns((i * 2_654_435_761) % 1_000_000), i as u32);
                }
                e
            },
            |mut e| {
                let mut count = 0u32;
                while e.pop().is_some() {
                    count += 1;
                }
                black_box(count)
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_schedule_pop,
    bench_cancel,
    bench_drain_full_run
);
criterion_main!(benches);
