//! Microbenchmarks of the per-MTB buddy shared-memory allocator (§5.1):
//! allocation/deallocation cost across block sizes, the deferred-
//! deallocation drain, and a churn workload resembling steady-state task
//! scheduling. The paper chose the buddy system over free-lists for
//! bounded, low overhead — these benches quantify "low".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pagoda_core::smem::BuddyAllocator;
use std::hint::black_box;

fn bench_alloc_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("buddy/alloc_dealloc");
    for size in [512u32, 2048, 8192, 32 * 1024] {
        g.bench_function(format!("{size}B"), |b| {
            b.iter_batched_ref(
                BuddyAllocator::new,
                |alloc| {
                    let n = alloc.alloc(black_box(size)).unwrap();
                    alloc.dealloc(n);
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_full_pool_churn(c: &mut Criterion) {
    // Steady state of a busy MTB: the pool holds a mix of block sizes;
    // each "task completion" marks one block and each "schedule" drains
    // marks and allocates.
    c.bench_function("buddy/steady_state_churn", |b| {
        b.iter_batched_ref(
            || {
                let mut a = BuddyAllocator::new();
                let blocks: Vec<_> = (0..8).map(|_| a.alloc(4096).unwrap()).collect();
                (a, blocks, 0usize)
            },
            |(a, blocks, i)| {
                let slot = *i % blocks.len();
                let victim = blocks[slot];
                a.mark_for_dealloc(victim);
                a.dealloc_marked();
                blocks[slot] = a.alloc(4096).unwrap();
                *i += 1;
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_fragmented_search(c: &mut Criterion) {
    // Worst case: the level scan walks the whole subtree under
    // fragmentation before failing over to a larger check.
    c.bench_function("buddy/fragmented_alloc", |b| {
        b.iter_batched_ref(
            || {
                let mut a = BuddyAllocator::new();
                // 64 x 512B leaves, free every other one.
                let leaves: Vec<_> = (0..64).map(|_| a.alloc(512).unwrap()).collect();
                for pair in leaves.chunks(2) {
                    a.dealloc(pair[0]);
                }
                a
            },
            |a| {
                // 512B succeeds in a fragmented tree; 1K fails after a scan.
                let n = a.alloc(black_box(512)).unwrap();
                let _ = black_box(a.alloc(1024)).is_err();
                a.dealloc(n);
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_alloc_sizes,
    bench_full_pool_churn,
    bench_fragmented_search
);
criterion_main!(benches);
