//! Host-side throughput of the real benchmark kernels (the functional
//! halves of the workloads): how fast the reference algorithms run on
//! this machine. Useful when re-deriving the CPU calibration constants.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use workloads::{conv, dct, des3, filterbank, mandelbrot, matmul, slud};

fn bench_mandelbrot(c: &mut Criterion) {
    let region = mandelbrot::Region {
        x0: -1.5,
        y0: -1.0,
        w: 2.0,
        h: 2.0,
    };
    let mut g = c.benchmark_group("kernels/mandelbrot");
    g.throughput(Throughput::Elements(
        (mandelbrot::DIM * mandelbrot::DIM) as u64,
    ));
    g.bench_function("render_64x64", |b| {
        b.iter(|| black_box(mandelbrot::render(black_box(region), mandelbrot::DIM, 256)))
    });
    g.finish();
}

fn bench_des3(c: &mut Criterion) {
    let packet: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
    let mut g = c.benchmark_group("kernels/3des");
    g.throughput(Throughput::Bytes(packet.len() as u64));
    g.bench_function("encrypt_8KB_packet", |b| {
        b.iter(|| {
            black_box(des3::encrypt_packet(
                black_box(&packet),
                0x0123456789ABCDEF,
                0xFEDCBA9876543210,
                0x1122334455667788,
            ))
        })
    });
    g.finish();
}

fn bench_dct(c: &mut Criterion) {
    let img: Vec<f32> = (0..dct::DIM * dct::DIM).map(|i| (i % 255) as f32).collect();
    let mut g = c.benchmark_group("kernels/dct");
    g.throughput(Throughput::Elements((dct::DIM * dct::DIM) as u64));
    g.bench_function("dct_128x128", |b| {
        b.iter(|| black_box(dct::dct_image(black_box(&img), dct::DIM)))
    });
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let n = matmul::DIM;
    let a: Vec<f32> = (0..n * n).map(|i| (i % 13) as f32).collect();
    let bm: Vec<f32> = (0..n * n).map(|i| (i % 7) as f32).collect();
    let mut g = c.benchmark_group("kernels/matmul");
    g.throughput(Throughput::Elements((2 * n * n * n) as u64));
    g.bench_function("matmul_64", |b| {
        b.iter(|| black_box(matmul::matmul(black_box(&a), black_box(&bm), n)))
    });
    g.bench_function("matmul_tiled_64", |b| {
        b.iter(|| black_box(matmul::matmul_tiled(black_box(&a), black_box(&bm), n)))
    });
    g.finish();
}

fn bench_conv_and_fb(c: &mut Criterion) {
    let img: Vec<u8> = (0..conv::DIM * conv::DIM)
        .map(|i| (i % 255) as u8)
        .collect();
    let k = conv::box_kernel();
    c.bench_function("kernels/conv_128x128", |b| {
        b.iter(|| black_box(conv::convolve2d(black_box(&img), conv::DIM, &k)))
    });

    let signal: Vec<f32> = (0..filterbank::N_SIM)
        .map(|i| (i as f32 * 0.01).sin())
        .collect();
    let h: Vec<f32> = (0..filterbank::N_COL)
        .map(|i| 1.0 / (i + 1) as f32)
        .collect();
    c.bench_function("kernels/filterbank_2048", |b| {
        b.iter(|| black_box(filterbank::filterbank(black_box(&signal), &h, &h)))
    });
}

fn bench_lu(c: &mut Criterion) {
    let n = slud::TILE;
    let a: Vec<f32> = (0..n * n)
        .map(|i| {
            if i / n == i % n {
                40.0
            } else {
                (i % 5) as f32 * 0.1
            }
        })
        .collect();
    c.bench_function("kernels/dense_lu_32", |b| {
        b.iter(|| black_box(slud::dense_lu(black_box(&a), n)))
    });
}

criterion_group!(
    benches,
    bench_mandelbrot,
    bench_des3,
    bench_dct,
    bench_matmul,
    bench_conv_and_fb,
    bench_lu
);
criterion_main!(benches);
