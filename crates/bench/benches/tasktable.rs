//! TaskTable-path benchmarks: the host-side spawn cost (entry search +
//! protocol bookkeeping + simulated copies) and the DESIGN.md ablation of
//! TaskTable rows per column (the paper fixes 32; fewer rows force more
//! frequent aggregate copy-backs).

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::WarpWork;
use pagoda_core::{PagodaConfig, PagodaRuntime, TaskDesc};
use std::hint::black_box;

fn spawn_burst(rows: u32, n: usize) -> f64 {
    let cfg = PagodaConfig {
        rows_per_column: rows,
        ..PagodaConfig::default()
    };
    let mut rt = PagodaRuntime::new(cfg);
    let task = TaskDesc::uniform(128, WarpWork::compute(50_000, 8.0));
    for _ in 0..n {
        baselines::spawn_blocking(&mut rt, &task);
    }
    rt.wait_all();
    rt.report().makespan.as_secs_f64()
}

fn bench_spawn_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("tasktable/spawn_burst_512");
    g.sample_size(10);
    g.bench_function("spawn_and_drain", |b| {
        b.iter(|| black_box(spawn_burst(32, 512)))
    });
    g.finish();
}

fn bench_rows_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: simulated makespan is the interesting output,
    // but this bench tracks the host-side *wall* cost of driving the
    // protocol at different table depths.
    let mut g = c.benchmark_group("tasktable/rows_per_column");
    g.sample_size(10);
    for rows in [4u32, 8, 32, 64] {
        g.bench_function(format!("rows_{rows}"), |b| {
            b.iter(|| black_box(spawn_burst(rows, 2048)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_spawn_path, bench_rows_ablation);
criterion_main!(benches);
