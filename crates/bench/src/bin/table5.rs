//! Table 5 — Pagoda's software shared-memory management: compute-time
//! speedup over CUDA-HyperQ (whose kernels also use shared memory) with
//! and without Pagoda's shared-memory allocation, plus the achieved
//! running occupancy. DCT tasks use 64 threads, MM tasks 256 (paper).
//!
//! Paper: DCT 1.35×/25 % occ with smem vs 1.25×/97 % without; MM 1.51×/
//! 97 % vs 1.20×/97 %.

use pagoda_bench::{emit_json, run_wave, Cli, DataPoint, Scheme};
use workloads::{Bench, GenOpts};

fn main() {
    let cli = Cli::parse();
    let n = cli.scale(32_768);
    println!("Table 5 — Pagoda shared-memory management ({n} tasks, compute time only)");
    println!(
        "{:>6} {:>8} | {:>16} {:>8} | {:>16} {:>8}",
        "bench", "threads", "smem speedup/HQ", "occ", "plain speedup/HQ", "occ"
    );
    let mut points = Vec::new();
    for (b, threads) in [(Bench::Dct, 64u32), (Bench::Mm, 256u32)] {
        let mk = |smem: bool| GenOpts {
            threads_per_task: threads,
            use_smem: smem,
            with_io: false,  // compute time only
            work_scale: 8.0, // compute-dominant inputs (see EXPERIMENTS.md)
            ..GenOpts::default()
        };
        // HyperQ reference uses the shared-memory kernels (paper).
        let hq = run_wave(Scheme::HyperQ, &b.tasks(n, &mk(true)));
        let pg_smem = run_wave(Scheme::Pagoda, &b.tasks(n, &mk(true)));
        let pg_plain = run_wave(Scheme::Pagoda, &b.tasks(n, &mk(false)));
        let su = |pg: &baselines::RunSummary| pg.compute_speedup_over(&hq);
        println!(
            "{:>6} {:>8} | {:>15.2}x {:>7.0}% | {:>15.2}x {:>7.0}%",
            b.name(),
            threads,
            su(&pg_smem),
            pg_smem.avg_running_occupancy * 100.0,
            su(&pg_plain),
            pg_plain.avg_running_occupancy * 100.0,
        );
        let mut p1 = DataPoint::new("table5", b.name(), Scheme::Pagoda, Some(1), &pg_smem, None);
        p1.speedup = su(&pg_smem);
        let mut p0 = DataPoint::new("table5", b.name(), Scheme::Pagoda, Some(0), &pg_plain, None);
        p0.speedup = su(&pg_plain);
        points.extend([p1, p0]);
    }
    emit_json(&cli, &points);
}
