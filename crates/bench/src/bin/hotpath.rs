//! hotpath — the simulation hot path, measured end to end.
//!
//! Three sections, one report (`BENCH_hotpath.json`):
//!
//! * `desim` — event-queue microbenchmarks on a synthetic per-lane
//!   completion-prediction workload (the access pattern the gpu-sim
//!   warp engine produces): `fifo` is clean schedule→pop throughput,
//!   `churn` re-aims one lane's armed prediction per round the way a
//!   resident-warp-set change does. `churn_oracle` runs the identical
//!   workload on a lazy-deletion `BinaryHeap` queue — the pre-overhaul
//!   engine design, kept here as a same-host A/B reference — so the
//!   indexed-heap win is re-measured on every run rather than trusted
//!   from a historical number.
//! * `e2e` — `pagoda_sim`-shaped tasks/sec for the full stack with
//!   obs off: the number the paper's throughput claims rest on.
//! * `obs` — off/null/mem overhead, as `obs_overhead`, but gating the
//!   **mem** recorder (≤ `--gate-mem` percent, default 12; `--smoke`
//!   defaults to 25 because its ~3 ms runs are noise-dominated on a
//!   shared host): capturing a full trace must not distort what it
//!   observes.
//!
//! Gates (exit nonzero on failure):
//! * `churn.ops_per_sec >= churn_oracle.ops_per_sec` — the indexed
//!   queue must beat lazy deletion on its own motivating workload.
//! * `obs.mem.overhead_pct <= gate_mem_pct`.
//! * With `--baseline PATH` (a prior report from this host): `churn`
//!   ops/sec and `e2e` tasks/sec must not regress vs the baseline.
//!   Without it the cross-run comparison is recorded as unenforced.
//!
//! Run with `cargo run --release -p pagoda-bench --bin hotpath`
//! (add `--smoke` for the CI-sized run, `--out PATH` to redirect).

use std::collections::{BinaryHeap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use desim::{Dur, Engine, SimTime};
use gpu_sim::WarpWork;
use pagoda_core::{PagodaConfig, PagodaRuntime, SubmitError, TaskDesc};
use pagoda_obs::{MemRecorder, NullRecorder, Obs};
use serde::Serialize;

/// Lanes in the desim microbench — one armed prediction each, like
/// SMMs in a device.
const LANES: u64 = 64;

/// SplitMix64: deterministic offsets without pulling in a rand crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) % bound
    }
}

#[derive(Debug, Clone, Serialize)]
struct MicroResult {
    rounds: u64,
    /// Queue operations performed (schedules + cancels + pops).
    ops: u64,
    secs: f64,
    ops_per_sec: f64,
}

#[derive(Debug, Clone, Serialize)]
struct DesimSection {
    fifo: MicroResult,
    churn: MicroResult,
    churn_oracle: MicroResult,
    /// churn / churn_oracle ops/sec: the live A/B win of the indexed
    /// queue over lazy deletion, measured this run on this host.
    churn_speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct E2eSection {
    tasks: u64,
    reps: u64,
    best_ms: f64,
    tasks_per_sec: f64,
    /// Device-engine events delivered (live events only).
    events: u64,
    events_per_sec: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ModeResult {
    mode: String,
    best_ms: f64,
    events: u64,
    events_per_sec: f64,
    overhead_pct: f64,
}

/// What one mem-mode run captures, by stream — the denominator behind
/// `mem.overhead_pct` (overhead scales with captured volume, so a
/// regression here shows whether cost-per-event or event count moved).
#[derive(Debug, Clone, Serialize)]
struct Captured {
    tasks: u64,
    tenants: u64,
    smm: u64,
    mtb: u64,
    /// Sum over all counters (engine events dominate).
    counter_total: u64,
}

#[derive(Debug, Clone, Serialize)]
struct ObsSection {
    tasks: u64,
    reps: u64,
    gate_mem_pct: f64,
    off: ModeResult,
    null: ModeResult,
    mem: ModeResult,
    captured: Captured,
    /// Critical-path attribution of the captured run: where its wall
    /// (simulated) time went, phase by phase.
    attribution: pagoda_prof::ProfSummary,
}

/// Reference numbers parsed from `--baseline PATH` (a prior report).
#[derive(Debug, Clone, Serialize)]
struct Baseline {
    path: String,
    churn_ops_per_sec: f64,
    fifo_ops_per_sec: f64,
    tasks_per_sec: f64,
    mem_overhead_pct: f64,
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    smoke: bool,
    host_cores: usize,
    desim: DesimSection,
    e2e: E2eSection,
    obs: ObsSection,
    baseline: Option<Baseline>,
    /// Whether the cross-run baseline comparison gated this run.
    baseline_enforced: bool,
    pass: bool,
}

/// The queue operations both desim microbenches drive. Implemented by
/// the real engine and by the in-bin lazy-deletion oracle, so both see
/// the byte-identical op sequence.
trait Queue {
    fn schedule(&mut self, at: SimTime, lane: u32) -> u64;
    fn cancel(&mut self, key: u64) -> bool;
    fn pop(&mut self) -> Option<u32>;
    fn now(&self) -> SimTime;
}

struct EngineQueue(Engine<u32>);

impl Queue for EngineQueue {
    fn schedule(&mut self, at: SimTime, lane: u32) -> u64 {
        self.0.schedule(at, lane).into_raw()
    }
    fn cancel(&mut self, key: u64) -> bool {
        self.0.cancel(desim::EventKey::from_raw(key))
    }
    fn pop(&mut self) -> Option<u32> {
        self.0.pop().map(|(_, lane)| lane)
    }
    fn now(&self) -> SimTime {
        self.0.now()
    }
}

/// The pre-overhaul queue: a `BinaryHeap` of `(Reverse(time, seq))`
/// with cancellation as a tombstone set consulted at pop time.
/// Cancelled entries stay in the heap as dead weight until their time
/// comes up — exactly the cost profile the indexed heap removes.
#[derive(Default)]
struct LazyQueue {
    heap: BinaryHeap<std::cmp::Reverse<(SimTime, u64)>>,
    events: Vec<u32>,
    cancelled: HashSet<u64>,
    pending: HashSet<u64>,
    now: SimTime,
    next_seq: u64,
}

impl Queue for LazyQueue {
    fn schedule(&mut self, at: SimTime, lane: u32) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(lane);
        self.heap.push(std::cmp::Reverse((at, seq)));
        self.pending.insert(seq);
        seq
    }
    fn cancel(&mut self, key: u64) -> bool {
        if self.pending.remove(&key) {
            self.cancelled.insert(key);
            true
        } else {
            false
        }
    }
    fn pop(&mut self) -> Option<u32> {
        while let Some(std::cmp::Reverse((at, seq))) = self.heap.pop() {
            if self.cancelled.remove(&seq) {
                continue;
            }
            self.pending.remove(&seq);
            self.now = at;
            return Some(self.events[seq as usize]);
        }
        None
    }
    fn now(&self) -> SimTime {
        self.now
    }
}

/// Clean FIFO throughput: keep `LANES` events in flight, pop one and
/// schedule its replacement. No cancellations — the floor both queue
/// designs should hit.
fn micro_fifo(q: &mut dyn Queue, rounds: u64) -> MicroResult {
    let mut rng = Rng(7);
    for lane in 0..LANES {
        q.schedule(q.now() + Dur::from_ps(1 + rng.next(1_000_000)), lane as u32);
    }
    let start = Instant::now();
    let mut ops = LANES;
    for _ in 0..rounds {
        let lane = q.pop().expect("queue keeps LANES events in flight");
        q.schedule(q.now() + Dur::from_ps(1 + rng.next(1_000_000)), lane);
        ops += 2;
    }
    while q.pop().is_some() {
        ops += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    MicroResult {
        rounds,
        ops,
        secs,
        ops_per_sec: ops as f64 / secs,
    }
}

/// Prediction churn: each round re-aims one lane's armed completion
/// (cancel + schedule), popping a delivery every 8th round — the
/// resident-warp-set-change pattern from the gpu-sim warp engine.
fn micro_churn(q: &mut dyn Queue, rounds: u64) -> MicroResult {
    let mut rng = Rng(13);
    let mut keys: Vec<u64> = (0..LANES)
        .map(|lane| q.schedule(q.now() + Dur::from_ps(1 + rng.next(1_000_000)), lane as u32))
        .collect();
    let start = Instant::now();
    let mut ops = LANES;
    for r in 0..rounds {
        let lane = rng.next(LANES) as usize;
        q.cancel(keys[lane]);
        keys[lane] = q.schedule(q.now() + Dur::from_ps(1 + rng.next(1_000_000)), lane as u32);
        ops += 2;
        if r % 8 == 0 {
            if let Some(lane) = q.pop() {
                keys[lane as usize] =
                    q.schedule(q.now() + Dur::from_ps(1 + rng.next(1_000_000)), lane);
                ops += 2;
            }
        }
    }
    while q.pop().is_some() {
        ops += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    MicroResult {
        rounds,
        ops,
        secs,
        ops_per_sec: ops as f64 / secs,
    }
}

fn task() -> TaskDesc {
    let mut t = TaskDesc::uniform(128, WarpWork::compute(60_000, 8.0));
    t.input_bytes = 1024;
    t.output_bytes = 1024;
    t
}

/// Runs `n` narrow tasks; returns (wall seconds, device events).
fn run_once(n: usize, obs: Obs) -> (f64, u64) {
    let start = Instant::now();
    let mut rt = PagodaRuntime::new(PagodaConfig::default());
    rt.attach_obs(obs);
    let mut spawned = 0usize;
    let mut pending = task();
    while spawned < n {
        match rt.submit(pending) {
            Ok(_) => {
                spawned += 1;
                pending = task();
            }
            Err(SubmitError::Full(desc)) => {
                rt.sync_table();
                if !rt.capacity().has_room() {
                    let timeout = rt.config().wait_timeout;
                    rt.advance_to(rt.host_now() + timeout);
                }
                pending = desc;
            }
            Err(e) => panic!("unspawnable bench task: {e}"),
        }
    }
    rt.wait_all();
    assert_eq!(rt.report().tasks as usize, n, "bench run must complete");
    (start.elapsed().as_secs_f64(), rt.engine_stats().delivered)
}

/// Pulls `"key":<number>` out of a compact JSON report. Good enough
/// for re-reading our own machine-written baseline file — the vendored
/// serde stack serializes only.
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = &text[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut smoke = false;
    let mut rounds: u64 = 2_000_000;
    let mut n: usize = 4096;
    let mut reps: usize = 9;
    let mut gate_mem_pct: f64 = 12.0;
    let mut out = String::from("BENCH_hotpath.json");
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => {
                smoke = true;
                rounds = 200_000;
                n = 768;
                reps = 11;
                // Smoke runs last ~3 ms each on a shared CI box, where a
                // single scheduler preemption inflates a rep by double-
                // digit percentages; even best-of-reps overheads have
                // been observed to swing from 10 % to 21 % across quiet
                // runs. Widen the gate to catch the regression class it
                // exists for (the pre-overhaul recorder cost 26-31 %)
                // without flaking; the full-scale run and the committed
                // artifact enforce the real ≤12 % bound. An explicit
                // --gate-mem after --smoke still overrides.
                gate_mem_pct = 25.0;
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--rounds needs a number");
            }
            "--tasks" => {
                n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tasks needs a number");
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number");
            }
            "--gate-mem" => {
                gate_mem_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--gate-mem needs a percentage");
            }
            "--out" => {
                out = args.next().expect("--out needs a path");
            }
            "--baseline" => {
                baseline_path = Some(args.next().expect("--baseline needs a path"));
            }
            other => panic!(
                "unknown argument {other}; supported: --smoke --rounds N --tasks N --reps N \
                 --gate-mem PCT --out PATH --baseline PATH"
            ),
        }
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    // --- desim microbenches (best of 3, interleaved) ---------------
    let mut fifo: Option<MicroResult> = None;
    let mut churn: Option<MicroResult> = None;
    let mut churn_oracle: Option<MicroResult> = None;
    let keep_best = |slot: &mut Option<MicroResult>, r: MicroResult| {
        if slot.as_ref().is_none_or(|b| r.ops_per_sec > b.ops_per_sec) {
            *slot = Some(r);
        }
    };
    for _ in 0..3 {
        keep_best(
            &mut fifo,
            micro_fifo(&mut EngineQueue(Engine::new()), rounds),
        );
        keep_best(
            &mut churn,
            micro_churn(&mut EngineQueue(Engine::new()), rounds),
        );
        keep_best(
            &mut churn_oracle,
            micro_churn(&mut LazyQueue::default(), rounds),
        );
    }
    let (fifo, churn, churn_oracle) = (
        fifo.expect("ran"),
        churn.expect("ran"),
        churn_oracle.expect("ran"),
    );
    assert_eq!(
        churn.ops, churn_oracle.ops,
        "both queues must see the identical op sequence"
    );
    let desim = DesimSection {
        churn_speedup: churn.ops_per_sec / churn_oracle.ops_per_sec,
        fifo,
        churn,
        churn_oracle,
    };

    // --- end-to-end tasks/sec + obs overhead (interleaved reps) ----
    type ObsCtor = fn() -> Obs;
    let modes: [(&str, ObsCtor); 3] = [
        ("off", Obs::off),
        ("null", || Obs::new(Arc::new(NullRecorder))),
        ("mem", || Obs::with_mem(Arc::new(MemRecorder::new()))),
    ];
    run_once(n.min(256), Obs::off()); // warm-up
    let mut best = [f64::INFINITY; 3];
    let mut events = [0u64; 3];
    for rep in 0..reps {
        for (i, (name, mk)) in modes.iter().enumerate() {
            let (secs, ev) = run_once(n, mk());
            if rep == 0 {
                events[i] = ev;
            } else {
                assert_eq!(events[i], ev, "{name}: event count must be deterministic");
            }
            best[i] = best[i].min(secs);
        }
    }
    assert_eq!(
        events[0], events[1],
        "recorders must not change the simulated history"
    );
    assert_eq!(events[0], events[2]);

    let evps: Vec<f64> = (0..3).map(|i| events[i] as f64 / best[i]).collect();
    let overhead = |i: usize| 100.0 * (evps[0] - evps[i]) / evps[0];
    let mk_result = |i: usize| ModeResult {
        mode: modes[i].0.to_string(),
        best_ms: best[i] * 1e3,
        events: events[i],
        events_per_sec: evps[i],
        overhead_pct: overhead(i),
    };
    let e2e = E2eSection {
        tasks: n as u64,
        reps: reps as u64,
        best_ms: best[0] * 1e3,
        tasks_per_sec: n as f64 / best[0],
        events: events[0],
        events_per_sec: evps[0],
    };
    let (captured, attribution) = {
        let (obs_h, rec) = Obs::recording();
        run_once(n, obs_h);
        let buf = rec.snapshot();
        let captured = Captured {
            tasks: buf.tasks.len() as u64,
            tenants: buf.tenants.len() as u64,
            smm: buf.smm.len() as u64,
            mtb: buf.mtb.len() as u64,
            counter_total: buf.counters.values().sum(),
        };
        let attribution = pagoda_prof::ProfReport::from_buffer(&buf).summary();
        (captured, attribution)
    };
    let obs = ObsSection {
        tasks: n as u64,
        reps: reps as u64,
        gate_mem_pct,
        off: mk_result(0),
        null: mk_result(1),
        mem: mk_result(2),
        captured,
        attribution,
    };

    // --- baseline comparison + gates -------------------------------
    let baseline = baseline_path.map(|path| {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let churn_txt = &text[text.find("\"churn\":").expect("baseline has churn")..];
        let mem_txt = &text[text.find("\"mem\":").expect("baseline has mem")..];
        Baseline {
            churn_ops_per_sec: json_f64(churn_txt, "ops_per_sec").expect("churn ops_per_sec"),
            fifo_ops_per_sec: json_f64(&text, "ops_per_sec").expect("fifo ops_per_sec"),
            tasks_per_sec: json_f64(&text, "tasks_per_sec").expect("tasks_per_sec"),
            mem_overhead_pct: json_f64(mem_txt, "overhead_pct").expect("mem overhead_pct"),
            path,
        }
    });
    let baseline_enforced = baseline.is_some();

    let mut failures: Vec<String> = Vec::new();
    if desim.churn_speedup < 1.0 {
        failures.push(format!(
            "indexed queue lost to the lazy-deletion oracle on churn: {:.2}x",
            desim.churn_speedup
        ));
    }
    if obs.mem.overhead_pct > gate_mem_pct {
        failures.push(format!(
            "mem recorder overhead {:.2}% exceeds the {gate_mem_pct:.1}% gate",
            obs.mem.overhead_pct
        ));
    }
    if let Some(b) = &baseline {
        if desim.churn.ops_per_sec < b.churn_ops_per_sec {
            failures.push(format!(
                "churn regressed vs baseline: {:.0} < {:.0} ops/s",
                desim.churn.ops_per_sec, b.churn_ops_per_sec
            ));
        }
        if e2e.tasks_per_sec < b.tasks_per_sec {
            failures.push(format!(
                "e2e regressed vs baseline: {:.0} < {:.0} tasks/s",
                e2e.tasks_per_sec, b.tasks_per_sec
            ));
        }
    }

    let report = BenchReport {
        bench: "hotpath".to_string(),
        smoke,
        host_cores,
        desim,
        e2e,
        obs,
        baseline,
        baseline_enforced,
        pass: failures.is_empty(),
    };

    println!(
        "desim  fifo {:>12.0} ops/s   churn {:>12.0} ops/s   oracle {:>12.0} ops/s   ({:.2}x)",
        report.desim.fifo.ops_per_sec,
        report.desim.churn.ops_per_sec,
        report.desim.churn_oracle.ops_per_sec,
        report.desim.churn_speedup,
    );
    println!(
        "e2e    {:>12.0} tasks/s   {:>12.0} events/s   best {:.1} ms",
        report.e2e.tasks_per_sec, report.e2e.events_per_sec, report.e2e.best_ms
    );
    for r in [&report.obs.off, &report.obs.null, &report.obs.mem] {
        println!(
            "obs    {:>6} {:>10.1} ms {:>12.0} events/s {:>8.2}%",
            r.mode, r.best_ms, r.events_per_sec, r.overhead_pct
        );
    }

    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write BENCH_hotpath.json");
    println!("wrote {out}");

    if !report.pass {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("PASS: all hotpath gates met");
}
