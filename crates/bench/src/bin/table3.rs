//! Table 3 — Benchmark characteristics: the % of CUDA-HyperQ execution
//! time spent in data copy vs computation, per benchmark, plus the static
//! characteristics (task counts, sync/smem flags).

use pagoda_bench::{bench_waves, emit_json, run_waves, Cli, DataPoint, Scheme};
use workloads::{Bench, GenOpts};

fn main() {
    let cli = Cli::parse();
    println!("Table 3 — Benchmark characteristics (measured under CUDA-HyperQ)");
    println!(
        "{:>6} {:>8} {:>8} {:>9} {:>6} {:>6}  paper-copy%",
        "bench", "tasks", "copy%", "compute%", "smem", "sync"
    );
    let paper_copy = [
        (Bench::Mb, 24),
        (Bench::Fb, 35),
        (Bench::Bf, 13),
        (Bench::Conv, 30),
        (Bench::Dct, 81),
        (Bench::Mm, 51),
        (Bench::Slud, 3),
        (Bench::Des3, 74),
    ];
    let mut points = Vec::new();
    for (b, paper) in paper_copy {
        let n = cli.scale(b.paper_task_count().min(32_768));
        let waves = bench_waves(b, n, &GenOpts::default());
        let tasks_total: usize = waves.iter().map(Vec::len).sum();
        let hq = run_waves(Scheme::HyperQ, &waves);
        let copy = hq.copy_share() * 100.0;
        let sample = &waves[0][0];
        println!(
            "{:>6} {:>8} {:>7.0}% {:>8.0}% {:>6} {:>6}  {paper}%",
            b.name(),
            tasks_total,
            copy,
            100.0 - copy,
            if b.uses_smem() { "yes" } else { "no" },
            if sample.sync { "yes" } else { "no" },
        );
        points.push(DataPoint::new(
            "table3",
            b.name(),
            Scheme::HyperQ,
            None,
            &hq,
            None,
        ));
    }
    emit_json(&cli, &points);
}
