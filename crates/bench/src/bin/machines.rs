//! Cross-machine check: the paper micro-validated the TaskTable's
//! host/device visibility behaviour on both a Maxwell Titan X and a
//! Kepler Tesla K40. This harness runs the whole stack on both machine
//! models: the MasterKernel shape adapts (2 MTBs per SMM → 30 MTBs on
//! the K40's 15 SMMs), and the relative Pagoda-vs-HyperQ ordering must
//! survive the architecture change.

use gpu_arch::GpuSpec;
use gpu_sim::DeviceConfig;
use pagoda_bench::{run_wave, Cli, Scheme};
use pagoda_core::PagodaConfig;
use workloads::{Bench, GenOpts};

fn main() {
    let cli = Cli::parse();
    let n = cli.scale(8_192);
    println!("Machine sweep — Pagoda vs HyperQ on both validation platforms ({n} tasks)");
    println!(
        "{:>16} {:>6} {:>8} | {:>12} {:>12} {:>8}",
        "machine", "SMMs", "MTBs", "Pagoda ms", "HyperQ ms", "ratio"
    );
    for spec in [GpuSpec::titan_x(), GpuSpec::tesla_k40()] {
        let device = DeviceConfig::new(spec.clone());
        let pg_cfg = PagodaConfig {
            device: device.clone(),
            ..PagodaConfig::default()
        };
        let hq_cfg = baselines::HyperQConfig {
            device,
            ..baselines::HyperQConfig::default()
        };
        let mtbs = pg_cfg.num_mtbs();
        for b in [Bench::Fb, Bench::Mb] {
            let tasks = b.tasks(n, &GenOpts::default());
            let pg = baselines::run_pagoda(pg_cfg.clone(), &tasks);
            let hq = baselines::run_hyperq(&hq_cfg, &tasks);
            println!(
                "{:>16} {:>6} {:>8} | {:>12.3} {:>12.3} {:>7.2}x  ({})",
                spec.name,
                spec.num_sms,
                mtbs,
                pg.makespan.as_secs_f64() * 1e3,
                hq.makespan.as_secs_f64() * 1e3,
                hq.makespan.as_secs_f64() / pg.makespan.as_secs_f64(),
                b.name(),
            );
        }
    }
    let _ = run_wave(Scheme::Sequential, &Bench::Fb.tasks(4, &GenOpts::default()));
}
