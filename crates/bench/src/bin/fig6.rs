//! Fig. 6 — Weak scaling with the number of tasks.
//!
//! Execution time (copies included) vs task count 64 → 32768 for MB,
//! CONV, DCT, 3DES, MPE under CUDA-HyperQ, GeMTC, and Pagoda, 128 threads
//! per task. Paper finding: below ~512 tasks no scheme fills the GPU and
//! HyperQ/GeMTC hold their own; beyond 512 Pagoda pulls ahead and scales
//! almost linearly.

use pagoda_bench::{emit_json, run_wave, Cli, DataPoint, Scheme};
use workloads::{Bench, GenOpts};

fn main() {
    let cli = Cli::parse();
    let max_n = cli.scale(32_768);
    let counts: Vec<usize> = std::iter::successors(Some(64usize), |n| Some(n * 4))
        .take_while(|&n| n <= max_n)
        .collect();

    println!("Fig. 6 — Weak scaling: execution time (ms) vs number of tasks");
    let mut points = Vec::new();
    for b in [Bench::Mb, Bench::Conv, Bench::Dct, Bench::Des3, Bench::Mpe] {
        println!("--- {}", b.name());
        println!(
            "{:>8} {:>14} {:>12} {:>12}",
            "tasks", "CUDA-HyperQ", "GeMTC", "Pagoda"
        );
        for &n in &counts {
            let tasks = b.tasks(n, &GenOpts::default());
            let hq = run_wave(Scheme::HyperQ, &tasks);
            let gm = run_wave(Scheme::Gemtc, &tasks);
            let pg = run_wave(Scheme::Pagoda, &tasks);
            println!(
                "{:>8} {:>14.3} {:>12.3} {:>12.3}",
                n,
                hq.makespan.as_secs_f64() * 1e3,
                gm.makespan.as_secs_f64() * 1e3,
                pg.makespan.as_secs_f64() * 1e3,
            );
            for (s, r) in [
                (Scheme::HyperQ, &hq),
                (Scheme::Gemtc, &gm),
                (Scheme::Pagoda, &pg),
            ] {
                points.push(DataPoint::new("fig6", b.name(), s, Some(n as u64), r, None));
            }
        }
    }
    emit_json(&cli, &points);
}
