//! Fig. 5 — Overall performance comparison.
//!
//! Speedup over the sequential CPU for PThreads (20 cores), CUDA-HyperQ,
//! GeMTC, and Pagoda on every benchmark at the paper's task counts (32 K;
//! SLUD 273 K), 128 threads per task, execution time including data
//! copies. Paper headline: Pagoda 5.70× over PThreads, 1.51× over
//! HyperQ, 1.69× over GeMTC (geometric means).

use baselines::geomean;
use pagoda_bench::{bench_waves, emit_json, run_waves, Cli, DataPoint, Scheme};
use workloads::{Bench, GenOpts};

fn main() {
    let cli = Cli::parse();
    println!("Fig. 5 — Overall Performance Comparison (speedup over sequential CPU)");
    println!(
        "{:>6} {:>8} | {:>10} {:>12} {:>10} {:>10}",
        "bench", "tasks", "PThreads", "CUDA-HyperQ", "GeMTC", "Pagoda"
    );

    let mut points = Vec::new();
    let (mut r_pth, mut r_hq, mut r_gm) = (Vec::new(), Vec::new(), Vec::new());

    for b in Bench::ALL {
        let n = cli.scale(b.paper_task_count());
        let plain = GenOpts {
            use_smem: false,
            ..GenOpts::default()
        };
        let smem = GenOpts {
            use_smem: b.uses_smem(),
            ..GenOpts::default()
        };
        // GeMTC has no shared-memory support (paper §6.2), so it runs the
        // plain versions; Pagoda/HyperQ run the smem versions where they
        // help. CPU timing depends only on operation counts.
        let waves_plain = bench_waves(b, n, &plain);
        let waves_smem = bench_waves(b, n, &smem);
        let tasks_total: usize = waves_plain.iter().map(Vec::len).sum();

        let seq = run_waves(Scheme::Sequential, &waves_plain);
        let pth = run_waves(Scheme::PThreads, &waves_plain);
        let hq = run_waves(Scheme::HyperQ, &waves_smem);
        let gm = b
            .supports_gemtc()
            .then(|| run_waves(Scheme::Gemtc, &waves_plain));
        let pg = run_waves(Scheme::Pagoda, &waves_smem);

        let su = |s: &baselines::RunSummary| s.speedup_over(&seq);
        println!(
            "{:>6} {:>8} | {:>10.2} {:>12.2} {:>10} {:>10.2}",
            b.name(),
            tasks_total,
            su(&pth),
            su(&hq),
            gm.as_ref()
                .map_or("n/a".to_string(), |g| format!("{:.2}", su(g))),
            su(&pg),
        );

        r_pth.push(pg.speedup_over(&pth));
        r_hq.push(pg.speedup_over(&hq));
        if let Some(g) = &gm {
            r_gm.push(pg.speedup_over(g));
        }

        for (scheme, s) in [
            (Scheme::Sequential, Some(&seq)),
            (Scheme::PThreads, Some(&pth)),
            (Scheme::HyperQ, Some(&hq)),
            (Scheme::Gemtc, gm.as_ref()),
            (Scheme::Pagoda, Some(&pg)),
        ] {
            if let Some(s) = s {
                points.push(DataPoint::new(
                    "fig5",
                    b.name(),
                    scheme,
                    None,
                    s,
                    Some(&seq),
                ));
            }
        }
    }

    println!("---");
    println!(
        "geomean Pagoda speedups: {:.2}x over PThreads (paper 5.70x), \
         {:.2}x over CUDA-HyperQ (paper 1.51x), {:.2}x over GeMTC (paper 1.69x)",
        geomean(&r_pth),
        geomean(&r_hq),
        geomean(&r_gm),
    );
    emit_json(&cli, &points);
}
