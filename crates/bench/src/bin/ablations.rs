//! Ablations of the design choices DESIGN.md calls out (beyond the
//! paper's own Fig. 11 and Table 5 ablations, which have their own
//! harnesses):
//!
//! 1. **Warp- vs threadblock-granularity resource freeing** (§6.4): the
//!    hardware path frees a TB's warp slots only when the whole TB
//!    retires; Pagoda frees per warp. Applied to the native scheduler on
//!    the divergent MB workload.
//! 2. **TaskTable rows per column** (the paper fixes 32): fewer rows
//!    starve the pipeline and force constant copy-backs.
//! 3. **Scheduler-cost sensitivity**: how much measured performance
//!    depends on the charged pSched cycles.
//! 4. **PCIe transaction-overhead sensitivity**: the spawn path's
//!    dependence on per-copy latency.

use desim::Dur;
use gpu_sim::DeviceConfig;
use pagoda_bench::{run_wave, Cli, Scheme};
use pagoda_core::PagodaConfig;
use workloads::{Bench, GenOpts};

fn main() {
    let cli = Cli::parse();
    let n = cli.scale(8_192);

    println!("Ablation 1 — resource-freeing granularity (one 512-TB divergent kernel)");
    {
        // One kernel of 512 divergent 992-thread threadblocks (31 warps
        // each, Mandelbrot straggler warps inside every TB); only ~2 TBs
        // fit an SMM, so queued TBs wait on resources. TB-granularity
        // freeing keeps a whole 992-thread allocation hostage to its
        // slowest warp; warp-granularity freeing (Pagoda's rule, §6.4)
        // lets the next TB launch as stragglers' siblings retire.
        let mb = Bench::Mb.tasks(
            512,
            &GenOpts {
                threads_per_task: 992,
                with_io: false,
                ..GenOpts::default()
            },
        );
        let blocks: Vec<gpu_sim::BlockWork> = mb.iter().map(|t| t.blocks[0].clone()).collect();
        let shape = gpu_arch::TaskShape {
            threads_per_tb: 992,
            num_tbs: blocks.len() as u32,
            regs_per_thread: 32,
            smem_per_tb: 0,
        };
        let run = |free_individually: bool| {
            let mut dev = gpu_sim::GpuDevice::new(DeviceConfig {
                free_warps_individually: free_individually,
                ..DeviceConfig::titan_x()
            });
            dev.launch_kernel(gpu_sim::KernelDesc::new(shape, blocks.clone(), 0))
                .expect("launchable");
            while dev.step().is_some() {}
            dev.now()
        };
        let tb = run(false);
        let warp = run(true);
        println!(
            "  TB-granularity   : {:>10.3} ms\n  warp-granularity : {:>10.3} ms  ({:.2}x)",
            tb.as_ms_f64(),
            warp.as_ms_f64(),
            tb.as_secs_f64() / warp.as_secs_f64(),
        );
    }

    println!("Ablation 2 — TaskTable rows per column (FB, {n} tasks; paper uses 32)");
    {
        let tasks = Bench::Fb.tasks(n, &GenOpts::default());
        println!("  {:>6} {:>12}", "rows", "makespan ms");
        for rows in [2u32, 4, 8, 16, 32, 64] {
            let cfg = PagodaConfig {
                rows_per_column: rows,
                ..PagodaConfig::default()
            };
            let r = baselines::run_pagoda(cfg, &tasks);
            println!("  {:>6} {:>12.3}", rows, r.makespan.as_secs_f64() * 1e3);
        }
    }

    println!("Ablation 3 — scheduler-cost sensitivity (FB, {n} tasks)");
    {
        let tasks = Bench::Fb.tasks(n, &GenOpts::default());
        println!("  {:>8} {:>12}", "pSched x", "makespan ms");
        for scale in [0u64, 1, 4, 16] {
            let base = PagodaConfig::default();
            let cfg = PagodaConfig {
                psched_cycles_base: base.psched_cycles_base * scale,
                psched_cycles_per_warp: base.psched_cycles_per_warp * scale,
                chain_update_cycles: base.chain_update_cycles * scale.max(1),
                smem_alloc_cycles: base.smem_alloc_cycles * scale.max(1),
                ..base
            };
            let r = baselines::run_pagoda(cfg, &tasks);
            println!("  {:>8} {:>12.3}", scale, r.makespan.as_secs_f64() * 1e3);
        }
    }

    println!("Ablation 4 — PCIe per-transaction overhead (FB, {n} tasks)");
    {
        let tasks = Bench::Fb.tasks(n, &GenOpts::default());
        println!(
            "  {:>10} {:>14} {:>14}",
            "latency ns", "Pagoda ms", "HyperQ ms"
        );
        for lat_ns in [200u64, 800, 3200] {
            let pcie = pcie::PcieConfig {
                latency: Dur::from_ns(lat_ns),
                ..pcie::PcieConfig::default()
            };
            let pg_cfg = PagodaConfig {
                pcie: pcie.clone(),
                ..PagodaConfig::default()
            };
            let hq_cfg = baselines::HyperQConfig {
                pcie,
                ..baselines::HyperQConfig::default()
            };
            let pg = baselines::run_pagoda(pg_cfg, &tasks);
            let hq = baselines::run_hyperq(&hq_cfg, &tasks);
            println!(
                "  {:>10} {:>14.3} {:>14.3}",
                lat_ns,
                pg.makespan.as_secs_f64() * 1e3,
                hq.makespan.as_secs_f64() * 1e3,
            );
        }
    }
    let _ = run_wave(Scheme::Sequential, &Bench::Fb.tasks(4, &GenOpts::default()));
}
