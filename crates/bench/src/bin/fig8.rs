//! Fig. 8 — Effects of varying threads per task for different input
//! sizes (MM and CONV).
//!
//! For each input size (16² … 256²) and per-task thread count (256 …
//! 65536), the bar is Pagoda's compute-time speedup over CUDA-HyperQ.
//! HyperQ runs 256-thread threadblocks; Pagoda tasks split into
//! ≤512-thread threadblocks (an MTB's executor capacity is 992 threads).
//! Paper findings: large speedups while tasks stay narrow (≤512 threads);
//! the benefit fades once HyperQ can fill the machine; warp-granularity
//! scheduling keeps Pagoda competitive even at very wide tasks.

use pagoda_bench::{emit_json, reshape_task, run_wave, Cli, DataPoint, Scheme};
use workloads::{conv, matmul, GenOpts};

/// One benchmark family: name plus a task generator for a given input dim.
type Case<'a> = (&'a str, Box<dyn Fn(usize) -> pagoda_core::TaskDesc>);

fn main() {
    let cli = Cli::parse();
    // The paper uses 32 K tasks; the default here is 4096 because the
    // widest configurations are 512× the normal warp volume. Scale up
    // with --tasks for the full grid.
    let n = cli.scale(4_096);
    let dims = [16usize, 32, 64, 128, 256];
    let threads = [256u32, 512, 1024, 4096, 16384];

    println!(
        "Fig. 8 — Pagoda compute speedup over CUDA-HyperQ (input size x threads/task, {n} tasks)"
    );
    let mut points = Vec::new();
    let cases: Vec<Case> = vec![
        (
            "MM",
            Box::new(|d: usize| {
                let opts = GenOpts {
                    with_io: false,
                    ..GenOpts::default()
                };
                matmul::tasks_sized(1, d, &opts).remove(0)
            }),
        ),
        (
            "CONV",
            Box::new(|d: usize| {
                let opts = GenOpts {
                    with_io: false,
                    ..GenOpts::default()
                };
                conv::tasks_sized(1, d, &opts).remove(0)
            }),
        ),
    ];
    for (name, make) in cases {
        println!("--- {name}");
        print!("{:>10}", "input");
        for t in threads {
            print!("{t:>9}");
        }
        println!();
        for d in dims {
            let base = make(d);
            print!("{:>7}x{:<2}", d, d);
            for t in threads {
                let hq_task = reshape_task(&base, t, 256);
                let pg_task = reshape_task(&base, t, t.min(512));
                let hq_tasks = vec![hq_task; n];
                let pg_tasks = vec![pg_task; n];
                let hq = run_wave(Scheme::HyperQ, &hq_tasks);
                let pg = run_wave(Scheme::Pagoda, &pg_tasks);
                let speedup = pg.compute_speedup_over(&hq);
                print!("{speedup:>9.2}");
                let mut p =
                    DataPoint::new("fig8", name, Scheme::Pagoda, Some(u64::from(t)), &pg, None);
                p.speedup = speedup;
                p.param = Some((d as u64) << 32 | u64::from(t));
                points.push(p);
            }
            println!();
        }
    }
    emit_json(&cli, &points);
}
