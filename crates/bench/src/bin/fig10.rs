//! Fig. 10 — Average per-task latency: statically fused kernels vs
//! Pagoda, for 3DES (irregular) and MM (regular), as the number of tasks
//! grows 128 → 32768.
//!
//! In a fused kernel (or any batch system) no task completes before the
//! batch, so average latency grows linearly with the task count; Pagoda's
//! per-task latency stays flat.

use pagoda_bench::{emit_json, run_wave, Cli, DataPoint, Scheme};
use workloads::{Bench, GenOpts};

fn main() {
    let cli = Cli::parse();
    let max_n = cli.scale(32_768);
    let counts: Vec<usize> = std::iter::successors(Some(128usize), |n| Some(n * 2))
        .take_while(|&n| n <= max_n)
        .collect();

    println!("Fig. 10 — Average task latency (us, log scale in the paper)");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "tasks", "Fused-3DES", "Pagoda-3DES", "Fused-MM", "Pagoda-MM"
    );
    let mut points = Vec::new();
    for &n in &counts {
        let mut row = Vec::new();
        for b in [Bench::Des3, Bench::Mm] {
            let tasks = b.tasks(n, &GenOpts::default());
            let fus = run_wave(Scheme::Fusion(256), &tasks);
            let pag = run_wave(Scheme::Pagoda, &tasks);
            row.push(fus.mean_task_latency.as_us_f64());
            row.push(pag.mean_task_latency.as_us_f64());
            points.push(DataPoint::new(
                "fig10",
                b.name(),
                Scheme::Fusion(256),
                Some(n as u64),
                &fus,
                None,
            ));
            points.push(DataPoint::new(
                "fig10",
                b.name(),
                Scheme::Pagoda,
                Some(n as u64),
                &pag,
                None,
            ));
        }
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            n, row[0], row[1], row[2], row[3]
        );
    }
    emit_json(&cli, &points);
}
