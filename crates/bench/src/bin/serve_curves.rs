//! serve_curves — latency-vs-throughput curves for the multi-tenant
//! serving layer (the serving analogue of the paper's Fig. 10).
//!
//! Sweeps offered load (relative to the mix's calibrated closed-loop
//! service capacity) for two tenant mixes under four front-end variants:
//!
//! * `fifo-unbounded` — FIFO with no admission control: the divergence
//!   baseline. Open-loop overload grows the queue without bound, so p99
//!   sojourn scales with experiment length;
//! * `fifo` / `wfq` / `edf` — bounded per-tenant queues with shedding:
//!   the backlog ahead of any *admitted* task is capped, so p99 stays
//!   bounded at every load while the excess is shed at the door.
//!
//! Output: an aligned text table plus (with `--json`) one JSON line per
//! (mix, variant, load) point. Fully deterministic for a given seed.
//!
//! Run with `cargo run --release -p pagoda-bench --bin serve_curves`
//! (add `--quick` for a smoke-sized sweep).

use desim::Dur;
use pagoda_bench::Cli;
use pagoda_core::PagodaConfig;
use pagoda_serve::{
    calibrate_capacity, serve, serving_slice, ArrivalSpec, Outcome, Policy, ServeConfig, TenantSpec,
};
use serde::Serialize;
use workloads::{Bench, GenOpts};

/// SMMs of the MIG-style device slice the experiments run on. Two SMMs
/// → 4 MTB columns × 32 rows = 128 TaskTable entries, small enough that
/// a few hundred tasks of overload backlog spill out of the table and
/// into the front-end queues where admission control and QoS live.
const SLICE_SMS: u32 = 2;

/// One tenant slot of a mix, before rates are assigned.
struct MixTenant {
    name: &'static str,
    bench: Bench,
    /// Fraction of the aggregate offered rate this tenant submits.
    share: f64,
    weight: u32,
    queue_cap: usize,
    deadline_us: Option<u64>,
    /// Bursty (MMPP) instead of Poisson arrivals.
    bursty: bool,
}

struct Mix {
    name: &'static str,
    tenants: Vec<MixTenant>,
}

fn mixes() -> Vec<Mix> {
    vec![
        // A packet pipeline sharing the GPU with a bursty image tenant —
        // small irregular tasks, the paper's 3DES/MB pairing.
        Mix {
            name: "netmix",
            tenants: vec![
                MixTenant {
                    name: "packets",
                    bench: Bench::Des3,
                    share: 0.67,
                    weight: 2,
                    queue_cap: 32,
                    deadline_us: Some(1_500),
                    bursty: false,
                },
                // Loose deadline rather than none: under EDF a tenant
                // with no deadline sorts last forever and starves when a
                // deadline-bearing tenant alone exceeds capacity.
                MixTenant {
                    name: "tiles",
                    bench: Bench::Mb,
                    share: 0.33,
                    weight: 1,
                    queue_cap: 32,
                    deadline_us: Some(3_000),
                    bursty: true,
                },
            ],
        },
        // A vision pipeline: latency-sensitive DCT tiles against batchy
        // convolution work.
        Mix {
            name: "vision",
            tenants: vec![
                MixTenant {
                    name: "dct",
                    bench: Bench::Dct,
                    share: 0.5,
                    weight: 3,
                    queue_cap: 24,
                    deadline_us: Some(2_500),
                    bursty: false,
                },
                MixTenant {
                    name: "conv",
                    bench: Bench::Conv,
                    share: 0.5,
                    weight: 1,
                    queue_cap: 24,
                    deadline_us: None,
                    bursty: true,
                },
            ],
        },
    ]
}

/// An MMPP with a 4:1 burst-to-calm intensity ratio, rescaled so its
/// long-run mean equals `rate_per_s`.
fn bursty_spec(rate_per_s: f64) -> ArrivalSpec {
    let shape = ArrivalSpec::Mmpp {
        calm_rate_per_s: 0.5,
        burst_rate_per_s: 2.0,
        mean_calm_us: 300.0,
        mean_burst_us: 100.0,
    };
    shape.scaled(rate_per_s / shape.mean_rate_per_s())
}

/// One plotted point.
#[derive(Debug, Serialize)]
struct CurvePoint {
    mix: String,
    variant: String,
    offered_load: f64,
    offered_rate_per_s: f64,
    throughput_per_s: f64,
    shed_frac: f64,
    expired_frac: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    avg_slot_occupancy: f64,
}

fn build_cfg(
    mix: &Mix,
    policy: Policy,
    unbounded: bool,
    aggregate_rate: f64,
    tasks_per_tenant: usize,
    runtime: &PagodaConfig,
) -> ServeConfig {
    let total_tasks = mix.tenants.len() * tasks_per_tenant;
    let tenants = mix
        .tenants
        .iter()
        .map(|mt| {
            let rate = mt.share * aggregate_rate;
            TenantSpec {
                name: mt.name.to_string(),
                weight: mt.weight,
                queue_cap: if unbounded { usize::MAX } else { mt.queue_cap },
                deadline: mt.deadline_us.map(Dur::from_us),
                arrival: if mt.bursty {
                    bursty_spec(rate)
                } else {
                    ArrivalSpec::Poisson { rate_per_s: rate }
                },
                bench: mt.bench,
                gen: GenOpts::default(),
                // Share-proportional counts: every tenant's stream spans
                // the same window, so the aggregate offered rate holds
                // for the whole run.
                tasks: Some(((mt.share * total_tasks as f64).round() as usize).max(1)),
                slo: None,
            }
        })
        .collect();
    let mut cfg = ServeConfig::new(tenants, policy);
    cfg.tasks_per_tenant = tasks_per_tenant;
    cfg.mix = mix.name.to_string();
    cfg.cancel_late = matches!(policy, Policy::Edf);
    cfg.runtime = runtime.clone();
    cfg
}

fn main() {
    let cli = Cli::parse();
    let tasks_per_tenant = cli.tasks.unwrap_or(if cli.quick { 256 } else { 1024 });
    // Calibration quality must not depend on --quick: a short probe is
    // dominated by its pipeline-drain tail and understates capacity.
    let probe = 512;
    let runtime = serving_slice(SLICE_SMS).expect("nonzero slice");
    let loads: &[f64] = if cli.quick {
        &[0.8, 2.0]
    } else {
        &[0.5, 0.8, 1.1, 1.5, 2.0]
    };
    let variants: &[(&str, Policy, bool)] = &[
        ("fifo-unbounded", Policy::Fifo, true),
        ("fifo", Policy::Fifo, false),
        ("wfq", Policy::WeightedFair, false),
        ("edf", Policy::Edf, false),
    ];

    println!("serve_curves — sojourn latency vs offered load, {tasks_per_tenant} tasks/tenant");
    println!(
        "{:>8} {:>15} {:>6} {:>10} {:>7} {:>7} {:>10} {:>10} {:>10}",
        "mix", "variant", "load", "thru(k/s)", "shed%", "late%", "p50(us)", "p95(us)", "p99(us)"
    );

    let mut points = Vec::new();
    for mix in mixes() {
        // Calibrated aggregate capacity: tasks/s the runtime sustains on
        // this mix's blend under closed-loop saturation. 1/C = Σ sᵢ/Cᵢ.
        let inv: f64 = mix
            .tenants
            .iter()
            .map(|mt| {
                mt.share
                    / calibrate_capacity(&runtime, mt.bench, &GenOpts::default(), probe)
                        .expect("calibration config is valid")
            })
            .sum();
        let capacity = 1.0 / inv;

        for &(variant, policy, unbounded) in variants {
            for &load in loads {
                let rate = load * capacity;
                let mut cfg = build_cfg(&mix, policy, unbounded, rate, tasks_per_tenant, &runtime);
                cfg.offered_load = load;
                let out = serve(&cfg).expect("sweep config is valid");

                let sojourns: Vec<f64> = out.records.iter().filter_map(|r| r.sojourn_us).collect();
                let offered = out.records.len() as f64;
                let shed = out
                    .records
                    .iter()
                    .filter(|r| r.outcome == Outcome::Shed)
                    .count() as f64;
                let expired = out
                    .records
                    .iter()
                    .filter(|r| r.outcome == Outcome::Expired)
                    .count() as f64;
                let p = CurvePoint {
                    mix: mix.name.to_string(),
                    variant: variant.to_string(),
                    offered_load: load,
                    offered_rate_per_s: rate,
                    throughput_per_s: out.report.throughput_per_s,
                    shed_frac: shed / offered,
                    expired_frac: expired / offered,
                    p50_us: pagoda_serve::percentile(&sojourns, 50.0),
                    p95_us: pagoda_serve::percentile(&sojourns, 95.0),
                    p99_us: pagoda_serve::percentile(&sojourns, 99.0),
                    avg_slot_occupancy: out.report.avg_slot_occupancy,
                };
                println!(
                    "{:>8} {:>15} {:>6.2} {:>10.1} {:>7.1} {:>7.1} {:>10.1} {:>10.1} {:>10.1}",
                    p.mix,
                    p.variant,
                    p.offered_load,
                    p.throughput_per_s / 1e3,
                    100.0 * p.shed_frac,
                    100.0 * p.expired_frac,
                    p.p50_us,
                    p.p95_us,
                    p.p99_us
                );
                points.push(p);
            }
        }
    }

    // The claim the curves exist to make: under overload, admission
    // control bounds the p99 of admitted work; unbounded FIFO does not.
    for mix in mixes() {
        let at = |v: &str, l: f64| {
            points
                .iter()
                .find(|p| p.mix == mix.name && p.variant == v && (p.offered_load - l).abs() < 1e-9)
                .expect("point exists")
        };
        let hi = *loads.last().unwrap();
        let unb = at("fifo-unbounded", hi);
        let bounded_worst = ["fifo", "wfq", "edf"]
            .iter()
            .map(|v| at(v, hi).p99_us)
            .fold(0.0f64, f64::max);
        println!(
            "{}: at {:.1}x load, p99 fifo-unbounded = {:.0} us vs worst bounded = {:.0} us ({}x)",
            mix.name,
            hi,
            unb.p99_us,
            bounded_worst,
            (unb.p99_us / bounded_worst.max(1e-9)) as u64
        );
    }

    if cli.json {
        for p in &points {
            println!("{}", serde_json::to_string(p).expect("serializable"));
        }
    }
}
