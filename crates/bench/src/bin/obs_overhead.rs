//! obs_overhead — the cost of observing the simulator.
//!
//! Runs the same deterministic Pagoda workload four times:
//!
//! * `off`  — `Obs::off()`: instrumentation compiled in, recorder
//!   absent. Every obs site is one `Option` discriminant test. This is
//!   the configuration every perf experiment runs in, so its cost is
//!   what the CI gate protects.
//! * `null` — a [`NullRecorder`]: dynamic dispatch taken, events
//!   discarded. Isolates the dispatch cost from the buffering cost.
//! * `mem`  — a [`MemRecorder`]: everything buffered, the price of a
//!   full trace capture.
//! * `prof` — a [`ProfRecorder`]: the critical-path profiler teeing
//!   into a `MemRecorder` — the price of running with attribution on.
//!
//! Throughput is simulator events per wall-clock second (the device
//! engine's delivered-event count over `Instant` time); the simulated
//! history — and therefore the event count — is byte-identical across
//! modes, so only the wall clock varies. Each mode runs `--reps` times
//! interleaved and keeps its best time, which converges on true cost
//! under CI noise.
//!
//! Writes `BENCH_obs.json` (override with `--out PATH`) plus a
//! profiler-focused `BENCH_prof.json` (`--out-prof PATH`) carrying the
//! prof-mode overhead and the run's phase attribution. Exits nonzero if
//! the NullRecorder regresses events/sec by more than `--gate` (default
//! 5%) or the ProfRecorder by more than `--gate-prof` (default 10%)
//! against the no-obs baseline; `--smoke` widens both (15%/25%) because
//! ~3 ms smoke reps are noise-dominated.
//!
//! Run with `cargo run --release -p pagoda-bench --bin obs_overhead`
//! (add `--smoke` for the CI-sized run).

use std::sync::Arc;
use std::time::Instant;

use gpu_sim::WarpWork;
use pagoda_core::{PagodaConfig, PagodaRuntime, SubmitError, TaskDesc};
use pagoda_obs::{MemRecorder, NullRecorder, Obs};
use pagoda_prof::{ProfRecorder, ProfSummary};
use serde::Serialize;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
struct ModeResult {
    mode: String,
    /// Best-of-reps wall-clock time for the whole run, milliseconds.
    best_ms: f64,
    /// Device-engine events delivered (identical across modes).
    events: u64,
    /// events / best_ms, in events per wall-clock second.
    events_per_sec: f64,
    /// Regression vs the `off` baseline, percent (negative = faster).
    overhead_pct: f64,
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// context for comparing timings across machines.
    host_cores: usize,
    tasks: u64,
    reps: u64,
    gate_pct: f64,
    prof_gate_pct: f64,
    off: ModeResult,
    null: ModeResult,
    mem: ModeResult,
    prof: ModeResult,
    /// Whether `null.overhead_pct <= gate_pct` and
    /// `prof.overhead_pct <= prof_gate_pct`.
    pass: bool,
}

/// The profiler-focused companion report (`BENCH_prof.json`): what
/// attribution costs, and what it attributes on this workload.
#[derive(Debug, Clone, Serialize)]
struct ProfBenchReport {
    bench: String,
    host_cores: usize,
    tasks: u64,
    reps: u64,
    gate_pct: f64,
    off: ModeResult,
    prof: ModeResult,
    /// Phase decomposition of the profiled run (deterministic, so any
    /// rep produces the same summary).
    attribution: ProfSummary,
    /// Whether `prof.overhead_pct <= gate_pct`.
    pass: bool,
}

fn task() -> TaskDesc {
    let mut t = TaskDesc::uniform(128, WarpWork::compute(60_000, 8.0));
    t.input_bytes = 1024;
    t.output_bytes = 1024;
    t
}

/// Runs `n` narrow tasks with the given obs handle attached to every
/// layer; returns (wall seconds, device events delivered).
fn run_once(n: usize, obs: Obs) -> (f64, u64) {
    let start = Instant::now();
    let mut rt = PagodaRuntime::new(PagodaConfig::default());
    rt.attach_obs(obs);
    let mut spawned = 0usize;
    let mut pending = task();
    while spawned < n {
        match rt.submit(pending) {
            Ok(_) => {
                spawned += 1;
                pending = task();
            }
            Err(SubmitError::Full(desc)) => {
                rt.sync_table();
                if !rt.capacity().has_room() {
                    let timeout = rt.config().wait_timeout;
                    rt.advance_to(rt.host_now() + timeout);
                }
                pending = desc;
            }
            Err(e) => panic!("unspawnable bench task: {e}"),
        }
    }
    rt.wait_all();
    assert_eq!(rt.report().tasks as usize, n, "bench run must complete");
    (start.elapsed().as_secs_f64(), rt.engine_stats().delivered)
}

fn main() {
    let mut n: usize = 4096;
    let mut reps: usize = 5;
    let mut gate_pct: f64 = 5.0;
    let mut prof_gate_pct: f64 = 10.0;
    let mut out = String::from("BENCH_obs.json");
    let mut out_prof = String::from("BENCH_prof.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => {
                n = 768;
                reps = 7;
                // Smoke reps last ~3 ms each, where scheduler interference
                // on a shared CI box swings the measured overhead by tens
                // of percentage points even best-of-reps (observed spread
                // on a quiet 1-core host: -13% to +9%). Widen the gates so
                // smoke only catches gross regressions; the real <=5% and
                // <=10% bounds are enforced by full-size runs and the
                // committed BENCH_obs.json / BENCH_prof.json. An explicit
                // --gate / --gate-prof after --smoke still overrides.
                gate_pct = 15.0;
                prof_gate_pct = 25.0;
            }
            "--tasks" => {
                n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tasks needs a number");
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number");
            }
            "--gate" => {
                gate_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--gate needs a percentage");
            }
            "--gate-prof" => {
                prof_gate_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--gate-prof needs a percentage");
            }
            "--out" => {
                out = args.next().expect("--out needs a path");
            }
            "--out-prof" => {
                out_prof = args.next().expect("--out-prof needs a path");
            }
            other => panic!(
                "unknown argument {other}; supported: --smoke --tasks N --reps N \
                 --gate PCT --gate-prof PCT --out PATH --out-prof PATH"
            ),
        }
    }

    type ObsCtor = fn() -> Obs;
    let modes: [(&str, ObsCtor); 4] = [
        ("off", Obs::off),
        ("null", || Obs::new(Arc::new(NullRecorder))),
        ("mem", || Obs::with_mem(Arc::new(MemRecorder::new()))),
        ("prof", || ProfRecorder::recording().0),
    ];

    // Warm up once (page cache, allocator), then interleave the reps so
    // slow drift (thermal, noisy neighbours) hits every mode equally.
    run_once(n.min(256), Obs::off());
    let mut best = [f64::INFINITY; 4];
    let mut events = [0u64; 4];
    for rep in 0..reps {
        for (i, (name, mk)) in modes.iter().enumerate() {
            let (secs, ev) = run_once(n, mk());
            if rep == 0 {
                events[i] = ev;
            } else {
                assert_eq!(events[i], ev, "{name}: event count must be deterministic");
            }
            if secs < best[i] {
                best[i] = secs;
            }
        }
    }
    for i in 1..4 {
        assert_eq!(
            events[0], events[i],
            "recorders must not change the simulated history"
        );
    }

    let evps: Vec<f64> = (0..4).map(|i| events[i] as f64 / best[i]).collect();
    let overhead = |i: usize| 100.0 * (evps[0] - evps[i]) / evps[0];
    let mk_result = |i: usize| ModeResult {
        mode: modes[i].0.to_string(),
        best_ms: best[i] * 1e3,
        events: events[i],
        events_per_sec: evps[i],
        overhead_pct: overhead(i),
    };

    let host_cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let report = BenchReport {
        bench: "obs_overhead".to_string(),
        host_cores,
        tasks: n as u64,
        reps: reps as u64,
        gate_pct,
        prof_gate_pct,
        off: mk_result(0),
        null: mk_result(1),
        mem: mk_result(2),
        prof: mk_result(3),
        pass: overhead(1) <= gate_pct && overhead(3) <= prof_gate_pct,
    };

    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>10}",
        "mode", "best(ms)", "events", "events/s", "overhead"
    );
    for r in [&report.off, &report.null, &report.mem, &report.prof] {
        println!(
            "{:>6} {:>12.1} {:>12} {:>14.0} {:>9.2}%",
            r.mode, r.best_ms, r.events, r.events_per_sec, r.overhead_pct
        );
    }

    // One extra profiled (untimed) run to capture the attribution the
    // prof mode paid for; the history is deterministic, so this is the
    // same decomposition every timed rep produced.
    let attribution = {
        let (obs_h, rec) = ProfRecorder::recording();
        run_once(n, obs_h);
        rec.report().summary()
    };
    let prof_report = ProfBenchReport {
        bench: "prof_overhead".to_string(),
        host_cores,
        tasks: n as u64,
        reps: reps as u64,
        gate_pct: prof_gate_pct,
        off: mk_result(0),
        prof: mk_result(3),
        attribution,
        pass: overhead(3) <= prof_gate_pct,
    };

    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write BENCH_obs.json");
    println!("wrote {out}");
    let json = serde_json::to_string(&prof_report).expect("report serializes");
    std::fs::write(&out_prof, json + "\n").expect("write BENCH_prof.json");
    println!("wrote {out_prof}");

    if !report.pass {
        eprintln!(
            "FAIL: null overhead {:.2}% (gate {:.1}%), prof overhead {:.2}% (gate {:.1}%)",
            report.null.overhead_pct, gate_pct, report.prof.overhead_pct, prof_gate_pct
        );
        std::process::exit(1);
    }
    println!(
        "PASS: null overhead {:.2}% within {:.1}%, prof overhead {:.2}% within {:.1}%",
        report.null.overhead_pct, gate_pct, report.prof.overhead_pct, prof_gate_pct
    );
}
