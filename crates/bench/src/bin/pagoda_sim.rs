//! `pagoda_sim` — the general-purpose driver: run any benchmark under any
//! scheme at any scale, without editing a harness.
//!
//! ```text
//! pagoda_sim --bench FB --scheme pagoda --tasks 8192 --threads 128
//! pagoda_sim --bench MPE --scheme all --tasks 4096 --smem
//! pagoda_sim --list
//! ```

use baselines::RunSummary;
use pagoda_bench::{bench_waves, run_waves, Scheme};
use workloads::{Bench, GenOpts};

fn usage() -> ! {
    eprintln!(
        "usage: pagoda_sim [--bench NAME|all] [--scheme NAME|all] [--tasks N]\n\
         \x20                 [--threads N] [--smem] [--no-io] [--seed N] [--work-scale X]\n\
         \x20                 [--list]\n\
         benches: MB FB BF CONV DCT MM SLUD 3DES MPE\n\
         schemes: sequential pthreads hyperq gemtc pagoda pagoda-batching fusion"
    );
    std::process::exit(2)
}

fn parse_bench(s: &str) -> Option<Bench> {
    Bench::ALL
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(s))
}

fn parse_scheme(s: &str) -> Option<Scheme> {
    Some(match s.to_ascii_lowercase().as_str() {
        "sequential" | "seq" => Scheme::Sequential,
        "pthreads" | "cpu" => Scheme::PThreads,
        "hyperq" | "hq" => Scheme::HyperQ,
        "gemtc" => Scheme::Gemtc,
        "pagoda" => Scheme::Pagoda,
        "pagoda-batching" | "batching" => Scheme::PagodaBatched(384),
        "fusion" => Scheme::Fusion(256),
        _ => return None,
    })
}

fn print_row(bench: Bench, scheme: Scheme, s: &RunSummary) {
    println!(
        "{:>6} {:>16} | {:>10.3} ms makespan | {:>10.3} ms compute | {:>8.1} us lat | occ {:>5.1}% | {:>7} tasks",
        bench.name(),
        scheme.name(),
        s.makespan.as_secs_f64() * 1e3,
        s.compute_done.as_secs_f64() * 1e3,
        s.mean_task_latency.as_us_f64(),
        s.avg_running_occupancy * 100.0,
        s.tasks,
    );
}

fn main() {
    let mut benches: Vec<Bench> = vec![Bench::Fb];
    let mut schemes: Vec<Scheme> = vec![Scheme::Pagoda];
    let mut opts = GenOpts::default();
    let mut n = 4096usize;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--bench" => {
                let v = val();
                benches = if v.eq_ignore_ascii_case("all") {
                    Bench::ALL.to_vec()
                } else {
                    vec![parse_bench(&v).unwrap_or_else(|| usage())]
                };
            }
            "--scheme" => {
                let v = val();
                schemes = if v.eq_ignore_ascii_case("all") {
                    vec![
                        Scheme::Sequential,
                        Scheme::PThreads,
                        Scheme::HyperQ,
                        Scheme::Gemtc,
                        Scheme::Pagoda,
                    ]
                } else {
                    vec![parse_scheme(&v).unwrap_or_else(|| usage())]
                };
            }
            "--tasks" => n = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => opts.threads_per_task = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = val().parse().unwrap_or_else(|_| usage()),
            "--work-scale" => opts.work_scale = val().parse().unwrap_or_else(|_| usage()),
            "--smem" => opts.use_smem = true,
            "--no-io" => opts.with_io = false,
            "--list" => {
                for b in Bench::ALL {
                    println!(
                        "{:>6}  paper tasks {:>7}  gemtc {}  fusion {}  smem {}",
                        b.name(),
                        b.paper_task_count(),
                        if b.supports_gemtc() { "yes" } else { "no " },
                        if b.supports_fusion() { "yes" } else { "no " },
                        if b.uses_smem() { "yes" } else { "no " },
                    );
                }
                return;
            }
            _ => usage(),
        }
    }

    for b in &benches {
        // GeMTC cannot take shared-memory tasks; fall back per scheme.
        let waves = bench_waves(*b, n, &opts);
        let plain_opts = GenOpts {
            use_smem: false,
            ..opts.clone()
        };
        let waves_plain = bench_waves(*b, n, &plain_opts);
        for s in &schemes {
            match s {
                Scheme::Gemtc if !b.supports_gemtc() => {
                    println!(
                        "{:>6} {:>16} | n/a (dynamic task count)",
                        b.name(),
                        s.name()
                    );
                }
                Scheme::Fusion(_) if !b.supports_fusion() => {
                    println!(
                        "{:>6} {:>16} | n/a (no static task list)",
                        b.name(),
                        s.name()
                    );
                }
                Scheme::Gemtc => print_row(*b, *s, &run_waves(*s, &waves_plain)),
                _ => print_row(*b, *s, &run_waves(*s, &waves)),
            }
        }
    }
}
