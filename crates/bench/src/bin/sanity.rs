//! Quick calibration sanity: one benchmark across all runtimes.
use baselines::*;
use pagoda_core::PagodaConfig;
use workloads::{Bench, GenOpts};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2048);
    let opts = GenOpts::default();
    for b in [Bench::Fb, Bench::Mb, Bench::Dct, Bench::Mm] {
        let tasks = b.tasks(n, &opts);
        let seq = run_sequential(&CpuConfig::default(), &tasks);
        let pth = run_pthreads(&CpuConfig::default(), &tasks);
        let hq = run_hyperq(&HyperQConfig::default(), &tasks);
        let gm = run_gemtc(&GemtcConfig::default(), &tasks);
        let pg = run_pagoda(PagodaConfig::default(), &tasks);
        println!(
            "{:5} n={} | seq {:8.2}ms | pth {:8.2}ms ({:4.1}x) | hq {:8.2}ms ({:4.1}x) | gm {:8.2}ms ({:4.1}x) | pagoda {:8.2}ms ({:4.1}x) occ={:.2}",
            b.name(), n,
            seq.makespan.as_secs_f64()*1e3,
            pth.makespan.as_secs_f64()*1e3, pth.speedup_over(&seq),
            hq.makespan.as_secs_f64()*1e3, hq.speedup_over(&seq),
            gm.makespan.as_secs_f64()*1e3, gm.speedup_over(&seq),
            pg.makespan.as_secs_f64()*1e3, pg.speedup_over(&seq),
            pg.avg_running_occupancy,
        );
    }
}
