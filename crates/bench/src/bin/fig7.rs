//! Fig. 7 — Compute time vs threads per task.
//!
//! 32 K tasks, constant work per task, thread count swept 32 → 512; no
//! shared memory anywhere (GeMTC cannot use it), data copies excluded
//! (compute time only). Paper findings: Pagoda wins at every width
//! (geomean 2.29× over HyperQ and 2.26× over GeMTC at 128 threads);
//! Pagoda's advantage over HyperQ shrinks as tasks widen (underutilization
//! becomes less severe); GeMTC barely changes with width.

use baselines::geomean;
use pagoda_bench::{emit_json, run_wave, Cli, DataPoint, Scheme};
use workloads::{Bench, GenOpts};

fn main() {
    let cli = Cli::parse();
    let n = cli.scale(32_768);
    let widths = [32u32, 64, 128, 256, 512];
    let benches = [
        Bench::Mb,
        Bench::Fb,
        Bench::Bf,
        Bench::Conv,
        Bench::Dct,
        Bench::Mm,
        Bench::Des3,
        Bench::Mpe,
    ];

    println!("Fig. 7 — Compute time (ms) vs threads per task ({n} tasks, no smem, no copies)");
    let mut points = Vec::new();
    let (mut r128_hq, mut r128_gm) = (Vec::new(), Vec::new());
    for b in benches {
        println!("--- {}", b.name());
        println!(
            "{:>8} {:>14} {:>12} {:>12}",
            "threads", "CUDA-HyperQ", "GeMTC", "Pagoda"
        );
        for &w in &widths {
            let opts = GenOpts {
                threads_per_task: w,
                use_smem: false,
                with_io: false,
                ..GenOpts::default()
            };
            let tasks = b.tasks(n, &opts);
            let hq = run_wave(Scheme::HyperQ, &tasks);
            let gm = run_wave(Scheme::Gemtc, &tasks);
            let pg = run_wave(Scheme::Pagoda, &tasks);
            println!(
                "{:>8} {:>14.3} {:>12.3} {:>12.3}",
                w,
                hq.compute_done.as_ms_f64(),
                gm.compute_done.as_ms_f64(),
                pg.compute_done.as_ms_f64(),
            );
            if w == 128 {
                r128_hq.push(pg.compute_speedup_over(&hq));
                r128_gm.push(pg.compute_speedup_over(&gm));
            }
            for (s, r) in [
                (Scheme::HyperQ, &hq),
                (Scheme::Gemtc, &gm),
                (Scheme::Pagoda, &pg),
            ] {
                points.push(DataPoint::new(
                    "fig7",
                    b.name(),
                    s,
                    Some(u64::from(w)),
                    r,
                    None,
                ));
            }
        }
    }
    println!("---");
    println!(
        "geomean Pagoda compute speedup at 128 threads: {:.2}x over HyperQ (paper 2.29x), \
         {:.2}x over GeMTC (paper 2.26x)",
        geomean(&r128_hq),
        geomean(&r128_gm),
    );
    emit_json(&cli, &points);
}
