//! cluster_scaling — fleet-level scaling and skew curves for
//! `pagoda-cluster`.
//!
//! Two experiments over simulated multi-GPU fleets:
//!
//! * **Scaling** — a fixed closed-loop batch of uniform narrow tasks is
//!   driven through fleets of 1, 2, 4 (and 8 in the full run) devices
//!   under least-outstanding placement. Throughput is tasks per
//!   *simulated* second (wall clock never enters the curve). The CI gate
//!   requires the 4-device fleet to clear `--gate`× (default 3.2×) the
//!   single-device throughput: each device brings its own spawn
//!   pipeline, PCIe link, and TaskTable, so the fleet should scale close
//!   to linearly, losing only lockstep-rounding and routing slack.
//! * **Skew** — an open-loop 8-tenant mix (via `pagoda-serve` riding on
//!   the fleet through the shared `Backend` trait) whose per-tenant
//!   arrival rates follow a Zipf distribution with exponent `s`.
//!   Sweeping `s` against every placement policy shows where
//!   load-oblivious routing (round-robin) loses its tail: under skew,
//!   the busiest tenant's bursts pile onto whichever device rotation
//!   hands them, while load-aware policies (least-outstanding,
//!   power-of-two) flatten p99.
//!
//! Writes `BENCH_cluster.json` (override with `--out PATH`) and exits
//! nonzero if the scaling gate fails. Fully deterministic: same seed ⇒
//! byte-identical JSON.
//!
//! **`--parallel`** switches to a third experiment, written to
//! `BENCH_parallel.json`: the same closed-loop batch is driven twice per
//! fleet size — serial driver vs. the scoped-thread-pool driver
//! (`ClusterConfig::parallel`) — and compared on *wall-clock* time. The
//! run always verifies byte-equality (recorder streams, completion
//! times, engine stats, fleet report must match exactly; a mismatch
//! exits nonzero). The ≥`--gate`× wall-clock speedup assertion at 4
//! devices is enforced only when the host actually has ≥ 4 cores
//! (`std::thread::available_parallelism`); on smaller hosts the measured
//! speedup is reported with `gate_enforced: false`.
//!
//! Run with `cargo run --release -p pagoda-bench --bin cluster_scaling`
//! (add `--smoke` for the CI-sized run).

use gpu_sim::WarpWork;
use pagoda_check::{CheckLimits, CheckRecorder};
use pagoda_cluster::{ClusterConfig, ClusterHandle, Placement};
use pagoda_core::{SubmitError, TaskDesc};
use pagoda_prof::{ProfReport, ProfSummary};
use pagoda_serve::{percentile, serve_on, Policy, ServeConfig, TenantSpec};
use serde::Serialize;
use workloads::Bench;

/// One point of the throughput-vs-device-count curve.
#[derive(Debug, Clone, Serialize)]
struct ScalingPoint {
    devices: usize,
    tasks: usize,
    makespan_us: f64,
    /// Tasks per simulated second.
    tasks_per_s: f64,
    /// Throughput relative to the 1-device fleet.
    speedup: f64,
}

/// One point of the p99-vs-skew surface.
#[derive(Debug, Clone, Serialize)]
struct SkewPoint {
    policy: String,
    zipf_s: f64,
    offered: usize,
    completed: usize,
    p50_us: f64,
    p99_us: f64,
    off_affinity: u64,
}

#[derive(Debug, Clone, Serialize)]
struct BenchReport {
    bench: String,
    smoke: bool,
    /// `std::thread::available_parallelism()` on the measuring host —
    /// context for comparing timings across machines.
    host_cores: usize,
    gate_devices: usize,
    gate_required: f64,
    gate_measured: f64,
    pass: bool,
    scaling: Vec<ScalingPoint>,
    skew: Vec<SkewPoint>,
    /// Critical-path attribution of the gate-sized batch (per-device
    /// groups from the fleet's routing stream).
    attribution: ProfSummary,
}

/// One fleet size of the serial-vs-parallel wall-clock comparison.
#[derive(Debug, Clone, Serialize)]
struct ParallelPoint {
    devices: usize,
    tasks: usize,
    serial_wall_ms: f64,
    parallel_wall_ms: f64,
    /// Serial wall-clock over parallel wall-clock.
    speedup: f64,
    /// Simulated makespan — identical between the two drivers by
    /// construction (asserted).
    makespan_us: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ParallelReport {
    bench: String,
    smoke: bool,
    /// `std::thread::available_parallelism()` on the measuring host.
    host_cores: usize,
    gate_devices: usize,
    gate_required: f64,
    /// The wall-clock gate only binds on hosts with >= `gate_devices`
    /// cores; a 1-core box cannot speed anything up, but must still
    /// produce byte-identical results (always checked).
    gate_enforced: bool,
    gate_measured: f64,
    pass: bool,
    /// Whether the byte-equality sub-run matched (a `false` here fails
    /// the bench regardless of the wall-clock gate).
    byte_equal: bool,
    points: Vec<ParallelPoint>,
    /// Critical-path attribution of the serial equality run (identical
    /// under the parallel driver — the streams are byte-equal).
    attribution: ProfSummary,
}

/// The uniform narrow task of the scaling batch: 4 warps, ~30 us of
/// device work, a small payload each way — the paper's "narrow task"
/// shape, heavy enough that execution (not spawning) bounds a device.
fn task() -> TaskDesc {
    let mut t = TaskDesc::uniform(128, WarpWork::compute(60_000, 8.0));
    t.input_bytes = 1024;
    t.output_bytes = 1024;
    t
}

/// Closed-loop batch on an `n`-device fleet; returns simulated makespan
/// in microseconds.
fn scaling_run(n: usize, tasks: usize) -> f64 {
    drive_batch(n, tasks, false, pagoda_obs::Obs::off()).0
}

/// Gate-sized batch re-driven with a [`pagoda_prof::ProfRecorder`]
/// attached: same simulated history as [`scaling_run`] (the curve is
/// measured in simulated time, so profiling adds no noise to it), plus
/// the critical-path attribution of where that time went.
fn attribution_run(n: usize, tasks: usize) -> ProfSummary {
    let (obs, rec) = pagoda_prof::ProfRecorder::recording();
    drive_batch(n, tasks, false, obs);
    rec.report().summary()
}

/// Closed-loop batch with an explicit driver mode and obs sink; returns
/// simulated makespan (us) and host wall-clock (ms).
fn drive_batch(n: usize, tasks: usize, parallel: bool, obs: pagoda_obs::Obs) -> (f64, f64) {
    let mut cfg = ClusterConfig::uniform(n);
    // The uniform batch models fleet-resident data: every device is
    // "home", so no placement pays the staging transfer. (The skew
    // experiment is where affinity costs show.)
    cfg.affinity_spread = n as u32;
    cfg.parallel = parallel;
    let started = std::time::Instant::now();
    let mut fleet = ClusterHandle::new(cfg).expect("uniform config is valid");
    fleet.attach_obs(obs);
    let mut spawned = 0usize;
    let mut pending = task();
    while spawned < tasks {
        match fleet.submit(pending) {
            Ok(_) => {
                spawned += 1;
                pending = task();
            }
            Err(SubmitError::Full(desc)) => {
                fleet.sync();
                if !fleet.capacity().has_room() {
                    let t = fleet.now() + desim::Dur::from_us(20);
                    fleet.advance_to(t);
                }
                pending = desc;
            }
            Err(e) => panic!("unspawnable bench task: {e}"),
        }
    }
    fleet.wait_all();
    let rep = fleet.report();
    assert_eq!(rep.completed as usize, tasks, "scaling batch must complete");
    (
        rep.makespan.as_us_f64(),
        started.elapsed().as_secs_f64() * 1e3,
    )
}

/// Open-loop Zipf-skewed tenant mix on a 4-device fleet under `policy`.
fn skew_run(policy: Placement, zipf_s: f64, tasks_per_tenant: usize) -> SkewPoint {
    const TENANTS: usize = 8;
    const DEVICES: usize = 4;
    // Aggregate offered rate: high enough to keep the fleet busy, low
    // enough that a balanced policy stays stable. Found empirically
    // against the default device; the comparison across policies at
    // equal load is what the curve shows, not the absolute rate.
    const AGG_RATE: f64 = 2.4e6;
    let weights: Vec<f64> = (1..=TENANTS)
        .map(|r| 1.0 / (r as f64).powf(zipf_s))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let tenants: Vec<TenantSpec> = weights
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let mut t = TenantSpec::new(&format!("t{i}"), Bench::Des3, AGG_RATE * w / wsum);
            t.queue_cap = 512;
            t
        })
        .collect();
    let mut scfg = ServeConfig::new(tenants, Policy::Fifo);
    scfg.tasks_per_tenant = tasks_per_tenant;
    scfg.mix = format!("zipf-{zipf_s}");
    let mut ccfg = ClusterConfig::uniform(DEVICES);
    ccfg.placement = policy;
    ccfg.affinity_spread = 1;
    let mut fleet = ClusterHandle::new(ccfg).expect("uniform config is valid");
    let out = serve_on(&scfg, &mut fleet).expect("skew mix serves");
    let rep = fleet.report();
    let sojourns: Vec<f64> = out.records.iter().filter_map(|r| r.sojourn_us).collect();
    SkewPoint {
        policy: format!("{policy:?}"),
        zipf_s,
        offered: TENANTS * tasks_per_tenant,
        completed: sojourns.len(),
        p50_us: percentile(&sojourns, 50.0),
        p99_us: percentile(&sojourns, 99.0),
        off_affinity: rep.off_affinity,
    }
}

/// Runs a fault-laden, observability-recording batch under one driver
/// and returns everything that must be byte-identical across drivers.
/// The recorder is a [`CheckRecorder`]: the invariant checker rides the
/// bench for free, so a fleet bug that happens not to perturb the byte
/// comparison (both drivers wrong the same way) still fails the gate.
fn equality_run(parallel: bool) -> ((String, Vec<Option<f64>>, String), pagoda_obs::ObsBuffer) {
    let mut cfg = ClusterConfig::uniform(4);
    cfg.placement = Placement::PowerOfTwo;
    cfg.seed = 0xb17e;
    cfg.parallel = parallel;
    // A window that does not divide the 20 us polling slice, so every
    // advance crosses several partial windows and the kill below lands
    // mid-window.
    cfg.run_ahead = desim::Dur::from_us(5);
    cfg.faults = vec![pagoda_cluster::FaultSpec {
        at: desim::SimTime::from_us(40),
        device: 2,
        kind: pagoda_cluster::FaultKind::Kill,
    }];
    let (obs, rec) = CheckRecorder::recording(Some(CheckLimits::of(&cfg.devices[0])));
    let mut fleet = ClusterHandle::new(cfg).expect("equality config is valid");
    fleet.attach_obs(obs);
    let mut keys = Vec::new();
    let mut pending = task();
    while keys.len() < 256 {
        match fleet.submit(pending) {
            Ok(k) => {
                keys.push(k);
                pending = task();
            }
            Err(SubmitError::Full(desc)) => {
                fleet.sync();
                if !fleet.capacity().has_room() {
                    let t = fleet.now() + desim::Dur::from_us(20);
                    fleet.advance_to(t);
                }
                pending = desc;
            }
            Err(e) => panic!("unspawnable bench task: {e}"),
        }
    }
    fleet.wait_all();
    let violations = rec.finish();
    assert!(
        violations.is_empty(),
        "invariants broken during the equality run: {violations:?}"
    );
    let times: Vec<Option<f64>> = keys
        .iter()
        .map(|&k| fleet.completion_time(k).map(|t| t.as_us_f64()))
        .collect();
    let fingerprint = format!("{:?}/{:?}", fleet.engine_stats(), fleet.report());
    let buf = rec.snapshot();
    ((buf.to_json(), times, fingerprint), buf)
}

fn parallel_main(smoke: bool, gate: f64, out: String) {
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (device_counts, batch): (&[usize], usize) =
        if smoke { (&[4], 768) } else { (&[4, 8], 2048) };

    eprintln!("byte-equality: serial vs parallel driver (4 devices, kill fault, 5 us windows)");
    let (serial_eq, serial_buf) = equality_run(false);
    let (parallel_eq, _) = equality_run(true);
    let byte_equal = serial_eq == parallel_eq;
    if byte_equal {
        eprintln!("byte-equality: OK (recorder stream, completion times, stats, report)");
    } else {
        eprintln!("byte-equality: MISMATCH between serial and parallel drivers");
        if serial_eq.0 != parallel_eq.0 {
            eprintln!("  recorder streams differ");
        }
        if serial_eq.1 != parallel_eq.1 {
            eprintln!("  completion times differ");
        }
        if serial_eq.2 != parallel_eq.2 {
            eprintln!("  engine stats / fleet report differ");
        }
    }

    let mut points = Vec::new();
    for &n in device_counts {
        let (serial_mk, serial_wall) = drive_batch(n, batch, false, pagoda_obs::Obs::off());
        let (parallel_mk, parallel_wall) = drive_batch(n, batch, true, pagoda_obs::Obs::off());
        assert!(
            (serial_mk - parallel_mk).abs() < 1e-9,
            "drivers disagree on simulated makespan at {n} devices: \
             {serial_mk} vs {parallel_mk}"
        );
        let speedup = serial_wall / parallel_wall;
        eprintln!(
            "parallel: {n} device(s)  serial {serial_wall:8.1} ms  \
             parallel {parallel_wall:8.1} ms  speedup {speedup:.2}x"
        );
        points.push(ParallelPoint {
            devices: n,
            tasks: batch,
            serial_wall_ms: serial_wall,
            parallel_wall_ms: parallel_wall,
            speedup,
            makespan_us: serial_mk,
        });
    }

    const GATE_DEVICES: usize = 4;
    let gate_enforced = host_cores >= GATE_DEVICES;
    let measured = points
        .iter()
        .find(|p| p.devices == GATE_DEVICES)
        .map_or(0.0, |p| p.speedup);
    let pass = byte_equal && (!gate_enforced || measured >= gate);
    let report = ParallelReport {
        bench: "cluster_scaling_parallel".into(),
        smoke,
        host_cores,
        gate_devices: GATE_DEVICES,
        gate_required: gate,
        gate_enforced,
        gate_measured: measured,
        pass,
        byte_equal,
        points,
        attribution: ProfReport::from_buffer(&serial_buf).summary(),
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, format!("{json}\n")).expect("write report");
    eprintln!("wrote {out}");
    if !byte_equal {
        eprintln!("GATE FAILED: parallel driver is not byte-identical to serial");
        std::process::exit(1);
    }
    if gate_enforced && measured < gate {
        eprintln!(
            "GATE FAILED: {GATE_DEVICES}-device wall-clock speedup {measured:.2}x \
             < required {gate:.2}x ({host_cores} cores)"
        );
        std::process::exit(1);
    }
    if gate_enforced {
        eprintln!("gate passed: {measured:.2}x >= {gate:.2}x at {GATE_DEVICES} devices");
    } else {
        eprintln!(
            "gate skipped: host has {host_cores} core(s) < {GATE_DEVICES}; \
             measured {measured:.2}x recorded, byte-equality enforced"
        );
    }
}

fn main() {
    let mut smoke = false;
    let mut parallel = false;
    let mut gate: Option<f64> = None;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--parallel" => parallel = true,
            "--gate" => {
                gate = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--gate needs a number"),
                );
            }
            "--out" => {
                out = Some(args.next().expect("--out needs a path"));
            }
            other => panic!("unknown argument {other}"),
        }
    }
    if parallel {
        let gate = gate.unwrap_or(2.0);
        let out = out.unwrap_or_else(|| "BENCH_parallel.json".into());
        parallel_main(smoke, gate, out);
        return;
    }
    let gate = gate.unwrap_or(3.2);
    let out = out.unwrap_or_else(|| "BENCH_cluster.json".into());

    let (device_counts, batch, skews, tasks_per_tenant): (&[usize], usize, &[f64], usize) = if smoke
    {
        (&[1, 2, 4], 768, &[1.2], 16)
    } else {
        (&[1, 2, 4, 8], 2048, &[0.0, 0.6, 1.2], 96)
    };

    let mut scaling = Vec::new();
    let mut base_tps = 0.0;
    for &n in device_counts {
        let makespan_us = scaling_run(n, batch);
        let tasks_per_s = batch as f64 / (makespan_us * 1e-6);
        let speedup = if scaling.is_empty() {
            base_tps = tasks_per_s;
            1.0
        } else {
            tasks_per_s / base_tps
        };
        eprintln!(
            "scaling: {n} device(s)  makespan {makespan_us:9.1} us  \
             {tasks_per_s:9.0} tasks/s  speedup {speedup:.2}x"
        );
        scaling.push(ScalingPoint {
            devices: n,
            tasks: batch,
            makespan_us,
            tasks_per_s,
            speedup,
        });
    }

    let mut skew = Vec::new();
    for &s in skews {
        for policy in [
            Placement::RoundRobin,
            Placement::LeastOutstanding,
            Placement::PowerOfTwo,
            Placement::TenantAffinity,
        ] {
            let p = skew_run(policy, s, tasks_per_tenant);
            eprintln!(
                "skew: s={s:.1} {:16} p50 {:8.1} us  p99 {:8.1} us  off-affinity {}",
                p.policy, p.p50_us, p.p99_us, p.off_affinity
            );
            skew.push(p);
        }
    }

    const GATE_DEVICES: usize = 4;
    let measured = scaling
        .iter()
        .find(|p| p.devices == GATE_DEVICES)
        .map_or(0.0, |p| p.speedup);
    let pass = measured >= gate;
    let report = BenchReport {
        bench: "cluster_scaling".into(),
        smoke,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        gate_devices: GATE_DEVICES,
        gate_required: gate,
        gate_measured: measured,
        pass,
        scaling,
        skew,
        attribution: attribution_run(GATE_DEVICES, batch),
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&out, format!("{json}\n")).expect("write report");
    eprintln!("wrote {out}");
    if !pass {
        eprintln!(
            "GATE FAILED: {GATE_DEVICES}-device speedup {measured:.2}x < required {gate:.2}x"
        );
        std::process::exit(1);
    }
    eprintln!("gate passed: {measured:.2}x >= {gate:.2}x at {GATE_DEVICES} devices");
}
