//! Fig. 11 — Benefits of continuous spawning and concurrent, pipelined
//! task processing.
//!
//! Three configurations, speedup over GeMTC: GeMTC (neither mechanism),
//! Pagoda-Batching (concurrent scheduling but batch-synchronous spawning,
//! same batch size as GeMTC), and full Pagoda (both). 32 K tasks, 128
//! threads each. Paper findings: Pagoda wins everywhere; CONV benefits
//! least from continuous spawning (regular, extremely short tasks); MPE
//! benefits most (unbalanced tasks).

use pagoda_bench::{emit_json, run_wave, Cli, DataPoint, Scheme};
use workloads::{Bench, GenOpts};

fn main() {
    let cli = Cli::parse();
    let n = cli.scale(32_768);
    // GeMTC's batch = one task per SuperKernel worker: 16 TBs/SMM x 24.
    let batch = 16 * 24;
    let benches = [
        Bench::Mb,
        Bench::Conv,
        Bench::Fb,
        Bench::Bf,
        Bench::Des3,
        Bench::Dct,
        Bench::Mm,
        Bench::Mpe,
    ];

    println!(
        "Fig. 11 — Continuous spawning + pipelined processing ({n} tasks, speedup over GeMTC)"
    );
    println!(
        "{:>6} | {:>8} {:>16} {:>8}",
        "bench", "GeMTC", "Pagoda-Batching", "Pagoda"
    );
    let mut points = Vec::new();
    for b in benches {
        let tasks = b.tasks(n, &GenOpts::default());
        let gm = run_wave(Scheme::Gemtc, &tasks);
        let pb = run_wave(Scheme::PagodaBatched(batch), &tasks);
        let pg = run_wave(Scheme::Pagoda, &tasks);
        println!(
            "{:>6} | {:>8.2} {:>16.2} {:>8.2}",
            b.name(),
            1.0,
            pb.speedup_over(&gm),
            pg.speedup_over(&gm),
        );
        for (s, r) in [
            (Scheme::Gemtc, &gm),
            (Scheme::PagodaBatched(batch), &pb),
            (Scheme::Pagoda, &pg),
        ] {
            points.push(DataPoint::new("fig11", b.name(), s, None, r, Some(&gm)));
        }
    }
    emit_json(&cli, &points);
}
