//! Fig. 9 — Static fusion vs Pagoda vs PThreads (vs HyperQ) on irregular
//! tasks.
//!
//! Task input sizes are drawn pseudo-randomly; runtime schemes
//! (Pagoda/HyperQ) size each task at 32-256 threads, while static fusion
//! fixes every sub-task at 256 threads. Speedups over the sequential CPU.
//! SLUD is excluded (no static task list). Paper headline: Pagoda 1.79×
//! geomean over static fusion.

use baselines::geomean;
use pagoda_bench::{emit_json, run_wave, Cli, DataPoint, Scheme};
use workloads::{irregular_tasks, Bench, GenOpts, ThreadPolicy};

fn main() {
    let cli = Cli::parse();
    let n = cli.scale(32_768);
    let benches = [
        Bench::Mb,
        Bench::Conv,
        Bench::Dct,
        Bench::Fb,
        Bench::Bf,
        Bench::Mm,
        Bench::Des3,
        Bench::Mpe,
    ];

    println!("Fig. 9 — Irregular tasks ({n}): speedup over sequential CPU");
    println!(
        "{:>6} | {:>13} {:>10} {:>10} {:>12}",
        "bench", "Static-Fusion", "Pagoda", "PThreads", "CUDA-HyperQ"
    );
    let mut points = Vec::new();
    let mut pagoda_over_fusion = Vec::new();
    for b in benches {
        // Compute-dominant inputs (6x the default work per task, thread
        // counts unchanged): Fig. 9's fusion-vs-runtime comparison is
        // about load imbalance inside the compute phase, so tasks must be
        // large enough that the spawn path is not the bottleneck.
        let opts = GenOpts {
            work_scale: 6.0,
            ..GenOpts::default()
        };
        let matched = irregular_tasks(b, n, ThreadPolicy::Matched, &opts);
        let fixed = irregular_tasks(b, n, ThreadPolicy::Fixed(256), &opts);
        let seq = run_wave(Scheme::Sequential, &matched);
        let fus = run_wave(Scheme::Fusion(256), &fixed);
        let pag = run_wave(Scheme::Pagoda, &matched);
        let pth = run_wave(Scheme::PThreads, &matched);
        let hq = run_wave(Scheme::HyperQ, &matched);
        println!(
            "{:>6} | {:>13.2} {:>10.2} {:>10.2} {:>12.2}",
            b.name(),
            fus.speedup_over(&seq),
            pag.speedup_over(&seq),
            pth.speedup_over(&seq),
            hq.speedup_over(&seq),
        );
        pagoda_over_fusion.push(pag.speedup_over(&fus));
        for (s, r) in [
            (Scheme::Fusion(256), &fus),
            (Scheme::Pagoda, &pag),
            (Scheme::PThreads, &pth),
            (Scheme::HyperQ, &hq),
        ] {
            points.push(DataPoint::new("fig9", b.name(), s, None, r, Some(&seq)));
        }
    }
    println!("---");
    println!(
        "geomean Pagoda speedup over static fusion: {:.2}x (paper 1.79x)",
        geomean(&pagoda_over_fusion)
    );
    emit_json(&cli, &points);
}
