//! Experiment harness: runs task lists through every runtime scheme and
//! prints the rows of each table and figure in the paper's evaluation
//! (§6). One binary per experiment lives in `src/bin/` (`fig5` … `fig11`,
//! `table3`, `table5`); Criterion microbenchmarks live in `benches/`.
//!
//! All experiments accept a `--tasks N` argument to scale down from the
//! paper's 32 K tasks (useful for smoke runs); results are printed as
//! aligned text tables plus machine-readable JSON lines on request
//! (`--json`).

use baselines::{
    run_fusion, run_gemtc, run_hyperq, run_pagoda, run_pagoda_batched, run_pthreads,
    run_sequential, CpuConfig, FusionConfig, GemtcConfig, HyperQConfig, RunSummary,
};
use desim::{Dur, SimTime};
use pagoda_core::{PagodaConfig, PagodaRuntime, TaskDesc};
use serde::Serialize;

/// A runtime scheme under comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// Single-core CPU.
    Sequential,
    /// 20-core PThreads task parallelism.
    PThreads,
    /// CUDA-HyperQ: one kernel per task.
    HyperQ,
    /// GeMTC SuperKernel batches.
    Gemtc,
    /// Pagoda, continuous spawning.
    Pagoda,
    /// Pagoda spawning in batches of the given size (Fig. 11 ablation).
    PagodaBatched(usize),
    /// Static fusion at the given sub-task width.
    Fusion(u32),
}

impl Scheme {
    /// Display name used in table headers.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Sequential => "Sequential",
            Scheme::PThreads => "PThreads",
            Scheme::HyperQ => "CUDA-HyperQ",
            Scheme::Gemtc => "GeMTC",
            Scheme::Pagoda => "Pagoda",
            Scheme::PagodaBatched(_) => "Pagoda-Batching",
            Scheme::Fusion(_) => "Static-Fusion",
        }
    }
}

/// Runs one *wave* (an independent task set) under a scheme.
pub fn run_wave(scheme: Scheme, tasks: &[TaskDesc]) -> RunSummary {
    match scheme {
        Scheme::Sequential => run_sequential(&CpuConfig::default(), tasks),
        Scheme::PThreads => run_pthreads(&CpuConfig::default(), tasks),
        Scheme::HyperQ => run_hyperq(&HyperQConfig::default(), tasks),
        Scheme::Gemtc => {
            let cfg = GemtcConfig {
                worker_threads: tasks.iter().map(|t| t.threads_per_tb).max().unwrap_or(128),
                ..GemtcConfig::default()
            };
            run_gemtc(&cfg, tasks)
        }
        Scheme::Pagoda => run_pagoda(PagodaConfig::default(), tasks),
        Scheme::PagodaBatched(b) => run_pagoda_batched(PagodaConfig::default(), tasks, b),
        Scheme::Fusion(w) => run_fusion(&FusionConfig::default(), tasks, w),
    }
}

/// Runs dependency waves sequentially (the SLUD pattern): Pagoda keeps
/// one runtime alive and `waitAll`s between waves; the other schemes run
/// each wave independently and the summaries are concatenated in time.
pub fn run_waves(scheme: Scheme, waves: &[Vec<TaskDesc>]) -> RunSummary {
    assert!(!waves.is_empty(), "no waves");
    if waves.len() == 1 {
        return run_wave(scheme, &waves[0]);
    }
    if matches!(scheme, Scheme::Pagoda) {
        let mut rt = PagodaRuntime::new(PagodaConfig::default());
        for w in waves {
            for t in w {
                baselines::spawn_blocking(&mut rt, t);
            }
            rt.wait_all();
        }
        return rt.report().into();
    }
    let parts: Vec<RunSummary> = waves.iter().map(|w| run_wave(scheme, w)).collect();
    concat_summaries(&parts)
}

/// Concatenates sequential-phase summaries: makespans add, task counts
/// add, latencies average weighted by task count, occupancy averages
/// weighted by makespan.
pub fn concat_summaries(parts: &[RunSummary]) -> RunSummary {
    assert!(!parts.is_empty());
    let makespan_ps: u64 = parts.iter().map(|p| p.makespan.as_ps()).sum();
    let compute_ps: u64 = parts.iter().map(|p| p.compute_done.as_ps()).sum();
    let tasks: u64 = parts.iter().map(|p| p.tasks).sum();
    let lat: u64 = parts
        .iter()
        .map(|p| p.mean_task_latency.as_ps() * p.tasks)
        .sum::<u64>()
        / tasks.max(1);
    let occ: f64 = parts
        .iter()
        .map(|p| p.avg_running_occupancy * p.makespan.as_ps() as f64)
        .sum::<f64>()
        / makespan_ps.max(1) as f64;
    RunSummary {
        makespan: Dur::from_ps(makespan_ps),
        compute_done: SimTime::from_ps(compute_ps),
        tasks,
        mean_task_latency: Dur::from_ps(lat),
        avg_running_occupancy: occ,
        h2d_busy: Dur::from_ps(parts.iter().map(|p| p.h2d_busy.as_ps()).sum()),
        d2h_busy: Dur::from_ps(parts.iter().map(|p| p.d2h_busy.as_ps()).sum()),
        gpu_busy: Dur::from_ps(parts.iter().map(|p| p.gpu_busy.as_ps()).sum()),
    }
}

/// Task waves for a benchmark: SLUD yields its dependency waves; every
/// other benchmark is one independent wave.
pub fn bench_waves(
    bench: workloads::Bench,
    n: usize,
    opts: &workloads::GenOpts,
) -> Vec<Vec<TaskDesc>> {
    if bench == workloads::Bench::Slud {
        let nb = workloads::slud::grid_for(n, opts.seed);
        workloads::slud::waves_as_tasks(nb, workloads::slud::DENSITY, opts)
    } else {
        vec![bench.tasks(n, opts)]
    }
}

/// Reshapes a single-threadblock task to `total_threads` threads split
/// into `threads_per_tb`-wide threadblocks, spreading the same total work
/// uniformly and preserving the barrier structure, CPI, and I/O. This is
/// how Fig. 8 sweeps a task's thread count from 256 to 65536 while
/// holding its input size (and therefore its work) fixed.
pub fn reshape_task(base: &TaskDesc, total_threads: u32, threads_per_tb: u32) -> TaskDesc {
    assert_eq!(base.num_tbs, 1, "reshape expects a single-TB base task");
    assert_eq!(total_threads % threads_per_tb, 0, "uneven grid");
    let w0 = &base.blocks[0].warps()[0];
    let total_ops: u64 = base.total_instrs();
    let ops_per_thread = total_ops.div_ceil(u64::from(total_threads));
    let total: f64 = w0.total_instrs().max(1) as f64;
    let fracs: Vec<f64> = w0
        .segments
        .iter()
        .filter_map(|s| match s {
            gpu_sim::Segment::Compute(c) => Some(*c as f64 / total),
            gpu_sim::Segment::Barrier => None,
        })
        .collect();
    let fsum: f64 = fracs.iter().sum();
    let fracs: Vec<f64> = fracs.iter().map(|f| f / fsum).collect();
    let warps = threads_per_tb.div_ceil(32);
    let block = workloads::gen::build_block(
        &vec![ops_per_thread; threads_per_tb as usize],
        w0.cpi,
        &fracs,
    );
    let _ = warps;
    let num_tbs = total_threads / threads_per_tb;
    TaskDesc {
        threads_per_tb,
        num_tbs,
        smem_per_tb: base.smem_per_tb,
        sync: base.sync,
        blocks: vec![block; num_tbs as usize],
        input_bytes: base.input_bytes,
        output_bytes: base.output_bytes,
        cpu_ops: base.cpu_ops,
    }
}

/// One printed/serialized experiment data point.
#[derive(Debug, Clone, Serialize)]
pub struct DataPoint {
    /// Experiment id, e.g. `"fig5"`.
    pub experiment: String,
    /// Benchmark name.
    pub bench: String,
    /// Scheme name.
    pub scheme: String,
    /// Sweep parameter (task count, threads, input size, …), if any.
    pub param: Option<u64>,
    /// End-to-end time in milliseconds.
    pub makespan_ms: f64,
    /// Compute-only time in milliseconds.
    pub compute_ms: f64,
    /// Speedup over this row's baseline (experiment-defined).
    pub speedup: f64,
    /// Mean task latency in microseconds.
    pub latency_us: f64,
    /// Mean running occupancy.
    pub occupancy: f64,
}

impl DataPoint {
    /// Builds a point from a run summary.
    pub fn new(
        experiment: &str,
        bench: &str,
        scheme: Scheme,
        param: Option<u64>,
        s: &RunSummary,
        baseline: Option<&RunSummary>,
    ) -> Self {
        DataPoint {
            experiment: experiment.to_string(),
            bench: bench.to_string(),
            scheme: scheme.name().to_string(),
            param,
            makespan_ms: s.makespan.as_secs_f64() * 1e3,
            compute_ms: s.compute_done.as_secs_f64() * 1e3,
            speedup: baseline.map_or(1.0, |b| s.speedup_over(b)),
            latency_us: s.mean_task_latency.as_us_f64(),
            occupancy: s.avg_running_occupancy,
        }
    }
}

/// Simple CLI: `--tasks N`, `--json`, `--quick` (divides the paper task
/// count by 16 for smoke runs).
#[derive(Debug, Clone)]
pub struct Cli {
    /// Override task count.
    pub tasks: Option<usize>,
    /// Emit JSON lines after the table.
    pub json: bool,
    /// 1/16-scale smoke run.
    pub quick: bool,
}

impl Cli {
    /// Parses `std::env::args`.
    pub fn parse() -> Self {
        let mut cli = Cli {
            tasks: None,
            json: false,
            quick: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--tasks" => {
                    cli.tasks = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--tasks needs a number"),
                    );
                }
                "--json" => cli.json = true,
                "--quick" => cli.quick = true,
                other => panic!("unknown argument {other}; supported: --tasks N --json --quick"),
            }
        }
        cli
    }

    /// Task count to use given the paper's count for this experiment.
    pub fn scale(&self, paper: usize) -> usize {
        if let Some(n) = self.tasks {
            return n;
        }
        if self.quick {
            (paper / 16).max(256)
        } else {
            paper
        }
    }
}

/// Prints the collected points as JSON lines if requested.
pub fn emit_json(cli: &Cli, points: &[DataPoint]) {
    if cli.json {
        for p in points {
            println!("{}", serde_json::to_string(p).expect("serializable"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::WarpWork;

    fn tiny() -> Vec<TaskDesc> {
        (0..64)
            .map(|_| TaskDesc::uniform(128, WarpWork::compute(100_000, 8.0)))
            .collect()
    }

    #[test]
    fn every_scheme_runs() {
        let tasks = tiny();
        for s in [
            Scheme::Sequential,
            Scheme::PThreads,
            Scheme::HyperQ,
            Scheme::Gemtc,
            Scheme::Pagoda,
            Scheme::PagodaBatched(32),
            Scheme::Fusion(256),
        ] {
            let r = run_wave(s, &tasks);
            assert_eq!(r.tasks, 64, "{}", s.name());
            assert!(r.makespan > Dur::ZERO, "{}", s.name());
        }
    }

    #[test]
    fn waves_concatenate() {
        let waves = vec![tiny(), tiny(), tiny()];
        let one = run_wave(Scheme::HyperQ, &waves[0]);
        let all = run_waves(Scheme::HyperQ, &waves);
        assert_eq!(all.tasks, 192);
        assert!(all.makespan.as_ps() >= 3 * one.makespan.as_ps() * 9 / 10);
    }

    #[test]
    fn pagoda_waves_share_one_runtime() {
        let waves = vec![tiny(), tiny()];
        let r = run_waves(Scheme::Pagoda, &waves);
        assert_eq!(r.tasks, 128);
    }

    #[test]
    fn cli_scaling() {
        let mut cli = Cli {
            tasks: None,
            json: false,
            quick: false,
        };
        assert_eq!(cli.scale(32_768), 32_768);
        cli.quick = true;
        assert_eq!(cli.scale(32_768), 2_048);
        cli.tasks = Some(100);
        assert_eq!(cli.scale(32_768), 100);
    }
}
