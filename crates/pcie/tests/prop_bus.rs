//! Property tests of the PCIe model: per-stream FIFO ordering, channel
//! serialization, and conservation of busy time under arbitrary traffic.

use desim::SimTime;
use pcie::{Direction, PcieBus, PcieConfig};
use proptest::prelude::*;

proptest! {
    #[test]
    fn streams_are_fifo_and_channels_serialize(
        txns in prop::collection::vec((0u8..4, 0u8..2, 0u64..100_000, 0u64..50), 1..200)
    ) {
        let mut bus = PcieBus::new(PcieConfig::default());
        let streams: Vec<_> = (0..4).map(|_| bus.create_stream()).collect();
        let mut last_per_stream = std::collections::HashMap::new();
        let mut channel_busy = [0u64; 2];
        let mut now = SimTime::ZERO;

        for (s, dir, bytes, advance) in txns {
            now = SimTime::from_ps(now.as_ps() + advance * 1_000);
            let dir = if dir == 0 { Direction::HostToDevice } else { Direction::DeviceToHost };
            let stream = streams[s as usize % streams.len()];
            let t = bus.transfer(now, stream, dir, bytes);
            prop_assert!(t.start >= now, "cannot start before issue");
            prop_assert!(t.complete > t.start, "latency is strictly positive");
            // FIFO within the stream.
            if let Some(prev) = last_per_stream.insert(stream, t.complete) {
                prop_assert!(t.start >= prev, "stream reordering");
            }
            channel_busy[matches!(dir, Direction::DeviceToHost) as usize] +=
                (t.complete - t.start).as_ps();
        }
        // Stats account exactly the occupied time per channel.
        prop_assert_eq!(bus.stats(Direction::HostToDevice).busy.as_ps(), channel_busy[0]);
        prop_assert_eq!(bus.stats(Direction::DeviceToHost).busy.as_ps(), channel_busy[1]);
    }

    #[test]
    fn service_time_is_monotone_in_bytes(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let bus = PcieBus::new(PcieConfig::default());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            bus.service_time(Direction::HostToDevice, lo)
                <= bus.service_time(Direction::HostToDevice, hi)
        );
    }
}
