//! Simulated PCIe interconnect between the host CPU and the GPU.
//!
//! Pagoda's TaskTable design is driven by two properties of real PCIe that
//! this crate models explicitly:
//!
//! 1. **No atomics.** The host and device cannot perform atomic read-modify-
//!    write on each other's memory, so all coordination must be built from
//!    one-way DMA writes whose *visibility* the runtime reasons about.
//! 2. **Ordering is per stream only.** Two `cudaMemcpyAsync` calls on the
//!    same CUDA stream complete in issue order; writes from different
//!    transactions have no cross-ordering guarantee. The paper's §4.2.1
//!    pipelined spawn exists precisely because "the PCIe bus does not
//!    guarantee that the parameters will arrive in the GPU memory before the
//!    ready flag" if they travel in different transactions.
//!
//! The model: each direction (host→device, device→host) is a dedicated DMA
//! channel (Maxwell-class GPUs have dual copy engines). A transaction issued
//! at time *t* on stream *s* begins at `max(t, stream_tail, channel_free)`
//! and occupies the channel for `latency + bytes/bandwidth`. The bus is
//! *clairvoyant*: it computes the completion instant immediately and the
//! caller schedules whatever simulation event should fire then. Because
//! channels are FIFO, this is exact.

use std::collections::HashMap;

use desim::{Dur, SimTime};
use pagoda_obs::{Counter, Obs};

/// Transfer direction; selects the DMA copy engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Host memory → device memory (task parameters, input data).
    HostToDevice,
    /// Device memory → host memory (results, TaskTable copy-backs).
    DeviceToHost,
}

impl Direction {
    fn idx(self) -> usize {
        match self {
            Direction::HostToDevice => 0,
            Direction::DeviceToHost => 1,
        }
    }
}

/// Identifies a CUDA-stream-like FIFO ordering domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(u32);

/// Tunable link parameters.
#[derive(Debug, Clone)]
pub struct PcieConfig {
    /// Fixed per-transaction setup cost (driver + DMA descriptor + link
    /// round trip). Dominates for the tiny TaskTable-entry copies narrow
    /// tasks generate.
    pub latency: Dur,
    /// Sustained host→device bandwidth, bytes per second.
    pub bw_h2d: f64,
    /// Sustained device→host bandwidth, bytes per second.
    pub bw_d2h: f64,
}

impl PcieConfig {
    /// Time a `bytes`-byte transfer in `dir` occupies the link, ignoring
    /// queueing: the per-transaction latency plus wire time. Pure — needs
    /// no [`PcieBus`] — so layers that only *model* a link (e.g. a fleet
    /// manager charging an inter-device staging cost) can price transfers
    /// from the config alone.
    pub fn transfer_time(&self, dir: Direction, bytes: u64) -> Dur {
        let bw = match dir {
            Direction::HostToDevice => self.bw_h2d,
            Direction::DeviceToHost => self.bw_d2h,
        };
        self.latency + Dur::from_secs_f64(bytes as f64 / bw)
    }
}

impl Default for PcieConfig {
    /// PCIe 3.0 x16 as on the paper's testbed class of machine: ~12 GB/s
    /// sustained each way. The per-transaction overhead models *pipelined*
    /// `cudaMemcpyAsync` traffic (DMA descriptor processing, ~1.5 µs), not
    /// the ~8 µs cold-start API latency — narrow-task runtimes keep the
    /// copy queues deep, which is the regime every experiment here runs in.
    fn default() -> Self {
        PcieConfig {
            latency: Dur::from_ns(800),
            bw_h2d: 12.0e9,
            bw_d2h: 12.0e9,
        }
    }
}

/// Aggregate counters, per direction.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ChannelStats {
    /// Completed + in-flight transactions.
    pub transactions: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Total time the channel was occupied (latency + wire time).
    pub busy: Dur,
}

/// Completed-transfer description returned by [`PcieBus::transfer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the DMA engine started serving this transaction.
    pub start: SimTime,
    /// When the last byte is visible on the far side. Within a stream these
    /// are monotonically nondecreasing.
    pub complete: SimTime,
}

/// The bus. One instance is shared by every host-side runtime in a
/// simulation, so contention between (say) task spawning and result
/// copy-back is modelled.
#[derive(Debug)]
pub struct PcieBus {
    cfg: PcieConfig,
    /// Earliest instant each DMA channel is free.
    channel_free: [SimTime; 2],
    /// Tail (latest completion) of each stream, for FIFO ordering.
    stream_tail: HashMap<StreamId, SimTime>,
    next_stream: u32,
    stats: [ChannelStats; 2],
    obs: Obs,
}

impl PcieBus {
    /// Creates a bus with the given parameters.
    pub fn new(cfg: PcieConfig) -> Self {
        PcieBus {
            cfg,
            channel_free: [SimTime::ZERO; 2],
            stream_tail: HashMap::new(),
            next_stream: 0,
            stats: [ChannelStats::default(); 2],
            obs: Obs::off(),
        }
    }

    /// Attaches an observability handle; every subsequent [`transfer`]
    /// reports per-direction transaction and byte counters to it.
    ///
    /// [`transfer`]: PcieBus::transfer
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Creates a bus with [`PcieConfig::default`].
    pub fn new_default() -> Self {
        Self::new(PcieConfig::default())
    }

    /// Allocates a fresh ordering stream (like `cudaStreamCreate`).
    pub fn create_stream(&mut self) -> StreamId {
        let id = StreamId(self.next_stream);
        self.next_stream += 1;
        id
    }

    /// Issues a `bytes`-byte DMA at time `now` on `stream` and returns when
    /// it starts and completes. Zero-byte transfers still pay the
    /// transaction latency (they exist: flag-only copy-backs).
    ///
    /// # Panics
    /// Panics if `stream` was not created by this bus.
    pub fn transfer(
        &mut self,
        now: SimTime,
        stream: StreamId,
        dir: Direction,
        bytes: u64,
    ) -> Transfer {
        assert!(stream.0 < self.next_stream, "foreign StreamId {stream:?}");
        let ch = dir.idx();
        let tail = self
            .stream_tail
            .get(&stream)
            .copied()
            .unwrap_or(SimTime::ZERO);
        let start = now.max(self.channel_free[ch]).max(tail);
        let occupied = self.cfg.transfer_time(dir, bytes);
        let complete = start + occupied;

        self.channel_free[ch] = complete;
        self.stream_tail.insert(stream, complete);
        let s = &mut self.stats[ch];
        s.transactions += 1;
        s.bytes += bytes;
        s.busy += occupied;
        match dir {
            Direction::HostToDevice => {
                self.obs.count(Counter::PcieH2dTransactions, 1);
                self.obs.count(Counter::PcieH2dBytes, bytes);
            }
            Direction::DeviceToHost => {
                self.obs.count(Counter::PcieD2hTransactions, 1);
                self.obs.count(Counter::PcieD2hBytes, bytes);
            }
        }
        Transfer { start, complete }
    }

    /// Counters for one direction.
    pub fn stats(&self, dir: Direction) -> ChannelStats {
        self.stats[dir.idx()]
    }

    /// Earliest instant the DMA engine for `dir` is idle.
    pub fn channel_free_at(&self, dir: Direction) -> SimTime {
        self.channel_free[dir.idx()]
    }

    /// The configured link parameters.
    pub fn config(&self) -> &PcieConfig {
        &self.cfg
    }

    /// Time a `bytes`-byte transfer would occupy the wire, ignoring queueing
    /// — used by runtimes to budget aggregation decisions. Delegates to
    /// [`PcieConfig::transfer_time`].
    pub fn service_time(&self, dir: Direction, bytes: u64) -> Dur {
        self.cfg.transfer_time(dir, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> PcieBus {
        PcieBus::new(PcieConfig {
            latency: Dur::from_us(8),
            bw_h2d: 12.0e9,
            bw_d2h: 12.0e9,
        })
    }

    #[test]
    fn single_transfer_time() {
        let mut b = bus();
        let s = b.create_stream();
        // 12 KB at 12 GB/s = 1 us wire + 8 us latency.
        let t = b.transfer(SimTime::ZERO, s, Direction::HostToDevice, 12_000);
        assert_eq!(t.start, SimTime::ZERO);
        assert_eq!(t.complete, SimTime::from_us(9));
    }

    #[test]
    fn same_stream_is_fifo() {
        let mut b = bus();
        let s = b.create_stream();
        let t1 = b.transfer(SimTime::ZERO, s, Direction::HostToDevice, 12_000);
        // Issued at t=0 as well, but must wait for t1.
        let t2 = b.transfer(SimTime::ZERO, s, Direction::HostToDevice, 0);
        assert_eq!(t2.start, t1.complete);
        assert!(t2.complete > t1.complete);
    }

    #[test]
    fn same_channel_serializes_across_streams() {
        let mut b = bus();
        let s1 = b.create_stream();
        let s2 = b.create_stream();
        let t1 = b.transfer(SimTime::ZERO, s1, Direction::HostToDevice, 12_000);
        let t2 = b.transfer(SimTime::ZERO, s2, Direction::HostToDevice, 12_000);
        assert_eq!(t2.start, t1.complete, "one H2D copy engine");
    }

    #[test]
    fn opposite_directions_overlap() {
        let mut b = bus();
        let s1 = b.create_stream();
        let s2 = b.create_stream();
        let t1 = b.transfer(SimTime::ZERO, s1, Direction::HostToDevice, 12_000);
        let t2 = b.transfer(SimTime::ZERO, s2, Direction::DeviceToHost, 12_000);
        assert_eq!(t1.start, t2.start, "dual copy engines run concurrently");
    }

    #[test]
    fn aggregation_beats_many_small_copies() {
        // The paper's lazy aggregate copy-back rationale: N small copies pay
        // N latencies; one bulk copy pays one.
        let mut b = bus();
        let s = b.create_stream();
        let mut t_small = SimTime::ZERO;
        for _ in 0..32 {
            t_small = b
                .transfer(t_small, s, Direction::DeviceToHost, 256)
                .complete;
        }
        let mut b2 = bus();
        let s2 = b2.create_stream();
        let t_bulk = b2
            .transfer(SimTime::ZERO, s2, Direction::DeviceToHost, 32 * 256)
            .complete;
        assert!(t_bulk.as_ps() < t_small.as_ps() / 10);
    }

    #[test]
    fn zero_byte_transfer_pays_latency() {
        let mut b = bus();
        let s = b.create_stream();
        let t = b.transfer(SimTime::ZERO, s, Direction::HostToDevice, 0);
        assert_eq!(t.complete, SimTime::from_us(8));
    }

    #[test]
    fn stats_accumulate() {
        let mut b = bus();
        let s = b.create_stream();
        b.transfer(SimTime::ZERO, s, Direction::HostToDevice, 100);
        b.transfer(SimTime::ZERO, s, Direction::HostToDevice, 200);
        let st = b.stats(Direction::HostToDevice);
        assert_eq!(st.transactions, 2);
        assert_eq!(st.bytes, 300);
        assert!(st.busy > Dur::from_us(16));
        assert_eq!(b.stats(Direction::DeviceToHost).transactions, 0);
    }

    #[test]
    #[should_panic(expected = "foreign StreamId")]
    fn foreign_stream_rejected() {
        let mut b = bus();
        b.transfer(SimTime::ZERO, StreamId(7), Direction::HostToDevice, 1);
    }

    #[test]
    fn obs_counts_transactions_and_bytes() {
        let mut b = bus();
        let (obs, rec) = Obs::recording();
        b.attach_obs(obs);
        let s = b.create_stream();
        b.transfer(SimTime::ZERO, s, Direction::HostToDevice, 100);
        b.transfer(SimTime::ZERO, s, Direction::DeviceToHost, 7);
        b.transfer(SimTime::ZERO, s, Direction::DeviceToHost, 0);
        let buf = rec.snapshot();
        assert_eq!(buf.counter(Counter::PcieH2dTransactions), 1);
        assert_eq!(buf.counter(Counter::PcieH2dBytes), 100);
        assert_eq!(buf.counter(Counter::PcieD2hTransactions), 2);
        assert_eq!(buf.counter(Counter::PcieD2hBytes), 7);
    }

    #[test]
    fn issue_after_channel_busy_starts_later() {
        let mut b = bus();
        let s = b.create_stream();
        let t1 = b.transfer(SimTime::ZERO, s, Direction::HostToDevice, 120_000);
        let s2 = b.create_stream();
        let later = t1.complete + Dur::from_us(5);
        let t2 = b.transfer(later, s2, Direction::HostToDevice, 1);
        assert_eq!(t2.start, later, "idle channel serves immediately");
    }
}
