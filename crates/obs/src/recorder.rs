//! The [`Recorder`] sink trait, the cloneable [`Obs`] handle threaded
//! through every instrumented crate, and the two stock recorders:
//! [`NullRecorder`] (measures dispatch overhead) and [`MemRecorder`]
//! (buffers everything for export).
//!
//! Hot-path contract: a disabled handle (`Obs::off()`) is a single
//! `Option` discriminant test per instrumentation site — no event is
//! constructed, no allocation happens, nothing is locked. That is what
//! the `obs_overhead` bench gates at ≤5 %.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use serde::Serialize;

use crate::events::{
    Counter, DeviceSample, MtbSample, SmmSample, SyncKind, SyncMark, TaskEvent, TaskState,
    TenantTag,
};

/// A sink for observability events. All methods take `&self` (recorders
/// are shared behind an `Arc` across the host runtime, the device model,
/// and the bus) and default to no-ops so recorders implement only what
/// they care about.
pub trait Recorder {
    /// A task changed lifecycle state.
    fn task(&self, ev: TaskEvent) {
        let _ = ev;
    }

    /// A task was attributed to a tenant (serving layer).
    fn tenant(&self, tag: TenantTag) {
        let _ = tag;
    }

    /// An SMM's resource residency changed.
    fn smm(&self, s: SmmSample) {
        let _ = s;
    }

    /// An MTB's column/WarpTable/smem-pool occupancy changed.
    fn mtb(&self, s: MtbSample) {
        let _ = s;
    }

    /// A fleet device's outstanding-task count or liveness changed.
    fn device(&self, s: DeviceSample) {
        let _ = s;
    }

    /// A fleet driver reached a synchronization point (cluster layer).
    fn sync_mark(&self, m: SyncMark) {
        let _ = m;
    }

    /// A counter advanced by `delta`.
    fn count(&self, c: Counter, delta: u64) {
        let _ = (c, delta);
    }

    /// Whether this recorder retains what it receives. Returning `false`
    /// (the [`NullRecorder`]) makes [`Obs::enabled`] report `false`, so
    /// instrumentation skips *computing* expensive samples (per-SMM/MTB
    /// scans) while pre-built events and counters still exercise the
    /// dispatch path.
    fn retains(&self) -> bool {
        true
    }

    /// Creates a private buffer a worker thread records into while it
    /// runs ahead of the merge point. Parallel drivers hand each worker a
    /// fork so workers never contend on (or interleave nondeterministically
    /// into) the shared recorder; [`Recorder::join`] folds the buffer back
    /// in a deterministic order chosen by the driver.
    fn fork(&self) -> MemRecorder {
        MemRecorder::new()
    }

    /// Merges a fork's buffered events into this recorder, replaying each
    /// stream in capture order (tasks, tenants, SMM, MTB, devices, then
    /// counter totals). Joining forks in a deterministic sequence
    /// reproduces the per-stream event order of an equivalent serial run.
    fn join(&self, fork: &MemRecorder) {
        let g = fork.inner.lock().unwrap_or_else(|e| e.into_inner());
        for ev in &g.tasks {
            self.task(*ev);
        }
        for tag in &g.tenants {
            self.tenant(*tag);
        }
        for s in &g.smm {
            self.smm(*s);
        }
        for s in &g.mtb {
            self.mtb(*s);
        }
        for s in &g.devices {
            self.device(*s);
        }
        for m in &g.syncs {
            self.sync_mark(*m);
        }
        for c in Counter::ALL {
            let total = g.counts[c as usize];
            if total > 0 {
                self.count(c, total);
            }
        }
    }
}

/// A recorder that receives and drops everything. Exists to measure the
/// cost of *dispatch* (event construction + virtual call) separately
/// from the cost of *buffering*: it reports `retains() == false`, so
/// gated sample computation is skipped exactly as with [`Obs::off`].
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn retains(&self) -> bool {
        false
    }
}

/// Everything a [`MemRecorder`] captured, in arrival order. Byte-identical
/// across identical seeded runs — the determinism test serializes two of
/// these and compares strings.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ObsBuffer {
    /// Task lifecycle events.
    pub tasks: Vec<TaskEvent>,
    /// Task→tenant attributions.
    pub tenants: Vec<TenantTag>,
    /// Per-SMM resource samples.
    pub smm: Vec<SmmSample>,
    /// Per-MTB occupancy samples.
    pub mtb: Vec<MtbSample>,
    /// Per-fleet-device samples (cluster layer).
    pub devices: Vec<DeviceSample>,
    /// Fleet synchronization points (cluster layer), emission order.
    pub syncs: Vec<SyncMark>,
    /// Final counter totals, keyed by [`Counter::name`]. Every counter is
    /// present (zeros included) so the layout is run-independent.
    pub counters: BTreeMap<String, u64>,
}

impl ObsBuffer {
    /// Serializes the whole buffer as one JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("vendored serde_json encoder is infallible")
    }

    /// Counter total by enum (0 if never incremented).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c.name()).copied().unwrap_or(0)
    }

    /// The instants at which `task` entered each state, lifecycle order.
    /// `None` for states never reached.
    pub fn task_timeline(&self, task: u64) -> [Option<u64>; 5] {
        let mut tl = [None; 5];
        for ev in self.tasks.iter().filter(|e| e.task == task) {
            let slot = &mut tl[ev.state as usize];
            if slot.is_none() {
                *slot = Some(ev.at_ps);
            }
        }
        tl
    }
}

#[derive(Default)]
struct MemInner {
    tasks: Vec<TaskEvent>,
    tenants: Vec<TenantTag>,
    smm: Vec<SmmSample>,
    mtb: Vec<MtbSample>,
    devices: Vec<DeviceSample>,
    syncs: Vec<SyncMark>,
    counts: [u64; Counter::ALL.len()],
}

/// A recorder that buffers every event in memory. `snapshot()` yields an
/// [`ObsBuffer`] for export; `reset()` clears between runs so one
/// recorder can observe a sweep.
#[derive(Default)]
pub struct MemRecorder {
    inner: Mutex<MemInner>,
}

impl MemRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the current buffers out. Counters materialize as a sorted
    /// name→total map with all counters present.
    pub fn snapshot(&self) -> ObsBuffer {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut counters = BTreeMap::new();
        for c in Counter::ALL {
            counters.insert(c.name().to_string(), g.counts[c as usize]);
        }
        ObsBuffer {
            tasks: g.tasks.clone(),
            tenants: g.tenants.clone(),
            smm: g.smm.clone(),
            mtb: g.mtb.clone(),
            devices: g.devices.clone(),
            syncs: g.syncs.clone(),
            counters,
        }
    }

    /// Discards everything recorded so far.
    pub fn reset(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *g = MemInner::default();
    }
}

impl fmt::Debug for MemRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("MemRecorder")
            .field("tasks", &g.tasks.len())
            .field("smm", &g.smm.len())
            .field("mtb", &g.mtb.len())
            .finish()
    }
}

impl Recorder for MemRecorder {
    fn task(&self, ev: TaskEvent) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .tasks
            .push(ev);
    }

    fn tenant(&self, tag: TenantTag) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .tenants
            .push(tag);
    }

    fn smm(&self, s: SmmSample) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .smm
            .push(s);
    }

    fn mtb(&self, s: MtbSample) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .mtb
            .push(s);
    }

    fn device(&self, s: DeviceSample) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .devices
            .push(s);
    }

    fn sync_mark(&self, m: SyncMark) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .syncs
            .push(m);
    }

    fn count(&self, c: Counter, delta: u64) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).counts[c as usize] += delta;
    }
}

/// The handle instrumented code holds. `Obs::off()` (the default) makes
/// every method a single branch; `Obs::new(...)` forwards to a shared
/// [`Recorder`]. Cloning is cheap (an `Option<Arc>` copy), which is how
/// one recorder observes the runtime, the device, and the bus at once.
#[derive(Clone, Default)]
pub struct Obs {
    rec: Option<Arc<dyn Recorder + Send + Sync>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.rec.is_some())
            .finish()
    }
}

impl Obs {
    /// The disabled handle: every instrumentation site reduces to one
    /// `Option` discriminant test.
    pub fn off() -> Self {
        Obs { rec: None }
    }

    /// A handle forwarding to `rec`.
    pub fn new(rec: Arc<dyn Recorder + Send + Sync>) -> Self {
        Obs { rec: Some(rec) }
    }

    /// A handle backed by a fresh [`MemRecorder`], plus the recorder for
    /// later `snapshot()`. The usual way to record a run:
    ///
    /// ```
    /// let (obs, rec) = pagoda_obs::Obs::recording();
    /// obs.count(pagoda_obs::Counter::TasksSpawned, 1);
    /// assert_eq!(rec.snapshot().counter(pagoda_obs::Counter::TasksSpawned), 1);
    /// ```
    pub fn recording() -> (Obs, Arc<MemRecorder>) {
        let rec = Arc::new(MemRecorder::new());
        (Obs::new(rec.clone()), rec)
    }

    /// Whether a recorder that retains data is attached. Instrumented
    /// code uses this to skip *computing* expensive sample fields, not
    /// just emitting them — so it is `false` both with no recorder and
    /// with a [`NullRecorder`] (`retains() == false`).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.rec.as_ref().is_some_and(|r| r.retains())
    }

    /// Records a task lifecycle transition.
    #[inline]
    pub fn task(&self, at_ps: u64, task: u64, state: TaskState) {
        if let Some(r) = &self.rec {
            r.task(TaskEvent { at_ps, task, state });
        }
    }

    /// Attributes `task` to `tenant`.
    #[inline]
    pub fn tenant(&self, task: u64, tenant: u32) {
        if let Some(r) = &self.rec {
            r.tenant(TenantTag { task, tenant });
        }
    }

    /// Records a per-SMM resource sample.
    #[inline]
    pub fn smm(&self, s: SmmSample) {
        if let Some(r) = &self.rec {
            r.smm(s);
        }
    }

    /// Records a per-MTB occupancy sample.
    #[inline]
    pub fn mtb(&self, s: MtbSample) {
        if let Some(r) = &self.rec {
            r.mtb(s);
        }
    }

    /// Records a per-fleet-device sample.
    #[inline]
    pub fn device(&self, s: DeviceSample) {
        if let Some(r) = &self.rec {
            r.device(s);
        }
    }

    /// Records a fleet synchronization point.
    #[inline]
    pub fn sync_mark(&self, at_ps: u64, kind: SyncKind) {
        if let Some(r) = &self.rec {
            r.sync_mark(SyncMark { at_ps, kind });
        }
    }

    /// Advances counter `c` by `delta`.
    #[inline]
    pub fn count(&self, c: Counter, delta: u64) {
        if let Some(r) = &self.rec {
            r.count(c, delta);
        }
    }

    /// Splits off a private buffer for one worker thread of a parallel
    /// driver. The returned fork's [`ObsFork::obs`] handle records into
    /// the buffer; [`Obs::join`] folds it back into this handle's
    /// recorder. When nothing is retained (disabled handle or a
    /// [`NullRecorder`]), the fork is a pass-through clone — no buffer is
    /// allocated and join is a no-op — preserving the zero-cost contract.
    pub fn fork(&self) -> ObsFork {
        match &self.rec {
            Some(r) if r.retains() => {
                let buf = Arc::new(r.fork());
                ObsFork {
                    obs: Obs::new(buf.clone()),
                    buf: Some(buf),
                }
            }
            _ => ObsFork {
                obs: self.clone(),
                buf: None,
            },
        }
    }

    /// Merges a fork produced by [`Obs::fork`] back into this handle's
    /// recorder (see [`Recorder::join`] for the replay order). Call once
    /// per fork, in the deterministic order the driver defines.
    pub fn join(&self, fork: ObsFork) {
        if let (Some(r), Some(buf)) = (&self.rec, &fork.buf) {
            r.join(buf);
        }
    }
}

/// A per-worker observability buffer split off a parent [`Obs`] handle.
/// Workers record through [`ObsFork::obs`]; the driver merges forks back
/// with [`Obs::join`] in a deterministic order. Sendable to a worker
/// thread; must not outlive the join (events left in an unjoined fork are
/// dropped).
#[derive(Debug)]
pub struct ObsFork {
    obs: Obs,
    buf: Option<Arc<MemRecorder>>,
}

impl ObsFork {
    /// The handle the worker records through.
    pub fn obs(&self) -> Obs {
        self.obs.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        obs.task(1, 2, TaskState::Spawned);
        obs.count(Counter::EngineEvents, 10);
        // Nothing to observe — the point is it doesn't panic or allocate.
    }

    #[test]
    fn null_recorder_dispatches_but_reports_disabled() {
        let obs = Obs::new(Arc::new(NullRecorder));
        // Dispatch works (and drops everything)…
        obs.task(1, 2, TaskState::Spawned);
        obs.count(Counter::EngineEvents, 10);
        // …but gated sample computation is skipped, like Obs::off().
        assert!(!obs.enabled());
        let (mem, _) = Obs::recording();
        assert!(mem.enabled());
    }

    #[test]
    fn mem_recorder_buffers_in_order() {
        let (obs, rec) = Obs::recording();
        obs.task(10, 0, TaskState::Spawned);
        obs.task(20, 0, TaskState::Enqueued);
        obs.tenant(0, 3);
        obs.count(Counter::TasksSpawned, 1);
        obs.count(Counter::TasksSpawned, 2);
        let buf = rec.snapshot();
        assert_eq!(buf.tasks.len(), 2);
        assert_eq!(buf.tasks[0].state, TaskState::Spawned);
        assert_eq!(buf.tenants, vec![TenantTag { task: 0, tenant: 3 }]);
        assert_eq!(buf.counter(Counter::TasksSpawned), 3);
        assert_eq!(buf.counter(Counter::AdmissionShed), 0);
        assert_eq!(buf.counters.len(), Counter::ALL.len());
    }

    #[test]
    fn task_timeline_takes_first_instance() {
        let (obs, rec) = Obs::recording();
        obs.task(10, 7, TaskState::Spawned);
        obs.task(30, 7, TaskState::Running);
        obs.task(35, 7, TaskState::Running); // duplicate: first wins
        let tl = rec.snapshot().task_timeline(7);
        assert_eq!(tl[TaskState::Spawned as usize], Some(10));
        assert_eq!(tl[TaskState::Enqueued as usize], None);
        assert_eq!(tl[TaskState::Running as usize], Some(30));
    }

    #[test]
    fn device_samples_buffer_in_order() {
        use crate::events::DeviceSample;
        let (obs, rec) = Obs::recording();
        for i in 0..3u32 {
            obs.device(DeviceSample {
                at_ps: u64::from(i) * 5,
                device: i,
                known_free: 10,
                outstanding: i,
                alive: true,
            });
        }
        let buf = rec.snapshot();
        assert_eq!(buf.devices.len(), 3);
        assert_eq!(buf.devices[2].device, 2);
    }

    #[test]
    fn reset_clears() {
        let (obs, rec) = Obs::recording();
        obs.task(1, 1, TaskState::Spawned);
        rec.reset();
        assert!(rec.snapshot().tasks.is_empty());
    }

    #[test]
    fn fork_join_reproduces_serial_stream_order() {
        // Serial reference: one handle, events in driver order.
        let serial = {
            let (obs, rec) = Obs::recording();
            for d in 0..3u64 {
                obs.task(d * 10, d, TaskState::Spawned);
                obs.count(Counter::TasksSpawned, 1);
            }
            rec.snapshot().to_json()
        };
        // Parallel shape: one fork per "device", recorded out of driver
        // order (as threads would), joined back in driver order.
        let parallel = {
            let (obs, rec) = Obs::recording();
            let forks: Vec<_> = (0..3u64).map(|_| obs.fork()).collect();
            for d in [2u64, 0, 1] {
                let o = forks[d as usize].obs();
                o.task(d * 10, d, TaskState::Spawned);
                o.count(Counter::TasksSpawned, 1);
            }
            for f in forks {
                obs.join(f);
            }
            rec.snapshot().to_json()
        };
        assert_eq!(serial, parallel);
    }

    #[test]
    fn fork_of_disabled_handle_is_passthrough() {
        let obs = Obs::off();
        let f = obs.fork();
        assert!(!f.obs().enabled());
        obs.join(f); // no-op, must not panic

        // NullRecorder: dispatch still works through the fork, nothing
        // is buffered (retains() == false → pass-through clone).
        let null = Obs::new(Arc::new(NullRecorder));
        let f = null.fork();
        f.obs().count(Counter::EngineEvents, 1);
        assert!(!f.obs().enabled());
        null.join(f);
    }

    #[test]
    fn join_merges_counters_once() {
        let (obs, rec) = Obs::recording();
        let f = obs.fork();
        f.obs().count(Counter::ClusterPlacements, 5);
        f.obs().count(Counter::ClusterPlacements, 2);
        obs.count(Counter::ClusterPlacements, 1); // parent concurrently
        obs.join(f);
        assert_eq!(rec.snapshot().counter(Counter::ClusterPlacements), 8);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let run = || {
            let (obs, rec) = Obs::recording();
            for t in 0..5u64 {
                obs.task(t * 10, t, TaskState::Spawned);
                obs.count(Counter::TasksSpawned, 1);
            }
            rec.snapshot().to_json()
        };
        assert_eq!(run(), run());
    }
}
