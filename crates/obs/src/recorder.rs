//! The [`Recorder`] sink trait, the cloneable [`Obs`] handle threaded
//! through every instrumented crate, and the two stock recorders:
//! [`NullRecorder`] (measures dispatch overhead) and [`MemRecorder`]
//! (buffers everything for export).
//!
//! Hot-path contract: a disabled handle (`Obs::off()`) is a single
//! `Option` discriminant test per instrumentation site — no event is
//! constructed, no allocation happens, nothing is locked. That is what
//! the `obs_overhead` bench gates at ≤5 %.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use serde::Serialize;

use crate::events::{Counter, DeviceSample, MtbSample, SmmSample, TaskEvent, TaskState, TenantTag};

/// A sink for observability events. All methods take `&self` (recorders
/// are shared behind an `Arc` across the host runtime, the device model,
/// and the bus) and default to no-ops so recorders implement only what
/// they care about.
pub trait Recorder {
    /// A task changed lifecycle state.
    fn task(&self, ev: TaskEvent) {
        let _ = ev;
    }

    /// A task was attributed to a tenant (serving layer).
    fn tenant(&self, tag: TenantTag) {
        let _ = tag;
    }

    /// An SMM's resource residency changed.
    fn smm(&self, s: SmmSample) {
        let _ = s;
    }

    /// An MTB's column/WarpTable/smem-pool occupancy changed.
    fn mtb(&self, s: MtbSample) {
        let _ = s;
    }

    /// A fleet device's outstanding-task count or liveness changed.
    fn device(&self, s: DeviceSample) {
        let _ = s;
    }

    /// A counter advanced by `delta`.
    fn count(&self, c: Counter, delta: u64) {
        let _ = (c, delta);
    }

    /// Whether this recorder retains what it receives. Returning `false`
    /// (the [`NullRecorder`]) makes [`Obs::enabled`] report `false`, so
    /// instrumentation skips *computing* expensive samples (per-SMM/MTB
    /// scans) while pre-built events and counters still exercise the
    /// dispatch path.
    fn retains(&self) -> bool {
        true
    }
}

/// A recorder that receives and drops everything. Exists to measure the
/// cost of *dispatch* (event construction + virtual call) separately
/// from the cost of *buffering*: it reports `retains() == false`, so
/// gated sample computation is skipped exactly as with [`Obs::off`].
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn retains(&self) -> bool {
        false
    }
}

/// Everything a [`MemRecorder`] captured, in arrival order. Byte-identical
/// across identical seeded runs — the determinism test serializes two of
/// these and compares strings.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ObsBuffer {
    /// Task lifecycle events.
    pub tasks: Vec<TaskEvent>,
    /// Task→tenant attributions.
    pub tenants: Vec<TenantTag>,
    /// Per-SMM resource samples.
    pub smm: Vec<SmmSample>,
    /// Per-MTB occupancy samples.
    pub mtb: Vec<MtbSample>,
    /// Per-fleet-device samples (cluster layer).
    pub devices: Vec<DeviceSample>,
    /// Final counter totals, keyed by [`Counter::name`]. Every counter is
    /// present (zeros included) so the layout is run-independent.
    pub counters: BTreeMap<String, u64>,
}

impl ObsBuffer {
    /// Serializes the whole buffer as one JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("vendored serde_json encoder is infallible")
    }

    /// Counter total by enum (0 if never incremented).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c.name()).copied().unwrap_or(0)
    }

    /// The instants at which `task` entered each state, lifecycle order.
    /// `None` for states never reached.
    pub fn task_timeline(&self, task: u64) -> [Option<u64>; 5] {
        let mut tl = [None; 5];
        for ev in self.tasks.iter().filter(|e| e.task == task) {
            let slot = &mut tl[ev.state as usize];
            if slot.is_none() {
                *slot = Some(ev.at_ps);
            }
        }
        tl
    }
}

#[derive(Default)]
struct MemInner {
    tasks: Vec<TaskEvent>,
    tenants: Vec<TenantTag>,
    smm: Vec<SmmSample>,
    mtb: Vec<MtbSample>,
    devices: Vec<DeviceSample>,
    counts: [u64; Counter::ALL.len()],
}

/// A recorder that buffers every event in memory. `snapshot()` yields an
/// [`ObsBuffer`] for export; `reset()` clears between runs so one
/// recorder can observe a sweep.
#[derive(Default)]
pub struct MemRecorder {
    inner: Mutex<MemInner>,
}

impl MemRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the current buffers out. Counters materialize as a sorted
    /// name→total map with all counters present.
    pub fn snapshot(&self) -> ObsBuffer {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut counters = BTreeMap::new();
        for c in Counter::ALL {
            counters.insert(c.name().to_string(), g.counts[c as usize]);
        }
        ObsBuffer {
            tasks: g.tasks.clone(),
            tenants: g.tenants.clone(),
            smm: g.smm.clone(),
            mtb: g.mtb.clone(),
            devices: g.devices.clone(),
            counters,
        }
    }

    /// Discards everything recorded so far.
    pub fn reset(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *g = MemInner::default();
    }
}

impl fmt::Debug for MemRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("MemRecorder")
            .field("tasks", &g.tasks.len())
            .field("smm", &g.smm.len())
            .field("mtb", &g.mtb.len())
            .finish()
    }
}

impl Recorder for MemRecorder {
    fn task(&self, ev: TaskEvent) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .tasks
            .push(ev);
    }

    fn tenant(&self, tag: TenantTag) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .tenants
            .push(tag);
    }

    fn smm(&self, s: SmmSample) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .smm
            .push(s);
    }

    fn mtb(&self, s: MtbSample) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .mtb
            .push(s);
    }

    fn device(&self, s: DeviceSample) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .devices
            .push(s);
    }

    fn count(&self, c: Counter, delta: u64) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).counts[c as usize] += delta;
    }
}

/// The handle instrumented code holds. `Obs::off()` (the default) makes
/// every method a single branch; `Obs::new(...)` forwards to a shared
/// [`Recorder`]. Cloning is cheap (an `Option<Arc>` copy), which is how
/// one recorder observes the runtime, the device, and the bus at once.
#[derive(Clone, Default)]
pub struct Obs {
    rec: Option<Arc<dyn Recorder + Send + Sync>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.rec.is_some())
            .finish()
    }
}

impl Obs {
    /// The disabled handle: every instrumentation site reduces to one
    /// `Option` discriminant test.
    pub fn off() -> Self {
        Obs { rec: None }
    }

    /// A handle forwarding to `rec`.
    pub fn new(rec: Arc<dyn Recorder + Send + Sync>) -> Self {
        Obs { rec: Some(rec) }
    }

    /// A handle backed by a fresh [`MemRecorder`], plus the recorder for
    /// later `snapshot()`. The usual way to record a run:
    ///
    /// ```
    /// let (obs, rec) = pagoda_obs::Obs::recording();
    /// obs.count(pagoda_obs::Counter::TasksSpawned, 1);
    /// assert_eq!(rec.snapshot().counter(pagoda_obs::Counter::TasksSpawned), 1);
    /// ```
    pub fn recording() -> (Obs, Arc<MemRecorder>) {
        let rec = Arc::new(MemRecorder::new());
        (Obs::new(rec.clone()), rec)
    }

    /// Whether a recorder that retains data is attached. Instrumented
    /// code uses this to skip *computing* expensive sample fields, not
    /// just emitting them — so it is `false` both with no recorder and
    /// with a [`NullRecorder`] (`retains() == false`).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.rec.as_ref().is_some_and(|r| r.retains())
    }

    /// Records a task lifecycle transition.
    #[inline]
    pub fn task(&self, at_ps: u64, task: u64, state: TaskState) {
        if let Some(r) = &self.rec {
            r.task(TaskEvent { at_ps, task, state });
        }
    }

    /// Attributes `task` to `tenant`.
    #[inline]
    pub fn tenant(&self, task: u64, tenant: u32) {
        if let Some(r) = &self.rec {
            r.tenant(TenantTag { task, tenant });
        }
    }

    /// Records a per-SMM resource sample.
    #[inline]
    pub fn smm(&self, s: SmmSample) {
        if let Some(r) = &self.rec {
            r.smm(s);
        }
    }

    /// Records a per-MTB occupancy sample.
    #[inline]
    pub fn mtb(&self, s: MtbSample) {
        if let Some(r) = &self.rec {
            r.mtb(s);
        }
    }

    /// Records a per-fleet-device sample.
    #[inline]
    pub fn device(&self, s: DeviceSample) {
        if let Some(r) = &self.rec {
            r.device(s);
        }
    }

    /// Advances counter `c` by `delta`.
    #[inline]
    pub fn count(&self, c: Counter, delta: u64) {
        if let Some(r) = &self.rec {
            r.count(c, delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        obs.task(1, 2, TaskState::Spawned);
        obs.count(Counter::EngineEvents, 10);
        // Nothing to observe — the point is it doesn't panic or allocate.
    }

    #[test]
    fn null_recorder_dispatches_but_reports_disabled() {
        let obs = Obs::new(Arc::new(NullRecorder));
        // Dispatch works (and drops everything)…
        obs.task(1, 2, TaskState::Spawned);
        obs.count(Counter::EngineEvents, 10);
        // …but gated sample computation is skipped, like Obs::off().
        assert!(!obs.enabled());
        let (mem, _) = Obs::recording();
        assert!(mem.enabled());
    }

    #[test]
    fn mem_recorder_buffers_in_order() {
        let (obs, rec) = Obs::recording();
        obs.task(10, 0, TaskState::Spawned);
        obs.task(20, 0, TaskState::Enqueued);
        obs.tenant(0, 3);
        obs.count(Counter::TasksSpawned, 1);
        obs.count(Counter::TasksSpawned, 2);
        let buf = rec.snapshot();
        assert_eq!(buf.tasks.len(), 2);
        assert_eq!(buf.tasks[0].state, TaskState::Spawned);
        assert_eq!(buf.tenants, vec![TenantTag { task: 0, tenant: 3 }]);
        assert_eq!(buf.counter(Counter::TasksSpawned), 3);
        assert_eq!(buf.counter(Counter::AdmissionShed), 0);
        assert_eq!(buf.counters.len(), Counter::ALL.len());
    }

    #[test]
    fn task_timeline_takes_first_instance() {
        let (obs, rec) = Obs::recording();
        obs.task(10, 7, TaskState::Spawned);
        obs.task(30, 7, TaskState::Running);
        obs.task(35, 7, TaskState::Running); // duplicate: first wins
        let tl = rec.snapshot().task_timeline(7);
        assert_eq!(tl[TaskState::Spawned as usize], Some(10));
        assert_eq!(tl[TaskState::Enqueued as usize], None);
        assert_eq!(tl[TaskState::Running as usize], Some(30));
    }

    #[test]
    fn device_samples_buffer_in_order() {
        use crate::events::DeviceSample;
        let (obs, rec) = Obs::recording();
        for i in 0..3u32 {
            obs.device(DeviceSample {
                at_ps: u64::from(i) * 5,
                device: i,
                known_free: 10,
                outstanding: i,
                alive: true,
            });
        }
        let buf = rec.snapshot();
        assert_eq!(buf.devices.len(), 3);
        assert_eq!(buf.devices[2].device, 2);
    }

    #[test]
    fn reset_clears() {
        let (obs, rec) = Obs::recording();
        obs.task(1, 1, TaskState::Spawned);
        rec.reset();
        assert!(rec.snapshot().tasks.is_empty());
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let run = || {
            let (obs, rec) = Obs::recording();
            for t in 0..5u64 {
                obs.task(t * 10, t, TaskState::Spawned);
                obs.count(Counter::TasksSpawned, 1);
            }
            rec.snapshot().to_json()
        };
        assert_eq!(run(), run());
    }
}
