//! The [`Recorder`] sink trait, the cloneable [`Obs`] handle threaded
//! through every instrumented crate, and the two stock recorders:
//! [`NullRecorder`] (measures dispatch overhead) and [`MemRecorder`]
//! (buffers everything for export).
//!
//! Hot-path contract: a disabled handle (`Obs::off()`) is a single
//! `Option` discriminant test per instrumentation site — no event is
//! constructed, no allocation happens, nothing is locked. That is what
//! the `obs_overhead` bench gates at ≤5 %.
//!
//! Mem-mode hot path: [`MemRecorder`] keeps one chunked append-only ring
//! per stream behind its own spinlock, and counters in a fixed array of
//! relaxed atomics. Recording an event is one uncontended atomic swap
//! plus an in-place append into a preallocated chunk; bumping a counter
//! is a plain load/store pair with no locked read-modify-write at all.
//! Nothing on the recording path allocates a `String` or touches a map —
//! counter names are interned `&'static str`s materialized only at
//! [`MemRecorder::snapshot`] (copy-on-export). The `hotpath` bench gates
//! this at ≤12 % over a fully disabled run.

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use serde::Serialize;

use crate::events::{
    Counter, DeviceSample, MarkKind, MtbSample, SmmSample, SyncKind, SyncMark, TaskEvent, TaskMark,
    TaskRoute, TaskState, TenantTag,
};

/// A sink for observability events. All methods take `&self` (recorders
/// are shared behind an `Arc` across the host runtime, the device model,
/// and the bus) and default to no-ops so recorders implement only what
/// they care about.
pub trait Recorder {
    /// A task changed lifecycle state.
    fn task(&self, ev: TaskEvent) {
        let _ = ev;
    }

    /// A task was attributed to a tenant (serving layer).
    fn tenant(&self, tag: TenantTag) {
        let _ = tag;
    }

    /// An SMM's resource residency changed.
    fn smm(&self, s: SmmSample) {
        let _ = s;
    }

    /// An MTB's column/WarpTable/smem-pool occupancy changed.
    fn mtb(&self, s: MtbSample) {
        let _ = s;
    }

    /// A fleet device's outstanding-task count or liveness changed.
    fn device(&self, s: DeviceSample) {
        let _ = s;
    }

    /// A fleet driver reached a synchronization point (cluster layer).
    fn sync_mark(&self, m: SyncMark) {
        let _ = m;
    }

    /// A serving-layer timeline mark (arrival / admission / observed
    /// completion) was attributed to a task.
    fn mark(&self, m: TaskMark) {
        let _ = m;
    }

    /// A task was routed to a fleet device (cluster layer).
    fn route(&self, r: TaskRoute) {
        let _ = r;
    }

    /// A counter advanced by `delta`.
    fn count(&self, c: Counter, delta: u64) {
        let _ = (c, delta);
    }

    /// Whether this recorder retains what it receives. Returning `false`
    /// (the [`NullRecorder`]) makes [`Obs::enabled`] report `false`, so
    /// instrumentation skips *computing* expensive samples (per-SMM/MTB
    /// scans) while pre-built events and counters still exercise the
    /// dispatch path.
    fn retains(&self) -> bool {
        true
    }

    /// Creates a private buffer a worker thread records into while it
    /// runs ahead of the merge point. Parallel drivers hand each worker a
    /// fork so workers never contend on (or interleave nondeterministically
    /// into) the shared recorder; [`Recorder::join`] folds the buffer back
    /// in a deterministic order chosen by the driver.
    fn fork(&self) -> MemRecorder {
        MemRecorder::new()
    }

    /// Merges a fork's buffered events into this recorder, replaying each
    /// stream in capture order (tasks, tenants, SMM, MTB, devices, then
    /// counter totals). Joining forks in a deterministic sequence
    /// reproduces the per-stream event order of an equivalent serial run.
    fn join(&self, fork: &MemRecorder) {
        fork.replay_into(self);
    }
}

/// A recorder that receives and drops everything. Exists to measure the
/// cost of *dispatch* (event construction + virtual call) separately
/// from the cost of *buffering*: it reports `retains() == false`, so
/// gated sample computation is skipped exactly as with [`Obs::off`].
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn retains(&self) -> bool {
        false
    }
}

/// Everything a [`MemRecorder`] captured, in arrival order. Byte-identical
/// across identical seeded runs — the determinism test serializes two of
/// these and compares strings.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ObsBuffer {
    /// Task lifecycle events.
    pub tasks: Vec<TaskEvent>,
    /// Task→tenant attributions.
    pub tenants: Vec<TenantTag>,
    /// Per-SMM resource samples.
    pub smm: Vec<SmmSample>,
    /// Per-MTB occupancy samples.
    pub mtb: Vec<MtbSample>,
    /// Per-fleet-device samples (cluster layer).
    pub devices: Vec<DeviceSample>,
    /// Fleet synchronization points (cluster layer), emission order.
    pub syncs: Vec<SyncMark>,
    /// Serving-layer timeline marks, emission order (which may differ
    /// from `at_ps` order: marks are emitted retroactively at spawn).
    pub marks: Vec<TaskMark>,
    /// Task→device routings (cluster layer), emission order.
    pub routes: Vec<TaskRoute>,
    /// Final counter totals, keyed by the interned [`Counter::name`]
    /// (`&'static str` — building a snapshot allocates no key strings).
    /// Every counter is present (zeros included) so the layout is
    /// run-independent, and the JSON encoding is byte-identical to the
    /// owned-key layout it replaced.
    pub counters: BTreeMap<&'static str, u64>,
}

impl ObsBuffer {
    /// Serializes the whole buffer as one JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("vendored serde_json encoder is infallible")
    }

    /// Counter total by enum (0 if never incremented).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c.name()).copied().unwrap_or(0)
    }

    /// The instants at which `task` entered each state, lifecycle order.
    /// `None` for states never reached.
    pub fn task_timeline(&self, task: u64) -> [Option<u64>; 5] {
        let mut tl = [None; 5];
        for ev in self.tasks.iter().filter(|e| e.task == task) {
            let slot = &mut tl[ev.state as usize];
            if slot.is_none() {
                *slot = Some(ev.at_ps);
            }
        }
        tl
    }

    /// The instants of `task`'s serving-layer marks, [`MarkKind::ALL`]
    /// order. `None` for marks never emitted (first emission wins).
    pub fn task_marks(&self, task: u64) -> [Option<u64>; 3] {
        let mut tl = [None; 3];
        for m in self.marks.iter().filter(|m| m.task == task) {
            let slot = &mut tl[m.kind as usize];
            if slot.is_none() {
                *slot = Some(m.at_ps);
            }
        }
        tl
    }
}

/// Events per ring chunk. Chunks are allocated whole and never grow, so
/// an append never relocates previously recorded events and the
/// amortized copy cost of `Vec` doubling never lands on the hot path.
const CHUNK: usize = 4096;

/// Append-only chunked storage for one event stream. A structure-of-
/// arrays ring at the stream level: each stream keeps its own ring, and
/// within a ring events sit contiguously inside fixed-size chunks. The
/// open chunk is a direct field so the append fast path is one length
/// compare plus a `Vec::push` into reserved capacity — spilling a full
/// chunk into `full` is the only slow branch and runs once per `CHUNK`
/// events.
struct Ring<T> {
    /// Spilled chunks, each exactly `CHUNK` long.
    full: Vec<Vec<T>>,
    /// The open chunk, capacity `CHUNK`; never reallocates.
    last: Vec<T>,
}

impl<T: Copy> Ring<T> {
    fn new() -> Self {
        Ring {
            full: Vec::new(),
            last: Vec::with_capacity(CHUNK),
        }
    }

    #[inline]
    fn push(&mut self, v: T) {
        if self.last.len() == CHUNK {
            self.spill();
        }
        self.last.push(v);
    }

    #[cold]
    fn spill(&mut self) {
        let c = std::mem::replace(&mut self.last, Vec::with_capacity(CHUNK));
        self.full.push(c);
    }

    fn len(&self) -> usize {
        self.full.len() * CHUNK + self.last.len()
    }

    fn iter(&self) -> impl Iterator<Item = &T> {
        self.full.iter().flatten().chain(self.last.iter())
    }

    /// Flattens into one contiguous `Vec` (copy-on-export).
    fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        for c in &self.full {
            out.extend_from_slice(c);
        }
        out.extend_from_slice(&self.last);
        out
    }

    fn clear(&mut self) {
        self.full.clear();
        self.last.clear();
    }
}

impl<T: Copy> Default for Ring<T> {
    fn default() -> Self {
        Ring::new()
    }
}

/// A minimal test-and-set spinlock guarding one event stream.
///
/// Every driver writes a given recorder from one thread at a time
/// (parallel drivers record into per-worker forks and join on the
/// driver thread), so the lock is effectively uncontended and held for
/// a few nanoseconds per append. An uncontended `std::sync::Mutex`
/// costs ~3× more per acquire on this path — the difference is most of
/// the mem-recorder overhead the `hotpath` bench gates.
struct Spin<T> {
    locked: AtomicBool,
    cell: UnsafeCell<T>,
}

// SAFETY: `lock` hands out at most one `&mut T` at a time (the guard
// owns the flag until drop), so `Spin<T>` is as thread-safe as a mutex
// over `T`.
unsafe impl<T: Send> Sync for Spin<T> {}

impl<T: Default> Default for Spin<T> {
    fn default() -> Self {
        Spin {
            locked: AtomicBool::new(false),
            cell: UnsafeCell::new(T::default()),
        }
    }
}

impl<T> Spin<T> {
    #[inline]
    fn lock(&self) -> SpinGuard<'_, T> {
        // swap (a single unconditional atomic exchange) beats a
        // compare-exchange loop on the uncontended fast path.
        if self.locked.swap(true, Ordering::Acquire) {
            self.contended();
        }
        SpinGuard { lock: self }
    }

    #[cold]
    fn contended(&self) {
        while self.locked.swap(true, Ordering::Acquire) {
            std::hint::spin_loop();
        }
    }
}

/// Exclusive access to a [`Spin`]'s contents; releases on drop (also
/// during unwinding, so a panicking consumer cannot wedge the lock).
struct SpinGuard<'a, T> {
    lock: &'a Spin<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the flag, so access is exclusive.
        unsafe { &*self.lock.cell.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the flag, so access is exclusive.
        unsafe { &mut *self.lock.cell.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

/// A recorder that buffers every event in memory. Each stream has its
/// own [`Ring`] behind its own mutex and counters are relaxed atomics,
/// so recording never allocates per event and counter bumps never lock.
/// `snapshot()` yields an [`ObsBuffer`] for export; `reset()` clears
/// between runs so one recorder can observe a sweep.
#[derive(Default)]
pub struct MemRecorder {
    tasks: Spin<Ring<TaskEvent>>,
    tenants: Spin<Ring<TenantTag>>,
    smm: Spin<Ring<SmmSample>>,
    mtb: Spin<Ring<MtbSample>>,
    devices: Spin<Ring<DeviceSample>>,
    syncs: Spin<Ring<SyncMark>>,
    marks: Spin<Ring<TaskMark>>,
    routes: Spin<Ring<TaskRoute>>,
    counts: [AtomicU64; Counter::ALL.len()],
}

impl MemRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the current buffers out. Counters materialize as a sorted
    /// name→total map with all counters present. Streams are copied one
    /// at a time; concurrent recording between stream copies lands in
    /// the next snapshot (drivers snapshot at quiescent points).
    pub fn snapshot(&self) -> ObsBuffer {
        let mut counters = BTreeMap::new();
        for c in Counter::ALL {
            counters.insert(c.name(), self.counts[c as usize].load(Ordering::Relaxed));
        }
        ObsBuffer {
            tasks: self.tasks.lock().to_vec(),
            tenants: self.tenants.lock().to_vec(),
            smm: self.smm.lock().to_vec(),
            mtb: self.mtb.lock().to_vec(),
            devices: self.devices.lock().to_vec(),
            syncs: self.syncs.lock().to_vec(),
            marks: self.marks.lock().to_vec(),
            routes: self.routes.lock().to_vec(),
            counters,
        }
    }

    /// Discards everything recorded so far.
    pub fn reset(&self) {
        self.tasks.lock().clear();
        self.tenants.lock().clear();
        self.smm.lock().clear();
        self.mtb.lock().clear();
        self.devices.lock().clear();
        self.syncs.lock().clear();
        self.marks.lock().clear();
        self.routes.lock().clear();
        for a in &self.counts {
            a.store(0, Ordering::Relaxed);
        }
    }

    /// Replays everything buffered here into `sink`, stream by stream in
    /// capture order (tasks, tenants, SMM, MTB, devices, syncs, marks,
    /// routes, then counter totals) without copying the buffers out
    /// first. This is what the default [`Recorder::join`] runs; custom
    /// recorders reuse it to fold a fork into themselves through their
    /// own methods.
    pub fn replay_into<R: Recorder + ?Sized>(&self, sink: &R) {
        for ev in self.tasks.lock().iter() {
            sink.task(*ev);
        }
        for tag in self.tenants.lock().iter() {
            sink.tenant(*tag);
        }
        for s in self.smm.lock().iter() {
            sink.smm(*s);
        }
        for s in self.mtb.lock().iter() {
            sink.mtb(*s);
        }
        for s in self.devices.lock().iter() {
            sink.device(*s);
        }
        for m in self.syncs.lock().iter() {
            sink.sync_mark(*m);
        }
        for m in self.marks.lock().iter() {
            sink.mark(*m);
        }
        for r in self.routes.lock().iter() {
            sink.route(*r);
        }
        for c in Counter::ALL {
            let total = self.counts[c as usize].load(Ordering::Relaxed);
            if total > 0 {
                sink.count(c, total);
            }
        }
    }
}

impl fmt::Debug for MemRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemRecorder")
            .field("tasks", &self.tasks.lock().len())
            .field("smm", &self.smm.lock().len())
            .field("mtb", &self.mtb.lock().len())
            .finish()
    }
}

impl Recorder for MemRecorder {
    #[inline]
    fn task(&self, ev: TaskEvent) {
        self.tasks.lock().push(ev);
    }

    #[inline]
    fn tenant(&self, tag: TenantTag) {
        self.tenants.lock().push(tag);
    }

    #[inline]
    fn smm(&self, s: SmmSample) {
        self.smm.lock().push(s);
    }

    #[inline]
    fn mtb(&self, s: MtbSample) {
        self.mtb.lock().push(s);
    }

    #[inline]
    fn device(&self, s: DeviceSample) {
        self.devices.lock().push(s);
    }

    #[inline]
    fn sync_mark(&self, m: SyncMark) {
        self.syncs.lock().push(m);
    }

    #[inline]
    fn mark(&self, m: TaskMark) {
        self.marks.lock().push(m);
    }

    #[inline]
    fn route(&self, r: TaskRoute) {
        self.routes.lock().push(r);
    }

    #[inline]
    fn count(&self, c: Counter, delta: u64) {
        // Load + store instead of `fetch_add`: a relaxed RMW is still a
        // full locked instruction on x86 (~20 cycles), and counters fire
        // tens of thousands of times per run. Every driver writes a
        // recorder from one thread at a time (parallel workers each get
        // their own fork), so the non-atomic update never loses an
        // increment in practice; under genuinely concurrent counting it
        // would, which snapshot consumers must not rely on.
        let slot = &self.counts[c as usize];
        slot.store(slot.load(Ordering::Relaxed) + delta, Ordering::Relaxed);
    }
}

/// The sink behind an enabled [`Obs`] handle. [`MemRecorder`] — the one
/// recorder on the measured hot path — gets its own variant so every
/// event call is statically dispatched and the ring push inlines into
/// the instrumentation site; anything else goes through the trait
/// object. [`Obs::recording`] and [`Obs::fork`] produce the fast
/// variant, [`Obs::new`] the general one.
#[derive(Clone)]
enum Sink {
    Mem(Arc<MemRecorder>),
    Dyn(Arc<dyn Recorder + Send + Sync>),
}

impl Sink {
    #[inline]
    fn retains(&self) -> bool {
        match self {
            Sink::Mem(_) => true,
            Sink::Dyn(r) => r.retains(),
        }
    }

    fn fork(&self) -> MemRecorder {
        match self {
            Sink::Mem(m) => m.fork(),
            Sink::Dyn(r) => r.fork(),
        }
    }

    fn join(&self, fork: &MemRecorder) {
        match self {
            Sink::Mem(m) => m.join(fork),
            Sink::Dyn(r) => r.join(fork),
        }
    }
}

/// Forwards one event method to whichever sink variant is live, with
/// static dispatch (and inlining) on the [`MemRecorder`] arm.
macro_rules! emit {
    ($self:ident . $method:ident ( $($arg:expr),* )) => {
        match &$self.rec {
            None => {}
            Some(Sink::Mem(m)) => m.$method($($arg),*),
            Some(Sink::Dyn(r)) => r.$method($($arg),*),
        }
    };
}

/// The handle instrumented code holds. `Obs::off()` (the default) makes
/// every method a single branch; `Obs::new(...)` forwards to a shared
/// [`Recorder`]. Cloning is cheap (an `Option<Arc>` copy), which is how
/// one recorder observes the runtime, the device, and the bus at once.
#[derive(Clone, Default)]
pub struct Obs {
    rec: Option<Sink>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.rec.is_some())
            .finish()
    }
}

impl Obs {
    /// The disabled handle: every instrumentation site reduces to one
    /// `Option` discriminant test.
    pub fn off() -> Self {
        Obs { rec: None }
    }

    /// A handle forwarding to `rec` through dynamic dispatch. For a
    /// [`MemRecorder`] prefer [`Obs::recording`] or [`Obs::with_mem`],
    /// which keep the concrete type and record measurably faster.
    pub fn new(rec: Arc<dyn Recorder + Send + Sync>) -> Self {
        Obs {
            rec: Some(Sink::Dyn(rec)),
        }
    }

    /// A handle recording into `rec` with static dispatch — the fast
    /// path the `hotpath` bench measures.
    pub fn with_mem(rec: Arc<MemRecorder>) -> Self {
        Obs {
            rec: Some(Sink::Mem(rec)),
        }
    }

    /// A handle backed by a fresh [`MemRecorder`], plus the recorder for
    /// later `snapshot()`. The usual way to record a run:
    ///
    /// ```
    /// let (obs, rec) = pagoda_obs::Obs::recording();
    /// obs.count(pagoda_obs::Counter::TasksSpawned, 1);
    /// assert_eq!(rec.snapshot().counter(pagoda_obs::Counter::TasksSpawned), 1);
    /// ```
    pub fn recording() -> (Obs, Arc<MemRecorder>) {
        let rec = Arc::new(MemRecorder::new());
        (Obs::with_mem(rec.clone()), rec)
    }

    /// Whether a recorder that retains data is attached. Instrumented
    /// code uses this to skip *computing* expensive sample fields, not
    /// just emitting them — so it is `false` both with no recorder and
    /// with a [`NullRecorder`] (`retains() == false`).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.rec.as_ref().is_some_and(|r| r.retains())
    }

    /// Records a task lifecycle transition.
    #[inline]
    pub fn task(&self, at_ps: u64, task: u64, state: TaskState) {
        emit!(self.task(TaskEvent { at_ps, task, state }));
    }

    /// Attributes `task` to `tenant`.
    #[inline]
    pub fn tenant(&self, task: u64, tenant: u32) {
        emit!(self.tenant(TenantTag { task, tenant }));
    }

    /// Records a per-SMM resource sample.
    #[inline]
    pub fn smm(&self, s: SmmSample) {
        emit!(self.smm(s));
    }

    /// Records a per-MTB occupancy sample.
    #[inline]
    pub fn mtb(&self, s: MtbSample) {
        emit!(self.mtb(s));
    }

    /// Records a per-fleet-device sample.
    #[inline]
    pub fn device(&self, s: DeviceSample) {
        emit!(self.device(s));
    }

    /// Records a fleet synchronization point.
    #[inline]
    pub fn sync_mark(&self, at_ps: u64, kind: SyncKind) {
        emit!(self.sync_mark(SyncMark { at_ps, kind }));
    }

    /// Records a serving-layer timeline mark for `task`.
    #[inline]
    pub fn mark(&self, at_ps: u64, task: u64, kind: MarkKind) {
        emit!(self.mark(TaskMark { at_ps, task, kind }));
    }

    /// Records that `task` was routed to fleet `device`.
    #[inline]
    pub fn route(&self, task: u64, device: u32) {
        emit!(self.route(TaskRoute { task, device }));
    }

    /// Advances counter `c` by `delta`.
    #[inline]
    pub fn count(&self, c: Counter, delta: u64) {
        emit!(self.count(c, delta));
    }

    /// Splits off a private buffer for one worker thread of a parallel
    /// driver. The returned fork's [`ObsFork::obs`] handle records into
    /// the buffer; [`Obs::join`] folds it back into this handle's
    /// recorder. When nothing is retained (disabled handle or a
    /// [`NullRecorder`]), the fork is a pass-through clone — no buffer is
    /// allocated and join is a no-op — preserving the zero-cost contract.
    pub fn fork(&self) -> ObsFork {
        match &self.rec {
            Some(r) if r.retains() => {
                let buf = Arc::new(r.fork());
                ObsFork {
                    obs: Obs::with_mem(buf.clone()),
                    buf: Some(buf),
                }
            }
            _ => ObsFork {
                obs: self.clone(),
                buf: None,
            },
        }
    }

    /// Merges a fork produced by [`Obs::fork`] back into this handle's
    /// recorder (see [`Recorder::join`] for the replay order). Call once
    /// per fork, in the deterministic order the driver defines.
    pub fn join(&self, fork: ObsFork) {
        if let (Some(r), Some(buf)) = (&self.rec, &fork.buf) {
            r.join(buf);
        }
    }
}

/// A per-worker observability buffer split off a parent [`Obs`] handle.
/// Workers record through [`ObsFork::obs`]; the driver merges forks back
/// with [`Obs::join`] in a deterministic order. Sendable to a worker
/// thread; must not outlive the join (events left in an unjoined fork are
/// dropped).
#[derive(Debug)]
pub struct ObsFork {
    obs: Obs,
    buf: Option<Arc<MemRecorder>>,
}

impl ObsFork {
    /// The handle the worker records through.
    pub fn obs(&self) -> Obs {
        self.obs.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        obs.task(1, 2, TaskState::Spawned);
        obs.count(Counter::EngineEvents, 10);
        // Nothing to observe — the point is it doesn't panic or allocate.
    }

    #[test]
    fn null_recorder_dispatches_but_reports_disabled() {
        let obs = Obs::new(Arc::new(NullRecorder));
        // Dispatch works (and drops everything)…
        obs.task(1, 2, TaskState::Spawned);
        obs.count(Counter::EngineEvents, 10);
        // …but gated sample computation is skipped, like Obs::off().
        assert!(!obs.enabled());
        let (mem, _) = Obs::recording();
        assert!(mem.enabled());
    }

    #[test]
    fn mem_recorder_buffers_in_order() {
        let (obs, rec) = Obs::recording();
        obs.task(10, 0, TaskState::Spawned);
        obs.task(20, 0, TaskState::Enqueued);
        obs.tenant(0, 3);
        obs.count(Counter::TasksSpawned, 1);
        obs.count(Counter::TasksSpawned, 2);
        let buf = rec.snapshot();
        assert_eq!(buf.tasks.len(), 2);
        assert_eq!(buf.tasks[0].state, TaskState::Spawned);
        assert_eq!(buf.tenants, vec![TenantTag { task: 0, tenant: 3 }]);
        assert_eq!(buf.counter(Counter::TasksSpawned), 3);
        assert_eq!(buf.counter(Counter::AdmissionShed), 0);
        assert_eq!(buf.counters.len(), Counter::ALL.len());
    }

    #[test]
    fn ring_preserves_order_across_chunk_spill() {
        // More events than one chunk holds: order and count must survive
        // the spill into later chunks.
        let (obs, rec) = Obs::recording();
        let n = (CHUNK * 2 + 37) as u64;
        for i in 0..n {
            obs.task(i, i, TaskState::Spawned);
        }
        let buf = rec.snapshot();
        assert_eq!(buf.tasks.len(), n as usize);
        assert!(buf
            .tasks
            .iter()
            .enumerate()
            .all(|(i, e)| e.at_ps == i as u64));
    }

    #[test]
    fn task_timeline_takes_first_instance() {
        let (obs, rec) = Obs::recording();
        obs.task(10, 7, TaskState::Spawned);
        obs.task(30, 7, TaskState::Running);
        obs.task(35, 7, TaskState::Running); // duplicate: first wins
        let tl = rec.snapshot().task_timeline(7);
        assert_eq!(tl[TaskState::Spawned as usize], Some(10));
        assert_eq!(tl[TaskState::Enqueued as usize], None);
        assert_eq!(tl[TaskState::Running as usize], Some(30));
    }

    #[test]
    fn marks_and_routes_buffer_and_replay() {
        let (obs, rec) = Obs::recording();
        obs.mark(100, 7, MarkKind::Arrived);
        obs.mark(130, 7, MarkKind::Admitted);
        obs.mark(900, 7, MarkKind::Observed);
        obs.mark(950, 7, MarkKind::Observed); // duplicate: first wins
        obs.route(7, 2);
        obs.route(7, 3); // resubmission: both retained, last wins downstream
        let buf = rec.snapshot();
        assert_eq!(buf.marks.len(), 4);
        assert_eq!(buf.task_marks(7), [Some(100), Some(130), Some(900)]);
        assert_eq!(buf.routes.len(), 2);
        assert_eq!(buf.routes[1].device, 3);

        // Fork/join replays marks and routes in capture order.
        let (obs2, rec2) = Obs::recording();
        let f = obs2.fork();
        f.obs().mark(100, 7, MarkKind::Arrived);
        f.obs().route(7, 2);
        obs2.join(f);
        let buf2 = rec2.snapshot();
        assert_eq!(buf2.marks.len(), 1);
        assert_eq!(buf2.routes.len(), 1);
    }

    #[test]
    fn device_samples_buffer_in_order() {
        use crate::events::DeviceSample;
        let (obs, rec) = Obs::recording();
        for i in 0..3u32 {
            obs.device(DeviceSample {
                at_ps: u64::from(i) * 5,
                device: i,
                known_free: 10,
                outstanding: i,
                alive: true,
            });
        }
        let buf = rec.snapshot();
        assert_eq!(buf.devices.len(), 3);
        assert_eq!(buf.devices[2].device, 2);
    }

    #[test]
    fn reset_clears() {
        let (obs, rec) = Obs::recording();
        obs.task(1, 1, TaskState::Spawned);
        obs.count(Counter::TasksSpawned, 4);
        rec.reset();
        let buf = rec.snapshot();
        assert!(buf.tasks.is_empty());
        assert_eq!(buf.counter(Counter::TasksSpawned), 0);
    }

    #[test]
    fn fork_join_reproduces_serial_stream_order() {
        // Serial reference: one handle, events in driver order.
        let serial = {
            let (obs, rec) = Obs::recording();
            for d in 0..3u64 {
                obs.task(d * 10, d, TaskState::Spawned);
                obs.count(Counter::TasksSpawned, 1);
            }
            rec.snapshot().to_json()
        };
        // Parallel shape: one fork per "device", recorded out of driver
        // order (as threads would), joined back in driver order.
        let parallel = {
            let (obs, rec) = Obs::recording();
            let forks: Vec<_> = (0..3u64).map(|_| obs.fork()).collect();
            for d in [2u64, 0, 1] {
                let o = forks[d as usize].obs();
                o.task(d * 10, d, TaskState::Spawned);
                o.count(Counter::TasksSpawned, 1);
            }
            for f in forks {
                obs.join(f);
            }
            rec.snapshot().to_json()
        };
        assert_eq!(serial, parallel);
    }

    #[test]
    fn fork_of_disabled_handle_is_passthrough() {
        let obs = Obs::off();
        let f = obs.fork();
        assert!(!f.obs().enabled());
        obs.join(f); // no-op, must not panic

        // NullRecorder: dispatch still works through the fork, nothing
        // is buffered (retains() == false → pass-through clone).
        let null = Obs::new(Arc::new(NullRecorder));
        let f = null.fork();
        f.obs().count(Counter::EngineEvents, 1);
        assert!(!f.obs().enabled());
        null.join(f);
    }

    #[test]
    fn join_merges_counters_once() {
        let (obs, rec) = Obs::recording();
        let f = obs.fork();
        f.obs().count(Counter::ClusterPlacements, 5);
        f.obs().count(Counter::ClusterPlacements, 2);
        obs.count(Counter::ClusterPlacements, 1); // parent concurrently
        obs.join(f);
        assert_eq!(rec.snapshot().counter(Counter::ClusterPlacements), 8);
    }

    #[test]
    fn snapshot_json_is_deterministic() {
        let run = || {
            let (obs, rec) = Obs::recording();
            for t in 0..5u64 {
                obs.task(t * 10, t, TaskState::Spawned);
                obs.count(Counter::TasksSpawned, 1);
            }
            rec.snapshot().to_json()
        };
        assert_eq!(run(), run());
    }
}
