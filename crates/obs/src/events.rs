//! The event taxonomy: everything a [`Recorder`](crate::Recorder) can
//! receive. Three shapes, matched to how the paper argues its claims:
//!
//! * [`TaskEvent`] — one per task *state change*, following the paper's
//!   lifecycle (spawned → enqueued → placed → running → freed). Latency
//!   figures (Figs. 5-7, 10) are differences between these instants.
//! * [`SmmSample`] / [`MtbSample`] — resource snapshots taken at
//!   state-change events only (never on a timer): resident warps, free
//!   registers/shared memory, TB slots. These make the Fig. 8
//!   warp-vs-TB-granularity crossover visible as a timeline.
//! * [`Counter`] — monotonic tallies (PCIe transactions, TaskTable polls,
//!   admission decisions, scheduler actions, engine events).
//!
//! Timestamps are raw picoseconds (`at_ps`) rather than `desim::SimTime`
//! so the event structs serialize with the vendored serde derive and the
//! crate stays dependency-free.

use serde::{Deserialize, Serialize};

/// Task lifecycle states, in order. Mirrors the TaskTable protocol: the
/// host spawns an entry, the entry becomes visible on the device
/// (enqueued), a scheduler warp places it, executor warps run it, and the
/// entry is freed at warp granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TaskState {
    /// Host-side `submit` accepted the descriptor and issued the entry copy.
    Spawned,
    /// The entry became visible to the device-side TaskTable column.
    Enqueued,
    /// A scheduler warp finished placement (resources reserved).
    Placed,
    /// The first executor warp started running task work.
    Running,
    /// The entry was freed (task complete, resources recycled).
    Freed,
}

impl TaskState {
    /// All states, lifecycle order.
    pub const ALL: [TaskState; 5] = [
        TaskState::Spawned,
        TaskState::Enqueued,
        TaskState::Placed,
        TaskState::Running,
        TaskState::Freed,
    ];

    /// Stable lowercase name (used by exporters).
    pub fn name(self) -> &'static str {
        match self {
            TaskState::Spawned => "spawned",
            TaskState::Enqueued => "enqueued",
            TaskState::Placed => "placed",
            TaskState::Running => "running",
            TaskState::Freed => "freed",
        }
    }
}

/// One task lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskEvent {
    /// Simulation instant, picoseconds.
    pub at_ps: u64,
    /// Runtime-assigned task id.
    pub task: u64,
    /// The state entered at `at_ps`.
    pub state: TaskState,
}

/// Associates a task with a tenant (serving layer); exporters group task
/// spans into one track per tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantTag {
    /// Runtime-assigned task id.
    pub task: u64,
    /// Tenant index within the serving configuration.
    pub tenant: u32,
}

/// Per-SMM resource snapshot, taken when the SMM's residency changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmmSample {
    /// Simulation instant, picoseconds.
    pub at_ps: u64,
    /// SMM index.
    pub sm: u32,
    /// Warps currently resident (native kernels + MasterKernel warps).
    pub resident_warps: u32,
    /// Warps currently executing work (for a Pagoda run, residency is
    /// flat at 100 % — this is where per-SMM activity shows).
    pub running_warps: u32,
    /// Register-file registers not reserved by resident work.
    pub free_regs: u64,
    /// Shared-memory bytes not reserved by resident work.
    pub free_smem: u64,
    /// Threadblock slots not occupied.
    pub free_tb_slots: u32,
}

/// Per-MTB (MasterKernel threadblock) snapshot, taken when a scheduler
/// warp changes its column's occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MtbSample {
    /// Simulation instant, picoseconds.
    pub at_ps: u64,
    /// MTB index (two per SMM).
    pub mtb: u32,
    /// Executor-warp slots free in the WarpTable (of 31).
    pub free_warp_slots: u32,
    /// Bytes free in the MTB's buddy shared-memory pool.
    pub free_smem: u64,
    /// TaskTable entries of this MTB's column not in `Free` state.
    pub used_entries: u32,
}

/// Per-device fleet snapshot, taken by a cluster layer when a device's
/// outstanding-task count or liveness changes. `device` indexes the
/// fleet, not an SMM — one simulated GPU per sample stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceSample {
    /// Simulation instant (fleet clock), picoseconds.
    pub at_ps: u64,
    /// Device index within the fleet.
    pub device: u32,
    /// TaskTable entries free in the fleet manager's view of the device.
    pub known_free: u32,
    /// Cluster tasks in flight on the device.
    pub outstanding: u32,
    /// Whether the device is serving (false once killed).
    pub alive: bool,
}

/// Serving-layer cut points on a task's timeline that the lifecycle
/// states do not carry: when the client's request arrived, when
/// admission pushed it into the QoS queue, and when the host observed
/// its completion. Together with [`TaskState`] these are the eight cut
/// points `pagoda-prof` decomposes a sojourn into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MarkKind {
    /// The client offered the task (sojourn time starts here).
    Arrived,
    /// Admission accepted it into the QoS queue.
    Admitted,
    /// The host observed the completed output (sojourn time ends here).
    Observed,
}

impl MarkKind {
    /// All marks, timeline order.
    pub const ALL: [MarkKind; 3] = [MarkKind::Arrived, MarkKind::Admitted, MarkKind::Observed];

    /// Stable lowercase name (used by exporters).
    pub fn name(self) -> &'static str {
        match self {
            MarkKind::Arrived => "arrived",
            MarkKind::Admitted => "admitted",
            MarkKind::Observed => "observed",
        }
    }
}

/// One serving-layer timeline mark. Marks are emitted retroactively —
/// the serving loop learns a task's key only at spawn, so `at_ps` may
/// precede earlier-recorded events; consumers index by `(task, kind)`,
/// never by stream position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskMark {
    /// Simulation instant, picoseconds.
    pub at_ps: u64,
    /// Backend-unique task key.
    pub task: u64,
    /// Which cut point this is.
    pub kind: MarkKind,
}

/// Attributes a task to the fleet device it was placed on (cluster
/// layer). Re-emitted on resubmission after a device failure; the last
/// route wins for per-device attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskRoute {
    /// Backend-unique task key.
    pub task: u64,
    /// Device index within the fleet.
    pub device: u32,
}

/// Why a fleet-level sync mark was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncKind {
    /// A regular fleet synchronization point: every completion applied
    /// after this mark (until the next one) must map to a fleet instant
    /// at or before the mark — the causal-harvest gate.
    Sync,
    /// The final harvest of a killed device. Completions applied here may
    /// legitimately map *past* the mark (the device's local clock ran
    /// ahead of the fleet before it died), so causality checkers exempt
    /// this batch.
    KillHarvest,
}

/// A fleet synchronization point: the fleet clock at which a batch of
/// cross-device effects (completions, losses) is about to be applied.
/// Emitted by cluster-layer drivers so invariant checkers can validate
/// the causal-harvest gate and the sorted-merge contract online without
/// reaching into the fleet's internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncMark {
    /// Fleet clock at the sync point, picoseconds.
    pub at_ps: u64,
    /// What kind of sync point this is.
    pub kind: SyncKind,
}

/// Monotonic counters. Each increments by an arbitrary delta; recorders
/// accumulate totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Counter {
    /// Host→device DMA transactions issued.
    PcieH2dTransactions,
    /// Device→host DMA transactions issued.
    PcieD2hTransactions,
    /// Host→device payload bytes.
    PcieH2dBytes,
    /// Device→host payload bytes.
    PcieD2hBytes,
    /// Host-side polls of individual TaskTable entries.
    TaskTablePolls,
    /// Bulk TaskTable copy-backs (lazy aggregate, §4.2.2).
    TaskTableCopybacks,
    /// Serving-layer admissions.
    AdmissionAdmitted,
    /// Serving-layer sheds (queue full).
    AdmissionShed,
    /// Scheduler-warp actions begun (chain update / placement / step).
    SchedulerDecisions,
    /// Ready-chain updates applied (Algorithm 1, lines 5-13).
    ChainUpdates,
    /// Placement pipeline steps (barrier / smem / warp placement).
    PlacementSteps,
    /// Events popped from a `desim` engine.
    EngineEvents,
    /// Tasks accepted by `submit`/spawn.
    TasksSpawned,
    /// Tasks whose TaskTable entry was freed.
    TasksFreed,
    /// Native kernel launches (baselines).
    KernelLaunches,
    /// Cluster-layer task placements (every routed submit).
    ClusterPlacements,
    /// Placements that landed off the tenant's home device set (paid the
    /// modeled inter-device staging transfer).
    ClusterOffAffinity,
    /// Tasks resubmitted to another device after their device died.
    ClusterResubmits,
    /// Inter-device staging transfers actually charged (off-home
    /// placements that really crossed devices — a resubmit landing back
    /// on the device that already holds the task's data pays nothing).
    ClusterStagedTransfers,
    /// Tasks lost to a device failure (reported failed, not resubmitted).
    ClusterTasksLost,
    /// Device kill faults applied.
    ClusterDeviceKills,
    /// Device slowdown faults applied.
    ClusterDeviceSlowdowns,
}

impl Counter {
    /// All counters, declaration order. `Counter as usize` indexes this.
    pub const ALL: [Counter; 22] = [
        Counter::PcieH2dTransactions,
        Counter::PcieD2hTransactions,
        Counter::PcieH2dBytes,
        Counter::PcieD2hBytes,
        Counter::TaskTablePolls,
        Counter::TaskTableCopybacks,
        Counter::AdmissionAdmitted,
        Counter::AdmissionShed,
        Counter::SchedulerDecisions,
        Counter::ChainUpdates,
        Counter::PlacementSteps,
        Counter::EngineEvents,
        Counter::TasksSpawned,
        Counter::TasksFreed,
        Counter::KernelLaunches,
        Counter::ClusterPlacements,
        Counter::ClusterOffAffinity,
        Counter::ClusterResubmits,
        Counter::ClusterStagedTransfers,
        Counter::ClusterTasksLost,
        Counter::ClusterDeviceKills,
        Counter::ClusterDeviceSlowdowns,
    ];

    /// Stable snake_case name (used as JSON/CSV keys).
    pub fn name(self) -> &'static str {
        match self {
            Counter::PcieH2dTransactions => "pcie_h2d_transactions",
            Counter::PcieD2hTransactions => "pcie_d2h_transactions",
            Counter::PcieH2dBytes => "pcie_h2d_bytes",
            Counter::PcieD2hBytes => "pcie_d2h_bytes",
            Counter::TaskTablePolls => "tasktable_polls",
            Counter::TaskTableCopybacks => "tasktable_copybacks",
            Counter::AdmissionAdmitted => "admission_admitted",
            Counter::AdmissionShed => "admission_shed",
            Counter::SchedulerDecisions => "scheduler_decisions",
            Counter::ChainUpdates => "chain_updates",
            Counter::PlacementSteps => "placement_steps",
            Counter::EngineEvents => "engine_events",
            Counter::TasksSpawned => "tasks_spawned",
            Counter::TasksFreed => "tasks_freed",
            Counter::KernelLaunches => "kernel_launches",
            Counter::ClusterPlacements => "cluster_placements",
            Counter::ClusterOffAffinity => "cluster_off_affinity",
            Counter::ClusterResubmits => "cluster_resubmits",
            Counter::ClusterStagedTransfers => "cluster_staged_transfers",
            Counter::ClusterTasksLost => "cluster_tasks_lost",
            Counter::ClusterDeviceKills => "cluster_device_kills",
            Counter::ClusterDeviceSlowdowns => "cluster_device_slowdowns",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_all_matches_discriminants() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{c:?} out of order in ALL");
        }
    }

    #[test]
    fn task_states_are_ordered() {
        let mut prev = None;
        for s in TaskState::ALL {
            if let Some(p) = prev {
                assert!(p < s);
            }
            prev = Some(s);
        }
    }

    #[test]
    fn events_serialize() {
        let ev = TaskEvent {
            at_ps: 1,
            task: 2,
            state: TaskState::Placed,
        };
        assert_eq!(
            serde_json::to_string(&ev).unwrap(),
            r#"{"at_ps":1,"task":2,"state":"Placed"}"#
        );
    }
}
