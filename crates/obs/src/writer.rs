//! Shared exporter plumbing: the header/row/flush boilerplate the CSV,
//! chrome-trace, and downstream (Prometheus / folded-stack) exporters
//! would otherwise each copy.
//!
//! Everything here is deliberately dumb: deterministic text assembly
//! with no buffering policy of its own (callers bring a `BufWriter` if
//! they care). The exporters in [`crate::export`] and in `pagoda-prof`
//! are thin loops over these helpers.

use std::io::{self, Write};

/// Formats picoseconds as chrome-trace microseconds (fractional), using
/// the same float encoding as the vendored serde so trace output stays
/// byte-identical with JSON-embedded timestamps.
pub fn us(ps: u64) -> String {
    let mut s = String::new();
    serde::ser::write_f64(&mut s, ps as f64 / 1e6);
    s
}

/// Writes one CSV table: a header line, then `row(item)` per item. The
/// row closure returns the comma-joined cells *without* the trailing
/// newline.
pub fn write_csv<W: Write, T>(
    w: &mut W,
    header: &str,
    rows: impl IntoIterator<Item = T>,
    mut row: impl FnMut(&T) -> String,
) -> io::Result<()> {
    writeln!(w, "{header}")?;
    for item in rows {
        writeln!(w, "{}", row(&item))?;
    }
    Ok(())
}

/// Escapes a value for use inside a Prometheus label or a folded-stack
/// frame: backslash, double-quote, newline, and (for folded stacks)
/// semicolon and space become safe characters. Deterministic and
/// allocation-light — exporters call this per group, not per sample.
pub fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            ';' | ' ' => out.push('_'),
            c => out.push(c),
        }
    }
    out
}

/// Accumulates chrome-trace event lines keyed by timestamp, then writes
/// the whole trace sorted by `ts` with per-process metadata names. The
/// stable sort keeps arrival order among equal timestamps, so output is
/// deterministic for a deterministic event stream.
#[derive(Debug, Default)]
pub struct TraceEvents {
    events: Vec<(u64, String)>,
}

impl TraceEvents {
    /// An empty trace.
    pub fn new() -> Self {
        TraceEvents::default()
    }

    /// Adds one pre-rendered JSON event object at `ts_ps`.
    pub fn push(&mut self, ts_ps: u64, line: String) {
        self.events.push((ts_ps, line));
    }

    /// Writes the `{"traceEvents":[...]}` envelope: one `process_name`
    /// metadata record per `(pid, name)`, then every event sorted by
    /// timestamp, one per line.
    pub fn write<W: Write>(mut self, w: &mut W, processes: &[(u32, &str)]) -> io::Result<()> {
        self.events.sort_by_key(|(ts, _)| *ts);
        write!(w, "{{\"traceEvents\":[")?;
        for (i, (pid, name)) in processes.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(
                w,
                "\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{name}\"}}}}"
            )?;
        }
        for (_, line) in &self.events {
            writeln!(w, ",")?;
            write!(w, "{line}")?;
        }
        writeln!(w, "\n]}}")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rows_follow_header() {
        let mut out = Vec::new();
        write_csv(&mut out, "a,b", [(1, 2), (3, 4)], |(a, b)| {
            format!("{a},{b}")
        })
        .unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn trace_events_sort_stably_by_ts() {
        let mut t = TraceEvents::new();
        t.push(20, "{\"n\":2}".into());
        t.push(10, "{\"n\":1}".into());
        t.push(20, "{\"n\":3}".into());
        let mut out = Vec::new();
        t.write(&mut out, &[(1, "p")]).unwrap();
        let s = String::from_utf8(out).unwrap();
        crate::export::check_json(&s).unwrap();
        let pos = |needle: &str| s.find(needle).unwrap();
        assert!(pos("{\"n\":1}") < pos("{\"n\":2}"));
        assert!(pos("{\"n\":2}") < pos("{\"n\":3}"));
    }

    #[test]
    fn labels_escape_cleanly() {
        assert_eq!(escape_label("a b;c\"d\\e"), "a_b_c\\\"d\\\\e");
        assert_eq!(escape_label("tenant0"), "tenant0");
    }

    #[test]
    fn us_matches_serde_float_encoding() {
        assert_eq!(us(1_000_000), "1.0");
        assert_eq!(us(2_500_000), "2.5");
    }
}
