//! **pagoda-obs** — cross-layer observability for the Pagoda workspace.
//!
//! Pagoda's claims are timeline claims: warp-granularity freeing,
//! TaskTable occupancy, spawn-to-start latency. This crate is the one
//! place those timelines are captured. Every instrumented crate
//! (`desim`, `pcie`, `gpu-sim`, `pagoda-core`, `baselines`,
//! `pagoda-serve`) holds a cloned [`Obs`] handle and reports:
//!
//! * **task lifecycle spans** — [`TaskState`]: spawned → enqueued →
//!   placed → running → freed;
//! * **resource timelines** — [`SmmSample`] per SMM and [`MtbSample`] per
//!   MasterKernel threadblock, sampled at state-change events only;
//! * **counters** — [`Counter`]: PCIe transactions, TaskTable polls,
//!   admission admit/shed, scheduler decisions, engine events.
//!
//! Design rule: *zero dependency on the hot path*. A disabled handle
//! ([`Obs::off`]) costs one `Option` discriminant test per site; the
//! `obs_overhead` bench in `crates/bench` gates this at ≤ 5 % of sim
//! throughput. Recording goes through the [`Recorder`] trait —
//! [`NullRecorder`] to measure dispatch cost, [`MemRecorder`] to buffer
//! for the exporters in [`export`] (chrome://tracing with one track per
//! SMM and per tenant, CSV timelines, JSON summary).
//!
//! # Example
//!
//! ```
//! use pagoda_obs::{Obs, TaskState, export};
//!
//! let (obs, rec) = Obs::recording();
//! obs.task(0, 7, TaskState::Spawned);
//! obs.task(1_000, 7, TaskState::Running);
//! obs.task(5_000, 7, TaskState::Freed);
//!
//! let buf = rec.snapshot();
//! let mut trace = Vec::new();
//! export::write_chrome_trace(&buf, &mut trace).unwrap();
//! export::check_json(std::str::from_utf8(&trace).unwrap()).unwrap();
//! ```

pub mod events;
pub mod export;
pub mod recorder;
pub mod writer;

pub use events::{
    Counter, DeviceSample, MarkKind, MtbSample, SmmSample, SyncKind, SyncMark, TaskEvent, TaskMark,
    TaskRoute, TaskState, TenantTag,
};
pub use export::{summarize, write_chrome_trace, ObsSummary};
pub use recorder::{MemRecorder, NullRecorder, Obs, ObsBuffer, ObsFork, Recorder};
