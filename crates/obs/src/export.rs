//! Exporters over an [`ObsBuffer`]: chrome://tracing JSON (one track per
//! SMM and one per tenant), CSV timelines, and a serde JSON summary.
//!
//! The chrome exporter subsumes the older per-task
//! `pagoda_core::write_chrome_trace`: that one draws task phases only;
//! this one adds per-SMM resource counter tracks (resident warps, free
//! registers/smem, TB slots) and groups task spans by tenant, so the
//! warp-granularity claims are visible against the resources they free.

use std::collections::BTreeMap;
use std::io::{self, Write};

use serde::Serialize;

use crate::events::TaskState;
use crate::recorder::ObsBuffer;
use crate::writer::{us, write_csv, TraceEvents};

/// Human-readable phase label for the span *beginning* at `state`.
fn phase_name(state: TaskState) -> &'static str {
    match state {
        TaskState::Spawned => "spawn",
        TaskState::Enqueued => "queue",
        TaskState::Placed => "place",
        TaskState::Running => "run",
        TaskState::Freed => "freed",
    }
}

/// Writes `buf` as a chrome://tracing JSON object (open in
/// `chrome://tracing` or Perfetto).
///
/// Track layout:
/// * **pid 1 — "tasks"**: one thread track per tenant (tid = tenant id;
///   untagged tasks land on tid 0) carrying `X` duration events for each
///   lifecycle phase (`spawn` → `queue` → `place` → `run`).
/// * **pid 2 — "SMM resources"**: one counter track per SMM (`C` events,
///   name `smm<N>`) with resident warps, free regs (in units of 1024),
///   free smem KiB, and free TB slots.
/// * **pid 3 — "MTB occupancy"**: one counter track per MTB (`C` events,
///   name `mtb<N>`) with free warp slots, free smem KiB, used entries.
/// * **pid 4 — "fleet devices"**: one counter track per simulated device
///   (`C` events, name `dev<N>`) with known-free TaskTable entries,
///   outstanding cluster tasks, and liveness (1/0).
///
/// Events are emitted one per line, sorted by timestamp, so every track
/// is monotone in `ts`.
pub fn write_chrome_trace<W: Write>(buf: &ObsBuffer, w: &mut W) -> io::Result<()> {
    let tenant_of: BTreeMap<u64, u32> = buf.tenants.iter().map(|t| (t.task, t.tenant)).collect();

    let mut events = TraceEvents::new();

    // Task phase spans: consecutive pairs of reached states.
    let mut timelines: BTreeMap<u64, [Option<u64>; 5]> = BTreeMap::new();
    for ev in &buf.tasks {
        let slot = &mut timelines.entry(ev.task).or_insert([None; 5])[ev.state as usize];
        if slot.is_none() {
            *slot = Some(ev.at_ps);
        }
    }
    for (task, tl) in &timelines {
        let tid = tenant_of.get(task).copied().unwrap_or(0);
        let mut prev: Option<(TaskState, u64)> = None;
        for state in TaskState::ALL {
            let Some(at) = tl[state as usize] else {
                continue;
            };
            if let Some((ps, pt)) = prev {
                events.push(
                    pt,
                    format!(
                        r#"{{"name":"{}","ph":"X","ts":{},"dur":{},"pid":1,"tid":{},"args":{{"task":{}}}}}"#,
                        phase_name(ps),
                        us(pt),
                        us(at.saturating_sub(pt)),
                        tid,
                        task
                    ),
                );
            }
            prev = Some((state, at));
        }
    }

    // Per-SMM resource counter tracks.
    for s in &buf.smm {
        events.push(
            s.at_ps,
            format!(
                r#"{{"name":"smm{}","ph":"C","ts":{},"pid":2,"tid":{},"args":{{"resident_warps":{},"running_warps":{},"free_regs_k":{},"free_smem_kib":{},"free_tb_slots":{}}}}}"#,
                s.sm,
                us(s.at_ps),
                s.sm,
                s.resident_warps,
                s.running_warps,
                s.free_regs / 1024,
                s.free_smem / 1024,
                s.free_tb_slots
            ),
        );
    }

    // Per-MTB occupancy counter tracks.
    for s in &buf.mtb {
        events.push(
            s.at_ps,
            format!(
                r#"{{"name":"mtb{}","ph":"C","ts":{},"pid":3,"tid":{},"args":{{"free_warp_slots":{},"free_smem_kib":{},"used_entries":{}}}}}"#,
                s.mtb,
                us(s.at_ps),
                s.mtb,
                s.free_warp_slots,
                s.free_smem / 1024,
                s.used_entries
            ),
        );
    }

    // Per-fleet-device counter tracks.
    for s in &buf.devices {
        events.push(
            s.at_ps,
            format!(
                r#"{{"name":"dev{}","ph":"C","ts":{},"pid":4,"tid":{},"args":{{"known_free":{},"outstanding":{},"alive":{}}}}}"#,
                s.device,
                us(s.at_ps),
                s.device,
                s.known_free,
                s.outstanding,
                u32::from(s.alive)
            ),
        );
    }

    events.write(
        w,
        &[
            (1, "tasks"),
            (2, "SMM resources"),
            (3, "MTB occupancy"),
            (4, "fleet devices"),
        ],
    )
}

/// Writes the per-SMM samples as CSV (`at_ps,sm,resident_warps,free_regs,
/// free_smem,free_tb_slots`).
pub fn write_smm_csv<W: Write>(buf: &ObsBuffer, w: &mut W) -> io::Result<()> {
    write_csv(
        w,
        "at_ps,sm,resident_warps,running_warps,free_regs,free_smem,free_tb_slots",
        &buf.smm,
        |s| {
            format!(
                "{},{},{},{},{},{},{}",
                s.at_ps,
                s.sm,
                s.resident_warps,
                s.running_warps,
                s.free_regs,
                s.free_smem,
                s.free_tb_slots
            )
        },
    )
}

/// Writes the per-MTB samples as CSV (`at_ps,mtb,free_warp_slots,
/// free_smem,used_entries`).
pub fn write_mtb_csv<W: Write>(buf: &ObsBuffer, w: &mut W) -> io::Result<()> {
    write_csv(
        w,
        "at_ps,mtb,free_warp_slots,free_smem,used_entries",
        &buf.mtb,
        |s| {
            format!(
                "{},{},{},{},{}",
                s.at_ps, s.mtb, s.free_warp_slots, s.free_smem, s.used_entries
            )
        },
    )
}

/// Writes the per-fleet-device samples as CSV (`at_ps,device,known_free,
/// outstanding,alive`).
pub fn write_device_csv<W: Write>(buf: &ObsBuffer, w: &mut W) -> io::Result<()> {
    write_csv(
        w,
        "at_ps,device,known_free,outstanding,alive",
        &buf.devices,
        |s| {
            format!(
                "{},{},{},{},{}",
                s.at_ps,
                s.device,
                s.known_free,
                s.outstanding,
                u32::from(s.alive)
            )
        },
    )
}

/// Writes the task lifecycle events as CSV (`at_ps,task,state`).
pub fn write_task_csv<W: Write>(buf: &ObsBuffer, w: &mut W) -> io::Result<()> {
    write_csv(w, "at_ps,task,state", &buf.tasks, |ev| {
        format!("{},{},{}", ev.at_ps, ev.task, ev.state.name())
    })
}

/// Aggregate view of a recorded run, for JSON-lines harness output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ObsSummary {
    /// Tasks that reached `Spawned`.
    pub tasks_spawned: u64,
    /// Tasks that reached `Freed`.
    pub tasks_freed: u64,
    /// Tasks that reached every lifecycle state.
    pub complete_spans: u64,
    /// Mean spawned→running latency over complete spans, picoseconds.
    pub mean_spawn_to_running_ps: u64,
    /// Max spawned→running latency over complete spans, picoseconds.
    pub max_spawn_to_running_ps: u64,
    /// Number of per-SMM samples taken.
    pub smm_samples: u64,
    /// Number of per-MTB samples taken.
    pub mtb_samples: u64,
    /// Number of per-fleet-device samples taken.
    pub device_samples: u64,
    /// Final counter totals (all counters, zeros included), keyed by the
    /// interned [`crate::events::Counter::name`].
    pub counters: BTreeMap<&'static str, u64>,
}

/// Reduces a buffer to its [`ObsSummary`].
pub fn summarize(buf: &ObsBuffer) -> ObsSummary {
    let mut timelines: BTreeMap<u64, [Option<u64>; 5]> = BTreeMap::new();
    for ev in &buf.tasks {
        let slot = &mut timelines.entry(ev.task).or_insert([None; 5])[ev.state as usize];
        if slot.is_none() {
            *slot = Some(ev.at_ps);
        }
    }
    let mut spawned = 0u64;
    let mut freed = 0u64;
    let mut complete = 0u64;
    let mut lat_sum = 0u64;
    let mut lat_max = 0u64;
    for tl in timelines.values() {
        spawned += u64::from(tl[TaskState::Spawned as usize].is_some());
        freed += u64::from(tl[TaskState::Freed as usize].is_some());
        if tl.iter().all(Option::is_some) {
            complete += 1;
            let lat = tl[TaskState::Running as usize]
                .unwrap_or(0)
                .saturating_sub(tl[TaskState::Spawned as usize].unwrap_or(0));
            lat_sum += lat;
            lat_max = lat_max.max(lat);
        }
    }
    ObsSummary {
        tasks_spawned: spawned,
        tasks_freed: freed,
        complete_spans: complete,
        mean_spawn_to_running_ps: lat_sum / complete.max(1),
        max_spawn_to_running_ps: lat_max,
        smm_samples: buf.smm.len() as u64,
        mtb_samples: buf.mtb.len() as u64,
        device_samples: buf.devices.len() as u64,
        counters: buf.counters.clone(),
    }
}

/// Writes [`summarize`]'s output as one JSON object.
pub fn write_json_summary<W: Write>(buf: &ObsBuffer, w: &mut W) -> io::Result<()> {
    let json =
        serde_json::to_string(&summarize(buf)).expect("vendored serde_json encoder is infallible");
    writeln!(w, "{json}")
}

/// Minimal JSON *syntax* validator. The vendored `serde_json` serializes
/// only (no parser), so exporter tests use this to assert outputs are
/// well-formed without an external dependency.
pub fn check_json(s: &str) -> Result<(), String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn err(&self, msg: &str) -> String {
            format!("{msg} at byte {}", self.i)
        }
        fn skip_ws(&mut self) {
            while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.i += 1;
            }
        }
        fn value(&mut self) -> Result<(), String> {
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => self.string(),
                Some(b't') => self.lit("true"),
                Some(b'f') => self.lit("false"),
                Some(b'n') => self.lit("null"),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(self.err("expected value")),
            }
        }
        fn lit(&mut self, lit: &str) -> Result<(), String> {
            if self.b[self.i..].starts_with(lit.as_bytes()) {
                self.i += lit.len();
                Ok(())
            } else {
                Err(self.err("bad literal"))
            }
        }
        fn number(&mut self) -> Result<(), String> {
            let start = self.i;
            if self.b.get(self.i) == Some(&b'-') {
                self.i += 1;
            }
            while matches!(
                self.b.get(self.i),
                Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            ) {
                self.i += 1;
            }
            if self.i == start {
                Err(self.err("empty number"))
            } else {
                Ok(())
            }
        }
        fn string(&mut self) -> Result<(), String> {
            self.i += 1; // opening quote
            loop {
                match self.b.get(self.i) {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"') => {
                        self.i += 1;
                        return Ok(());
                    }
                    Some(b'\\') => self.i += 2,
                    Some(_) => self.i += 1,
                }
            }
        }
        fn object(&mut self) -> Result<(), String> {
            self.i += 1; // {
            self.skip_ws();
            if self.b.get(self.i) == Some(&b'}') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.skip_ws();
                if self.b.get(self.i) != Some(&b'"') {
                    return Err(self.err("expected object key"));
                }
                self.string()?;
                self.skip_ws();
                if self.b.get(self.i) != Some(&b':') {
                    return Err(self.err("expected ':'"));
                }
                self.i += 1;
                self.value()?;
                self.skip_ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }
        fn array(&mut self) -> Result<(), String> {
            self.i += 1; // [
            self.skip_ws();
            if self.b.get(self.i) == Some(&b']') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.value()?;
                self.skip_ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(self.err("expected ',' or ']'")),
                }
            }
        }
    }
    let mut p = P {
        b: s.as_bytes(),
        i: 0,
    };
    p.value()?;
    p.skip_ws();
    if p.i == p.b.len() {
        Ok(())
    } else {
        Err(p.err("trailing garbage"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Obs;
    use crate::{Counter, DeviceSample, SmmSample};

    fn sample_buffer() -> ObsBuffer {
        let (obs, rec) = Obs::recording();
        for task in 0..4u64 {
            let t0 = 1000 * task;
            obs.task(t0, task, TaskState::Spawned);
            obs.task(t0 + 100, task, TaskState::Enqueued);
            obs.task(t0 + 250, task, TaskState::Placed);
            obs.task(t0 + 300, task, TaskState::Running);
            obs.task(t0 + 900, task, TaskState::Freed);
            obs.tenant(task, (task % 2) as u32);
        }
        for i in 0..8u64 {
            obs.smm(SmmSample {
                at_ps: 500 * i,
                sm: (i % 2) as u32,
                resident_warps: 2 + i as u32,
                running_warps: 1 + i as u32,
                free_regs: 65_536 - 1024 * i,
                free_smem: 98_304 - 4096 * i,
                free_tb_slots: 32 - i as u32,
            });
        }
        for i in 0..4u64 {
            obs.device(DeviceSample {
                at_ps: 700 * i,
                device: (i % 2) as u32,
                known_free: 64 - i as u32,
                outstanding: i as u32,
                alive: i < 3,
            });
        }
        obs.count(Counter::PcieH2dTransactions, 12);
        rec.snapshot()
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let mut out = Vec::new();
        write_chrome_trace(&sample_buffer(), &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        check_json(&s).unwrap();
        assert!(s.contains("\"ph\":\"C\""), "no counter tracks: {s}");
        assert!(s.contains("\"ph\":\"X\""), "no span events: {s}");
        assert!(s.contains("\"name\":\"dev1\""), "no device tracks: {s}");
        assert!(s.contains("fleet devices"), "no fleet process name: {s}");
    }

    #[test]
    fn chrome_trace_ts_monotone_per_track() {
        let mut out = Vec::new();
        write_chrome_trace(&sample_buffer(), &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        // One event object per line; extract (name, ts) pairs per line.
        let mut last_ts: BTreeMap<String, f64> = BTreeMap::new();
        for line in s.lines().filter(|l| l.contains("\"ts\":")) {
            let name = line
                .split("\"name\":\"")
                .nth(1)
                .and_then(|r| r.split('"').next())
                .unwrap()
                .to_string();
            let ts: f64 = line
                .split("\"ts\":")
                .nth(1)
                .and_then(|r| r.split([',', '}']).next())
                .unwrap()
                .parse()
                .unwrap();
            if let Some(prev) = last_ts.get(&name) {
                assert!(ts >= *prev, "track {name} went backwards: {prev} -> {ts}");
            }
            last_ts.insert(name, ts);
        }
        assert!(!last_ts.is_empty());
    }

    #[test]
    fn csv_exports_have_headers_and_rows() {
        let buf = sample_buffer();
        let mut out = Vec::new();
        write_smm_csv(&buf, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("at_ps,sm,"));
        assert_eq!(s.lines().count(), 1 + buf.smm.len());

        let mut out = Vec::new();
        write_task_csv(&buf, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert_eq!(s.lines().count(), 1 + buf.tasks.len());
        assert!(s.contains(",spawned"));

        let mut out = Vec::new();
        write_device_csv(&buf, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("at_ps,device,"));
        assert_eq!(s.lines().count(), 1 + buf.devices.len());
    }

    #[test]
    fn summary_aggregates() {
        let buf = sample_buffer();
        let sum = summarize(&buf);
        assert_eq!(sum.tasks_spawned, 4);
        assert_eq!(sum.tasks_freed, 4);
        assert_eq!(sum.complete_spans, 4);
        assert_eq!(sum.mean_spawn_to_running_ps, 300);
        assert_eq!(sum.max_spawn_to_running_ps, 300);
        assert_eq!(sum.device_samples, 4);
        assert_eq!(sum.counters["pcie_h2d_transactions"], 12);
        let mut out = Vec::new();
        write_json_summary(&buf, &mut out).unwrap();
        check_json(String::from_utf8(out).unwrap().trim()).unwrap();
    }

    #[test]
    fn check_json_rejects_garbage() {
        assert!(check_json("{\"a\":1}").is_ok());
        assert!(check_json("[1,2,3]").is_ok());
        assert!(check_json("{\"a\":}").is_err());
        assert!(check_json("[1,2,").is_err());
        assert!(check_json("{} trailing").is_err());
    }
}
