//! GPU architecture specifications and occupancy mathematics.
//!
//! Pagoda's whole premise is an *occupancy* argument: a narrow task (< 500
//! threads) resident alone on a Maxwell Titan X occupies a fraction of a
//! percent of the machine, and even HyperQ's 32 concurrent kernels leave it
//! mostly idle (paper §2). This crate captures the hardware limits that
//! produce those numbers — warp size, per-SMM warp/thread/threadblock caps,
//! register file and shared-memory capacities — and the standard CUDA
//! occupancy calculation over them.
//!
//! Two presets are provided, matching the machines the paper validated its
//! TaskTable visibility assumptions on: [`GpuSpec::titan_x`] (the evaluation
//! platform) and [`GpuSpec::tesla_k40`].
//!
//! The resource pools tracked here (warps, registers, shared memory,
//! threadblock slots per SMM) are exactly the quantities the device
//! simulator reports in `pagoda_obs::SmmSample` timelines, so an
//! exported trace can be read against the occupancy calculator's
//! limits.

mod occupancy;
mod spec;

pub use occupancy::{LaunchError, OccupancyBreakdown, TaskShape};
pub use spec::GpuSpec;

/// Threads per warp on every NVIDIA architecture the paper considers.
pub const WARP_SIZE: u32 = 32;
