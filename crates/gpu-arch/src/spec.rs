//! Machine descriptions.

use serde::{Deserialize, Serialize};

use crate::WARP_SIZE;

/// Static description of one GPU. All limits are *per SMM* unless stated
/// otherwise.
///
/// The numbers in [`GpuSpec::titan_x`] come from §2 of the paper ("The GPU
/// cores are organized into 24 Streaming Multiprocessors … Each SMM has 128
/// CUDA cores and can concurrently schedule up to 64 warps … 96KB on-chip
/// shared memory and 64K 32-bit registers").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// CUDA cores (SIMT lanes) per SMM. Determines peak issue throughput:
    /// `cores_per_sm / WARP_SIZE` warp-instructions per cycle.
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Maximum resident warps per SMM.
    pub max_warps_per_sm: u32,
    /// Maximum resident threads per SMM.
    pub max_threads_per_sm: u32,
    /// Maximum resident threadblocks per SMM.
    pub max_tbs_per_sm: u32,
    /// Shared memory per SMM, bytes.
    pub smem_per_sm: u32,
    /// 32-bit registers per SMM.
    pub regs_per_sm: u32,
    /// Maximum threads per threadblock.
    pub max_threads_per_tb: u32,
    /// Hardware work queues exposed to the host (HyperQ connections); caps
    /// the number of concurrently executing kernels.
    pub num_hw_queues: u32,
    /// PTX named barriers available per threadblock (`bar.sync` IDs). The
    /// paper: "The PTX model allows for only 16 such barriers" (§5.2).
    pub named_barriers_per_tb: u32,
    /// Shared-memory allocation granularity in bytes (Maxwell banksets round
    /// requests up to 256 B).
    pub smem_alloc_granularity: u32,
    /// Register allocation granularity, registers per warp.
    pub reg_alloc_granularity: u32,
}

impl GpuSpec {
    /// The paper's evaluation platform: NVIDIA Maxwell GeForce GTX Titan X
    /// (GM200), 3072 cores at 1000 MHz.
    pub fn titan_x() -> Self {
        GpuSpec {
            name: "Maxwell Titan X",
            num_sms: 24,
            cores_per_sm: 128,
            clock_ghz: 1.0,
            max_warps_per_sm: 64,
            max_threads_per_sm: 2048,
            max_tbs_per_sm: 32,
            smem_per_sm: 96 * 1024,
            regs_per_sm: 64 * 1024,
            max_threads_per_tb: 1024,
            num_hw_queues: 32,
            named_barriers_per_tb: 16,
            smem_alloc_granularity: 256,
            reg_alloc_granularity: 8,
        }
    }

    /// NVIDIA Tesla K40 (Kepler GK110B) — the second platform on which the
    /// paper micro-benchmarked TaskTable visibility.
    pub fn tesla_k40() -> Self {
        GpuSpec {
            name: "Tesla K40",
            num_sms: 15,
            cores_per_sm: 192,
            clock_ghz: 0.745,
            max_warps_per_sm: 64,
            max_threads_per_sm: 2048,
            max_tbs_per_sm: 16,
            smem_per_sm: 48 * 1024,
            regs_per_sm: 64 * 1024,
            max_threads_per_tb: 1024,
            num_hw_queues: 32,
            named_barriers_per_tb: 16,
            smem_alloc_granularity: 256,
            reg_alloc_granularity: 8,
        }
    }

    /// Total CUDA cores on the device.
    pub fn total_cores(&self) -> u32 {
        self.num_sms * self.cores_per_sm
    }

    /// Maximum warps resident on the whole device — the occupancy
    /// denominator (64 × 24 = 1536 on Titan X).
    pub fn max_resident_warps(&self) -> u32 {
        self.num_sms * self.max_warps_per_sm
    }

    /// Warp-instruction issue slots per cycle per SMM (4 on Maxwell).
    pub fn issue_width(&self) -> u32 {
        self.cores_per_sm / WARP_SIZE
    }

    /// Device-wide occupancy for a given number of resident warps, in
    /// [0, 1]. Paper §2: one 256-thread task alone → 8/(64·24) ≈ 0.52 %.
    pub fn occupancy(&self, resident_warps: u32) -> f64 {
        f64::from(resident_warps) / f64::from(self.max_resident_warps())
    }

    /// Peak thread-instruction throughput of one SMM, in thread-instructions
    /// per second (`cores × clock`).
    pub fn sm_peak_ops_per_sec(&self) -> f64 {
        f64::from(self.cores_per_sm) * self.clock_ghz * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_x_totals_match_paper() {
        let g = GpuSpec::titan_x();
        assert_eq!(g.total_cores(), 3072);
        assert_eq!(g.max_resident_warps(), 1536);
        assert_eq!(g.issue_width(), 4);
    }

    #[test]
    fn paper_section2_occupancy_examples() {
        let g = GpuSpec::titan_x();
        // One 256-thread (8-warp) task alone: 0.52 %.
        let one_task = g.occupancy(8) * 100.0;
        assert!((one_task - 0.52).abs() < 0.01, "got {one_task}");
        // 32 such tasks under HyperQ: 16.67 %.
        let hyperq = g.occupancy(8 * 32) * 100.0;
        assert!((hyperq - 16.67).abs() < 0.01, "got {hyperq}");
    }

    #[test]
    fn k40_is_kepler_shaped() {
        let g = GpuSpec::tesla_k40();
        assert_eq!(g.total_cores(), 2880);
        assert_eq!(g.max_tbs_per_sm, 16);
        assert_eq!(g.issue_width(), 6);
    }

    #[test]
    fn peak_throughput() {
        let g = GpuSpec::titan_x();
        assert_eq!(g.sm_peak_ops_per_sec(), 128e9);
    }
}
