//! CUDA occupancy calculation: how many threadblocks of a given shape fit on
//! one SMM, and which resource is the limiter.

use serde::{Deserialize, Serialize};

use crate::{GpuSpec, WARP_SIZE};

/// The launch shape and per-thread resource appetite of one kernel/task.
///
/// This mirrors the arguments of Pagoda's `taskSpawn` (paper Table 1):
/// threads per threadblock, threadblock count, shared memory per
/// threadblock — plus the register count that in CUDA comes from the
/// compiler (the paper caps it at 32 via `-maxrregcount`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskShape {
    /// Threads per threadblock (1 ..= `max_threads_per_tb`).
    pub threads_per_tb: u32,
    /// Number of threadblocks in the task/kernel.
    pub num_tbs: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Dynamic shared memory per threadblock, bytes.
    pub smem_per_tb: u32,
}

impl TaskShape {
    /// A shape with `threads` threads in a single threadblock, no shared
    /// memory, and the paper's capped register count of 32.
    pub fn narrow(threads: u32) -> Self {
        TaskShape {
            threads_per_tb: threads,
            num_tbs: 1,
            regs_per_thread: 32,
            smem_per_tb: 0,
        }
    }

    /// Warps per threadblock, rounding a partial warp up (hardware always
    /// schedules whole warps).
    pub fn warps_per_tb(&self) -> u32 {
        self.threads_per_tb.div_ceil(WARP_SIZE)
    }

    /// Total warps across all threadblocks.
    pub fn total_warps(&self) -> u32 {
        self.warps_per_tb() * self.num_tbs
    }

    /// Total threads across all threadblocks.
    pub fn total_threads(&self) -> u64 {
        u64::from(self.threads_per_tb) * u64::from(self.num_tbs)
    }
}

/// Why a launch shape is impossible on a given device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchError {
    /// `threads_per_tb` is zero or exceeds the device limit.
    BadBlockSize { threads_per_tb: u32, max: u32 },
    /// `num_tbs` is zero.
    EmptyGrid,
    /// One threadblock wants more shared memory than an SMM has.
    SmemPerBlockTooLarge { requested: u32, max: u32 },
    /// One threadblock wants more registers than an SMM has.
    RegsPerBlockTooLarge { requested: u32, max: u32 },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::BadBlockSize {
                threads_per_tb,
                max,
            } => {
                write!(f, "threadblock size {threads_per_tb} outside 1..={max}")
            }
            LaunchError::EmptyGrid => write!(f, "kernel launched with zero threadblocks"),
            LaunchError::SmemPerBlockTooLarge { requested, max } => {
                write!(
                    f,
                    "shared memory {requested} B/block exceeds SMM capacity {max} B"
                )
            }
            LaunchError::RegsPerBlockTooLarge { requested, max } => {
                write!(
                    f,
                    "register footprint {requested}/block exceeds SMM file {max}"
                )
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// Resource that caps residency, reported by [`OccupancyBreakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    /// Warp-slot limit (`max_warps_per_sm`).
    Warps,
    /// Thread limit (`max_threads_per_sm`).
    Threads,
    /// Threadblock-slot limit (`max_tbs_per_sm`).
    Blocks,
    /// Register file.
    Registers,
    /// Shared memory.
    SharedMemory,
}

/// Result of the occupancy calculation for one shape on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancyBreakdown {
    /// Maximum co-resident threadblocks of this shape per SMM.
    pub tbs_per_sm: u32,
    /// Resident warps per SMM at that residency.
    pub warps_per_sm: u32,
    /// Fraction of the SMM's warp slots used, in [0, 1].
    pub occupancy: f64,
    /// The binding constraint.
    pub limiter: Limiter,
}

impl GpuSpec {
    /// Registers one threadblock of `shape` occupies, honouring the per-warp
    /// allocation granularity.
    pub fn regs_per_tb(&self, shape: &TaskShape) -> u32 {
        let per_warp = shape.regs_per_thread * WARP_SIZE;
        let per_warp = per_warp.div_ceil(self.reg_alloc_granularity * WARP_SIZE)
            * self.reg_alloc_granularity
            * WARP_SIZE;
        per_warp * shape.warps_per_tb()
    }

    /// Shared memory one threadblock of `shape` occupies after rounding to
    /// the allocation granularity.
    pub fn smem_per_tb(&self, shape: &TaskShape) -> u32 {
        shape.smem_per_tb.div_ceil(self.smem_alloc_granularity) * self.smem_alloc_granularity
    }

    /// Validates a launch shape against hard device limits.
    pub fn validate(&self, shape: &TaskShape) -> Result<(), LaunchError> {
        if shape.threads_per_tb == 0 || shape.threads_per_tb > self.max_threads_per_tb {
            return Err(LaunchError::BadBlockSize {
                threads_per_tb: shape.threads_per_tb,
                max: self.max_threads_per_tb,
            });
        }
        if shape.num_tbs == 0 {
            return Err(LaunchError::EmptyGrid);
        }
        let smem = self.smem_per_tb(shape);
        if smem > self.smem_per_sm {
            return Err(LaunchError::SmemPerBlockTooLarge {
                requested: smem,
                max: self.smem_per_sm,
            });
        }
        let regs = self.regs_per_tb(shape);
        if regs > self.regs_per_sm {
            return Err(LaunchError::RegsPerBlockTooLarge {
                requested: regs,
                max: self.regs_per_sm,
            });
        }
        Ok(())
    }

    /// Standard CUDA occupancy calculation: how many threadblocks of this
    /// shape can be co-resident on one SMM, and what limits them.
    pub fn occupancy_of(&self, shape: &TaskShape) -> Result<OccupancyBreakdown, LaunchError> {
        self.validate(shape)?;
        let warps = shape.warps_per_tb();

        let by_warps = self.max_warps_per_sm / warps;
        let by_threads = self.max_threads_per_sm / shape.threads_per_tb;
        let by_blocks = self.max_tbs_per_sm;
        let regs = self.regs_per_tb(shape);
        let by_regs = self.regs_per_sm.checked_div(regs).unwrap_or(u32::MAX);
        let smem = self.smem_per_tb(shape);
        let by_smem = self.smem_per_sm.checked_div(smem).unwrap_or(u32::MAX);

        let (tbs, limiter) = [
            (by_warps, Limiter::Warps),
            (by_threads, Limiter::Threads),
            (by_blocks, Limiter::Blocks),
            (by_regs, Limiter::Registers),
            (by_smem, Limiter::SharedMemory),
        ]
        .into_iter()
        .min_by_key(|(n, _)| *n)
        .expect("non-empty constraint list");

        let warps_per_sm = tbs * warps;
        Ok(OccupancyBreakdown {
            tbs_per_sm: tbs,
            warps_per_sm,
            occupancy: f64::from(warps_per_sm) / f64::from(self.max_warps_per_sm),
            limiter,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn titan() -> GpuSpec {
        GpuSpec::titan_x()
    }

    #[test]
    fn masterkernel_shape_achieves_full_occupancy() {
        // Paper §4.1: two 32-warp MTBs per SMM, 32 registers/thread, 32 KB
        // static shared memory each -> 100 % occupancy.
        let shape = TaskShape {
            threads_per_tb: 1024,
            num_tbs: 48,
            regs_per_thread: 32,
            smem_per_tb: 32 * 1024,
        };
        let o = titan().occupancy_of(&shape).unwrap();
        assert_eq!(o.tbs_per_sm, 2);
        assert_eq!(o.warps_per_sm, 64);
        assert_eq!(o.occupancy, 1.0);
    }

    #[test]
    fn register_limited_kernel() {
        // 64 regs/thread, 1024-thread blocks: 64*32*32 = 65536 regs per
        // block warp-group -> only 1 block fits in the 64K file.
        let shape = TaskShape {
            threads_per_tb: 1024,
            num_tbs: 1,
            regs_per_thread: 64,
            smem_per_tb: 0,
        };
        let o = titan().occupancy_of(&shape).unwrap();
        assert_eq!(o.limiter, Limiter::Registers);
        assert_eq!(o.tbs_per_sm, 1);
    }

    #[test]
    fn smem_limited_kernel() {
        let shape = TaskShape {
            threads_per_tb: 64,
            num_tbs: 1,
            regs_per_thread: 16,
            smem_per_tb: 48 * 1024,
        };
        let o = titan().occupancy_of(&shape).unwrap();
        assert_eq!(o.limiter, Limiter::SharedMemory);
        assert_eq!(o.tbs_per_sm, 2);
    }

    #[test]
    fn block_slot_limited_narrow_tasks() {
        // 32-thread tasks, tiny: capped by the 32 TB slots per SMM, so at
        // most 32 warps resident -> 50 % occupancy. This is GeMTC's
        // structural problem (1 task = 1 TB).
        let shape = TaskShape::narrow(32);
        let o = titan().occupancy_of(&shape).unwrap();
        assert_eq!(o.limiter, Limiter::Blocks);
        assert_eq!(o.tbs_per_sm, 32);
        assert_eq!(o.warps_per_sm, 32);
        assert!((o.occupancy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_warp_rounds_up() {
        let shape = TaskShape::narrow(33);
        assert_eq!(shape.warps_per_tb(), 2);
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        let g = titan();
        assert!(matches!(
            g.validate(&TaskShape::narrow(0)),
            Err(LaunchError::BadBlockSize { .. })
        ));
        assert!(matches!(
            g.validate(&TaskShape::narrow(2048)),
            Err(LaunchError::BadBlockSize { .. })
        ));
        let mut s = TaskShape::narrow(32);
        s.num_tbs = 0;
        assert!(matches!(g.validate(&s), Err(LaunchError::EmptyGrid)));
        let mut s = TaskShape::narrow(32);
        s.smem_per_tb = 97 * 1024;
        assert!(matches!(
            g.validate(&s),
            Err(LaunchError::SmemPerBlockTooLarge { .. })
        ));
        let mut s = TaskShape::narrow(1024);
        s.regs_per_thread = 255;
        assert!(matches!(
            g.validate(&s),
            Err(LaunchError::RegsPerBlockTooLarge { .. })
        ));
    }

    #[test]
    fn smem_rounds_to_granularity() {
        let g = titan();
        let mut s = TaskShape::narrow(32);
        s.smem_per_tb = 1;
        assert_eq!(g.smem_per_tb(&s), 256);
        s.smem_per_tb = 257;
        assert_eq!(g.smem_per_tb(&s), 512);
    }

    #[test]
    fn error_messages_render() {
        let e = LaunchError::BadBlockSize {
            threads_per_tb: 0,
            max: 1024,
        };
        assert!(e.to_string().contains("threadblock size 0"));
    }
}
