//! Routing policies: which device gets the next task.
//!
//! A policy sees only the fleet manager's *host-side* view — liveness,
//! `known_free` TaskTable entries (the §4.2.2 lazily-updated CPU count),
//! and outstanding cluster tasks — never device-internal state, matching
//! what a real fleet router could observe without extra PCIe traffic.
//!
//! All policies are deterministic: round-robin and least-outstanding are
//! pure functions of the view sequence; power-of-two-choices draws from
//! a seeded [`SmallRng`], so the same seed replays the same sampling
//! sequence. None of them ever places on a dead device.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The routing policy of a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Rotate over live devices regardless of load. The baseline: cheap,
    /// fair in count, oblivious to skew.
    RoundRobin,
    /// Always the live device with the fewest outstanding cluster tasks
    /// (ties to the lowest index). Global knowledge, herd-free because
    /// this simulation routes from one sequential front-end.
    LeastOutstanding,
    /// Sample two distinct live devices uniformly, take the less loaded
    /// (the classic balls-into-bins result: near-best balance at O(1)
    /// cost, no global scan).
    PowerOfTwo,
    /// Prefer the tenant's home devices (where its state lives); fall
    /// back to least-outstanding across the fleet when no home is live
    /// and has room. Off-home placements pay the staging transfer.
    TenantAffinity,
}

/// What a policy sees of one device at placement time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceView {
    /// Whether the device is serving (killed devices are never chosen).
    pub alive: bool,
    /// TaskTable entries free in the fleet manager's current view.
    pub known_free: u32,
    /// Cluster tasks in flight on the device.
    pub outstanding: u32,
}

/// A stateful placement engine: policy + rotation cursor + sampling RNG.
#[derive(Debug, Clone)]
pub struct Placer {
    policy: Placement,
    rng: SmallRng,
    next_rr: usize,
    spread: usize,
}

impl Placer {
    /// A placer for `policy`. `affinity_spread` is the home-set width
    /// used both by [`Placement::TenantAffinity`] routing and by every
    /// policy's off-home accounting (clamped to ≥ 1).
    pub fn new(policy: Placement, seed: u64, affinity_spread: u32) -> Self {
        Placer {
            policy,
            rng: SmallRng::seed_from_u64(seed ^ 0xc1a5_7e2d_0f1e_e700),
            next_rr: 0,
            spread: affinity_spread.max(1) as usize,
        }
    }

    /// Whether device `dev` belongs to `tenant`'s home set in a fleet of
    /// `n` devices: the `spread` consecutive devices starting at
    /// `tenant % n` (wrapping).
    pub fn is_home(&self, tenant: u32, dev: usize, n: usize) -> bool {
        if n == 0 {
            return false;
        }
        let base = tenant as usize % n;
        (dev + n - base) % n < self.spread.min(n)
    }

    /// Chooses a live device for `tenant`'s next task, or `None` if no
    /// device is alive. The choice may be full (`known_free == 0`) —
    /// the caller handles spawn backpressure; only liveness is a hard
    /// constraint here.
    pub fn place(&mut self, tenant: u32, views: &[DeviceView]) -> Option<usize> {
        match self.policy {
            Placement::RoundRobin => self.place_round_robin(views),
            Placement::LeastOutstanding => least_outstanding(views, |_| true),
            Placement::PowerOfTwo => self.place_power_of_two(views),
            Placement::TenantAffinity => self.place_affinity(tenant, views),
        }
    }

    fn place_round_robin(&mut self, views: &[DeviceView]) -> Option<usize> {
        let n = views.len();
        for k in 0..n {
            let d = (self.next_rr + k) % n;
            if views[d].alive {
                self.next_rr = (d + 1) % n;
                return Some(d);
            }
        }
        None
    }

    fn place_power_of_two(&mut self, views: &[DeviceView]) -> Option<usize> {
        let alive: Vec<usize> = (0..views.len()).filter(|&d| views[d].alive).collect();
        match alive.len() {
            0 => None,
            1 => Some(alive[0]),
            len => {
                let i = self.rng.gen_range(0..len);
                let mut j = self.rng.gen_range(0..len - 1);
                if j >= i {
                    j += 1;
                }
                let (a, b) = (alive[i], alive[j]);
                let pick = match views[a].outstanding.cmp(&views[b].outstanding) {
                    std::cmp::Ordering::Less => a,
                    std::cmp::Ordering::Greater => b,
                    std::cmp::Ordering::Equal => a.min(b),
                };
                Some(pick)
            }
        }
    }

    fn place_affinity(&mut self, tenant: u32, views: &[DeviceView]) -> Option<usize> {
        let n = views.len();
        let home = least_outstanding(views, |d| {
            self.is_home(tenant, d, n) && views[d].known_free > 0
        });
        home.or_else(|| least_outstanding(views, |_| true))
    }
}

/// Lowest-index live device minimizing `outstanding`, among those
/// passing `keep`.
fn least_outstanding(views: &[DeviceView], keep: impl Fn(usize) -> bool) -> Option<usize> {
    (0..views.len())
        .filter(|&d| views[d].alive && keep(d))
        .min_by_key(|&d| (views[d].outstanding, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(alive: bool, known_free: u32, outstanding: u32) -> DeviceView {
        DeviceView {
            alive,
            known_free,
            outstanding,
        }
    }

    #[test]
    fn round_robin_skips_dead_devices() {
        let mut p = Placer::new(Placement::RoundRobin, 1, 1);
        let views = [
            view(true, 4, 0),
            view(false, 4, 0),
            view(true, 4, 0),
            view(true, 4, 0),
        ];
        let seq: Vec<_> = (0..6).map(|_| p.place(0, &views).unwrap()).collect();
        assert_eq!(seq, [0, 2, 3, 0, 2, 3]);
    }

    #[test]
    fn least_outstanding_ties_to_lowest_index() {
        let mut p = Placer::new(Placement::LeastOutstanding, 1, 1);
        let views = [view(true, 4, 2), view(true, 4, 1), view(true, 4, 1)];
        assert_eq!(p.place(0, &views), Some(1));
    }

    #[test]
    fn power_of_two_prefers_less_loaded_of_pair() {
        let mut p = Placer::new(Placement::PowerOfTwo, 42, 1);
        let views = [view(true, 4, 100), view(true, 4, 0), view(true, 4, 100)];
        // Whatever pair it samples, device 1 wins any comparison that
        // includes it; over many draws it must be chosen at least once
        // and the heavy devices can only appear via heavy-vs-heavy pairs.
        let picks: Vec<_> = (0..32).map(|_| p.place(0, &views).unwrap()).collect();
        assert!(picks.contains(&1));
    }

    #[test]
    fn affinity_prefers_home_then_falls_back() {
        let mut p = Placer::new(Placement::TenantAffinity, 1, 2);
        // Tenant 1 in a 4-fleet with spread 2: homes are devices 1, 2.
        let views = [
            view(true, 4, 0),
            view(true, 4, 9),
            view(true, 4, 3),
            view(true, 4, 0),
        ];
        assert_eq!(p.place(1, &views), Some(2), "less-loaded home wins");
        // Homes full: fall back to fleet-wide least-outstanding.
        let full = [
            view(true, 4, 0),
            view(true, 0, 9),
            view(true, 0, 3),
            view(true, 4, 5),
        ];
        assert_eq!(p.place(1, &full), Some(0));
        // Homes dead: same fallback.
        let dead = [
            view(true, 4, 7),
            view(false, 4, 0),
            view(false, 4, 0),
            view(true, 4, 5),
        ];
        assert_eq!(p.place(1, &dead), Some(3));
    }

    #[test]
    fn all_dead_places_nowhere() {
        for policy in [
            Placement::RoundRobin,
            Placement::LeastOutstanding,
            Placement::PowerOfTwo,
            Placement::TenantAffinity,
        ] {
            let mut p = Placer::new(policy, 7, 1);
            let views = [view(false, 4, 0), view(false, 4, 0)];
            assert_eq!(p.place(0, &views), None, "{policy:?}");
        }
    }

    #[test]
    fn home_set_wraps() {
        let p = Placer::new(Placement::TenantAffinity, 1, 2);
        // Tenant 3 in a 4-fleet, spread 2: homes are 3 and 0.
        assert!(p.is_home(3, 3, 4));
        assert!(p.is_home(3, 0, 4));
        assert!(!p.is_home(3, 1, 4));
        assert!(!p.is_home(3, 2, 4));
    }
}
