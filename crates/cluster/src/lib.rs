//! **pagoda-cluster** — multi-GPU fleet virtualization for the Pagoda
//! runtime.
//!
//! The paper virtualizes *one* GPU: a MasterKernel turns the device into
//! a warp-granularity task pool behind a 48×32 TaskTable. A deployment
//! that outgrows one device faces the next layer of the same problem —
//! narrow tasks now have to be *routed* across several pools, each with
//! its own PCIe link, spawn pipeline, and admission capacity, and the
//! fleet has to keep serving when a device dies or degrades. This crate
//! supplies that layer for the simulated runtime:
//!
//! * [`placement`] — routing policies over per-device load views:
//!   round-robin, least-outstanding, power-of-two-choices sampling, and
//!   tenant affinity. Every policy accounts placements against a
//!   tenant's *home* device set; landing elsewhere pays a modeled
//!   inter-device staging transfer over [`ClusterConfig::interconnect`].
//! * [`fleet`] — [`ClusterHandle`], N independent [`PagodaRuntime`]
//!   instances stepped in lockstep under one fleet clock
//!   ([`desim::ClockMap`] absorbs per-device slowdowns), exposing the
//!   same `submit`/`wait`/`capacity` shape as a single runtime but with
//!   fleet-unique `u64` task keys.
//! * [`config`] — fleet topology, fault schedule ([`FaultSpec`]: kill or
//!   slow a device at a simulated instant) and the [`RetryPolicy`]
//!   deciding whether in-flight tasks stranded by a kill are failed or
//!   resubmitted elsewhere.
//!
//! The fleet integrates upward with `pagoda-serve` (it implements
//! [`pagoda_serve::ServeBackend`], so [`pagoda_serve::serve_on`] — or the
//! [`serve_fleet`] convenience wrapper — dispatches a multi-tenant open
//! stream across devices) and with `pagoda-obs` (per-device
//! [`pagoda_obs::DeviceSample`] tracks plus `cluster_*` fleet counters).
//!
//! Determinism carries through from the substrate: same
//! [`ClusterConfig`] (including seed and fault schedule) ⇒ identical
//! placement sequences, completion times, and per-device
//! [`desim::EngineStats`].
//!
//! [`PagodaRuntime`]: pagoda_core::PagodaRuntime
//!
//! # Example
//!
//! ```
//! use pagoda_cluster::{ClusterConfig, ClusterHandle};
//! use pagoda_core::TaskDesc;
//!
//! let mut fleet = ClusterHandle::new(ClusterConfig::uniform(2)).unwrap();
//! let work = gpu_sim::WarpWork::compute(20_000, 8.0);
//! let key = fleet.submit(TaskDesc::uniform(64, work)).unwrap();
//! fleet.wait(key).unwrap();
//! assert_eq!(fleet.report().completed, 1);
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod config;
pub mod error;
pub mod fleet;
pub mod placement;

pub use config::{ClusterConfig, FaultKind, FaultSpec, RetryPolicy};
pub use error::ClusterError;
pub use fleet::{serve_fleet, ClusterHandle, DeviceReport, FleetReport, TaskStatus};
pub use placement::{DeviceView, Placement, Placer};
