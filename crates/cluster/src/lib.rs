//! **pagoda-cluster** — multi-GPU fleet virtualization for the Pagoda
//! runtime.
//!
//! The paper virtualizes *one* GPU: a MasterKernel turns the device into
//! a warp-granularity task pool behind a 48×32 TaskTable. A deployment
//! that outgrows one device faces the next layer of the same problem —
//! narrow tasks now have to be *routed* across several pools, each with
//! its own PCIe link, spawn pipeline, and admission capacity, and the
//! fleet has to keep serving when a device dies or degrades. This crate
//! supplies that layer for the simulated runtime:
//!
//! * [`placement`] — routing policies over per-device load views:
//!   round-robin, least-outstanding, power-of-two-choices sampling, and
//!   tenant affinity. Every policy accounts placements against a
//!   tenant's *home* device set; landing elsewhere pays a modeled
//!   inter-device staging transfer over [`ClusterConfig::interconnect`]
//!   (charged once per genuine cross-device move — see
//!   [`FleetReport::staging_transfers`]).
//! * [`fleet`] — [`ClusterHandle`], N independent [`PagodaRuntime`]
//!   instances advanced in bounded run-ahead windows under one fleet
//!   clock ([`desim::ClockMap`] absorbs per-device slowdowns). With
//!   [`ClusterConfig::parallel`] the per-window device work runs on a
//!   scoped thread pool; a deterministic `(instant, device, key)` merge
//!   at every horizon keeps parallel runs byte-identical to serial
//!   ones. Exposes the same `submit`/`wait`/`capacity` shape as a
//!   single runtime — it implements [`pagoda_host::Backend`] — with
//!   fleet-unique `u64` task keys.
//! * [`config`] — fleet topology ([`ClusterConfig::builder`]), fault
//!   schedule ([`FaultSpec`]: kill or slow a device at a simulated
//!   instant) and the [`RetryPolicy`] deciding whether in-flight tasks
//!   stranded by a kill are failed or resubmitted elsewhere.
//!
//! The fleet integrates upward with `pagoda-serve`
//! (`pagoda_serve::serve_on` dispatches a multi-tenant open stream
//! across devices through the shared [`Backend`] trait) and with
//! `pagoda-obs` (per-device [`pagoda_obs::DeviceSample`] tracks plus
//! `cluster_*` fleet counters). Errors fold into the core hierarchy:
//! construction returns [`pagoda_core::ConfigError`], task queries
//! return [`pagoda_core::PagodaError`].
//!
//! Determinism carries through from the substrate: same
//! [`ClusterConfig`] (including seed and fault schedule) ⇒ identical
//! placement sequences, completion times, and per-device
//! [`desim::EngineStats`] — with or without [`ClusterConfig::parallel`].
//!
//! [`PagodaRuntime`]: pagoda_core::PagodaRuntime
//! [`Backend`]: pagoda_host::Backend
//!
//! # Example
//!
//! ```
//! use pagoda_cluster::{ClusterConfig, ClusterHandle};
//! use pagoda_core::TaskDesc;
//!
//! let mut fleet = ClusterHandle::new(ClusterConfig::uniform(2)).unwrap();
//! let work = gpu_sim::WarpWork::compute(20_000, 8.0);
//! let key = fleet.submit(TaskDesc::uniform(64, work)).unwrap();
//! fleet.wait(key).unwrap();
//! assert_eq!(fleet.report().completed, 1);
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod config;
pub mod fleet;
pub mod mutation;
pub mod placement;

pub use config::{ClusterConfig, ClusterConfigBuilder, FaultKind, FaultSpec, RetryPolicy};
pub use fleet::{ClusterHandle, DeviceReport, FleetReport, TaskStatus};
pub use mutation::Mutation;
pub use pagoda_host::Backend;
pub use placement::{DeviceView, Placement, Placer};
