//! The typed error surface of the fleet layer.

use pagoda_core::ConfigError;

/// Why a cluster operation failed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterError {
    /// [`ClusterConfig::devices`](crate::ClusterConfig::devices) was empty.
    NoDevices,
    /// One device's [`PagodaConfig`](pagoda_core::PagodaConfig) failed
    /// validation.
    Config {
        /// Fleet index of the offending device.
        device: usize,
        /// The underlying validation failure.
        err: ConfigError,
    },
    /// A [`FaultSpec`](crate::FaultSpec) was malformed.
    BadFault {
        /// Index into [`ClusterConfig::faults`](crate::ClusterConfig::faults).
        index: usize,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A task key this fleet never issued.
    UnknownTask {
        /// The offending key.
        key: u64,
    },
    /// The task's device died and the retry policy gave up on it.
    TaskLost {
        /// The lost task's key.
        key: u64,
        /// Submit attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoDevices => write!(f, "cluster config lists no devices"),
            ClusterError::Config { device, err } => {
                write!(f, "device {device} config invalid: {err}")
            }
            ClusterError::BadFault { index, reason } => {
                write!(f, "fault #{index} invalid: {reason}")
            }
            ClusterError::UnknownTask { key } => {
                write!(f, "task key {key} was never issued by this fleet")
            }
            ClusterError::TaskLost { key, attempts } => {
                write!(
                    f,
                    "task {key} lost to a device failure after {attempts} attempt(s)"
                )
            }
        }
    }
}

impl std::error::Error for ClusterError {}
