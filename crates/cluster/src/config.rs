//! Fleet topology, fault schedule, and retry policy.

use desim::SimTime;
use pagoda_core::PagodaConfig;
use pcie::PcieConfig;

use crate::placement::Placement;

/// What happens to a device at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The device stops serving: its clock freezes, in-flight tasks are
    /// stranded (see [`RetryPolicy`]) and its TaskTable entries leave the
    /// fleet's admission capacity.
    Kill,
    /// The device keeps serving at `1/factor` of its former speed —
    /// while the fleet clock advances Δt, the device only simulates
    /// `Δt/factor`. `factor` must be finite and ≥ 1.
    Slow {
        /// How many times slower the device becomes.
        factor: f64,
    },
}

/// One scheduled device fault, applied when the fleet clock first
/// reaches `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Fleet instant at which the fault lands.
    pub at: SimTime,
    /// Fleet index of the device it hits.
    pub device: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// What the fleet does with in-flight tasks stranded by a device kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicy {
    /// Stranded tasks are reported lost; [`wait`](crate::ClusterHandle::wait)
    /// returns [`ClusterError::TaskLost`](crate::ClusterError::TaskLost).
    Fail,
    /// Stranded tasks re-enter placement on the surviving devices, up to
    /// `max_attempts` total submit attempts per task.
    Resubmit {
        /// Total submit attempts allowed per task (the first spawn
        /// counts as one; `max_attempts: 1` never resubmits).
        max_attempts: u32,
    },
}

/// Configuration of a [`ClusterHandle`](crate::ClusterHandle).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// One runtime configuration per device, fleet order. Devices are
    /// independent — heterogeneous fleets are expressed by varying the
    /// per-device configs.
    pub devices: Vec<PagodaConfig>,
    /// Routing policy across the fleet.
    pub placement: Placement,
    /// Seed for the placement policy's sampling randomness
    /// (power-of-two-choices). Same seed ⇒ identical routing.
    pub seed: u64,
    /// Link model used to price off-affinity placements: a task landing
    /// outside its tenant's home set first stages [`xfer_bytes`] over
    /// this link.
    ///
    /// [`xfer_bytes`]: ClusterConfig::xfer_bytes
    pub interconnect: PcieConfig,
    /// Home-set width: each tenant's state is resident on this many
    /// consecutive devices (min 1, capped at the fleet size).
    pub affinity_spread: u32,
    /// Bytes of tenant state staged across [`interconnect`] when a task
    /// is placed off its home set.
    ///
    /// [`interconnect`]: ClusterConfig::interconnect
    pub xfer_bytes: u64,
    /// Scheduled device faults, applied in fleet-time order.
    pub faults: Vec<FaultSpec>,
    /// What happens to in-flight tasks on a killed device.
    pub retry: RetryPolicy,
}

impl ClusterConfig {
    /// A uniform fleet of `n` default (Titan X class) devices:
    /// least-outstanding placement, no faults, resubmit-on-kill with up
    /// to 3 attempts.
    pub fn uniform(n: usize) -> Self {
        ClusterConfig {
            devices: vec![PagodaConfig::default(); n],
            placement: Placement::LeastOutstanding,
            seed: 0x5eed_f1ee,
            interconnect: PcieConfig::default(),
            affinity_spread: 1,
            xfer_bytes: 4096,
            faults: Vec::new(),
            retry: RetryPolicy::Resubmit { max_attempts: 3 },
        }
    }
}
