//! Fleet topology, fault schedule, retry policy, and the validating
//! [`ClusterConfigBuilder`].

use std::collections::BTreeSet;

use desim::{Dur, SimTime};
use pagoda_core::{ConfigError, PagodaConfig};
use pcie::PcieConfig;

use crate::placement::Placement;

/// What happens to a device at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The device stops serving: its clock freezes, in-flight tasks are
    /// stranded (see [`RetryPolicy`]) and its TaskTable entries leave the
    /// fleet's admission capacity.
    Kill,
    /// The device keeps serving at `1/factor` of its former speed —
    /// while the fleet clock advances Δt, the device only simulates
    /// `Δt/factor`. `factor` must be finite and ≥ 1.
    Slow {
        /// How many times slower the device becomes.
        factor: f64,
    },
}

/// One scheduled device fault, applied when the fleet clock first
/// reaches `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Fleet instant at which the fault lands.
    pub at: SimTime,
    /// Fleet index of the device it hits.
    pub device: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// What the fleet does with in-flight tasks stranded by a device kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicy {
    /// Stranded tasks are reported lost; [`wait`](crate::ClusterHandle::wait)
    /// returns [`PagodaError::TaskLost`](pagoda_core::PagodaError::TaskLost).
    Fail,
    /// Stranded tasks re-enter placement on the surviving devices, up to
    /// `max_attempts` total submit attempts per task.
    Resubmit {
        /// Total submit attempts allowed per task (the first spawn
        /// counts as one; `max_attempts: 1` never resubmits).
        max_attempts: u32,
    },
}

/// Configuration of a [`ClusterHandle`](crate::ClusterHandle).
///
/// Build one with [`ClusterConfig::uniform`] for a homogeneous fleet or
/// [`ClusterConfig::builder`] for anything else; both produce configs
/// that pass [`validate`](ClusterConfig::validate), which
/// [`ClusterHandle::new`](crate::ClusterHandle::new) re-checks.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// One runtime configuration per device, fleet order. Devices are
    /// independent — heterogeneous fleets are expressed by varying the
    /// per-device configs.
    pub devices: Vec<PagodaConfig>,
    /// Stable id of each device, parallel to [`devices`]. Ids key
    /// observability streams and per-device reports. Leave empty to get
    /// the default `0..n` numbering.
    ///
    /// [`devices`]: ClusterConfig::devices
    pub device_ids: Vec<u32>,
    /// Routing policy across the fleet.
    pub placement: Placement,
    /// Seed for the placement policy's sampling randomness
    /// (power-of-two-choices). Same seed ⇒ identical routing.
    pub seed: u64,
    /// Link model used to price off-affinity placements: a task landing
    /// outside its tenant's home set first stages [`xfer_bytes`] over
    /// this link.
    ///
    /// [`xfer_bytes`]: ClusterConfig::xfer_bytes
    pub interconnect: PcieConfig,
    /// Home-set width: each tenant's state is resident on this many
    /// consecutive devices (min 1, capped at the fleet size).
    pub affinity_spread: u32,
    /// Bytes of tenant state staged across [`interconnect`] when a task
    /// is placed off its home set.
    ///
    /// [`interconnect`]: ClusterConfig::interconnect
    pub xfer_bytes: u64,
    /// Scheduled device faults, applied in fleet-time order.
    pub faults: Vec<FaultSpec>,
    /// What happens to in-flight tasks on a killed device.
    pub retry: RetryPolicy,
    /// Run-ahead window of the fleet driver: devices simulate
    /// independently up to `now + run_ahead`, then resynchronize at that
    /// horizon before the next window. Smaller windows mean tighter
    /// coupling; the window never changes *results* (cross-device
    /// effects are merged at sync points either way), only how far apart
    /// device clocks may drift inside one [`advance_to`] call.
    ///
    /// [`advance_to`]: crate::ClusterHandle::advance_to
    pub run_ahead: Dur,
    /// Step each window's devices on a scoped thread pool instead of in
    /// a serial loop. Results are byte-identical either way — the merge
    /// at every horizon orders cross-device effects by fleet instant —
    /// so this trades nothing but wall-clock time.
    pub parallel: bool,
}

impl ClusterConfig {
    /// A uniform fleet of `n` default (Titan X class) devices:
    /// least-outstanding placement, no faults, resubmit-on-kill with up
    /// to 3 attempts, serial 20 µs run-ahead windows.
    pub fn uniform(n: usize) -> Self {
        ClusterConfig {
            devices: vec![PagodaConfig::default(); n],
            device_ids: Vec::new(),
            placement: Placement::LeastOutstanding,
            seed: 0x5eed_f1ee,
            interconnect: PcieConfig::default(),
            affinity_spread: 1,
            xfer_bytes: 4096,
            faults: Vec::new(),
            retry: RetryPolicy::Resubmit { max_attempts: 3 },
            run_ahead: Dur::from_us(20),
            parallel: false,
        }
    }

    /// Start a [`ClusterConfigBuilder`] with no devices and the
    /// [`uniform`](ClusterConfig::uniform) defaults for everything else.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            cfg: ClusterConfig::uniform(0),
        }
    }

    /// Check the config for internal consistency; every constructor of
    /// [`ClusterHandle`](crate::ClusterHandle) calls this.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.devices.is_empty() {
            return Err(ConfigError::NoDevices);
        }
        if !self.device_ids.is_empty() {
            if self.device_ids.len() != self.devices.len() {
                return Err(ConfigError::DeviceIdCountMismatch {
                    ids: self.device_ids.len(),
                    devices: self.devices.len(),
                });
            }
            let mut seen = BTreeSet::new();
            for &id in &self.device_ids {
                if !seen.insert(id) {
                    return Err(ConfigError::DuplicateDeviceId { id });
                }
            }
        }
        if self.run_ahead == Dur::ZERO {
            return Err(ConfigError::ZeroRunAhead);
        }
        for (device, cfg) in self.devices.iter().enumerate() {
            cfg.validate().map_err(|source| ConfigError::FleetDevice {
                device,
                source: Box::new(source),
            })?;
        }
        for (index, f) in self.faults.iter().enumerate() {
            if f.device >= self.devices.len() {
                return Err(ConfigError::BadFault {
                    index,
                    reason: "device index out of range",
                });
            }
            if let FaultKind::Slow { factor } = f.kind {
                if !factor.is_finite() || factor < 1.0 {
                    return Err(ConfigError::BadFault {
                        index,
                        reason: "slow factor must be finite and >= 1",
                    });
                }
            }
        }
        Ok(())
    }

    /// The id of fleet device `index`: explicit when
    /// [`device_ids`](ClusterConfig::device_ids) is set, else `index`.
    pub fn device_id(&self, index: usize) -> u32 {
        self.device_ids.get(index).copied().unwrap_or(index as u32)
    }
}

/// Validating builder for [`ClusterConfig`], mirroring
/// [`PagodaConfig::builder`].
///
/// ```
/// use pagoda_cluster::{ClusterConfig, Placement};
/// use pagoda_core::PagodaConfig;
///
/// let cfg = ClusterConfig::builder()
///     .device(PagodaConfig::default())
///     .device(PagodaConfig::default())
///     .placement(Placement::RoundRobin)
///     .parallel(true)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.devices.len(), 2);
/// assert!(cfg.parallel);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    cfg: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Append a device, assigning it the next free ordinal id.
    pub fn device(mut self, cfg: PagodaConfig) -> Self {
        let id = self.cfg.device_ids.len() as u32;
        self.cfg.devices.push(cfg);
        self.cfg.device_ids.push(id);
        self
    }

    /// Append a device with an explicit id. Duplicate ids are rejected
    /// by [`build`](ClusterConfigBuilder::build).
    pub fn device_with_id(mut self, id: u32, cfg: PagodaConfig) -> Self {
        self.cfg.devices.push(cfg);
        self.cfg.device_ids.push(id);
        self
    }

    /// Routing policy across the fleet.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.cfg.placement = placement;
        self
    }

    /// Seed for the placement policy's sampling randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Link model pricing off-affinity placements.
    pub fn interconnect(mut self, interconnect: PcieConfig) -> Self {
        self.cfg.interconnect = interconnect;
        self
    }

    /// Home-set width per tenant.
    pub fn affinity_spread(mut self, spread: u32) -> Self {
        self.cfg.affinity_spread = spread;
        self
    }

    /// Bytes staged per off-home placement.
    pub fn xfer_bytes(mut self, bytes: u64) -> Self {
        self.cfg.xfer_bytes = bytes;
        self
    }

    /// Schedule one device fault; may be called repeatedly.
    pub fn fault(mut self, fault: FaultSpec) -> Self {
        self.cfg.faults.push(fault);
        self
    }

    /// What happens to in-flight tasks on a killed device.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.cfg.retry = retry;
        self
    }

    /// Run-ahead window of the fleet driver (must be nonzero).
    pub fn run_ahead(mut self, window: Dur) -> Self {
        self.cfg.run_ahead = window;
        self
    }

    /// Step windows on a scoped thread pool (results unchanged).
    pub fn parallel(mut self, on: bool) -> Self {
        self.cfg.parallel = on;
        self
    }

    /// Validate and return the finished config.
    pub fn build(self) -> Result<ClusterConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_ordinal_ids() {
        let cfg = ClusterConfig::builder()
            .device(PagodaConfig::default())
            .device(PagodaConfig::default())
            .device(PagodaConfig::default())
            .build()
            .expect("three uniform devices are valid");
        assert_eq!(cfg.device_ids, vec![0, 1, 2]);
        assert_eq!(cfg.device_id(1), 1);
    }

    #[test]
    fn builder_rejects_empty_fleet() {
        assert_eq!(
            ClusterConfig::builder().build().unwrap_err(),
            ConfigError::NoDevices
        );
    }

    #[test]
    fn builder_rejects_duplicate_ids() {
        let err = ClusterConfig::builder()
            .device_with_id(7, PagodaConfig::default())
            .device_with_id(7, PagodaConfig::default())
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::DuplicateDeviceId { id: 7 });
    }

    #[test]
    fn builder_rejects_zero_run_ahead() {
        let err = ClusterConfig::builder()
            .device(PagodaConfig::default())
            .run_ahead(Dur::ZERO)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroRunAhead);
    }

    #[test]
    fn validate_wraps_bad_device_configs() {
        let mut cfg = ClusterConfig::uniform(2);
        cfg.devices[1].rows_per_column = 0;
        match cfg.validate().unwrap_err() {
            ConfigError::FleetDevice { device, source } => {
                assert_eq!(device, 1);
                assert_eq!(*source, ConfigError::ZeroRows);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_id_count_mismatch() {
        let mut cfg = ClusterConfig::uniform(2);
        cfg.device_ids = vec![0];
        assert_eq!(
            cfg.validate().unwrap_err(),
            ConfigError::DeviceIdCountMismatch { ids: 1, devices: 2 }
        );
    }

    #[test]
    fn validate_rejects_bad_faults() {
        let mut cfg = ClusterConfig::uniform(2);
        cfg.faults.push(FaultSpec {
            at: SimTime::from_us(10),
            device: 9,
            kind: FaultKind::Kill,
        });
        assert!(matches!(
            cfg.validate().unwrap_err(),
            ConfigError::BadFault { index: 0, .. }
        ));

        cfg.faults[0] = FaultSpec {
            at: SimTime::from_us(10),
            device: 0,
            kind: FaultKind::Slow { factor: 0.5 },
        };
        assert!(matches!(
            cfg.validate().unwrap_err(),
            ConfigError::BadFault { index: 0, .. }
        ));
    }
}
