//! Seeded bugs for checker validation.
//!
//! A checker that has never caught a bug is untested code. [`Mutation`]
//! lets a test harness re-introduce, one at a time, the cross-device
//! merge bugs the fleet's design exists to prevent — the class
//! highlighted by work on parallelizing GPU simulators, where
//! thread-scheduling-dependent merges rot silently. Each variant is a
//! single guarded deviation inside [`ClusterHandle`]; the
//! `pagoda-check` mutation-smoke mode runs the fleet once per variant
//! and asserts its invariant checker flags every one.
//!
//! Mutations are test-only instrumentation: they are never enabled by
//! configuration, only by an explicit
//! [`ClusterHandle::inject_mutation`] call.
//!
//! [`ClusterHandle`]: crate::ClusterHandle
//! [`ClusterHandle::inject_mutation`]: crate::ClusterHandle::inject_mutation

/// A deliberately seeded fleet bug, applied at exactly one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Skip the `(fleet instant, device, key)` sort of the per-device
    /// completion scans before applying them — the scheduling-dependent
    /// merge bug. Completions apply in device-scan order instead of
    /// fleet-time order, so `Freed` events regress in time within a
    /// sync batch.
    SkipMergeSort,
    /// Charge the inter-device staging transfer counter twice per
    /// genuine transfer — the double-accounting bug. Staged transfers
    /// overtake off-affinity placements, which is impossible (a
    /// transfer is only charged for an off-home placement).
    DoubleChargeStaging,
    /// Silently forget the first task stranded by a device kill instead
    /// of queueing it for resubmission — the lost-update bug. The task
    /// was spawned but never reaches a terminal state, breaking
    /// end-of-run conservation.
    DropResubmit,
    /// Disable the causal-harvest gate: completions whose device-local
    /// timestamps map *past* the current fleet instant become fleet
    /// visible immediately — the future-read bug a slowed device's
    /// run-ahead would otherwise hide behind the gate.
    SkipCausalGate,
}

impl Mutation {
    /// All mutations, declaration order — the mutation-smoke sweep.
    pub const ALL: [Mutation; 4] = [
        Mutation::SkipMergeSort,
        Mutation::DoubleChargeStaging,
        Mutation::DropResubmit,
        Mutation::SkipCausalGate,
    ];

    /// Stable snake_case name (used in smoke output).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::SkipMergeSort => "skip_merge_sort",
            Mutation::DoubleChargeStaging => "double_charge_staging",
            Mutation::DropResubmit => "drop_resubmit",
            Mutation::SkipCausalGate => "skip_causal_gate",
        }
    }
}
