//! [`ClusterHandle`]: N simulated Pagoda devices behind one fleet clock.
//!
//! Each device is a full [`PagodaRuntime`] — own GPU, own PCIe link, own
//! 48×32 TaskTable — constructed from its slot in
//! [`ClusterConfig::devices`]. The fleet manager owns a single *fleet*
//! clock and steps every live device to each fleet instant in lockstep;
//! a per-device [`ClockMap`] translates fleet time into device-local
//! time, so a slowed device simply receives less simulated time per
//! fleet step and a killed device receives none. Between lockstep steps
//! the per-device *host* clocks are free to run ahead independently
//! (each `submit` charges its spawn CPU cost on the owning device only),
//! which is exactly why a fleet outruns one device: N spawn pipelines
//! and N PCIe links proceed in parallel.
//!
//! Task identity: the fleet issues its own dense `u64` keys (per-device
//! [`TaskId`]s collide across devices). Completion is harvested on
//! [`ClusterHandle::sync`] via each device's §4.2.2 aggregate copy-back,
//! and device-local completion timestamps are mapped back to fleet time
//! through the device's clock history.

use std::collections::{BTreeMap, VecDeque};

use desim::{ClockMap, Dur, EngineStats, SimTime};
use pagoda_core::trace::TaskTrace;
use pagoda_core::{Capacity, PagodaRuntime, SubmitError, TaskDesc, TaskId};
use pagoda_obs::{Counter, DeviceSample, Obs, TaskState};
use pagoda_serve::{serve_on, ServeBackend, ServeConfig, ServeError, ServeOutcome};
use pcie::{Direction, PcieConfig};

use crate::config::{ClusterConfig, FaultKind, FaultSpec, RetryPolicy};
use crate::error::ClusterError;
use crate::placement::{DeviceView, Placer};

/// Where a cluster task currently is in its fleet-level lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// Spawned on a device, completion not yet observed.
    InFlight,
    /// Stranded by a device kill, awaiting resubmission.
    Queued,
    /// Output observed in host memory.
    Done,
    /// Given up on after a device failure.
    Lost,
}

#[derive(Debug, Clone, Copy)]
enum Status {
    InFlight { device: usize },
    Queued,
    Done { at: SimTime },
    Lost { at: SimTime },
}

#[derive(Debug)]
struct CTask {
    tenant: u32,
    desc: TaskDesc,
    attempts: u32,
    status: Status,
}

struct Device {
    rt: PagodaRuntime,
    clock: ClockMap,
    alive: bool,
    /// fleet key → device-local id, insertion-ordered for deterministic
    /// harvest order.
    outstanding: BTreeMap<u64, TaskId>,
    spawned: u64,
    completed: u64,
}

impl Device {
    fn view(&self) -> DeviceView {
        DeviceView {
            alive: self.alive,
            known_free: self.rt.capacity().known_free,
            outstanding: self.outstanding.len() as u32,
        }
    }
}

/// Per-device slice of a [`FleetReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceReport {
    /// Fleet index.
    pub device: u32,
    /// Whether the device was still serving at report time.
    pub alive: bool,
    /// Cluster tasks spawned onto it (resubmissions count again).
    pub spawned: u64,
    /// Cluster tasks whose completion it delivered.
    pub completed: u64,
    /// Mean fraction of its warp slots doing task work while tasks ran.
    pub avg_running_occupancy: f64,
}

/// Aggregate outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// One entry per device, fleet order.
    pub devices: Vec<DeviceReport>,
    /// Fleet clock at report time.
    pub makespan: SimTime,
    /// Tasks completed fleet-wide.
    pub completed: u64,
    /// Routed submits that succeeded (resubmissions included).
    pub placements: u64,
    /// Placements that landed off the tenant's home set.
    pub off_affinity: u64,
    /// Tasks re-spawned on a surviving device after a kill.
    pub resubmits: u64,
    /// Tasks lost to device failures.
    pub tasks_lost: u64,
    /// Kill faults applied.
    pub kills: u64,
    /// Slowdown faults applied.
    pub slowdowns: u64,
    /// Spawn-weighted mean of per-device running occupancy.
    pub avg_warp_occupancy: f64,
}

/// A fleet of simulated Pagoda devices with routed placement and
/// failover, exposing the single-runtime `submit`/`wait` shape with
/// fleet-unique `u64` task keys.
pub struct ClusterHandle {
    devices: Vec<Device>,
    placer: Placer,
    interconnect: PcieConfig,
    xfer_bytes: u64,
    retry: RetryPolicy,
    faults: Vec<FaultSpec>,
    next_fault: usize,
    fleet_now: SimTime,
    tasks: Vec<CTask>,
    pending: VecDeque<u64>,
    unresolved: u64,
    wait_timeout: Dur,
    obs: Obs,
    placements: u64,
    off_affinity: u64,
    resubmits: u64,
    lost: u64,
    kills: u64,
    slowdowns: u64,
}

impl ClusterHandle {
    /// Builds the fleet: validates every device config and the fault
    /// schedule, instantiates one [`PagodaRuntime`] per device.
    ///
    /// # Errors
    /// [`ClusterError::NoDevices`], [`ClusterError::Config`] or
    /// [`ClusterError::BadFault`] on a malformed configuration.
    pub fn new(cfg: ClusterConfig) -> Result<Self, ClusterError> {
        if cfg.devices.is_empty() {
            return Err(ClusterError::NoDevices);
        }
        for (device, c) in cfg.devices.iter().enumerate() {
            c.validate()
                .map_err(|err| ClusterError::Config { device, err })?;
        }
        for (index, f) in cfg.faults.iter().enumerate() {
            if f.device >= cfg.devices.len() {
                return Err(ClusterError::BadFault {
                    index,
                    reason: "device index out of range",
                });
            }
            if let FaultKind::Slow { factor } = f.kind {
                if !factor.is_finite() || factor < 1.0 {
                    return Err(ClusterError::BadFault {
                        index,
                        reason: "slow factor must be finite and >= 1",
                    });
                }
            }
        }
        let mut faults = cfg.faults.clone();
        faults.sort_by_key(|f| f.at); // stable: same-instant faults keep config order
        let wait_timeout = cfg
            .devices
            .iter()
            .map(|c| c.wait_timeout)
            .min()
            .expect("fleet is non-empty");
        let devices = cfg
            .devices
            .iter()
            .map(|c| Device {
                rt: PagodaRuntime::new(c.clone()),
                clock: ClockMap::identity(),
                alive: true,
                outstanding: BTreeMap::new(),
                spawned: 0,
                completed: 0,
            })
            .collect();
        Ok(ClusterHandle {
            devices,
            placer: Placer::new(cfg.placement, cfg.seed, cfg.affinity_spread),
            interconnect: cfg.interconnect,
            xfer_bytes: cfg.xfer_bytes,
            retry: cfg.retry,
            faults,
            next_fault: 0,
            fleet_now: SimTime::ZERO,
            tasks: Vec::new(),
            pending: VecDeque::new(),
            unresolved: 0,
            wait_timeout,
            obs: Obs::off(),
            placements: 0,
            off_affinity: 0,
            resubmits: 0,
            lost: 0,
            kills: 0,
            slowdowns: 0,
        })
    }

    /// Records fleet-level events (task spans keyed by cluster task key,
    /// per-device [`DeviceSample`] tracks, `cluster_*` counters) to
    /// `obs`. The member runtimes are deliberately *not* attached: their
    /// device-local task ids would collide across the fleet.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Number of devices configured (dead ones included).
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The fleet clock.
    pub fn now(&self) -> SimTime {
        self.fleet_now
    }

    /// Fleet-wide admission headroom: the sum over *live* devices of
    /// their host-side known-free entry counts. A kill shrinks `total`.
    pub fn capacity(&self) -> Capacity {
        let mut known_free = 0;
        let mut total = 0;
        for d in &self.devices {
            if d.alive {
                let c = d.rt.capacity();
                known_free += c.known_free;
                total += c.total;
            }
        }
        Capacity { known_free, total }
    }

    /// [`submit_for`](ClusterHandle::submit_for) on behalf of tenant 0.
    ///
    /// # Errors
    /// See [`submit_for`](ClusterHandle::submit_for).
    pub fn submit(&mut self, desc: TaskDesc) -> Result<u64, SubmitError> {
        self.submit_for(0, desc)
    }

    /// Routes one task: asks the placement policy for a device, charges
    /// the staging transfer if the choice is off `tenant`'s home set,
    /// and spawns through that device's non-blocking submit. Returns the
    /// fleet-unique task key.
    ///
    /// # Errors
    /// [`SubmitError::Full`] hands the descriptor back when the chosen
    /// device has no known-free entry (or no device is alive) — call
    /// [`sync`](ClusterHandle::sync) and
    /// [`advance_to`](ClusterHandle::advance_to), then retry, exactly as
    /// with a single runtime. Task-shape errors propagate unchanged.
    pub fn submit_for(&mut self, tenant: u32, desc: TaskDesc) -> Result<u64, SubmitError> {
        let kept = desc.clone();
        let (device, id, off_home) = self.route(tenant, desc)?;
        let key = self.tasks.len() as u64;
        self.tasks.push(CTask {
            tenant,
            desc: kept,
            attempts: 1,
            status: Status::InFlight { device },
        });
        self.unresolved += 1;
        self.commit_spawn(key, tenant, device, id, off_home, false);
        Ok(key)
    }

    /// Placement + staging charge + device-local spawn.
    fn route(&mut self, tenant: u32, desc: TaskDesc) -> Result<(usize, TaskId, bool), SubmitError> {
        let views: Vec<DeviceView> = self.devices.iter().map(Device::view).collect();
        let Some(device) = self.placer.place(tenant, &views) else {
            return Err(SubmitError::Full(desc));
        };
        let off_home = !self.placer.is_home(tenant, device, self.devices.len());
        let d = &mut self.devices[device];
        if off_home {
            // Tenant state is staged device-to-device before the spawn
            // can land; modeled as a one-hop transfer on the fleet
            // interconnect, serialized on the target device's timeline.
            let stage = self
                .interconnect
                .transfer_time(Direction::HostToDevice, self.xfer_bytes);
            let at = d.rt.host_now() + stage;
            d.rt.advance_to(at);
        }
        let id = d.rt.submit(desc)?;
        Ok((device, id, off_home))
    }

    /// Bookkeeping shared by first spawns and resubmissions.
    fn commit_spawn(
        &mut self,
        key: u64,
        tenant: u32,
        device: usize,
        id: TaskId,
        off_home: bool,
        resubmit: bool,
    ) {
        let d = &mut self.devices[device];
        d.outstanding.insert(key, id);
        d.spawned += 1;
        self.tasks[key as usize].status = Status::InFlight { device };
        self.placements += 1;
        self.obs.count(Counter::ClusterPlacements, 1);
        if off_home {
            self.off_affinity += 1;
            self.obs.count(Counter::ClusterOffAffinity, 1);
        }
        if resubmit {
            self.tasks[key as usize].attempts += 1;
            self.resubmits += 1;
            self.obs.count(Counter::ClusterResubmits, 1);
        } else {
            self.obs
                .task(self.fleet_now.as_ps(), key, TaskState::Spawned);
            self.obs.tenant(key, tenant);
        }
        self.sample_device(device);
    }

    fn sample_device(&self, device: usize) {
        if !self.obs.enabled() {
            return;
        }
        let d = &self.devices[device];
        self.obs.device(DeviceSample {
            at_ps: self.fleet_now.as_ps(),
            device: device as u32,
            known_free: if d.alive {
                d.rt.capacity().known_free
            } else {
                0
            },
            outstanding: d.outstanding.len() as u32,
            alive: d.alive,
        });
    }

    /// Refreshes the fleet's completion view: one §4.2.2 aggregate
    /// copy-back per live device, then harvests finished tasks and
    /// drains the resubmission queue onto devices with room. Costs
    /// simulated time on each device, like
    /// [`PagodaRuntime::sync_table`].
    pub fn sync(&mut self) {
        for i in 0..self.devices.len() {
            if self.devices[i].alive {
                self.devices[i].rt.sync_table();
                self.harvest(i, true);
            }
        }
        self.drain_pending();
    }

    /// Moves observed completions on device `i` from in-flight to done,
    /// mapping device-local output timestamps to fleet time.
    ///
    /// With `gate` set, a completion only counts once the fleet clock
    /// has reached its mapped fleet instant. Device clocks legitimately
    /// run ahead of the lockstep (parallel spawn costs, per-round
    /// copyback costs), and for a *slowed* device that run-ahead is
    /// cheap local time that maps far into the fleet future — without
    /// the gate, the fleet would observe those completions early and a
    /// slowdown would cost nothing. Kill-harvest passes `gate = false`:
    /// it reads the device's final local state, whenever that ran to.
    fn harvest(&mut self, i: usize, gate: bool) {
        let finished: Vec<(u64, SimTime)> = {
            let d = &self.devices[i];
            let now = self.fleet_now;
            d.outstanding
                .iter()
                .filter_map(|(&key, &id)| {
                    let done =
                        d.rt.observed_done(id)
                            .expect("invariant: fleet only holds ids its devices issued");
                    if !done {
                        return None;
                    }
                    let local =
                        d.rt.trace(id)
                            .expect("invariant: fleet only holds ids its devices issued")
                            .output_done
                            .expect("invariant: observed-done task has an output time");
                    let at = d.clock.fleet_of(local);
                    if gate && at > now {
                        return None;
                    }
                    Some((key, at))
                })
                .collect()
        };
        let any = !finished.is_empty();
        for (key, at) in finished {
            self.devices[i].outstanding.remove(&key);
            self.devices[i].completed += 1;
            self.tasks[key as usize].status = Status::Done { at };
            self.unresolved -= 1;
            self.obs.task(at.as_ps(), key, TaskState::Freed);
        }
        if any {
            self.sample_device(i);
        }
    }

    /// Re-places queued (stranded) tasks onto surviving devices, FIFO.
    /// Stops at the first task that finds no room; if no device is left
    /// alive, the whole queue is lost.
    fn drain_pending(&mut self) {
        if !self.devices.iter().any(|d| d.alive) {
            while let Some(key) = self.pending.pop_front() {
                self.mark_lost(key, self.fleet_now);
            }
            return;
        }
        while let Some(&key) = self.pending.front() {
            let tenant = self.tasks[key as usize].tenant;
            let desc = self.tasks[key as usize].desc.clone();
            match self.route(tenant, desc) {
                Ok((device, id, off_home)) => {
                    self.pending.pop_front();
                    self.commit_spawn(key, tenant, device, id, off_home, true);
                }
                Err(SubmitError::Full(_)) => break,
                Err(e) => unreachable!("descriptor spawned once, cannot be invalid now: {e}"),
            }
        }
    }

    fn mark_lost(&mut self, key: u64, at: SimTime) {
        self.tasks[key as usize].status = Status::Lost { at };
        self.unresolved -= 1;
        self.lost += 1;
        self.obs.count(Counter::ClusterTasksLost, 1);
        self.obs.task(at.as_ps(), key, TaskState::Freed);
    }

    /// Advances the fleet clock to `t` (no-op if in the past), stepping
    /// every live device in lockstep and applying any scheduled faults
    /// whose instant is reached on the way.
    pub fn advance_to(&mut self, t: SimTime) {
        while self.next_fault < self.faults.len() && self.faults[self.next_fault].at <= t {
            let f = self.faults[self.next_fault];
            self.next_fault += 1;
            let at = f.at.max(self.fleet_now);
            self.step_devices(at);
            self.apply_fault(&f, at);
        }
        self.step_devices(t);
    }

    fn step_devices(&mut self, t: SimTime) {
        if t <= self.fleet_now {
            return;
        }
        for d in &mut self.devices {
            if d.alive {
                let local = d.clock.local_of(t);
                d.rt.advance_to(local);
            }
        }
        self.fleet_now = t;
    }

    fn apply_fault(&mut self, f: &FaultSpec, at: SimTime) {
        match f.kind {
            FaultKind::Slow { factor } => {
                if !self.devices[f.device].alive {
                    return;
                }
                self.devices[f.device].clock.set_rate(at, 1.0 / factor);
                self.slowdowns += 1;
                self.obs.count(Counter::ClusterDeviceSlowdowns, 1);
                self.sample_device(f.device);
            }
            FaultKind::Kill => {
                if !self.devices[f.device].alive {
                    return;
                }
                // Last harvest: completions already in host memory (or
                // observable via one final copy-back) survive the kill.
                self.devices[f.device].rt.sync_table();
                self.harvest(f.device, false);
                self.devices[f.device].alive = false;
                self.kills += 1;
                self.obs.count(Counter::ClusterDeviceKills, 1);
                let stranded: Vec<u64> =
                    self.devices[f.device].outstanding.keys().copied().collect();
                self.devices[f.device].outstanding.clear();
                for key in stranded {
                    let retry = match self.retry {
                        RetryPolicy::Fail => false,
                        RetryPolicy::Resubmit { max_attempts } => {
                            self.tasks[key as usize].attempts < max_attempts
                        }
                    };
                    if retry {
                        self.tasks[key as usize].status = Status::Queued;
                        self.pending.push_back(key);
                    } else {
                        self.mark_lost(key, at);
                    }
                }
                self.sample_device(f.device);
                self.drain_pending();
            }
        }
    }

    /// Where task `key` is in its lifecycle.
    ///
    /// # Errors
    /// [`ClusterError::UnknownTask`] for a key this fleet never issued.
    pub fn status(&self, key: u64) -> Result<TaskStatus, ClusterError> {
        let t = self
            .tasks
            .get(key as usize)
            .ok_or(ClusterError::UnknownTask { key })?;
        Ok(match t.status {
            Status::InFlight { .. } => TaskStatus::InFlight,
            Status::Queued => TaskStatus::Queued,
            Status::Done { .. } => TaskStatus::Done,
            Status::Lost { .. } => TaskStatus::Lost,
        })
    }

    /// Fleet index of the device `key` is currently in flight on
    /// (`None` once done, lost, or while queued for resubmission).
    pub fn device_of(&self, key: u64) -> Option<usize> {
        match self.tasks.get(key as usize)?.status {
            Status::InFlight { device } => Some(device),
            _ => None,
        }
    }

    /// Fleet instant at which `key`'s output landed in host memory;
    /// `None` until then (for a lost task, the instant it was given up).
    pub fn completion_time(&self, key: u64) -> Option<SimTime> {
        match self.tasks.get(key as usize)?.status {
            Status::Done { at } | Status::Lost { at } => Some(at),
            _ => None,
        }
    }

    /// Blocks (in simulated time) until `key` completes: sync, then idle
    /// the fleet by its polling slice, repeatedly — the single-runtime
    /// `wait` loop, fleet-wide. Returns the completion instant.
    ///
    /// # Errors
    /// [`ClusterError::UnknownTask`] for a foreign key;
    /// [`ClusterError::TaskLost`] if a device died under the task and
    /// the retry policy gave up.
    pub fn wait(&mut self, key: u64) -> Result<SimTime, ClusterError> {
        if key as usize >= self.tasks.len() {
            return Err(ClusterError::UnknownTask { key });
        }
        let mut iterations = 0u64;
        loop {
            match self.tasks[key as usize].status {
                Status::Done { at } => return Ok(at),
                Status::Lost { .. } => {
                    return Err(ClusterError::TaskLost {
                        key,
                        attempts: self.tasks[key as usize].attempts,
                    })
                }
                _ => {}
            }
            self.sync();
            if matches!(
                self.tasks[key as usize].status,
                Status::InFlight { .. } | Status::Queued
            ) {
                self.advance_to(self.fleet_now + self.wait_timeout);
            }
            iterations += 1;
            assert!(iterations < 100_000_000, "cluster wait livelocked");
        }
    }

    /// Runs the fleet until every issued task is done or lost.
    pub fn wait_all(&mut self) {
        let mut iterations = 0u64;
        while self.unresolved > 0 {
            self.sync();
            if self.unresolved > 0 {
                self.advance_to(self.fleet_now + self.wait_timeout);
            }
            iterations += 1;
            assert!(iterations < 100_000_000, "cluster wait_all livelocked");
        }
    }

    /// Per-device [`desim`] engine counters, fleet order — the
    /// determinism fingerprint: two runs of the same configuration must
    /// produce identical vectors.
    pub fn engine_stats(&self) -> Vec<EngineStats> {
        self.devices.iter().map(|d| d.rt.engine_stats()).collect()
    }

    /// Aggregates the run so far.
    pub fn report(&mut self) -> FleetReport {
        let mut devices = Vec::with_capacity(self.devices.len());
        let mut occ_weighted = 0.0;
        let mut occ_weight = 0u64;
        for (i, d) in self.devices.iter_mut().enumerate() {
            let occ = d.rt.report().avg_running_occupancy;
            if d.spawned > 0 {
                occ_weighted += occ * d.spawned as f64;
                occ_weight += d.spawned;
            }
            devices.push(DeviceReport {
                device: i as u32,
                alive: d.alive,
                spawned: d.spawned,
                completed: d.completed,
                avg_running_occupancy: occ,
            });
        }
        FleetReport {
            devices,
            makespan: self.fleet_now,
            completed: self.tasks.len() as u64 - self.lost - self.unresolved,
            placements: self.placements,
            off_affinity: self.off_affinity,
            resubmits: self.resubmits,
            tasks_lost: self.lost,
            kills: self.kills,
            slowdowns: self.slowdowns,
            avg_warp_occupancy: if occ_weight > 0 {
                occ_weighted / occ_weight as f64
            } else {
                0.0
            },
        }
    }
}

/// The fleet behind the serving loop: [`pagoda_serve::serve_on`] drives
/// a [`ClusterHandle`] exactly as it drives one runtime. A task lost to
/// a device failure "completes" at its loss instant from the serving
/// layer's viewpoint (its sojourn ends there); the fleet's
/// `cluster_tasks_lost` counter and [`FleetReport::tasks_lost`] record
/// the failure.
impl ServeBackend for ClusterHandle {
    fn submit(&mut self, tenant: u32, desc: TaskDesc) -> Result<u64, SubmitError> {
        self.submit_for(tenant, desc)
    }

    fn capacity(&self) -> Capacity {
        ClusterHandle::capacity(self)
    }

    fn observed_done(&self, key: u64) -> bool {
        matches!(
            self.tasks
                .get(key as usize)
                .expect("invariant: serve loop only passes keys this fleet issued")
                .status,
            Status::Done { .. } | Status::Lost { .. }
        )
    }

    fn completion_time(&self, key: u64) -> Option<SimTime> {
        ClusterHandle::completion_time(self, key)
    }

    fn now(&self) -> SimTime {
        self.fleet_now
    }

    fn advance_to(&mut self, t: SimTime) {
        ClusterHandle::advance_to(self, t);
    }

    fn sync(&mut self) {
        ClusterHandle::sync(self);
    }

    fn wait_timeout(&self) -> Dur {
        self.wait_timeout
    }

    fn warp_occupancy(&mut self) -> f64 {
        self.report().avg_warp_occupancy
    }

    fn traces(&self) -> Vec<TaskTrace> {
        // Fleet keys do not map to one runtime's trace ids; per-device
        // timelines are exported through `pagoda-obs` instead.
        Vec::new()
    }
}

/// Serves `cfg`'s tenant mix on `fleet` and returns both the serving
/// outcome and the fleet's report. Attaches `cfg.obs` to the fleet so
/// admission counters, tenant tags, and device tracks land in one
/// recorder. `cfg.runtime` is ignored — the fleet brings its devices.
///
/// # Errors
/// Propagates [`ServeError`] from the serving loop.
pub fn serve_fleet(
    cfg: &ServeConfig,
    fleet: &mut ClusterHandle,
) -> Result<(ServeOutcome, FleetReport), ServeError> {
    fleet.attach_obs(cfg.obs.clone());
    let out = serve_on(cfg, fleet)?;
    Ok((out, fleet.report()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::placement::Placement;
    use gpu_sim::WarpWork;

    /// ~90 us of device time — long enough that a fault scheduled a few
    /// microseconds in lands while work is still in flight.
    fn task() -> TaskDesc {
        TaskDesc::uniform(64, WarpWork::compute(200_000, 8.0))
    }

    fn run_batch(mut fleet: ClusterHandle, n: usize) -> (Vec<u64>, ClusterHandle) {
        let mut keys = Vec::new();
        for _ in 0..n {
            loop {
                match fleet.submit(task()) {
                    Ok(k) => {
                        keys.push(k);
                        break;
                    }
                    Err(SubmitError::Full(_)) => {
                        fleet.sync();
                        if !fleet.capacity().has_room() {
                            let t = fleet.now() + Dur::from_us(20);
                            fleet.advance_to(t);
                        }
                    }
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
        }
        fleet.wait_all();
        (keys, fleet)
    }

    #[test]
    fn uniform_fleet_completes_and_spreads() {
        let fleet = ClusterHandle::new(ClusterConfig::uniform(4)).unwrap();
        let (keys, mut fleet) = run_batch(fleet, 64);
        for k in keys {
            assert_eq!(fleet.status(k).unwrap(), TaskStatus::Done);
            assert!(fleet.completion_time(k).is_some());
        }
        let rep = fleet.report();
        assert_eq!(rep.completed, 64);
        assert_eq!(rep.tasks_lost, 0);
        assert_eq!(rep.placements, 64);
        for d in &rep.devices {
            assert!(d.spawned > 0, "device {} got nothing", d.device);
            assert_eq!(d.spawned, d.completed);
        }
    }

    #[test]
    fn kill_with_fail_policy_loses_in_flight_and_shrinks_capacity() {
        let mut cfg = ClusterConfig::uniform(2);
        cfg.retry = RetryPolicy::Fail;
        cfg.faults = vec![FaultSpec {
            at: SimTime::from_us(5),
            device: 0,
            kind: FaultKind::Kill,
        }];
        let mut fleet = ClusterHandle::new(cfg).unwrap();
        let full = fleet.capacity().total;
        let keys: Vec<u64> = (0..32).map(|_| fleet.submit(task()).unwrap()).collect();
        fleet.wait_all();
        assert_eq!(fleet.capacity().total, full / 2, "kill halves admission");
        let rep = fleet.report();
        assert_eq!(rep.kills, 1);
        assert!(rep.tasks_lost > 0, "in-flight work on device 0 was lost");
        assert_eq!(rep.completed + rep.tasks_lost, 32);
        let lost: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|&k| fleet.status(k).unwrap() == TaskStatus::Lost)
            .collect();
        assert_eq!(lost.len() as u64, rep.tasks_lost);
        let err = fleet.wait(lost[0]).unwrap_err();
        assert!(matches!(err, ClusterError::TaskLost { .. }));
    }

    #[test]
    fn kill_with_resubmit_policy_loses_nothing() {
        let mut cfg = ClusterConfig::uniform(2);
        cfg.retry = RetryPolicy::Resubmit { max_attempts: 3 };
        cfg.faults = vec![FaultSpec {
            at: SimTime::from_us(5),
            device: 0,
            kind: FaultKind::Kill,
        }];
        let fleet = ClusterHandle::new(cfg).unwrap();
        let (keys, mut fleet) = run_batch(fleet, 32);
        for k in keys {
            assert_eq!(fleet.status(k).unwrap(), TaskStatus::Done);
        }
        let rep = fleet.report();
        assert_eq!(rep.tasks_lost, 0);
        assert!(rep.resubmits > 0, "stranded tasks were re-placed");
        assert_eq!(rep.completed, 32);
        assert!(!rep.devices[0].alive);
        assert_eq!(
            rep.devices[0].completed + rep.devices[1].completed,
            32,
            "everything lands despite the kill"
        );
    }

    #[test]
    fn slowdown_stretches_makespan() {
        // Long tasks (~500 us device time) so completion genuinely needs
        // fleet time beyond the submit burst's host-clock run-ahead.
        let run = |faults: Vec<FaultSpec>| {
            let mut cfg = ClusterConfig::uniform(2);
            cfg.faults = faults;
            let mut fleet = ClusterHandle::new(cfg).unwrap();
            for _ in 0..8 {
                fleet
                    .submit(TaskDesc::uniform(64, WarpWork::compute(2_000_000, 8.0)))
                    .expect("empty fleet has room");
            }
            fleet.wait_all();
            (fleet.report().makespan, fleet.report().slowdowns)
        };
        let (healthy, s0) = run(vec![]);
        let (degraded, s1) = run(vec![FaultSpec {
            at: SimTime::from_us(2),
            device: 0,
            kind: FaultKind::Slow { factor: 8.0 },
        }]);
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert!(
            degraded > healthy,
            "slowdown must cost fleet time: {degraded:?} vs {healthy:?}"
        );
    }

    #[test]
    fn off_affinity_pays_and_counts() {
        let mut cfg = ClusterConfig::uniform(4);
        cfg.placement = Placement::TenantAffinity;
        cfg.affinity_spread = 1;
        for c in &mut cfg.devices {
            c.rows_per_column = 1; // 48 entries per device: small enough to flood
        }
        let mut fleet = ClusterHandle::new(cfg).unwrap();
        // Tenant 2's home is device 2; flood it past one column's room
        // so placement spills to non-home devices.
        let mut spilled = 0;
        for _ in 0..96 {
            match fleet.submit_for(2, task()) {
                Ok(k) => {
                    if fleet.device_of(k) != Some(2) {
                        spilled += 1;
                    }
                }
                Err(SubmitError::Full(_)) => {
                    fleet.sync();
                    let t = fleet.now() + Dur::from_us(20);
                    fleet.advance_to(t);
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        fleet.wait_all();
        let rep = fleet.report();
        assert!(rep.off_affinity > 0, "flooded tenant must spill off-home");
        assert_eq!(rep.off_affinity, spilled);
    }

    #[test]
    fn same_config_same_fingerprint() {
        let build = || {
            let mut cfg = ClusterConfig::uniform(3);
            cfg.placement = Placement::PowerOfTwo;
            cfg.seed = 99;
            cfg.faults = vec![FaultSpec {
                at: SimTime::from_us(10),
                device: 1,
                kind: FaultKind::Kill,
            }];
            ClusterHandle::new(cfg).unwrap()
        };
        let (keys_a, mut a) = run_batch(build(), 40);
        let (keys_b, mut b) = run_batch(build(), 40);
        assert_eq!(a.engine_stats(), b.engine_stats());
        let times_a: Vec<_> = keys_a.iter().map(|&k| a.completion_time(k)).collect();
        let times_b: Vec<_> = keys_b.iter().map(|&k| b.completion_time(k)).collect();
        assert_eq!(times_a, times_b);
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn obs_records_device_tracks_and_fleet_counters() {
        let (obs, rec) = Obs::recording();
        let mut cfg = ClusterConfig::uniform(2);
        cfg.faults = vec![FaultSpec {
            at: SimTime::from_us(5),
            device: 1,
            kind: FaultKind::Kill,
        }];
        let mut fleet = ClusterHandle::new(cfg).unwrap();
        fleet.attach_obs(obs);
        let (_, mut fleet) = {
            let keys: Vec<u64> = (0..16).map(|_| fleet.submit(task()).unwrap()).collect();
            fleet.wait_all();
            (keys, fleet)
        };
        let rep = fleet.report();
        let snap = rec.snapshot();
        assert_eq!(snap.counter(Counter::ClusterPlacements), rep.placements);
        assert_eq!(snap.counter(Counter::ClusterDeviceKills), 1);
        assert_eq!(snap.counter(Counter::ClusterResubmits), rep.resubmits);
        assert!(
            snap.devices.iter().any(|s| s.device == 1 && !s.alive),
            "kill must be visible on the device track"
        );
        assert!(snap.devices.iter().any(|s| s.device == 0 && s.alive));
        // Every task got a Spawned and a Freed span edge under its key.
        for key in 0..16u64 {
            let tl = snap.task_timeline(key);
            assert!(tl[0].is_some(), "task {key} has no Spawned event");
            assert!(tl[4].is_some(), "task {key} has no Freed event");
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        assert!(matches!(
            ClusterHandle::new(ClusterConfig::uniform(0)),
            Err(ClusterError::NoDevices)
        ));
        let mut cfg = ClusterConfig::uniform(2);
        cfg.faults = vec![FaultSpec {
            at: SimTime::ZERO,
            device: 5,
            kind: FaultKind::Kill,
        }];
        assert!(matches!(
            ClusterHandle::new(cfg),
            Err(ClusterError::BadFault { .. })
        ));
        let mut cfg = ClusterConfig::uniform(2);
        cfg.faults = vec![FaultSpec {
            at: SimTime::ZERO,
            device: 0,
            kind: FaultKind::Slow { factor: 0.5 },
        }];
        assert!(matches!(
            ClusterHandle::new(cfg),
            Err(ClusterError::BadFault { .. })
        ));
    }

    #[test]
    fn serve_fleet_round_trips_a_tenant_mix() {
        use pagoda_serve::{Policy, TenantSpec};
        use workloads::Bench;

        let video = TenantSpec::new("video", Bench::Dct, 4.0e5);
        let crypto = TenantSpec::new("crypto", Bench::Des3, 8.0e5);
        let mut cfg = ServeConfig::new(vec![video, crypto], Policy::Fifo);
        cfg.tasks_per_tenant = 24;
        let mut fleet = ClusterHandle::new(ClusterConfig::uniform(2)).unwrap();
        let (out, rep) = serve_fleet(&cfg, &mut fleet).unwrap();
        let offered: u64 = out.report.tenants.iter().map(|t| t.offered).sum();
        assert_eq!(offered, 48);
        assert_eq!(rep.completed, rep.placements - rep.resubmits);
        assert!(rep.completed > 0);
        assert_eq!(rep.tasks_lost, 0);
        assert!(out
            .records
            .iter()
            .all(|r| r.spawn_us.is_none() || r.spawn_us.is_some()));
    }
}
