//! [`ClusterHandle`]: N simulated Pagoda devices behind one fleet clock.
//!
//! Each device is a full [`PagodaRuntime`] — own GPU, own PCIe link, own
//! 48×32 TaskTable — constructed from its slot in
//! [`ClusterConfig::devices`]. The fleet manager owns a single *fleet*
//! clock and advances it in bounded *run-ahead windows*
//! ([`ClusterConfig::run_ahead`]): inside a window every live device
//! simulates independently up to the window's horizon (a per-device
//! [`ClockMap`] translates fleet time into device-local time, so a
//! slowed device simply receives less simulated time per window and a
//! killed device receives none), and at each horizon the fleet
//! resynchronizes. Because devices are independent between horizons,
//! the per-window work can run on a scoped thread pool
//! ([`ClusterConfig::parallel`]); cross-device effects — completions,
//! resubmissions, placement decisions — are applied only at sync
//! points, where they are merged in `(fleet instant, device, key)`
//! order, the fleet-level analogue of the simulation engine's
//! `(time, seq)` tie-break. Serial and parallel drivers therefore
//! produce byte-identical clocks, traces, reports, and observability
//! streams.
//!
//! Task identity: the fleet issues its own dense `u64` keys (per-device
//! [`TaskId`]s collide across devices). Completion is harvested on
//! [`ClusterHandle::sync`] via each device's §4.2.2 aggregate copy-back,
//! and device-local completion timestamps are mapped back to fleet time
//! through the device's clock history.

use std::collections::{BTreeMap, VecDeque};

use desim::{ClockMap, Dur, EngineStats, Horizon, SimTime};
use pagoda_core::trace::TaskTrace;
use pagoda_core::{
    Capacity, ConfigError, PagodaError, PagodaRuntime, SubmitError, TaskDesc, TaskId,
};
use pagoda_host::Backend;
use pagoda_obs::{Counter, DeviceSample, Obs, ObsFork, SyncKind, TaskState};
use pcie::{Direction, PcieConfig};
use rayon::prelude::*;

use crate::config::{ClusterConfig, FaultKind, FaultSpec, RetryPolicy};
use crate::mutation::Mutation;
use crate::placement::{DeviceView, Placer};

/// Where a cluster task currently is in its fleet-level lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// Spawned on a device, completion not yet observed.
    InFlight,
    /// Stranded by a device kill, awaiting resubmission.
    Queued,
    /// Output observed in host memory.
    Done,
    /// Given up on after a device failure.
    Lost,
}

#[derive(Debug, Clone, Copy)]
enum Status {
    InFlight { device: usize },
    Queued,
    Done { at: SimTime },
    Lost { at: SimTime },
}

#[derive(Debug)]
struct CTask {
    tenant: u32,
    desc: TaskDesc,
    attempts: u32,
    status: Status,
    /// Device currently holding this task's staged input payload, if
    /// any. An off-home placement only pays the interconnect transfer
    /// when the payload is *not* already resident on the target; a kill
    /// clears the memo (the payload died with the device).
    staged_on: Option<usize>,
}

struct Device {
    rt: PagodaRuntime,
    id: u32,
    clock: ClockMap,
    alive: bool,
    /// fleet key → device-local id, insertion-ordered for deterministic
    /// harvest order.
    outstanding: BTreeMap<u64, TaskId>,
    spawned: u64,
    completed: u64,
    /// Last `(known_free, outstanding, alive)` tuple emitted to the
    /// device track; samples are change-detected so the window loop can
    /// probe every horizon without flooding the recorder.
    last_sample: Option<(u32, u32, bool)>,
}

// The parallel driver moves `&mut Device` across scoped threads.
const _: () = {
    fn assert_send<T: Send>() {}
    #[allow(dead_code)]
    fn device_is_send() {
        assert_send::<Device>();
    }
};

impl Device {
    fn view(&self) -> DeviceView {
        DeviceView {
            alive: self.alive,
            known_free: self.rt.capacity().known_free,
            outstanding: self.outstanding.len() as u32,
        }
    }

    /// Emits a [`DeviceSample`] at fleet instant `at` if the device's
    /// observable tuple changed since the last emission (or `force`).
    fn sample(&mut self, at: SimTime, obs: &Obs, force: bool) {
        if !obs.enabled() {
            return;
        }
        let tuple = (
            if self.alive {
                self.rt.capacity().known_free
            } else {
                0
            },
            self.outstanding.len() as u32,
            self.alive,
        );
        if !force && self.last_sample == Some(tuple) {
            return;
        }
        self.last_sample = Some(tuple);
        obs.device(DeviceSample {
            at_ps: at.as_ps(),
            device: self.id,
            known_free: tuple.0,
            outstanding: tuple.1,
            alive: tuple.2,
        });
    }

    /// Scans `outstanding` for completions observable host-side, mapping
    /// device-local output timestamps to fleet time.
    ///
    /// With `gate` set, a completion only counts once the fleet clock
    /// has reached its mapped fleet instant. Device clocks legitimately
    /// run ahead of the horizon (parallel spawn costs, per-round
    /// copyback costs), and for a *slowed* device that run-ahead is
    /// cheap local time that maps far into the fleet future — without
    /// the gate, the fleet would observe those completions early and a
    /// slowdown would cost nothing. Kill-harvest passes `gate = false`:
    /// it reads the device's final local state, whenever that ran to.
    fn scan_finished(&self, fleet_now: SimTime, gate: bool) -> Vec<(SimTime, u64)> {
        self.outstanding
            .iter()
            .filter_map(|(&key, &id)| {
                let done = self
                    .rt
                    .observed_done(id)
                    .expect("invariant: fleet only holds ids its devices issued");
                if !done {
                    return None;
                }
                let local = self
                    .rt
                    .trace(id)
                    .expect("invariant: fleet only holds ids its devices issued")
                    .output_done
                    .expect("invariant: observed-done task has an output time");
                let at = self.clock.fleet_of(local);
                if gate && at > fleet_now {
                    return None;
                }
                Some((at, key))
            })
            .collect()
    }
}

/// Per-device slice of a [`FleetReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceReport {
    /// Device id ([`ClusterConfig::device_ids`], fleet index by default).
    pub device: u32,
    /// Whether the device was still serving at report time.
    pub alive: bool,
    /// Cluster tasks spawned onto it (resubmissions count again).
    pub spawned: u64,
    /// Cluster tasks whose completion it delivered.
    pub completed: u64,
    /// Mean fraction of its warp slots doing task work while tasks ran.
    pub avg_running_occupancy: f64,
}

/// Aggregate outcome of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// One entry per device, fleet order.
    pub devices: Vec<DeviceReport>,
    /// Fleet clock at report time.
    pub makespan: SimTime,
    /// Tasks completed fleet-wide.
    pub completed: u64,
    /// Routed submits that succeeded (resubmissions included).
    pub placements: u64,
    /// Placements that landed off the tenant's home set.
    pub off_affinity: u64,
    /// Off-home placements that actually staged state across the
    /// interconnect (a resubmit landing where the payload already lives
    /// pays nothing, so this can trail [`off_affinity`]).
    ///
    /// [`off_affinity`]: FleetReport::off_affinity
    pub staging_transfers: u64,
    /// Tasks re-spawned on a surviving device after a kill.
    pub resubmits: u64,
    /// Tasks lost to device failures.
    pub tasks_lost: u64,
    /// Kill faults applied.
    pub kills: u64,
    /// Slowdown faults applied.
    pub slowdowns: u64,
    /// Spawn-weighted mean of per-device running occupancy.
    pub avg_warp_occupancy: f64,
}

/// A fleet of simulated Pagoda devices with routed placement and
/// failover, exposing the single-runtime `submit`/`wait` shape with
/// fleet-unique `u64` task keys. Implements [`Backend`], so anything
/// written against one runtime (the serving loop, the benches) drives a
/// fleet unchanged.
pub struct ClusterHandle {
    devices: Vec<Device>,
    placer: Placer,
    interconnect: PcieConfig,
    xfer_bytes: u64,
    retry: RetryPolicy,
    faults: Vec<FaultSpec>,
    next_fault: usize,
    fleet_now: SimTime,
    tasks: Vec<CTask>,
    pending: VecDeque<u64>,
    unresolved: u64,
    wait_timeout: Dur,
    run_ahead: Dur,
    parallel: bool,
    obs: Obs,
    mutation: Option<Mutation>,
    placements: u64,
    off_affinity: u64,
    staged: u64,
    resubmits: u64,
    lost: u64,
    kills: u64,
    slowdowns: u64,
}

impl ClusterHandle {
    /// Builds the fleet: validates the configuration
    /// ([`ClusterConfig::validate`]) and instantiates one
    /// [`PagodaRuntime`] per device.
    ///
    /// # Errors
    /// Any [`ConfigError`] from validation — [`ConfigError::NoDevices`],
    /// [`ConfigError::FleetDevice`], [`ConfigError::BadFault`],
    /// [`ConfigError::DuplicateDeviceId`], [`ConfigError::ZeroRunAhead`].
    pub fn new(cfg: ClusterConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let mut faults = cfg.faults.clone();
        faults.sort_by_key(|f| f.at); // stable: same-instant faults keep config order
        let wait_timeout = cfg
            .devices
            .iter()
            .map(|c| c.wait_timeout)
            .min()
            .expect("fleet is non-empty");
        let devices = cfg
            .devices
            .iter()
            .enumerate()
            .map(|(i, c)| Device {
                rt: PagodaRuntime::new(c.clone()),
                id: cfg.device_id(i),
                clock: ClockMap::identity(),
                alive: true,
                outstanding: BTreeMap::new(),
                spawned: 0,
                completed: 0,
                last_sample: None,
            })
            .collect();
        Ok(ClusterHandle {
            devices,
            placer: Placer::new(cfg.placement, cfg.seed, cfg.affinity_spread),
            interconnect: cfg.interconnect,
            xfer_bytes: cfg.xfer_bytes,
            retry: cfg.retry,
            faults,
            next_fault: 0,
            fleet_now: SimTime::ZERO,
            tasks: Vec::new(),
            pending: VecDeque::new(),
            unresolved: 0,
            wait_timeout,
            run_ahead: cfg.run_ahead,
            parallel: cfg.parallel,
            obs: Obs::off(),
            mutation: None,
            placements: 0,
            off_affinity: 0,
            staged: 0,
            resubmits: 0,
            lost: 0,
            kills: 0,
            slowdowns: 0,
        })
    }

    /// Records fleet-level events (task spans keyed by cluster task key,
    /// per-device [`DeviceSample`] tracks, `cluster_*` counters) to
    /// `obs`. The member runtimes are deliberately *not* attached: their
    /// device-local task ids would collide across the fleet.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Seeds one deliberate bug ([`Mutation`]) into the fleet's merge /
    /// accounting paths. Test-only instrumentation for validating
    /// invariant checkers — never set by configuration. See the
    /// [`mutation`](crate::mutation) module.
    pub fn inject_mutation(&mut self, m: Mutation) {
        self.mutation = Some(m);
    }

    /// Number of devices configured (dead ones included).
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// The fleet clock.
    pub fn now(&self) -> SimTime {
        self.fleet_now
    }

    /// The host clock of fleet device `device` (its device-local
    /// timeline, which legitimately runs ahead of the fleet clock);
    /// `None` for an out-of-range index.
    pub fn device_host_now(&self, device: usize) -> Option<SimTime> {
        self.devices.get(device).map(|d| d.rt.host_now())
    }

    /// Fleet-wide admission headroom: the sum over *live* devices of
    /// their host-side known-free entry counts. A kill shrinks `total`.
    pub fn capacity(&self) -> Capacity {
        let mut known_free = 0;
        let mut total = 0;
        for d in &self.devices {
            if d.alive {
                let c = d.rt.capacity();
                known_free += c.known_free;
                total += c.total;
            }
        }
        Capacity { known_free, total }
    }

    /// [`submit_for`](ClusterHandle::submit_for) on behalf of tenant 0.
    ///
    /// # Errors
    /// See [`submit_for`](ClusterHandle::submit_for).
    pub fn submit(&mut self, desc: TaskDesc) -> Result<u64, SubmitError> {
        self.submit_for(0, desc)
    }

    /// Routes one task: asks the placement policy for a device, charges
    /// the staging transfer if the choice is off `tenant`'s home set,
    /// and spawns through that device's non-blocking submit. Returns the
    /// fleet-unique task key.
    ///
    /// # Errors
    /// [`SubmitError::Full`] hands the descriptor back when the chosen
    /// device has no known-free entry (or no device is alive) — call
    /// [`sync`](ClusterHandle::sync) and
    /// [`advance_to`](ClusterHandle::advance_to), then retry, exactly as
    /// with a single runtime. A Full return charges nothing — no device
    /// clock moves. Task-shape errors propagate unchanged.
    pub fn submit_for(&mut self, tenant: u32, desc: TaskDesc) -> Result<u64, SubmitError> {
        let kept = desc.clone();
        let (device, id, off_home, staged) = self.route(tenant, desc, None)?;
        let key = self.tasks.len() as u64;
        self.tasks.push(CTask {
            tenant,
            desc: kept,
            attempts: 1,
            status: Status::InFlight { device },
            staged_on: None,
        });
        self.unresolved += 1;
        self.commit_spawn(key, tenant, device, id, off_home, staged, false);
        Ok(key)
    }

    /// Placement + staging charge + device-local spawn. `staged_on` is
    /// the device already holding the task's payload (resubmissions).
    ///
    /// The capacity pre-check matters: the staging transfer must only be
    /// charged when the spawn actually lands. Without it, a placement
    /// that comes back [`SubmitError::Full`] would leave the target's
    /// clock advanced, and every retry of the same task would re-charge
    /// the same transfer.
    fn route(
        &mut self,
        tenant: u32,
        desc: TaskDesc,
        staged_on: Option<usize>,
    ) -> Result<(usize, TaskId, bool, bool), SubmitError> {
        let views: Vec<DeviceView> = self.devices.iter().map(Device::view).collect();
        let Some(device) = self.placer.place(tenant, &views) else {
            return Err(SubmitError::Full(desc));
        };
        let off_home = !self.placer.is_home(tenant, device, self.devices.len());
        let d = &mut self.devices[device];
        if !d.rt.capacity().has_room() {
            return Err(SubmitError::Full(desc));
        }
        let staged = off_home && staged_on != Some(device);
        if staged {
            // Tenant state is staged onto the target before the spawn
            // can land; modeled as a one-hop transfer on the fleet
            // interconnect, serialized on the target device's timeline.
            let stage = self
                .interconnect
                .transfer_time(Direction::HostToDevice, self.xfer_bytes);
            let at = d.rt.host_now() + stage;
            d.rt.advance_to(at);
        }
        let id = d.rt.submit(desc)?;
        Ok((device, id, off_home, staged))
    }

    /// Bookkeeping shared by first spawns and resubmissions.
    #[allow(clippy::too_many_arguments)]
    fn commit_spawn(
        &mut self,
        key: u64,
        tenant: u32,
        device: usize,
        id: TaskId,
        off_home: bool,
        staged: bool,
        resubmit: bool,
    ) {
        let d = &mut self.devices[device];
        d.outstanding.insert(key, id);
        d.spawned += 1;
        self.tasks[key as usize].status = Status::InFlight { device };
        self.tasks[key as usize].staged_on = Some(device);
        self.placements += 1;
        self.obs.count(Counter::ClusterPlacements, 1);
        if off_home {
            self.off_affinity += 1;
            self.obs.count(Counter::ClusterOffAffinity, 1);
        }
        if staged {
            let delta = if self.mutation == Some(Mutation::DoubleChargeStaging) {
                2
            } else {
                1
            };
            self.staged += delta;
            self.obs.count(Counter::ClusterStagedTransfers, delta);
        }
        if resubmit {
            self.tasks[key as usize].attempts += 1;
            self.resubmits += 1;
            self.obs.count(Counter::ClusterResubmits, 1);
        } else {
            self.obs
                .task(self.fleet_now.as_ps(), key, TaskState::Spawned);
            self.obs.tenant(key, tenant);
        }
        // Both first spawns and resubmissions: profiling charges the
        // task to the device that finally ran it (last route wins).
        self.obs.route(key, device as u32);
        let obs = self.obs.clone();
        self.devices[device].sample(self.fleet_now, &obs, false);
    }

    /// Refreshes the fleet's completion view: one §4.2.2 aggregate
    /// copy-back per live device, a deterministic merge of every
    /// completion observed, then a drain of the resubmission queue onto
    /// devices with room. Costs simulated time on each device, like
    /// [`PagodaRuntime::sync_table`].
    ///
    /// The per-device half (copy-back + completion scan) is independent
    /// across devices and runs on the thread pool under
    /// [`ClusterConfig::parallel`]; the merge orders all observed
    /// completions by `(fleet instant, device, key)` before applying
    /// them, so the completion/resubmission sequence is identical
    /// however the scan was scheduled.
    pub fn sync(&mut self) {
        // The mark precedes the batch: everything applied before the
        // next mark belongs to this sync point, and (gate honored) maps
        // to a fleet instant at or before it.
        self.obs.sync_mark(self.fleet_now.as_ps(), SyncKind::Sync);
        let gate = self.mutation != Some(Mutation::SkipCausalGate);
        let merged = self.sync_devices(gate);
        self.apply_completions(merged);
        self.sample_all();
        self.drain_pending();
    }

    /// Phase 1 of [`sync`](ClusterHandle::sync): per-device copy-back +
    /// completion scan, returning the merged `(at, device, key)` list.
    fn sync_devices(&mut self, gate: bool) -> Vec<(SimTime, usize, u64)> {
        type DeviceScan = (usize, Vec<(SimTime, u64)>, ObsFork);
        let fleet_now = self.fleet_now;
        let obs = self.obs.clone();
        let mut merged: Vec<(SimTime, usize, u64)> = Vec::new();
        if self.parallel {
            let work: Vec<(usize, &mut Device, ObsFork)> = self
                .devices
                .iter_mut()
                .enumerate()
                .filter(|(_, d)| d.alive)
                .map(|(i, d)| (i, d, obs.fork()))
                .collect();
            let scans: Vec<DeviceScan> = work
                .into_par_iter()
                .map(|(i, d, fork)| {
                    d.rt.sync_table();
                    d.sample(fleet_now, &fork.obs(), false);
                    let finished = d.scan_finished(fleet_now, gate);
                    (i, finished, fork)
                })
                .collect();
            // Joins happen in device order regardless of which thread
            // ran which device — the recorder sees the serial stream.
            for (i, finished, fork) in scans {
                obs.join(fork);
                merged.extend(finished.into_iter().map(|(at, key)| (at, i, key)));
            }
        } else {
            for (i, d) in self.devices.iter_mut().enumerate() {
                if !d.alive {
                    continue;
                }
                d.rt.sync_table();
                d.sample(fleet_now, &obs, false);
                merged.extend(
                    d.scan_finished(fleet_now, gate)
                        .into_iter()
                        .map(|(at, key)| (at, i, key)),
                );
            }
        }
        // The fleet-level tie-break: completions apply in fleet-time
        // order, ties broken by device index then task key — the same
        // shape as the engine's (time, seq) ordering.
        if self.mutation != Some(Mutation::SkipMergeSort) {
            merged.sort_unstable();
        }
        merged
    }

    /// Phase 2 of [`sync`](ClusterHandle::sync): applies merged
    /// completions in `(at, device, key)` order.
    fn apply_completions(&mut self, merged: Vec<(SimTime, usize, u64)>) {
        for (at, device, key) in merged {
            let id = self.devices[device].outstanding.remove(&key);
            self.devices[device].completed += 1;
            self.tasks[key as usize].status = Status::Done { at };
            self.unresolved -= 1;
            // Replay the winning attempt's device timeline under the
            // fleet key (the runtime tracked it under its own TaskId):
            // without these cuts, fleet-level profiling would collapse
            // staging, MTB wait, and SMM wait into one opaque span.
            if self.obs.enabled() {
                if let Some(tr) = id.and_then(|id| self.devices[device].rt.trace(id).ok()) {
                    for (t, st) in [
                        (tr.entry_visible, TaskState::Enqueued),
                        (tr.schedulable, TaskState::Placed),
                        (tr.first_exec, TaskState::Running),
                    ] {
                        if let Some(t) = t {
                            self.obs.task(t.as_ps(), key, st);
                        }
                    }
                }
            }
            self.obs.task(at.as_ps(), key, TaskState::Freed);
        }
    }

    /// Change-detected post-merge device samples, fleet order.
    fn sample_all(&mut self) {
        let obs = self.obs.clone();
        let now = self.fleet_now;
        for d in &mut self.devices {
            d.sample(now, &obs, false);
        }
    }

    /// Re-places queued (stranded) tasks onto surviving devices, FIFO.
    /// Stops at the first task that finds no room; if no device is left
    /// alive, the whole queue is lost.
    fn drain_pending(&mut self) {
        if !self.devices.iter().any(|d| d.alive) {
            while let Some(key) = self.pending.pop_front() {
                self.mark_lost(key, self.fleet_now);
            }
            return;
        }
        while let Some(&key) = self.pending.front() {
            let tenant = self.tasks[key as usize].tenant;
            let desc = self.tasks[key as usize].desc.clone();
            let staged_on = self.tasks[key as usize].staged_on;
            match self.route(tenant, desc, staged_on) {
                Ok((device, id, off_home, staged)) => {
                    self.pending.pop_front();
                    self.commit_spawn(key, tenant, device, id, off_home, staged, true);
                }
                Err(SubmitError::Full(_)) => break,
                Err(e) => unreachable!("descriptor spawned once, cannot be invalid now: {e}"),
            }
        }
    }

    fn mark_lost(&mut self, key: u64, at: SimTime) {
        self.tasks[key as usize].status = Status::Lost { at };
        self.unresolved -= 1;
        self.lost += 1;
        self.obs.count(Counter::ClusterTasksLost, 1);
        self.obs.task(at.as_ps(), key, TaskState::Freed);
    }

    /// Advances the fleet clock to `t` (no-op if in the past), stepping
    /// every live device window by window and applying any scheduled
    /// faults whose instant is reached on the way.
    pub fn advance_to(&mut self, t: SimTime) {
        while self.next_fault < self.faults.len() && self.faults[self.next_fault].at <= t {
            let f = self.faults[self.next_fault];
            self.next_fault += 1;
            let at = f.at.max(self.fleet_now);
            self.step_devices(at);
            self.apply_fault(&f, at);
        }
        self.step_devices(t);
    }

    /// The window loop — the fleet's driver. Serial and parallel modes
    /// walk the *same* horizons (a pure function of the interval and
    /// [`ClusterConfig::run_ahead`]); inside a window each live device
    /// advances alone, so the fan-out is free of cross-device ordering.
    /// Observability forks are joined back in device order, making the
    /// recorder stream independent of thread scheduling.
    fn step_devices(&mut self, t: SimTime) {
        if t <= self.fleet_now {
            return;
        }
        let obs = self.obs.clone();
        for h in Horizon::new(self.run_ahead).windows(self.fleet_now, t) {
            if self.parallel {
                let work: Vec<(&mut Device, ObsFork)> = self
                    .devices
                    .iter_mut()
                    .filter(|d| d.alive)
                    .map(|d| (d, obs.fork()))
                    .collect();
                let forks: Vec<ObsFork> = work
                    .into_par_iter()
                    .map(|(d, fork)| {
                        d.rt.advance_to(d.clock.local_of(h));
                        d.sample(h, &fork.obs(), false);
                        fork
                    })
                    .collect();
                for fork in forks {
                    obs.join(fork);
                }
            } else {
                for d in &mut self.devices {
                    if d.alive {
                        d.rt.advance_to(d.clock.local_of(h));
                        d.sample(h, &obs, false);
                    }
                }
            }
            self.fleet_now = h;
        }
    }

    fn apply_fault(&mut self, f: &FaultSpec, at: SimTime) {
        let obs = self.obs.clone();
        match f.kind {
            FaultKind::Slow { factor } => {
                if !self.devices[f.device].alive {
                    return;
                }
                self.devices[f.device].clock.set_rate(at, 1.0 / factor);
                self.slowdowns += 1;
                self.obs.count(Counter::ClusterDeviceSlowdowns, 1);
                // Forced: the observable tuple is unchanged by a
                // slowdown, but the instant belongs on the track.
                self.devices[f.device].sample(at, &obs, true);
            }
            FaultKind::Kill => {
                if !self.devices[f.device].alive {
                    return;
                }
                // Last harvest: completions already in host memory (or
                // observable via one final copy-back) survive the kill.
                // The mark tells causality checkers this batch is
                // exempt from the harvest gate: the device's local
                // clock may have run past the kill instant.
                self.obs.sync_mark(at.as_ps(), SyncKind::KillHarvest);
                self.devices[f.device].rt.sync_table();
                let finished = {
                    let d = &mut self.devices[f.device];
                    d.sample(at, &obs, false);
                    d.scan_finished(at, false)
                };
                let mut merged: Vec<(SimTime, usize, u64)> = finished
                    .into_iter()
                    .map(|(t, key)| (t, f.device, key))
                    .collect();
                merged.sort_unstable();
                self.apply_completions(merged);
                self.devices[f.device].alive = false;
                self.kills += 1;
                self.obs.count(Counter::ClusterDeviceKills, 1);
                let stranded: Vec<u64> =
                    self.devices[f.device].outstanding.keys().copied().collect();
                self.devices[f.device].outstanding.clear();
                let mut dropped_one = false;
                for key in stranded {
                    // The payload died with the device: a resubmission
                    // must stage again wherever it lands off-home.
                    self.tasks[key as usize].staged_on = None;
                    let retry = match self.retry {
                        RetryPolicy::Fail => false,
                        RetryPolicy::Resubmit { max_attempts } => {
                            self.tasks[key as usize].attempts < max_attempts
                        }
                    };
                    if retry {
                        if self.mutation == Some(Mutation::DropResubmit) && !dropped_one {
                            // Seeded bug: the task vanishes — no queue
                            // entry, no loss record, no Freed event.
                            // `unresolved` still drops so the run
                            // terminates; only end-of-run conservation
                            // can see the hole.
                            dropped_one = true;
                            self.tasks[key as usize].status = Status::Lost { at };
                            self.unresolved -= 1;
                            continue;
                        }
                        self.tasks[key as usize].status = Status::Queued;
                        self.pending.push_back(key);
                    } else {
                        self.mark_lost(key, at);
                    }
                }
                self.devices[f.device].sample(at, &obs, true);
                self.drain_pending();
            }
        }
    }

    /// Where task `key` is in its lifecycle.
    ///
    /// # Errors
    /// [`PagodaError::UnknownTask`] for a key this fleet never issued.
    pub fn status(&self, key: u64) -> Result<TaskStatus, PagodaError> {
        let t = self
            .tasks
            .get(key as usize)
            .ok_or(PagodaError::UnknownTask {
                task: TaskId(key),
                spawned: self.tasks.len() as u64,
            })?;
        Ok(match t.status {
            Status::InFlight { .. } => TaskStatus::InFlight,
            Status::Queued => TaskStatus::Queued,
            Status::Done { .. } => TaskStatus::Done,
            Status::Lost { .. } => TaskStatus::Lost,
        })
    }

    /// Fleet index of the device `key` is currently in flight on
    /// (`None` once done, lost, or while queued for resubmission).
    pub fn device_of(&self, key: u64) -> Option<usize> {
        match self.tasks.get(key as usize)?.status {
            Status::InFlight { device } => Some(device),
            _ => None,
        }
    }

    /// Fleet instant at which `key`'s output landed in host memory;
    /// `None` until then (for a lost task, the instant it was given up).
    pub fn completion_time(&self, key: u64) -> Option<SimTime> {
        match self.tasks.get(key as usize)?.status {
            Status::Done { at } | Status::Lost { at } => Some(at),
            _ => None,
        }
    }

    /// Non-blocking completion probe: one [`sync`](ClusterHandle::sync),
    /// then reports whether `key` is done.
    ///
    /// # Errors
    /// [`PagodaError::UnknownTask`] for a foreign key;
    /// [`PagodaError::TaskLost`] once the retry policy has given up on
    /// the task.
    pub fn check(&mut self, key: u64) -> Result<bool, PagodaError> {
        if key as usize >= self.tasks.len() {
            return Err(PagodaError::UnknownTask {
                task: TaskId(key),
                spawned: self.tasks.len() as u64,
            });
        }
        self.sync();
        match self.tasks[key as usize].status {
            Status::Done { .. } => Ok(true),
            Status::Lost { .. } => Err(PagodaError::TaskLost {
                task: TaskId(key),
                attempts: self.tasks[key as usize].attempts,
            }),
            _ => Ok(false),
        }
    }

    /// Blocks (in simulated time) until `key` completes: sync, then idle
    /// the fleet by its polling slice, repeatedly — the single-runtime
    /// `wait` loop, fleet-wide. Returns the completion instant.
    ///
    /// # Errors
    /// [`PagodaError::UnknownTask`] for a foreign key;
    /// [`PagodaError::TaskLost`] if a device died under the task and the
    /// retry policy gave up.
    pub fn wait(&mut self, key: u64) -> Result<SimTime, PagodaError> {
        if key as usize >= self.tasks.len() {
            return Err(PagodaError::UnknownTask {
                task: TaskId(key),
                spawned: self.tasks.len() as u64,
            });
        }
        let mut iterations = 0u64;
        loop {
            match self.tasks[key as usize].status {
                Status::Done { at } => return Ok(at),
                Status::Lost { .. } => {
                    return Err(PagodaError::TaskLost {
                        task: TaskId(key),
                        attempts: self.tasks[key as usize].attempts,
                    })
                }
                _ => {}
            }
            self.sync();
            if matches!(
                self.tasks[key as usize].status,
                Status::InFlight { .. } | Status::Queued
            ) {
                self.advance_to(self.fleet_now + self.wait_timeout);
            }
            iterations += 1;
            assert!(iterations < 100_000_000, "cluster wait livelocked");
        }
    }

    /// Runs the fleet until every issued task is done or lost.
    pub fn wait_all(&mut self) {
        let mut iterations = 0u64;
        while self.unresolved > 0 {
            self.sync();
            if self.unresolved > 0 {
                self.advance_to(self.fleet_now + self.wait_timeout);
            }
            iterations += 1;
            assert!(iterations < 100_000_000, "cluster wait_all livelocked");
        }
    }

    /// Per-device [`desim`] engine counters, fleet order — the
    /// determinism fingerprint: two runs of the same configuration must
    /// produce identical vectors, serial or parallel.
    pub fn engine_stats(&self) -> Vec<EngineStats> {
        self.devices.iter().map(|d| d.rt.engine_stats()).collect()
    }

    /// Aggregates the run so far.
    pub fn report(&mut self) -> FleetReport {
        let mut devices = Vec::with_capacity(self.devices.len());
        let mut occ_weighted = 0.0;
        let mut occ_weight = 0u64;
        for d in self.devices.iter_mut() {
            let occ = d.rt.report().avg_running_occupancy;
            if d.spawned > 0 {
                occ_weighted += occ * d.spawned as f64;
                occ_weight += d.spawned;
            }
            devices.push(DeviceReport {
                device: d.id,
                alive: d.alive,
                spawned: d.spawned,
                completed: d.completed,
                avg_running_occupancy: occ,
            });
        }
        FleetReport {
            devices,
            makespan: self.fleet_now,
            completed: self.tasks.len() as u64 - self.lost - self.unresolved,
            placements: self.placements,
            off_affinity: self.off_affinity,
            staging_transfers: self.staged,
            resubmits: self.resubmits,
            tasks_lost: self.lost,
            kills: self.kills,
            slowdowns: self.slowdowns,
            avg_warp_occupancy: if occ_weight > 0 {
                occ_weighted / occ_weight as f64
            } else {
                0.0
            },
        }
    }
}

/// The fleet behind the one executor surface: [`pagoda_serve`]'s loop —
/// or anything else written against [`Backend`] — drives a
/// [`ClusterHandle`] exactly as it drives one runtime. A task lost to a
/// device failure "completes" at its loss instant from the serving
/// layer's viewpoint (its sojourn ends there); the fleet's
/// `cluster_tasks_lost` counter and [`FleetReport::tasks_lost`] record
/// the failure.
///
/// [`pagoda_serve`]: https://docs.rs/pagoda-serve
impl Backend for ClusterHandle {
    fn submit(&mut self, tenant: u32, desc: TaskDesc) -> Result<u64, SubmitError> {
        self.submit_for(tenant, desc)
    }

    fn capacity(&self) -> Capacity {
        ClusterHandle::capacity(self)
    }

    fn check(&mut self, key: u64) -> Result<bool, PagodaError> {
        ClusterHandle::check(self, key)
    }

    fn wait(&mut self, key: u64) -> Result<SimTime, PagodaError> {
        ClusterHandle::wait(self, key)
    }

    fn observed_done(&self, key: u64) -> bool {
        matches!(
            self.tasks
                .get(key as usize)
                .expect("invariant: callers only pass keys this fleet issued")
                .status,
            Status::Done { .. } | Status::Lost { .. }
        )
    }

    fn completion_time(&self, key: u64) -> Option<SimTime> {
        ClusterHandle::completion_time(self, key)
    }

    fn now(&self) -> SimTime {
        self.fleet_now
    }

    fn advance_to(&mut self, t: SimTime) {
        ClusterHandle::advance_to(self, t);
    }

    fn sync(&mut self) {
        ClusterHandle::sync(self);
    }

    fn wait_timeout(&self) -> Dur {
        self.wait_timeout
    }

    fn warp_occupancy(&mut self) -> f64 {
        self.report().avg_warp_occupancy
    }

    fn traces(&self) -> Vec<TaskTrace> {
        // Fleet keys do not map to one runtime's trace ids; per-device
        // timelines are exported through `pagoda-obs` instead.
        Vec::new()
    }

    fn attach_obs(&mut self, obs: Obs) {
        ClusterHandle::attach_obs(self, obs);
    }

    fn engine_stats(&self) -> Vec<EngineStats> {
        ClusterHandle::engine_stats(self)
    }

    fn num_devices(&self) -> u32 {
        self.devices.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::placement::Placement;
    use gpu_sim::WarpWork;

    /// ~90 us of device time — long enough that a fault scheduled a few
    /// microseconds in lands while work is still in flight.
    fn task() -> TaskDesc {
        TaskDesc::uniform(64, WarpWork::compute(200_000, 8.0))
    }

    fn run_batch(mut fleet: ClusterHandle, n: usize) -> (Vec<u64>, ClusterHandle) {
        let mut keys = Vec::new();
        for _ in 0..n {
            loop {
                match fleet.submit(task()) {
                    Ok(k) => {
                        keys.push(k);
                        break;
                    }
                    Err(SubmitError::Full(_)) => {
                        fleet.sync();
                        if !fleet.capacity().has_room() {
                            let t = fleet.now() + Dur::from_us(20);
                            fleet.advance_to(t);
                        }
                    }
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
        }
        fleet.wait_all();
        (keys, fleet)
    }

    #[test]
    fn uniform_fleet_completes_and_spreads() {
        let fleet = ClusterHandle::new(ClusterConfig::uniform(4)).unwrap();
        let (keys, mut fleet) = run_batch(fleet, 64);
        for k in keys {
            assert_eq!(fleet.status(k).unwrap(), TaskStatus::Done);
            assert!(fleet.completion_time(k).is_some());
        }
        let rep = fleet.report();
        assert_eq!(rep.completed, 64);
        assert_eq!(rep.tasks_lost, 0);
        assert_eq!(rep.placements, 64);
        for d in &rep.devices {
            assert!(d.spawned > 0, "device {} got nothing", d.device);
            assert_eq!(d.spawned, d.completed);
        }
    }

    #[test]
    fn kill_with_fail_policy_loses_in_flight_and_shrinks_capacity() {
        let mut cfg = ClusterConfig::uniform(2);
        cfg.retry = RetryPolicy::Fail;
        cfg.faults = vec![FaultSpec {
            at: SimTime::from_us(5),
            device: 0,
            kind: FaultKind::Kill,
        }];
        let mut fleet = ClusterHandle::new(cfg).unwrap();
        let full = fleet.capacity().total;
        let keys: Vec<u64> = (0..32).map(|_| fleet.submit(task()).unwrap()).collect();
        fleet.wait_all();
        assert_eq!(fleet.capacity().total, full / 2, "kill halves admission");
        let rep = fleet.report();
        assert_eq!(rep.kills, 1);
        assert!(rep.tasks_lost > 0, "in-flight work on device 0 was lost");
        assert_eq!(rep.completed + rep.tasks_lost, 32);
        let lost: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|&k| fleet.status(k).unwrap() == TaskStatus::Lost)
            .collect();
        assert_eq!(lost.len() as u64, rep.tasks_lost);
        let err = fleet.wait(lost[0]).unwrap_err();
        assert!(matches!(err, PagodaError::TaskLost { .. }));
    }

    #[test]
    fn kill_with_resubmit_policy_loses_nothing() {
        let mut cfg = ClusterConfig::uniform(2);
        cfg.retry = RetryPolicy::Resubmit { max_attempts: 3 };
        cfg.faults = vec![FaultSpec {
            at: SimTime::from_us(5),
            device: 0,
            kind: FaultKind::Kill,
        }];
        let fleet = ClusterHandle::new(cfg).unwrap();
        let (keys, mut fleet) = run_batch(fleet, 32);
        for k in keys {
            assert_eq!(fleet.status(k).unwrap(), TaskStatus::Done);
        }
        let rep = fleet.report();
        assert_eq!(rep.tasks_lost, 0);
        assert!(rep.resubmits > 0, "stranded tasks were re-placed");
        assert_eq!(rep.completed, 32);
        assert!(!rep.devices[0].alive);
        assert_eq!(
            rep.devices[0].completed + rep.devices[1].completed,
            32,
            "everything lands despite the kill"
        );
    }

    #[test]
    fn slowdown_stretches_makespan() {
        // Long tasks (~500 us device time) so completion genuinely needs
        // fleet time beyond the submit burst's host-clock run-ahead.
        let run = |faults: Vec<FaultSpec>| {
            let mut cfg = ClusterConfig::uniform(2);
            cfg.faults = faults;
            let mut fleet = ClusterHandle::new(cfg).unwrap();
            for _ in 0..8 {
                fleet
                    .submit(TaskDesc::uniform(64, WarpWork::compute(2_000_000, 8.0)))
                    .expect("empty fleet has room");
            }
            fleet.wait_all();
            (fleet.report().makespan, fleet.report().slowdowns)
        };
        let (healthy, s0) = run(vec![]);
        let (degraded, s1) = run(vec![FaultSpec {
            at: SimTime::from_us(2),
            device: 0,
            kind: FaultKind::Slow { factor: 8.0 },
        }]);
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert!(
            degraded > healthy,
            "slowdown must cost fleet time: {degraded:?} vs {healthy:?}"
        );
    }

    #[test]
    fn off_affinity_pays_and_counts() {
        let mut cfg = ClusterConfig::uniform(4);
        cfg.placement = Placement::TenantAffinity;
        cfg.affinity_spread = 1;
        for c in &mut cfg.devices {
            c.rows_per_column = 1; // 48 entries per device: small enough to flood
        }
        let mut fleet = ClusterHandle::new(cfg).unwrap();
        // Tenant 2's home is device 2; flood it past one column's room
        // so placement spills to non-home devices.
        let mut spilled = 0;
        for _ in 0..96 {
            match fleet.submit_for(2, task()) {
                Ok(k) => {
                    if fleet.device_of(k) != Some(2) {
                        spilled += 1;
                    }
                }
                Err(SubmitError::Full(_)) => {
                    fleet.sync();
                    let t = fleet.now() + Dur::from_us(20);
                    fleet.advance_to(t);
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        fleet.wait_all();
        let rep = fleet.report();
        assert!(rep.off_affinity > 0, "flooded tenant must spill off-home");
        assert_eq!(rep.off_affinity, spilled);
        // With no kills, every off-home spawn genuinely crossed devices.
        assert_eq!(rep.staging_transfers, rep.off_affinity);
    }

    #[test]
    fn full_submit_charges_no_device_time() {
        let mut cfg = ClusterConfig::uniform(2);
        cfg.placement = Placement::TenantAffinity;
        cfg.affinity_spread = 1;
        for c in &mut cfg.devices {
            c.rows_per_column = 1;
        }
        let mut fleet = ClusterHandle::new(cfg).unwrap();
        // Flood the whole fleet for one tenant until nothing has room.
        let mut guard = 0;
        loop {
            match fleet.submit_for(0, task()) {
                Ok(_) => {}
                Err(SubmitError::Full(_)) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
            guard += 1;
            assert!(guard < 10_000, "fleet never filled");
        }
        let before: Vec<_> = (0..2).map(|i| fleet.device_host_now(i)).collect();
        // A rejected placement must not advance any device's clock —
        // otherwise every retry of the same descriptor re-charges the
        // staging transfer it never used.
        for _ in 0..3 {
            assert!(matches!(
                fleet.submit_for(0, task()),
                Err(SubmitError::Full(_))
            ));
        }
        let after: Vec<_> = (0..2).map(|i| fleet.device_host_now(i)).collect();
        assert_eq!(before, after, "Full submits must charge nothing");
    }

    #[test]
    fn same_config_same_fingerprint() {
        let build = || {
            let mut cfg = ClusterConfig::uniform(3);
            cfg.placement = Placement::PowerOfTwo;
            cfg.seed = 99;
            cfg.faults = vec![FaultSpec {
                at: SimTime::from_us(10),
                device: 1,
                kind: FaultKind::Kill,
            }];
            ClusterHandle::new(cfg).unwrap()
        };
        let (keys_a, mut a) = run_batch(build(), 40);
        let (keys_b, mut b) = run_batch(build(), 40);
        assert_eq!(a.engine_stats(), b.engine_stats());
        let times_a: Vec<_> = keys_a.iter().map(|&k| a.completion_time(k)).collect();
        let times_b: Vec<_> = keys_b.iter().map(|&k| b.completion_time(k)).collect();
        assert_eq!(times_a, times_b);
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn parallel_driver_matches_serial_byte_for_byte() {
        let run = |parallel: bool| {
            let mut cfg = ClusterConfig::uniform(3);
            cfg.placement = Placement::PowerOfTwo;
            cfg.seed = 7;
            cfg.parallel = parallel;
            // A window that does not divide the 20 us polling slice, so
            // every advance crosses several partial windows.
            cfg.run_ahead = Dur::from_us(7);
            cfg.faults = vec![FaultSpec {
                at: SimTime::from_us(9),
                device: 1,
                kind: FaultKind::Kill,
            }];
            let (obs, rec) = Obs::recording();
            let mut fleet = ClusterHandle::new(cfg).unwrap();
            fleet.attach_obs(obs);
            let (keys, mut fleet) = run_batch(fleet, 32);
            let times: Vec<_> = keys.iter().map(|&k| fleet.completion_time(k)).collect();
            (
                rec.snapshot().to_json(),
                times,
                fleet.engine_stats(),
                fleet.report(),
            )
        };
        let serial = run(false);
        let parallel = run(true);
        assert_eq!(serial.0, parallel.0, "recorder streams diverged");
        assert_eq!(serial.1, parallel.1, "completion times diverged");
        assert_eq!(serial.2, parallel.2, "engine stats diverged");
        assert_eq!(serial.3, parallel.3, "fleet reports diverged");
    }

    #[test]
    fn obs_records_device_tracks_and_fleet_counters() {
        let (obs, rec) = Obs::recording();
        let mut cfg = ClusterConfig::uniform(2);
        cfg.faults = vec![FaultSpec {
            at: SimTime::from_us(5),
            device: 1,
            kind: FaultKind::Kill,
        }];
        let mut fleet = ClusterHandle::new(cfg).unwrap();
        fleet.attach_obs(obs);
        let (_, mut fleet) = {
            let keys: Vec<u64> = (0..16).map(|_| fleet.submit(task()).unwrap()).collect();
            fleet.wait_all();
            (keys, fleet)
        };
        let rep = fleet.report();
        let snap = rec.snapshot();
        assert_eq!(snap.counter(Counter::ClusterPlacements), rep.placements);
        assert_eq!(snap.counter(Counter::ClusterDeviceKills), 1);
        assert_eq!(snap.counter(Counter::ClusterResubmits), rep.resubmits);
        assert_eq!(
            snap.counter(Counter::ClusterStagedTransfers),
            rep.staging_transfers
        );
        assert!(
            snap.devices.iter().any(|s| s.device == 1 && !s.alive),
            "kill must be visible on the device track"
        );
        assert!(snap.devices.iter().any(|s| s.device == 0 && s.alive));
        // Every task got a Spawned and a Freed span edge under its key.
        for key in 0..16u64 {
            let tl = snap.task_timeline(key);
            assert!(tl[0].is_some(), "task {key} has no Spawned event");
            assert!(tl[4].is_some(), "task {key} has no Freed event");
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        assert!(matches!(
            ClusterHandle::new(ClusterConfig::uniform(0)),
            Err(ConfigError::NoDevices)
        ));
        let mut cfg = ClusterConfig::uniform(2);
        cfg.faults = vec![FaultSpec {
            at: SimTime::ZERO,
            device: 5,
            kind: FaultKind::Kill,
        }];
        assert!(matches!(
            ClusterHandle::new(cfg),
            Err(ConfigError::BadFault { .. })
        ));
        let mut cfg = ClusterConfig::uniform(2);
        cfg.faults = vec![FaultSpec {
            at: SimTime::ZERO,
            device: 0,
            kind: FaultKind::Slow { factor: 0.5 },
        }];
        assert!(matches!(
            ClusterHandle::new(cfg),
            Err(ConfigError::BadFault { .. })
        ));
        let mut cfg = ClusterConfig::uniform(2);
        cfg.run_ahead = Dur::ZERO;
        assert!(matches!(
            ClusterHandle::new(cfg),
            Err(ConfigError::ZeroRunAhead)
        ));
    }

    #[test]
    fn serve_on_drives_the_fleet_backend() {
        use pagoda_serve::{serve_on, Policy, ServeConfig, TenantSpec};
        use workloads::Bench;

        let video = TenantSpec::new("video", Bench::Dct, 4.0e5);
        let crypto = TenantSpec::new("crypto", Bench::Des3, 8.0e5);
        let mut cfg = ServeConfig::new(vec![video, crypto], Policy::Fifo);
        cfg.tasks_per_tenant = 24;
        let mut fleet = ClusterHandle::new(ClusterConfig::uniform(2)).unwrap();
        let out = serve_on(&cfg, &mut fleet).unwrap();
        let rep = fleet.report();
        let offered: u64 = out.report.tenants.iter().map(|t| t.offered).sum();
        assert_eq!(offered, 48);
        assert_eq!(rep.completed, rep.placements - rep.resubmits);
        assert!(rep.completed > 0);
        assert_eq!(rep.tasks_lost, 0);
        assert!(out
            .records
            .iter()
            .all(|r| r.spawn_us.is_none() || r.spawn_us.is_some()));
    }
}
