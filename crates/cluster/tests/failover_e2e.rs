//! End-to-end failover: kill one device of four mid-run and lose zero
//! tasks under the resubmit policy — and do it *deterministically*, with
//! identical event traces across repeated runs of the same seed.

use desim::{Dur, SimTime};
use gpu_sim::WarpWork;
use pagoda_cluster::{
    ClusterConfig, ClusterHandle, FaultKind, FaultSpec, Placement, RetryPolicy, TaskStatus,
};
use pagoda_core::{SubmitError, TaskDesc};

const TASKS: usize = 96;

fn kill_one_of_four() -> ClusterConfig {
    let mut cfg = ClusterConfig::uniform(4);
    cfg.placement = Placement::PowerOfTwo;
    cfg.seed = 0xdead_f1ee7;
    cfg.retry = RetryPolicy::Resubmit { max_attempts: 4 };
    cfg.faults = vec![FaultSpec {
        at: SimTime::from_us(40),
        device: 2,
        kind: FaultKind::Kill,
    }];
    cfg
}

/// ~230 us of device time per task, so plenty is in flight at the
/// 40 us kill.
fn task() -> TaskDesc {
    TaskDesc::uniform(96, WarpWork::compute(500_000, 8.0))
}

/// Runs the scenario to completion, returning the fleet plus the event
/// trace a determinism check compares: per-task completion instants and
/// per-device engine counters.
fn run() -> (ClusterHandle, Vec<(u64, Option<SimTime>)>) {
    let mut fleet = ClusterHandle::new(kill_one_of_four()).expect("valid config");
    let mut keys = Vec::with_capacity(TASKS);
    while keys.len() < TASKS {
        match fleet.submit(task()) {
            Ok(k) => keys.push(k),
            Err(SubmitError::Full(_)) => {
                fleet.sync();
                if !fleet.capacity().has_room() {
                    let t = fleet.now() + Dur::from_us(20);
                    fleet.advance_to(t);
                }
            }
            Err(e) => panic!("task rejected: {e}"),
        }
    }
    fleet.wait_all();
    let trace = keys
        .iter()
        .map(|&k| (k, fleet.completion_time(k)))
        .collect();
    (fleet, trace)
}

#[test]
fn kill_one_of_four_loses_zero_tasks_under_resubmit() {
    let (mut fleet, _) = run();
    for key in 0..TASKS as u64 {
        assert_eq!(
            fleet.status(key).expect("key issued"),
            TaskStatus::Done,
            "task {key} did not survive the kill"
        );
    }
    let rep = fleet.report();
    assert_eq!(rep.tasks_lost, 0, "resubmit policy must lose nothing");
    assert_eq!(rep.completed, TASKS as u64);
    assert_eq!(rep.kills, 1);
    assert!(rep.resubmits > 0, "the kill must strand some work");
    assert!(!rep.devices[2].alive);
    // The dead device's TaskTable left the admission pool.
    let per_device = rep.devices[0].spawned; // all devices share one config
    assert!(per_device > 0);
    let live_total: u32 = fleet.capacity().total;
    assert_eq!(
        live_total,
        3 * 1536,
        "capacity shrinks to the three survivors"
    );
}

#[test]
fn failover_run_is_deterministic() {
    let (mut a, trace_a) = run();
    let (mut b, trace_b) = run();
    assert_eq!(trace_a, trace_b, "completion traces diverged");
    assert_eq!(a.engine_stats(), b.engine_stats(), "engine traces diverged");
    assert_eq!(a.report(), b.report(), "fleet reports diverged");
}
