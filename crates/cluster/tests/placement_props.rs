//! Property-based tests over the placement policies: routing must be a
//! deterministic function of (seed, view sequence) and must never touch
//! a dead device, for every policy and any fleet state the fleet manager
//! could present.

use pagoda_cluster::{DeviceView, Placement, Placer};
use proptest::prelude::*;

const POLICIES: [Placement; 4] = [
    Placement::RoundRobin,
    Placement::LeastOutstanding,
    Placement::PowerOfTwo,
    Placement::TenantAffinity,
];

fn arb_view() -> impl Strategy<Value = DeviceView> {
    (prop::bool::ANY, 0u32..=64, 0u32..=128).prop_map(|(alive, known_free, outstanding)| {
        DeviceView {
            alive,
            known_free,
            outstanding,
        }
    })
}

/// A placement round: the per-device views and the tenant asking.
fn arb_round(n: usize) -> impl Strategy<Value = (Vec<DeviceView>, u32)> {
    (prop::collection::vec(arb_view(), n), 0u32..=16)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn same_seed_replays_byte_identical_placements(
        seed in 0u64..=0xffff_ffff,
        spread in 1u32..=4,
        n in 1usize..=8,
        rounds in prop::collection::vec((0usize..64, 0u32..=16), 1..64),
    ) {
        // Materialize one shared view sequence from the index stream so
        // both placers see the exact same inputs.
        for policy in POLICIES {
            let mut a = Placer::new(policy, seed, spread);
            let mut b = Placer::new(policy, seed, spread);
            for (mix, tenant) in &rounds {
                let views: Vec<DeviceView> = (0..n)
                    .map(|d| DeviceView {
                        alive: (mix >> d) & 1 == 0,
                        known_free: ((mix * 7 + d) % 48) as u32,
                        outstanding: ((mix * 13 + d * 5) % 96) as u32,
                    })
                    .collect();
                prop_assert_eq!(
                    a.place(*tenant, &views),
                    b.place(*tenant, &views),
                    "{:?} diverged under seed {}", policy, seed
                );
            }
        }
    }

    #[test]
    fn never_places_on_a_dead_device(
        seed in 0u64..=0xffff_ffff,
        spread in 1u32..=4,
        rounds in prop::collection::vec(arb_round(6), 1..48),
    ) {
        for policy in POLICIES {
            let mut p = Placer::new(policy, seed, spread);
            for (views, tenant) in &rounds {
                match p.place(*tenant, views) {
                    Some(d) => prop_assert!(
                        views[d].alive,
                        "{:?} placed on dead device {} in {:?}", policy, d, views
                    ),
                    None => prop_assert!(
                        views.iter().all(|v| !v.alive),
                        "{:?} refused although a device is alive: {:?}", policy, views
                    ),
                }
            }
        }
    }
}
