//! The parallel driver's contract: for *any* configuration, running the
//! fleet on the scoped thread pool produces results byte-identical to
//! the serial driver — recorder buffers, completion traces, engine
//! stats, and fleet reports all match exactly.
//!
//! Property-tested across seeds × placement policies × run-ahead
//! windows, plus a directed kill-mid-window failover scenario. Case
//! counts are small (each case simulates two full fleet runs) but every
//! case checks the full byte-equality bundle.

use desim::{Dur, SimTime};
use gpu_sim::WarpWork;
use pagoda_cluster::{
    ClusterConfig, ClusterHandle, FaultKind, FaultSpec, Placement, RetryPolicy, TaskStatus,
};
use pagoda_core::{SubmitError, TaskDesc};
use pagoda_obs::Obs;
use proptest::prelude::*;

/// ~90 us of device time: long enough that faults land mid-flight.
fn task() -> TaskDesc {
    TaskDesc::uniform(64, WarpWork::compute(200_000, 8.0))
}

/// Everything that must match between the two drivers, stringly so a
/// mismatch shows a readable diff.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    recorder_json: String,
    completion_times: Vec<Option<SimTime>>,
    engine_stats: String,
    report: String,
}

fn run(mut cfg: ClusterConfig, parallel: bool, tasks: usize) -> RunFingerprint {
    cfg.parallel = parallel;
    let (obs, rec) = Obs::recording();
    let mut fleet = ClusterHandle::new(cfg).expect("config is valid");
    fleet.attach_obs(obs);
    let mut keys = Vec::with_capacity(tasks);
    while keys.len() < tasks {
        match fleet.submit_for((keys.len() % 3) as u32, task()) {
            Ok(k) => keys.push(k),
            Err(SubmitError::Full(_)) => {
                fleet.sync();
                if !fleet.capacity().has_room() {
                    let t = fleet.now() + Dur::from_us(20);
                    fleet.advance_to(t);
                }
            }
            Err(e) => panic!("task rejected: {e}"),
        }
    }
    fleet.wait_all();
    RunFingerprint {
        recorder_json: rec.snapshot().to_json(),
        completion_times: keys.iter().map(|&k| fleet.completion_time(k)).collect(),
        engine_stats: format!("{:?}", fleet.engine_stats()),
        report: format!("{:?}", fleet.report()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs two full fleet simulations
        ..ProptestConfig::default()
    })]

    #[test]
    fn parallel_equals_serial_across_seeds_and_policies(
        seed in 0u64..=0xffff_ffff,
        placement_idx in 0usize..4,
        run_ahead_us in 3u64..25,
        devices in 2usize..5,
        kill in prop::bool::ANY,
    ) {
        let placement = [
            Placement::RoundRobin,
            Placement::LeastOutstanding,
            Placement::PowerOfTwo,
            Placement::TenantAffinity,
        ][placement_idx];
        let mut cfg = ClusterConfig::uniform(devices);
        cfg.placement = placement;
        cfg.seed = seed;
        cfg.run_ahead = Dur::from_us(run_ahead_us);
        cfg.affinity_spread = 1 + (seed % devices as u64) as u32;
        if kill {
            cfg.faults = vec![FaultSpec {
                at: SimTime::from_us(17), // never a multiple of the window
                device: devices - 1,
                kind: FaultKind::Kill,
            }];
        }
        let serial = run(cfg.clone(), false, 24);
        let parallel = run(cfg, true, 24);
        prop_assert_eq!(
            &serial.recorder_json, &parallel.recorder_json,
            "recorder buffers diverged"
        );
        prop_assert_eq!(
            &serial.completion_times, &parallel.completion_times,
            "completion traces diverged"
        );
        prop_assert_eq!(&serial.engine_stats, &parallel.engine_stats);
        prop_assert_eq!(&serial.report, &parallel.report);
    }
}

/// The failover path under the parallel driver: a kill landing strictly
/// inside a run-ahead window (40 us with 7 us windows: between the 35 us
/// and 42 us horizons) strands work, resubmission recovers all of it,
/// and the whole episode is byte-identical to the serial driver.
#[test]
fn kill_mid_window_fails_over_identically_under_parallel_driver() {
    let cfg = || {
        let mut cfg = ClusterConfig::uniform(4);
        cfg.placement = Placement::PowerOfTwo;
        cfg.seed = 0xdead_f1ee7;
        cfg.retry = RetryPolicy::Resubmit { max_attempts: 4 };
        cfg.run_ahead = Dur::from_us(7);
        cfg.faults = vec![FaultSpec {
            at: SimTime::from_us(40),
            device: 2,
            kind: FaultKind::Kill,
        }];
        cfg
    };
    let serial = run(cfg(), false, 64);
    let parallel = run(cfg(), true, 64);
    assert_eq!(serial, parallel, "parallel failover diverged from serial");

    // And the recovery itself worked: re-run parallel to inspect state.
    let mut c = cfg();
    c.parallel = true;
    let mut fleet = ClusterHandle::new(c).expect("valid config");
    let keys: Vec<u64> = (0..64)
        .map(|_| loop {
            match fleet.submit(task()) {
                Ok(k) => break k,
                Err(SubmitError::Full(_)) => {
                    fleet.sync();
                    if !fleet.capacity().has_room() {
                        let t = fleet.now() + Dur::from_us(20);
                        fleet.advance_to(t);
                    }
                }
                Err(e) => panic!("task rejected: {e}"),
            }
        })
        .collect();
    fleet.wait_all();
    for k in keys {
        assert_eq!(
            fleet.status(k).expect("key issued"),
            TaskStatus::Done,
            "task {k} did not survive the mid-window kill"
        );
    }
    let rep = fleet.report();
    assert_eq!(rep.tasks_lost, 0);
    assert_eq!(rep.kills, 1);
    assert!(rep.resubmits > 0, "the kill must strand some work");
    assert!(!rep.devices[2].alive);
}

/// Audit of the fork/join path for devices stepping *empty* run-ahead
/// windows: under tenant-affinity with a single tenant homed on device
/// 0, devices 1–3 never receive a task, yet the parallel driver still
/// forks a buffer for each of them every window and joins it back. An
/// idle device's fork must contribute exactly what the serial driver
/// records for it — its change-detected device samples and nothing else
/// (no phantom counters, no reordered events) — or the two recorder
/// streams stop being byte-identical. A kill of one idle device midway
/// exercises the window where the set of forked devices shrinks between
/// horizons.
#[test]
fn idle_devices_step_empty_windows_byte_identically() {
    let cfg = || {
        let mut cfg = ClusterConfig::uniform(4);
        cfg.placement = Placement::TenantAffinity;
        cfg.affinity_spread = 1; // tenant 0's home is exactly device 0
        cfg.run_ahead = Dur::from_us(5);
        cfg.faults = vec![FaultSpec {
            at: SimTime::from_us(20),
            device: 2, // never had work: the emptiest possible kill
            kind: FaultKind::Kill,
        }];
        cfg
    };
    // `run` submits for tenants 0..3; force everything onto tenant 0 so
    // the other devices stay idle for the whole run.
    let drive = |parallel: bool| {
        let mut c = cfg();
        c.parallel = parallel;
        let (obs, rec) = Obs::recording();
        let mut fleet = ClusterHandle::new(c).expect("config is valid");
        fleet.attach_obs(obs);
        let mut keys = Vec::new();
        while keys.len() < 16 {
            match fleet.submit_for(0, task()) {
                Ok(k) => keys.push(k),
                Err(SubmitError::Full(_)) => {
                    fleet.sync();
                    if !fleet.capacity().has_room() {
                        let t = fleet.now() + Dur::from_us(20);
                        fleet.advance_to(t);
                    }
                }
                Err(e) => panic!("task rejected: {e}"),
            }
        }
        fleet.wait_all();
        let snap = rec.snapshot();
        let report = fleet.report();
        (snap, report, keys.len())
    };
    let (serial_snap, serial_rep, _) = drive(false);
    let (parallel_snap, parallel_rep, n) = drive(true);
    assert_eq!(
        serial_snap.to_json(),
        parallel_snap.to_json(),
        "idle-device forks perturbed the recorder stream"
    );
    assert_eq!(format!("{serial_rep:?}"), format!("{parallel_rep:?}"));
    // The scenario really did keep the other devices idle: no off-home
    // placement ever happened, and only device 0 spawned work.
    assert_eq!(serial_rep.off_affinity, 0);
    assert_eq!(serial_rep.completed as usize, n);
    for (i, d) in serial_rep.devices.iter().enumerate() {
        if i == 0 {
            assert!(d.spawned > 0);
        } else {
            assert_eq!(d.spawned, 0, "device {i} must stay idle");
        }
    }
    // And the idle devices still produced liveness samples — stepping an
    // empty window is observable, not skipped (the kill shows on the
    // device track of both drivers identically).
    assert!(serial_snap
        .devices
        .iter()
        .any(|s| s.device == 2 && !s.alive));
}
