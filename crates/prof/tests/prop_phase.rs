//! Property tests of the phase model: for *any* pattern of present /
//! missing / out-of-order cut timestamps, a completed task's phase
//! decomposition sums exactly to its sojourn, and histogram merge
//! reproduces serial aggregation bucket-for-bucket.

use pagoda_obs::{MarkKind, TaskState};
use pagoda_prof::{decompose, Cuts, LogHist, Phase, ProfReport, TaskProf};
use proptest::prelude::*;

/// An optional timestamp (the vendored proptest has no `prop::option`,
/// so presence is an explicit coin flip).
fn maybe_ts() -> impl Strategy<Value = Option<u64>> {
    (proptest::bool::ANY, 0u64..1 << 40).prop_map(|(present, t)| present.then_some(t))
}

/// An arbitrary cut set: each of the eight cuts independently present
/// (with an arbitrary timestamp, monotone not required) or missing —
/// except `freed`, which completion requires.
fn arb_cuts() -> impl Strategy<Value = Cuts> {
    (prop::collection::vec(maybe_ts(), 7), 0u64..1 << 40).prop_map(|(opt, freed)| {
        let mut c = Cuts::default();
        if let Some(t) = opt[0] {
            c.note_mark(MarkKind::Arrived, t);
        }
        if let Some(t) = opt[1] {
            c.note_mark(MarkKind::Admitted, t);
        }
        if let Some(t) = opt[2] {
            c.note_state(TaskState::Spawned, t);
        }
        if let Some(t) = opt[3] {
            c.note_state(TaskState::Enqueued, t);
        }
        if let Some(t) = opt[4] {
            c.note_state(TaskState::Placed, t);
        }
        if let Some(t) = opt[5] {
            c.note_state(TaskState::Running, t);
        }
        c.note_state(TaskState::Freed, freed);
        if let Some(t) = opt[6] {
            c.note_mark(MarkKind::Observed, t);
        }
        c
    })
}

proptest! {
    #[test]
    fn phases_sum_to_sojourn(cuts in arb_cuts()) {
        let d = decompose(&cuts).expect("freed is always set");
        prop_assert_eq!(d.phases.iter().sum::<u64>(), d.sojourn_ps);
        // Resolved timeline is monotone: every phase is non-negative by
        // type, and the start is the earliest resolved cut.
        let resolved = cuts.resolve().unwrap();
        prop_assert!(resolved.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(d.start_ps, resolved[0]);
        prop_assert_eq!(d.sojourn_ps, resolved[7] - resolved[0]);
    }

    #[test]
    fn incomplete_tasks_never_decompose(
        spawned in maybe_ts(),
        running in maybe_ts(),
    ) {
        let mut c = Cuts::default();
        if let Some(t) = spawned { c.note_state(TaskState::Spawned, t); }
        if let Some(t) = running { c.note_state(TaskState::Running, t); }
        prop_assert!(decompose(&c).is_none());
    }

    #[test]
    fn hist_merge_is_exact(
        samples in prop::collection::vec(0u64..1 << 48, 1..300),
        split in 0usize..300,
    ) {
        let mut serial = LogHist::new();
        for &s in &samples {
            serial.record(s);
        }
        let cut = split.min(samples.len());
        let mut a = LogHist::new();
        let mut b = LogHist::new();
        for &s in &samples[..cut] { a.record(s); }
        for &s in &samples[cut..] { b.record(s); }
        a.merge(&b);
        prop_assert_eq!(&a, &serial);
        prop_assert_eq!(a.p50_p95_p99(), serial.p50_p95_p99());
        prop_assert_eq!(a.sum(), samples.iter().sum::<u64>());
    }

    #[test]
    fn aggregate_phase_totals_partition_group_sojourn(
        cuts in prop::collection::vec(arb_cuts(), 1..40),
        tenants in prop::collection::vec((proptest::bool::ANY, 0u32..3), 40),
        devices in prop::collection::vec((proptest::bool::ANY, 0u32..3), 40),
    ) {
        let tasks: Vec<TaskProf> = cuts
            .iter()
            .zip(&tenants)
            .zip(&devices)
            .map(|((c, &(has_t, t)), &(has_d, d))| TaskProf {
                cuts: *c,
                tenant: has_t.then_some(t),
                device: has_d.then_some(d),
            })
            .collect();
        let r = ProfReport::aggregate(&tasks);
        for g in &r.groups {
            let phase_sum: u64 = Phase::ALL.iter().map(|&p| g.phase_total_ps(p)).sum();
            prop_assert_eq!(phase_sum, g.sojourn.sum(), "group {}", &g.label);
        }
        prop_assert_eq!(r.total().tasks, tasks.len() as u64);
    }
}
