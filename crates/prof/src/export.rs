//! Profile exporters: Prometheus text exposition and folded-stack
//! "time flamegraphs".
//!
//! Both formats are emitted with *integer picosecond* values only — no
//! float formatting — so identical reports (e.g. serial vs. parallel
//! same-seed runs) serialize byte-identically, which the golden-file
//! tests pin down.

use std::io::{self, Write};

use pagoda_obs::writer::escape_label;

use crate::phase::Phase;
use crate::report::ProfReport;

/// Writes `report` in Prometheus text exposition format (version 0.0.4).
///
/// Metrics:
/// * `pagoda_prof_tasks_total{group}` — completed tasks profiled;
/// * `pagoda_prof_phase_time_ps_total{group,phase}` — simulated time in
///   each phase;
/// * `pagoda_prof_sojourn_ps{group,quantile}` plus `_sum`/`_count` — the
///   sojourn distribution as a summary (quantiles are log-bucket lower
///   bounds, hence integers).
pub fn write_prometheus<W: Write>(report: &ProfReport, w: &mut W) -> io::Result<()> {
    writeln!(
        w,
        "# HELP pagoda_prof_tasks_total Completed tasks profiled."
    )?;
    writeln!(w, "# TYPE pagoda_prof_tasks_total counter")?;
    for g in &report.groups {
        writeln!(
            w,
            "pagoda_prof_tasks_total{{group=\"{}\"}} {}",
            escape_label(&g.label),
            g.tasks
        )?;
    }

    writeln!(
        w,
        "# HELP pagoda_prof_phase_time_ps_total Simulated picoseconds per critical-path phase."
    )?;
    writeln!(w, "# TYPE pagoda_prof_phase_time_ps_total counter")?;
    for g in &report.groups {
        for p in Phase::ALL {
            writeln!(
                w,
                "pagoda_prof_phase_time_ps_total{{group=\"{}\",phase=\"{}\"}} {}",
                escape_label(&g.label),
                p.name(),
                g.phase_total_ps(p)
            )?;
        }
    }

    writeln!(
        w,
        "# HELP pagoda_prof_sojourn_ps Task sojourn time (arrival to observed completion)."
    )?;
    writeln!(w, "# TYPE pagoda_prof_sojourn_ps summary")?;
    for g in &report.groups {
        let label = escape_label(&g.label);
        let (p50, p95, p99) = g.sojourn.p50_p95_p99();
        for (q, v) in [("0.5", p50), ("0.95", p95), ("0.99", p99)] {
            writeln!(
                w,
                "pagoda_prof_sojourn_ps{{group=\"{label}\",quantile=\"{q}\"}} {v}"
            )?;
        }
        writeln!(
            w,
            "pagoda_prof_sojourn_ps_sum{{group=\"{label}\"}} {}",
            g.sojourn.sum()
        )?;
        writeln!(
            w,
            "pagoda_prof_sojourn_ps_count{{group=\"{label}\"}} {}",
            g.sojourn.count()
        )?;
    }
    Ok(())
}

/// Writes `report` as folded stacks (`pagoda;<group>;<phase> <ps>`),
/// the input format of `flamegraph.pl` / `inferno` — one frame stack
/// per group×phase, weighted by total simulated time. Zero-weight
/// phases are omitted (they would render as nothing anyway).
pub fn write_folded<W: Write>(report: &ProfReport, w: &mut W) -> io::Result<()> {
    for g in &report.groups {
        let label = escape_label(&g.label);
        for p in Phase::ALL {
            let t = g.phase_total_ps(p);
            if t > 0 {
                writeln!(w, "pagoda;{label};{} {t}", p.name())?;
            }
        }
    }
    Ok(())
}

/// Minimal Prometheus text-format validator: every line is a comment
/// (`# ...`) or `name{labels} value` with a bare metric name, quoted
/// label values, and an integer value. Exporter tests and the ci smoke
/// use this to assert outputs parse without an external scrape library.
pub fn check_exposition(s: &str) -> Result<(), String> {
    fn is_name(n: &str) -> bool {
        !n.is_empty()
            && n.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && n.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    for (i, line) in s.lines().enumerate() {
        let at = |msg: &str| format!("{msg} on line {}: {line:?}", i + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = line.rsplit_once(' ').ok_or_else(|| at("no sample value"))?;
        if value.parse::<u64>().is_err() {
            return Err(at("non-integer sample value"));
        }
        let name = match head.split_once('{') {
            None => head,
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| at("unclosed label set"))?;
                for pair in labels.split(',') {
                    let (k, v) = pair.split_once('=').ok_or_else(|| at("label without ="))?;
                    if !is_name(k) {
                        return Err(at("bad label name"));
                    }
                    if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
                        return Err(at("unquoted label value"));
                    }
                }
                name
            }
        };
        if !is_name(name) {
            return Err(at("bad metric name"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::TaskProf;
    use pagoda_obs::{MarkKind, TaskState};

    fn sample_report() -> ProfReport {
        let tasks: Vec<TaskProf> = (0..4u64)
            .map(|i| {
                let mut t = TaskProf::default();
                let t0 = i * 100;
                t.cuts.note_mark(MarkKind::Arrived, t0);
                t.cuts.note_state(TaskState::Spawned, t0 + 10);
                t.cuts.note_state(TaskState::Running, t0 + 40);
                t.cuts.note_state(TaskState::Freed, t0 + 90);
                t.tenant = Some((i % 2) as u32);
                t
            })
            .collect();
        ProfReport::aggregate(&tasks)
    }

    #[test]
    fn prometheus_output_parses_and_has_all_groups() {
        let mut out = Vec::new();
        write_prometheus(&sample_report(), &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        check_exposition(&s).unwrap();
        assert!(s.contains("pagoda_prof_tasks_total{group=\"total\"} 4"));
        assert!(s.contains("group=\"tenant/1\""));
        assert!(s.contains("phase=\"execution\""));
        assert!(s.contains("quantile=\"0.99\""));
    }

    #[test]
    fn folded_output_is_group_phase_weighted() {
        let mut out = Vec::new();
        write_folded(&sample_report(), &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        for line in s.lines() {
            let (stack, weight) = line.rsplit_once(' ').unwrap();
            assert_eq!(stack.split(';').count(), 3, "bad stack: {line}");
            assert!(weight.parse::<u64>().unwrap() > 0);
        }
        assert!(s.contains("pagoda;total;execution "));
        assert!(s.contains("pagoda;total;host_queue "));
        // Zero-width phases (no admitted mark -> admission is 0) are omitted.
        assert!(!s.contains(";admission "));
    }

    #[test]
    fn check_exposition_rejects_malformed_lines() {
        assert!(check_exposition("# comment\nm_x{a=\"b\"} 3\n").is_ok());
        assert!(check_exposition("m_x 42").is_ok());
        assert!(check_exposition("m_x{a=b} 3").is_err()); // unquoted
        assert!(check_exposition("m_x{a=\"b\"} x").is_err()); // non-numeric
        assert!(check_exposition("m_x{a=\"b\" 3").is_err()); // unclosed
        assert!(check_exposition("9bad{a=\"b\"} 3").is_err()); // bad name
        assert!(check_exposition("m_x{a=\"b\"} 3.5").is_err()); // float: we emit integers only
    }

    #[test]
    fn exports_are_deterministic() {
        let r = sample_report();
        let render = |r: &ProfReport| {
            let mut p = Vec::new();
            let mut f = Vec::new();
            write_prometheus(r, &mut p).unwrap();
            write_folded(r, &mut f).unwrap();
            (p, f)
        };
        assert_eq!(render(&r), render(&sample_report()));
    }
}
