//! Aggregated profiles: per-group phase histograms and their
//! serializable summary form.
//!
//! Groups are `total`, then `tenant/<k>` ascending, then `device/<k>`
//! ascending — a fixed order so every export derived from a report is
//! byte-deterministic. A task contributes to `total` always, to its
//! tenant group if a [`TenantTag`](pagoda_obs::TenantTag) attributed it,
//! and to its device group if a [`TaskRoute`](pagoda_obs::TaskRoute)
//! placed it (last route wins: a resubmitted task is charged to the
//! device that actually ran it).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use pagoda_obs::ObsBuffer;

use crate::hist::{HistSummary, LogHist};
use crate::phase::{decompose, Cuts, Decomposition, Phase};

/// One task's profiling inputs: its cut timeline plus grouping keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskProf {
    /// Cut timestamps accumulated from the event stream.
    pub cuts: Cuts,
    /// Tenant attribution, if the serving layer tagged one.
    pub tenant: Option<u32>,
    /// Fleet device placement, if the cluster layer routed it. Last
    /// route wins.
    pub device: Option<u32>,
}

/// Phase histograms for one group of tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupProf {
    /// Group label: `total`, `tenant/<k>`, or `device/<k>`.
    pub label: String,
    /// Completed tasks aggregated.
    pub tasks: u64,
    /// Sojourn (arrival→observed) distribution.
    pub sojourn: LogHist,
    /// Per-phase duration distributions, [`Phase::ALL`] order.
    pub phases: Vec<LogHist>,
}

impl GroupProf {
    fn new(label: String) -> GroupProf {
        GroupProf {
            label,
            tasks: 0,
            sojourn: LogHist::new(),
            phases: (0..Phase::ALL.len()).map(|_| LogHist::new()).collect(),
        }
    }

    fn add(&mut self, d: &Decomposition) {
        self.tasks += 1;
        self.sojourn.record(d.sojourn_ps);
        for (h, &p) in self.phases.iter_mut().zip(&d.phases) {
            h.record(p);
        }
    }

    /// Total simulated time spent in `phase` across the group.
    pub fn phase_total_ps(&self, phase: Phase) -> u64 {
        self.phases[phase as usize].sum()
    }
}

/// A full critical-path profile: one [`GroupProf`] per group, fixed
/// order (`total`, tenants ascending, devices ascending).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfReport {
    /// The aggregated groups.
    pub groups: Vec<GroupProf>,
}

impl ProfReport {
    /// Aggregates per-task profiles (any iteration order — grouping and
    /// output order are imposed here).
    pub fn aggregate<'a>(tasks: impl IntoIterator<Item = &'a TaskProf>) -> ProfReport {
        let mut total = GroupProf::new("total".into());
        let mut tenants: BTreeMap<u32, GroupProf> = BTreeMap::new();
        let mut devices: BTreeMap<u32, GroupProf> = BTreeMap::new();
        for t in tasks {
            let Some(d) = decompose(&t.cuts) else {
                continue;
            };
            total.add(&d);
            if let Some(k) = t.tenant {
                tenants
                    .entry(k)
                    .or_insert_with(|| GroupProf::new(format!("tenant/{k}")))
                    .add(&d);
            }
            if let Some(k) = t.device {
                devices
                    .entry(k)
                    .or_insert_with(|| GroupProf::new(format!("device/{k}")))
                    .add(&d);
            }
        }
        let mut groups = vec![total];
        groups.extend(tenants.into_values());
        groups.extend(devices.into_values());
        ProfReport { groups }
    }

    /// Rebuilds per-task cuts from a buffered event stream and
    /// aggregates — the post-hoc path benches use to attribute a run
    /// they already recorded, with no tee attached.
    pub fn from_buffer(buf: &ObsBuffer) -> ProfReport {
        let mut tasks: BTreeMap<u64, TaskProf> = BTreeMap::new();
        for ev in &buf.tasks {
            tasks
                .entry(ev.task)
                .or_default()
                .cuts
                .note_state(ev.state, ev.at_ps);
        }
        for m in &buf.marks {
            tasks
                .entry(m.task)
                .or_default()
                .cuts
                .note_mark(m.kind, m.at_ps);
        }
        for t in &buf.tenants {
            if let Some(p) = tasks.get_mut(&t.task) {
                p.tenant.get_or_insert(t.tenant);
            }
        }
        for r in &buf.routes {
            if let Some(p) = tasks.get_mut(&r.task) {
                p.device = Some(r.device);
            }
        }
        ProfReport::aggregate(tasks.values())
    }

    /// The `total` group (present even when no task completed).
    pub fn total(&self) -> &GroupProf {
        &self.groups[0]
    }

    /// Serializable headline summary for JSON reports.
    pub fn summary(&self) -> ProfSummary {
        ProfSummary {
            groups: self
                .groups
                .iter()
                .map(|g| GroupSummary {
                    label: g.label.clone(),
                    tasks: g.tasks,
                    sojourn: HistSummary::of(&g.sojourn),
                    phases: Phase::ALL
                        .iter()
                        .map(|&p| PhaseSummary {
                            phase: p.name(),
                            total_ps: g.phase_total_ps(p),
                            mean_ps: g.phases[p as usize].mean(),
                            p99_ps: g.phases[p as usize].quantile_ppm(990_000),
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// JSON-friendly view of a [`ProfReport`] (headline stats only; the
/// full bucket vectors stay in memory).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfSummary {
    /// Per-group summaries, report order.
    pub groups: Vec<GroupSummary>,
}

/// Headline stats for one group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupSummary {
    /// Group label (`total`, `tenant/<k>`, `device/<k>`).
    pub label: String,
    /// Completed tasks aggregated.
    pub tasks: u64,
    /// Sojourn distribution summary.
    pub sojourn: HistSummary,
    /// Per-phase totals and headline stats, [`Phase::ALL`] order.
    pub phases: Vec<PhaseSummary>,
}

/// Headline stats for one phase of one group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Phase name ([`Phase::name`]).
    pub phase: &'static str,
    /// Total simulated time in this phase across the group, ps.
    pub total_ps: u64,
    /// Mean per-task duration, ps.
    pub mean_ps: u64,
    /// p99 per-task duration (bucket lower bound), ps.
    pub p99_ps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagoda_obs::{MarkKind, Obs, TaskState};

    fn sample_tasks() -> Vec<TaskProf> {
        (0..10u64)
            .map(|i| {
                let mut t = TaskProf::default();
                let t0 = i * 1_000;
                t.cuts.note_mark(MarkKind::Arrived, t0);
                t.cuts.note_state(TaskState::Spawned, t0 + 50);
                t.cuts.note_state(TaskState::Enqueued, t0 + 150);
                t.cuts.note_state(TaskState::Placed, t0 + 200);
                t.cuts.note_state(TaskState::Running, t0 + 250);
                t.cuts.note_state(TaskState::Freed, t0 + 650);
                t.cuts.note_mark(MarkKind::Observed, t0 + 700);
                t.tenant = Some((i % 2) as u32);
                t.device = Some((i % 3) as u32);
                t
            })
            .collect()
    }

    #[test]
    fn groups_are_total_then_tenants_then_devices() {
        let r = ProfReport::aggregate(&sample_tasks());
        let labels: Vec<&str> = r.groups.iter().map(|g| g.label.as_str()).collect();
        assert_eq!(
            labels,
            ["total", "tenant/0", "tenant/1", "device/0", "device/1", "device/2"]
        );
        assert_eq!(r.total().tasks, 10);
        assert_eq!(r.groups[1].tasks, 5);
    }

    #[test]
    fn phase_totals_partition_sojourn_total() {
        let r = ProfReport::aggregate(&sample_tasks());
        for g in &r.groups {
            let phase_sum: u64 = Phase::ALL.iter().map(|&p| g.phase_total_ps(p)).sum();
            assert_eq!(phase_sum, g.sojourn.sum(), "group {}", g.label);
        }
        assert_eq!(r.total().sojourn.sum(), 10 * 700);
    }

    #[test]
    fn from_buffer_matches_online_aggregation() {
        let (obs, rec) = Obs::recording();
        for i in 0..6u64 {
            let t0 = i * 500;
            obs.mark(t0, i, MarkKind::Arrived);
            obs.task(t0 + 10, i, TaskState::Spawned);
            obs.task(t0 + 60, i, TaskState::Enqueued);
            obs.task(t0 + 90, i, TaskState::Placed);
            obs.task(t0 + 100, i, TaskState::Running);
            obs.task(t0 + 400, i, TaskState::Freed);
            obs.mark(t0 + 450, i, MarkKind::Observed);
            obs.tenant(i, (i % 2) as u32);
            obs.route(i, 0);
            obs.route(i, 1); // resubmitted: charged to device 1
        }
        let r = ProfReport::from_buffer(&rec.snapshot());
        assert_eq!(r.total().tasks, 6);
        let dev: Vec<&str> = r
            .groups
            .iter()
            .map(|g| g.label.as_str())
            .filter(|l| l.starts_with("device/"))
            .collect();
        assert_eq!(dev, ["device/1"]);
    }

    #[test]
    fn incomplete_tasks_are_skipped() {
        let mut t = TaskProf::default();
        t.cuts.note_state(TaskState::Spawned, 0);
        let r = ProfReport::aggregate(&[t]);
        assert_eq!(r.total().tasks, 0);
        assert_eq!(r.groups.len(), 1);
    }

    #[test]
    fn summary_serializes() {
        let r = ProfReport::aggregate(&sample_tasks());
        let json = serde_json::to_string(&r.summary()).unwrap();
        assert!(json.contains("\"label\":\"tenant/1\""));
        assert!(json.contains("\"phase\":\"execution\""));
    }
}
