//! Mergeable log-bucketed latency histograms.
//!
//! Buckets are exact below 8 ps and then 8 sub-buckets per octave
//! (≤ 12.5 % relative width), HdrHistogram-style but with a fixed
//! 496-bucket layout so two histograms merge by adding count arrays —
//! the property that makes per-device profiles from the parallel fleet
//! fold into exactly the serial aggregate, bucket by bucket.
//!
//! Quantiles are nearest-rank over bucket counts and return the bucket
//! *lower bound*, so a quantile computed after any sequence of merges
//! equals the quantile of the equivalent serial recording: merging only
//! ever adds integer counts to identical bucket positions.

use serde::{Deserialize, Serialize};

/// Sub-buckets per octave. 8 keeps relative error ≤ 1/8 while fitting
/// u64's full range in [`BUCKETS`] slots.
const SUB: u64 = 8;
/// Total bucket count: 8 exact singletons + 61 octaves × 8 sub-buckets.
pub const BUCKETS: usize = 8 + 61 * 8;

/// Index of the bucket holding `v`.
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let m = 63 - v.leading_zeros() as u64; // m >= 3
    let sub = (v >> (m - 3)) & (SUB - 1);
    (SUB + (m - 3) * SUB + sub) as usize
}

/// Smallest value that lands in bucket `b` (the reported quantile
/// value).
fn lower_bound(b: usize) -> u64 {
    let b = b as u64;
    if b < SUB {
        return b;
    }
    let oct = (b - SUB) / SUB;
    let sub = (b - SUB) % SUB;
    (SUB + sub) << oct
}

/// A log-bucketed histogram of u64 samples (picoseconds, here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHist {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        LogHist {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LogHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.total += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Adds every bucket of `other` into `self`. Associative and
    /// commutative, so fleet fork/join merge order does not matter.
    pub fn merge(&mut self, other: &LogHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact sum of all recorded samples (not bucket-quantized).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded sample, 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, rounded down; 0 if empty.
    pub fn mean(&self) -> u64 {
        self.sum / self.total.max(1)
    }

    /// Nearest-rank quantile (`q` in parts-per-million): the lower bound
    /// of the bucket holding the ⌈q·n⌉-th smallest sample. 0 if empty.
    pub fn quantile_ppm(&self, q_ppm: u64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (self.total * q_ppm).div_ceil(1_000_000).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return lower_bound(b);
            }
        }
        lower_bound(BUCKETS - 1)
    }

    /// p50 / p95 / p99 as a convenience triple.
    pub fn p50_p95_p99(&self) -> (u64, u64, u64) {
        (
            self.quantile_ppm(500_000),
            self.quantile_ppm(950_000),
            self.quantile_ppm(990_000),
        )
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (lower_bound(b), c))
    }
}

/// Serialized as the compact nonzero-bucket list (the vendored serde has
/// no `[T; N]`/tuple support, and full 496-slot arrays would bloat every
/// report).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistSummary {
    /// Sample count.
    pub count: u64,
    /// Mean sample, rounded down.
    pub mean_ps: u64,
    /// Exact max sample.
    pub max_ps: u64,
    /// Bucket lower bound of the median.
    pub p50_ps: u64,
    /// Bucket lower bound of the 95th percentile.
    pub p95_ps: u64,
    /// Bucket lower bound of the 99th percentile.
    pub p99_ps: u64,
}

impl HistSummary {
    /// Snapshot of `h`'s headline statistics.
    pub fn of(h: &LogHist) -> HistSummary {
        let (p50, p95, p99) = h.p50_p95_p99();
        HistSummary {
            count: h.count(),
            mean_ps: h.mean(),
            max_ps: h.max(),
            p50_ps: p50,
            p95_ps: p95,
            p99_ps: p99,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_line() {
        // Every boundary value maps into a bucket whose lower bound is
        // <= it, and bucket indices are monotone in the value.
        let mut prev = 0usize;
        for v in (0..1000u64).chain([1 << 20, u64::MAX / 2, u64::MAX]) {
            let b = bucket_of(v);
            assert!(b < BUCKETS, "bucket {b} out of range for {v}");
            assert!(lower_bound(b) <= v, "lb({b}) > {v}");
            assert!(b >= prev || v < 1000, "non-monotone at {v}");
            prev = b;
        }
        // Exact singletons below 8.
        for v in 0..8u64 {
            assert_eq!(lower_bound(bucket_of(v)), v);
        }
    }

    #[test]
    fn relative_error_bounded() {
        for v in [100u64, 1_000, 123_456, 1 << 30, (1 << 40) + 12345] {
            let lb = lower_bound(bucket_of(v));
            assert!(lb <= v);
            // Bucket width is lb/8 at most, so error < 12.5%.
            assert!(v - lb <= lb / 8 + 1, "error too big for {v}: lb={lb}");
        }
    }

    #[test]
    fn merge_equals_serial_recording() {
        let samples: Vec<u64> = (0..500).map(|i| i * i * 37 + 13).collect();
        let mut serial = LogHist::new();
        for &s in &samples {
            serial.record(s);
        }
        let mut a = LogHist::new();
        let mut b = LogHist::new();
        for (i, &s) in samples.iter().enumerate() {
            if i % 2 == 0 {
                a.record(s)
            } else {
                b.record(s)
            }
        }
        a.merge(&b);
        assert_eq!(a, serial);
        assert_eq!(a.p50_p95_p99(), serial.p50_p95_p99());
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut h = LogHist::new();
        for v in 0..8u64 {
            h.record(v); // exact buckets
        }
        assert_eq!(h.quantile_ppm(500_000), 3); // 4th of 8
        assert_eq!(h.quantile_ppm(1_000_000), 7);
        assert_eq!(h.quantile_ppm(1), 0);
        assert_eq!(h.mean(), 3);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn empty_hist_is_all_zeros() {
        let h = LogHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ppm(990_000), 0);
        assert_eq!(HistSummary::of(&h).p99_ps, 0);
    }
}
