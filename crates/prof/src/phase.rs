//! The phase model: where a completed task's sojourn time went.
//!
//! A task's life is cut at up to eight timestamps drawn from two event
//! families the obs layer already records:
//!
//! * [`TaskMark`](pagoda_obs::TaskMark) serving marks — `arrived`
//!   (offered to admission), `admitted` (accepted into the host queue),
//!   `observed` (completion seen by the client);
//! * [`TaskState`](pagoda_obs::TaskState) lifecycle spans — `spawned`
//!   (submitted to the runtime), `enqueued` (PCIe staging done, task in
//!   the MTB TaskTable), `placed` (MasterKernel scheduled it onto an
//!   SMM), `running` (warps issued), `freed` (resources released).
//!
//! Consecutive cuts bound seven named phases ([`Phase::ALL`]). The
//! decomposition telescopes: the phase durations *always* sum exactly to
//! `observed - arrived` (the sojourn), because each cut is resolved to a
//! concrete time by carry-forward imputation and clamped monotone before
//! differencing. Missing instrumentation therefore shows up as a
//! zero-width phase, never as leaked or double-counted time — an
//! invariant `pagoda-check` enforces online and a proptest pins down.

use serde::{Deserialize, Serialize};

use pagoda_obs::{MarkKind, TaskState};

/// One named slice of a task's sojourn. Order is chronological; the
/// phase at index `i` spans cut `i` → cut `i+1` of [`Cuts::resolve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// `arrived → admitted`: admission-control decision latency.
    Admission,
    /// `admitted → spawned`: waiting in the host-side tenant queue for a
    /// free TaskTable slot / dispatch decision.
    HostQueue,
    /// `spawned → enqueued`: PCIe staging of parameters into the
    /// device-resident TaskTable.
    Staging,
    /// `enqueued → placed`: waiting for the MasterKernel threadblock to
    /// poll the TaskTable entry and pick an SMM.
    MtbWait,
    /// `placed → running`: waiting for warp slots / registers / shared
    /// memory on the chosen SMM.
    SmmWait,
    /// `running → freed`: execution until warp-granularity free.
    Execution,
    /// `freed → observed`: device-to-host copyback and host-side
    /// completion observation.
    Copyback,
}

impl Phase {
    /// All phases, chronological.
    pub const ALL: [Phase; 7] = [
        Phase::Admission,
        Phase::HostQueue,
        Phase::Staging,
        Phase::MtbWait,
        Phase::SmmWait,
        Phase::Execution,
        Phase::Copyback,
    ];

    /// Stable snake_case name used in every export (Prometheus label,
    /// folded-stack frame, JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Admission => "admission",
            Phase::HostQueue => "host_queue",
            Phase::Staging => "staging",
            Phase::MtbWait => "mtb_wait",
            Phase::SmmWait => "smm_wait",
            Phase::Execution => "execution",
            Phase::Copyback => "copyback",
        }
    }
}

/// The (up to) eight raw cut timestamps for one task, in picoseconds.
/// `None` means the corresponding event was never observed — single-GPU
/// runs without a serving layer have no marks, and shed tasks never
/// reach `spawned`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cuts {
    /// Offered to admission ([`MarkKind::Arrived`]).
    pub arrived: Option<u64>,
    /// Accepted by admission ([`MarkKind::Admitted`]).
    pub admitted: Option<u64>,
    /// Submitted to the runtime ([`TaskState::Spawned`]).
    pub spawned: Option<u64>,
    /// Visible in the device TaskTable ([`TaskState::Enqueued`]).
    pub enqueued: Option<u64>,
    /// Claimed by an SMM ([`TaskState::Placed`]).
    pub placed: Option<u64>,
    /// Warps issued ([`TaskState::Running`]).
    pub running: Option<u64>,
    /// Resources released ([`TaskState::Freed`]).
    pub freed: Option<u64>,
    /// Completion observed host-side ([`MarkKind::Observed`]).
    pub observed: Option<u64>,
}

impl Cuts {
    /// Records a lifecycle span edge. First observation wins, matching
    /// the exporters' handling of duplicate state events.
    pub fn note_state(&mut self, state: TaskState, at_ps: u64) {
        let slot = match state {
            TaskState::Spawned => &mut self.spawned,
            TaskState::Enqueued => &mut self.enqueued,
            TaskState::Placed => &mut self.placed,
            TaskState::Running => &mut self.running,
            TaskState::Freed => &mut self.freed,
        };
        if slot.is_none() {
            *slot = Some(at_ps);
        }
    }

    /// Records a serving mark. First observation wins.
    pub fn note_mark(&mut self, kind: MarkKind, at_ps: u64) {
        let slot = match kind {
            MarkKind::Arrived => &mut self.arrived,
            MarkKind::Admitted => &mut self.admitted,
            MarkKind::Observed => &mut self.observed,
        };
        if slot.is_none() {
            *slot = Some(at_ps);
        }
    }

    /// Whether the task completed (reached `freed`) — the precondition
    /// for decomposition.
    pub fn complete(&self) -> bool {
        self.freed.is_some()
    }

    /// Resolves the eight cuts to concrete, monotone timestamps.
    ///
    /// Imputation: cuts before the first known one inherit it (a run
    /// with no serving layer starts its clock at `spawned`); every later
    /// missing cut inherits its predecessor (a missing `observed`
    /// collapses `Copyback` to zero width). Finally each cut is clamped
    /// to be ≥ its predecessor, so out-of-order instrumentation cannot
    /// produce negative phases. Returns `None` until [`Cuts::complete`].
    pub fn resolve(&self) -> Option<[u64; 8]> {
        if !self.complete() {
            return None;
        }
        let raw = [
            self.arrived,
            self.admitted,
            self.spawned,
            self.enqueued,
            self.placed,
            self.running,
            self.freed,
            self.observed,
        ];
        let first = raw.iter().flatten().copied().next()?;
        let mut out = [0u64; 8];
        let mut prev = first;
        for (slot, cut) in out.iter_mut().zip(raw) {
            let v = cut.unwrap_or(prev).max(prev);
            *slot = v;
            prev = v;
        }
        Some(out)
    }
}

/// One completed task's sojourn split into the seven phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decomposition {
    /// Time the task's clock started (the resolved `arrived` cut).
    pub start_ps: u64,
    /// Total sojourn: resolved `observed` − resolved `arrived`. Always
    /// equal to `phases.iter().sum()` by construction.
    pub sojourn_ps: u64,
    /// Per-phase durations, indexed by [`Phase::ALL`] order.
    pub phases: [u64; 7],
}

/// Decomposes one task's cuts into phase durations. `None` until the
/// task reached `freed`.
pub fn decompose(cuts: &Cuts) -> Option<Decomposition> {
    let resolved = cuts.resolve()?;
    let mut phases = [0u64; 7];
    for (i, p) in phases.iter_mut().enumerate() {
        *p = resolved[i + 1] - resolved[i];
    }
    Some(Decomposition {
        start_ps: resolved[0],
        sojourn_ps: resolved[7] - resolved[0],
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cut_set_decomposes_to_all_phases() {
        let mut c = Cuts::default();
        c.note_mark(MarkKind::Arrived, 100);
        c.note_mark(MarkKind::Admitted, 150);
        c.note_state(TaskState::Spawned, 180);
        c.note_state(TaskState::Enqueued, 300);
        c.note_state(TaskState::Placed, 450);
        c.note_state(TaskState::Running, 500);
        c.note_state(TaskState::Freed, 900);
        c.note_mark(MarkKind::Observed, 1000);
        let d = decompose(&c).unwrap();
        assert_eq!(d.start_ps, 100);
        assert_eq!(d.sojourn_ps, 900);
        assert_eq!(d.phases, [50, 30, 120, 150, 50, 400, 100]);
        assert_eq!(d.phases.iter().sum::<u64>(), d.sojourn_ps);
    }

    #[test]
    fn missing_marks_impute_to_zero_width_phases() {
        // Single-GPU run without a serving layer: lifecycle spans only.
        let mut c = Cuts::default();
        c.note_state(TaskState::Spawned, 1_000);
        c.note_state(TaskState::Enqueued, 1_200);
        c.note_state(TaskState::Placed, 1_500);
        c.note_state(TaskState::Running, 1_600);
        c.note_state(TaskState::Freed, 2_000);
        let d = decompose(&c).unwrap();
        assert_eq!(d.start_ps, 1_000);
        assert_eq!(d.sojourn_ps, 1_000);
        assert_eq!(d.phases, [0, 0, 200, 300, 100, 400, 0]);
    }

    #[test]
    fn incomplete_task_does_not_decompose() {
        let mut c = Cuts::default();
        c.note_state(TaskState::Spawned, 10);
        c.note_state(TaskState::Running, 20);
        assert!(decompose(&c).is_none());
    }

    #[test]
    fn out_of_order_cuts_clamp_instead_of_underflowing() {
        let mut c = Cuts::default();
        c.note_mark(MarkKind::Arrived, 500);
        c.note_state(TaskState::Spawned, 400); // before arrived
        c.note_state(TaskState::Freed, 600);
        let d = decompose(&c).unwrap();
        assert_eq!(d.phases.iter().sum::<u64>(), d.sojourn_ps);
        assert_eq!(d.sojourn_ps, 100); // clamped: 500 -> 500 -> 600
    }

    #[test]
    fn first_observation_wins() {
        let mut c = Cuts::default();
        c.note_state(TaskState::Spawned, 10);
        c.note_state(TaskState::Spawned, 99);
        c.note_state(TaskState::Freed, 50);
        assert_eq!(c.spawned, Some(10));
        let d = decompose(&c).unwrap();
        assert_eq!(d.sojourn_ps, 40);
    }
}
