//! `prof diff`: compare two runs' decompositions and flag phase-level
//! regressions beyond a threshold — the attribution story every perf PR
//! gets for free once both runs carry a [`ProfReport`].

use serde::{Deserialize, Serialize};

use crate::phase::Phase;
use crate::report::ProfReport;

/// One group×phase mean-duration change between two runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseDelta {
    /// Group label shared by both runs.
    pub group: String,
    /// Phase name.
    pub phase: &'static str,
    /// Mean per-task duration in the baseline run, ps.
    pub base_mean_ps: u64,
    /// Mean per-task duration in the new run, ps.
    pub new_mean_ps: u64,
    /// Signed change in percent, rounded toward zero.
    pub delta_pct: i64,
    /// Whether `delta_pct` exceeds the regression threshold.
    pub regressed: bool,
}

/// Outcome of comparing two profiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfDiff {
    /// Threshold (percent growth of a phase mean) above which a delta
    /// counts as a regression.
    pub threshold_pct: u64,
    /// Every comparable group×phase pair, report order.
    pub deltas: Vec<PhaseDelta>,
    /// Number of regressed deltas (denormalized for quick gating).
    pub regressions: u64,
}

impl ProfDiff {
    /// Whether no phase regressed beyond the threshold.
    pub fn clean(&self) -> bool {
        self.regressions == 0
    }

    /// The regressed deltas only.
    pub fn regressed(&self) -> impl Iterator<Item = &PhaseDelta> {
        self.deltas.iter().filter(|d| d.regressed)
    }
}

/// Compares `new` against `base`, group by group (groups present in
/// only one run are skipped — there is nothing to compare), phase by
/// phase. A phase regresses when its mean grows more than
/// `threshold_pct` percent *and* by at least `min_delta_ps` absolute
/// picoseconds — the absolute floor keeps near-zero phases (mean of a
/// few ps) from tripping percentage gates on noise.
pub fn diff_reports(
    base: &ProfReport,
    new: &ProfReport,
    threshold_pct: u64,
    min_delta_ps: u64,
) -> ProfDiff {
    let mut deltas = Vec::new();
    let mut regressions = 0u64;
    for g_new in &new.groups {
        let Some(g_base) = base.groups.iter().find(|g| g.label == g_new.label) else {
            continue;
        };
        for p in Phase::ALL {
            let base_mean = g_base.phases[p as usize].mean();
            let new_mean = g_new.phases[p as usize].mean();
            let delta_pct = if base_mean == 0 {
                if new_mean == 0 {
                    0
                } else {
                    i64::MAX
                }
            } else {
                (new_mean as i64 - base_mean as i64) * 100 / base_mean as i64
            };
            let regressed = new_mean > base_mean.saturating_add(min_delta_ps)
                && (base_mean == 0 || delta_pct > threshold_pct as i64);
            regressions += u64::from(regressed);
            deltas.push(PhaseDelta {
                group: g_new.label.clone(),
                phase: p.name(),
                base_mean_ps: base_mean,
                new_mean_ps: new_mean,
                delta_pct,
                regressed,
            });
        }
    }
    ProfDiff {
        threshold_pct,
        deltas,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::TaskProf;
    use pagoda_obs::TaskState;

    fn report_with_exec(exec_ps: u64, n: u64) -> ProfReport {
        let tasks: Vec<TaskProf> = (0..n)
            .map(|i| {
                let mut t = TaskProf::default();
                let t0 = i * 10_000;
                t.cuts.note_state(TaskState::Spawned, t0);
                t.cuts.note_state(TaskState::Running, t0 + 100);
                t.cuts.note_state(TaskState::Freed, t0 + 100 + exec_ps);
                t
            })
            .collect();
        ProfReport::aggregate(&tasks)
    }

    #[test]
    fn flags_regressed_phase_only() {
        let base = report_with_exec(1_000, 8);
        let slow = report_with_exec(1_500, 8); // execution +50%
        let d = diff_reports(&base, &slow, 20, 100);
        assert!(!d.clean());
        let reg: Vec<_> = d.regressed().collect();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].phase, "execution");
        assert_eq!(reg[0].delta_pct, 50);
    }

    #[test]
    fn improvement_and_noise_stay_clean() {
        let base = report_with_exec(1_000, 8);
        // Faster run: never a regression.
        assert!(diff_reports(&base, &report_with_exec(800, 8), 20, 100).clean());
        // +30% but only +3 ps absolute: under the floor, stays clean.
        let tiny_base = report_with_exec(10, 8);
        let tiny_new = report_with_exec(13, 8);
        assert!(diff_reports(&tiny_base, &tiny_new, 20, 100).clean());
    }

    #[test]
    fn diff_serializes() {
        let base = report_with_exec(1_000, 4);
        let new = report_with_exec(2_000, 4);
        let d = diff_reports(&base, &new, 10, 0);
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("\"regressed\":true"));
    }
}
