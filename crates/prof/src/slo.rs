//! Per-tenant latency SLO tracking: targets, burn rate, violation
//! ledger. All integer math (picoseconds and parts-per-million) so
//! reports are byte-deterministic across hosts.

use serde::{Deserialize, Serialize};

/// Maximum violations retained verbatim; beyond this only the count
/// grows (same cap discipline as `pagoda-check`'s violation list).
pub const MAX_VIOLATIONS: usize = 64;

/// A latency objective: "`objective_ppm` of tasks complete within
/// `latency_ps`". E.g. `{ latency_ps: 50_000_000, objective_ppm:
/// 990_000 }` reads "p99 ≤ 50 µs".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Latency target in picoseconds.
    pub latency_ps: u64,
    /// Fraction of tasks that must meet it, in parts-per-million.
    pub objective_ppm: u32,
}

impl SloSpec {
    /// Convenience: "p99 within `us` microseconds".
    pub fn p99_us(us: u64) -> SloSpec {
        SloSpec {
            latency_ps: us * 1_000_000,
            objective_ppm: 990_000,
        }
    }

    /// The tolerated violation fraction, ppm.
    pub fn error_budget_ppm(&self) -> u32 {
        1_000_000 - self.objective_ppm.min(1_000_000)
    }
}

/// One task that blew its latency target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloViolation {
    /// Runtime task key.
    pub task: u64,
    /// Measured sojourn, picoseconds.
    pub sojourn_ps: u64,
    /// The target it missed.
    pub target_ps: u64,
}

/// Online per-tenant SLO accounting. Feed every completed task's
/// sojourn; read off the report at the end.
#[derive(Debug, Clone)]
pub struct SloTracker {
    tenant: u32,
    spec: SloSpec,
    total: u64,
    violations: u64,
    ledger: Vec<SloViolation>,
}

impl SloTracker {
    /// A tracker for `tenant` against `spec`.
    pub fn new(tenant: u32, spec: SloSpec) -> SloTracker {
        SloTracker {
            tenant,
            spec,
            total: 0,
            violations: 0,
            ledger: Vec::new(),
        }
    }

    /// Accounts one completed task.
    pub fn observe(&mut self, task: u64, sojourn_ps: u64) {
        self.total += 1;
        if sojourn_ps > self.spec.latency_ps {
            self.violations += 1;
            if self.ledger.len() < MAX_VIOLATIONS {
                self.ledger.push(SloViolation {
                    task,
                    sojourn_ps,
                    target_ps: self.spec.latency_ps,
                });
            }
        }
    }

    /// Fraction of tasks violating, ppm; 0 if no tasks.
    pub fn violation_ppm(&self) -> u64 {
        if self.total == 0 {
            return 0;
        }
        self.violations * 1_000_000 / self.total
    }

    /// Burn rate in milli-units: observed violation fraction over the
    /// error budget, ×1000. 1000 means burning exactly the budget;
    /// anything above means the SLO is being missed. A zero error
    /// budget (100 % objective) with any violation saturates to
    /// `u64::MAX`.
    pub fn burn_rate_milli(&self) -> u64 {
        let budget = u64::from(self.spec.error_budget_ppm());
        if budget == 0 {
            return if self.violations == 0 { 0 } else { u64::MAX };
        }
        self.violation_ppm() * 1000 / budget
    }

    /// Final snapshot.
    pub fn report(&self) -> SloReport {
        SloReport {
            tenant: self.tenant,
            spec: self.spec,
            tasks: self.total,
            violations: self.violations,
            violation_ppm: self.violation_ppm(),
            burn_rate_milli: self.burn_rate_milli(),
            met: self.violation_ppm() <= u64::from(self.spec.error_budget_ppm()),
            ledger_dropped: self.violations.saturating_sub(self.ledger.len() as u64),
            ledger: self.ledger.clone(),
        }
    }
}

/// Per-tenant SLO outcome, surfaced in `ServeReport`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloReport {
    /// Tenant index the objective applies to.
    pub tenant: u32,
    /// The declared objective.
    pub spec: SloSpec,
    /// Tasks accounted.
    pub tasks: u64,
    /// Tasks over target.
    pub violations: u64,
    /// Violation fraction, ppm.
    pub violation_ppm: u64,
    /// Burn rate, milli-units (1000 = exactly consuming the budget).
    pub burn_rate_milli: u64,
    /// Whether the objective held over the run.
    pub met: bool,
    /// Violations beyond [`MAX_VIOLATIONS`] not retained below.
    pub ledger_dropped: u64,
    /// First violations, verbatim.
    pub ledger: Vec<SloViolation>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burn_rate_and_ppm_math() {
        let mut t = SloTracker::new(
            0,
            SloSpec {
                latency_ps: 100,
                objective_ppm: 990_000, // 1% budget
            },
        );
        for i in 0..100 {
            t.observe(i, if i < 2 { 200 } else { 50 }); // 2% violate
        }
        assert_eq!(t.violation_ppm(), 20_000);
        assert_eq!(t.burn_rate_milli(), 2_000); // 2x budget
        let r = t.report();
        assert!(!r.met);
        assert_eq!(r.violations, 2);
        assert_eq!(r.ledger.len(), 2);
        assert_eq!(r.ledger_dropped, 0);
    }

    #[test]
    fn slo_met_when_within_budget() {
        let mut t = SloTracker::new(
            1,
            SloSpec {
                latency_ps: 100,
                objective_ppm: 900_000, // 10% budget
            },
        );
        for i in 0..100 {
            t.observe(i, if i < 5 { 200 } else { 50 }); // 5% violate
        }
        let r = t.report();
        assert!(r.met);
        assert_eq!(r.burn_rate_milli, 500);
    }

    #[test]
    fn ledger_caps_and_counts_drops() {
        let mut t = SloTracker::new(
            0,
            SloSpec {
                latency_ps: 1,
                objective_ppm: 999_999,
            },
        );
        for i in 0..(MAX_VIOLATIONS as u64 + 10) {
            t.observe(i, 100);
        }
        let r = t.report();
        assert_eq!(r.ledger.len(), MAX_VIOLATIONS);
        assert_eq!(r.ledger_dropped, 10);
    }

    #[test]
    fn zero_budget_saturates() {
        let mut t = SloTracker::new(
            0,
            SloSpec {
                latency_ps: 10,
                objective_ppm: 1_000_000,
            },
        );
        t.observe(0, 5);
        assert_eq!(t.burn_rate_milli(), 0);
        t.observe(1, 50);
        assert_eq!(t.burn_rate_milli(), u64::MAX);
    }
}
