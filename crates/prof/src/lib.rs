//! **pagoda-prof** — critical-path profiling, latency decomposition, and
//! SLO tracking over the `pagoda-obs` event stream.
//!
//! The obs layer records *what happened* (lifecycle spans, serving
//! marks, routes, resource samples); this crate answers *where the time
//! went*. Each completed task's sojourn is cut into seven named phases
//! ([`Phase`]) — admission, host queue, PCIe staging, MTB wait, SMM
//! wait, execution, copyback — that sum **exactly** to the sojourn by
//! construction (see [`phase`]). Per-task decompositions aggregate into
//! mergeable log-bucketed histograms ([`LogHist`]) grouped per tenant
//! and per fleet device, so parallel per-device profiles fold into
//! exactly the serial aggregate.
//!
//! Three ways in:
//!
//! * **online tee** — [`ProfRecorder::recording`] yields an [`Obs`]
//!   handle that profiles while forwarding the unmodified stream to an
//!   inner buffer (same pattern as `pagoda-check`);
//! * **post-hoc** — [`ProfReport::from_buffer`] rebuilds the profile
//!   from any captured [`ObsBuffer`] (how the benches attribute runs);
//! * **SLO tracking** — [`SloTracker`] accounts completed sojourns
//!   against per-tenant [`SloSpec`] targets with integer burn-rate math.
//!
//! Exports: Prometheus text exposition ([`write_prometheus`]),
//! folded-stack flamegraph input ([`write_folded`]), and phase-level
//! regression diffs ([`diff_reports`]) — all integer-valued and
//! byte-deterministic for identical reports.
//!
//! [`Obs`]: pagoda_obs::Obs
//! [`ObsBuffer`]: pagoda_obs::ObsBuffer
//!
//! # Example
//!
//! ```
//! use pagoda_obs::{MarkKind, TaskState};
//! use pagoda_prof::ProfRecorder;
//!
//! let (obs, prof) = ProfRecorder::recording();
//! obs.mark(0, 7, MarkKind::Arrived);
//! obs.task(100, 7, TaskState::Spawned);
//! obs.task(400, 7, TaskState::Running);
//! obs.task(900, 7, TaskState::Freed);
//!
//! let report = prof.report();
//! assert_eq!(report.total().tasks, 1);
//! assert_eq!(report.total().sojourn.sum(), 900);
//!
//! let mut prom = Vec::new();
//! pagoda_prof::write_prometheus(&report, &mut prom).unwrap();
//! pagoda_prof::check_exposition(std::str::from_utf8(&prom).unwrap()).unwrap();
//! ```

pub mod diff;
pub mod export;
pub mod hist;
pub mod phase;
pub mod recorder;
pub mod report;
pub mod slo;

pub use diff::{diff_reports, PhaseDelta, ProfDiff};
pub use export::{check_exposition, write_folded, write_prometheus};
pub use hist::{HistSummary, LogHist};
pub use phase::{decompose, Cuts, Decomposition, Phase};
pub use recorder::ProfRecorder;
pub use report::{GroupProf, GroupSummary, PhaseSummary, ProfReport, ProfSummary, TaskProf};
pub use slo::{SloReport, SloSpec, SloTracker, SloViolation};
