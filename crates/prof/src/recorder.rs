//! [`ProfRecorder`]: critical-path profiling as an observability tee,
//! same shape as `pagoda-check`'s `CheckRecorder`.
//!
//! Every event is forwarded verbatim to an inner [`MemRecorder`], so
//! the buffered stream is byte-identical to what a plain recorder would
//! capture — attaching the profiler never perturbs the determinism
//! fingerprint.
//!
//! Hot-path discipline: the profiler does **no** per-event work of its
//! own. The tee already has to keep the full stream (that is what a tee
//! is), and every input the phase model needs — lifecycle events,
//! marks, routes, tenant tags — is in that buffer, so cuts are derived
//! once at [`ProfRecorder::report`] time via
//! [`ProfReport::from_buffer`] instead of being maintained under a
//! mutex on the record path. And because nothing observes the events
//! in flight, [`ProfRecorder::recording`] hands out the *statically
//! dispatched* mem-backed [`Obs`] handle (`Obs::with_mem`) rather than
//! routing through `dyn Recorder`: recording with profiling on is the
//! mem capture path, instruction for instruction, which is what keeps
//! the `obs_overhead` prof gate honest.
//!
//! Parallel fleets fork per-device buffers and join them in device
//! order (the default [`Recorder::fork`]/[`Recorder::join`]), so the
//! joined buffer — and therefore every report and export derived from
//! it — is identical under either driver.

use std::collections::BTreeSet;
use std::sync::Arc;

use pagoda_obs::{
    Counter, DeviceSample, MemRecorder, MtbSample, Obs, ObsBuffer, Recorder, SmmSample, SyncMark,
    TaskEvent, TaskMark, TaskRoute, TenantTag,
};

use crate::report::ProfReport;

/// A [`Recorder`] that buffers the stream like a plain recorder and
/// derives per-task phase cuts from it on demand.
#[derive(Debug)]
pub struct ProfRecorder {
    inner: Arc<MemRecorder>,
}

impl ProfRecorder {
    /// A profiling recorder plus the [`Obs`] handle to attach.
    ///
    /// The handle records into the shared buffer with static dispatch
    /// (the profiler itself is not on the record path), so attaching it
    /// costs exactly what [`Obs::recording`] costs.
    pub fn recording() -> (Obs, Arc<ProfRecorder>) {
        let inner = Arc::new(MemRecorder::new());
        let rec = Arc::new(ProfRecorder {
            inner: inner.clone(),
        });
        (Obs::with_mem(inner), rec)
    }

    /// The buffered stream, exactly as a plain recorder would hold it.
    pub fn snapshot(&self) -> ObsBuffer {
        self.inner.snapshot()
    }

    /// Aggregates everything profiled so far into a [`ProfReport`].
    /// Incomplete tasks (never `freed`) are excluded.
    pub fn report(&self) -> ProfReport {
        ProfReport::from_buffer(&self.snapshot())
    }

    /// Number of distinct tasks with at least one recorded cut
    /// (lifecycle event or mark), complete or not.
    pub fn tracked_tasks(&self) -> usize {
        let buf = self.snapshot();
        let mut seen: BTreeSet<u64> = buf.tasks.iter().map(|ev| ev.task).collect();
        seen.extend(buf.marks.iter().map(|m| m.task));
        seen.len()
    }
}

impl Recorder for ProfRecorder {
    fn task(&self, ev: TaskEvent) {
        self.inner.task(ev);
    }

    fn tenant(&self, tag: TenantTag) {
        self.inner.tenant(tag);
    }

    fn mark(&self, m: TaskMark) {
        self.inner.mark(m);
    }

    fn route(&self, r: TaskRoute) {
        self.inner.route(r);
    }

    fn smm(&self, s: SmmSample) {
        self.inner.smm(s);
    }

    fn mtb(&self, s: MtbSample) {
        self.inner.mtb(s);
    }

    fn device(&self, s: DeviceSample) {
        self.inner.device(s);
    }

    fn sync_mark(&self, m: SyncMark) {
        self.inner.sync_mark(m);
    }

    fn count(&self, c: Counter, delta: u64) {
        self.inner.count(c, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pagoda_obs::{MarkKind, TaskState};

    fn drive_task(obs: &Obs, i: u64, t0: u64) {
        obs.mark(t0, i, MarkKind::Arrived);
        obs.mark(t0 + 20, i, MarkKind::Admitted);
        obs.task(t0 + 30, i, TaskState::Spawned);
        obs.task(t0 + 100, i, TaskState::Enqueued);
        obs.task(t0 + 150, i, TaskState::Placed);
        obs.task(t0 + 160, i, TaskState::Running);
        obs.task(t0 + 500, i, TaskState::Freed);
        obs.mark(t0 + 540, i, MarkKind::Observed);
        obs.tenant(i, (i % 2) as u32);
    }

    #[test]
    fn tee_preserves_the_buffered_stream() {
        let (plain, plain_rec) = Obs::recording();
        let (prof, prof_rec) = ProfRecorder::recording();
        for obs in [&plain, &prof] {
            drive_task(obs, 0, 100);
            obs.count(Counter::TasksSpawned, 1);
        }
        assert_eq!(
            plain_rec.snapshot().to_json(),
            prof_rec.snapshot().to_json()
        );
    }

    #[test]
    fn report_is_the_buffer_decomposed() {
        let (obs, rec) = ProfRecorder::recording();
        for i in 0..8 {
            drive_task(&obs, i, i * 1_000);
        }
        assert_eq!(rec.report(), ProfReport::from_buffer(&rec.snapshot()));
        assert_eq!(rec.report().total().tasks, 8);
        assert_eq!(rec.tracked_tasks(), 8);
    }

    #[test]
    fn fork_join_profiles_in_join_order() {
        let serial = {
            let (obs, rec) = ProfRecorder::recording();
            drive_task(&obs, 0, 0);
            drive_task(&obs, 1, 50);
            rec.report()
        };
        let parallel = {
            let (obs, rec) = ProfRecorder::recording();
            let f0 = obs.fork();
            let f1 = obs.fork();
            drive_task(&f1.obs(), 1, 50);
            drive_task(&f0.obs(), 0, 0);
            obs.join(f0);
            obs.join(f1);
            rec.report()
        };
        assert_eq!(serial, parallel);
    }

    #[test]
    fn phase_decomposition_sums_to_sojourn_per_group() {
        let (obs, rec) = ProfRecorder::recording();
        for i in 0..5 {
            drive_task(&obs, i, i * 777);
        }
        let r = rec.report();
        for g in &r.groups {
            let sum: u64 = g.phases.iter().map(|h| h.sum()).sum();
            assert_eq!(sum, g.sojourn.sum(), "group {}", g.label);
        }
    }
}
