//! Bounded-queue admission control with explicit shedding.
//!
//! Each tenant owns a queue budget (`queue_cap`). An arrival is admitted
//! iff its tenant's queued-but-unspawned count is below budget; otherwise
//! it is **shed** — rejected immediately with backpressure, never queued.
//! Shedding at the door is what keeps tail latency of *admitted* work
//! bounded when the offered load exceeds the TaskTable's drain rate: the
//! queue ahead of any admitted task is never longer than the budget.
//!
//! Spawning a task (moving it from the queue into the 48×32 TaskTable)
//! returns its slot to the budget — occupancy of the table itself is
//! accounted by the runtime, not here.

/// Per-tenant bounded-queue bookkeeping.
#[derive(Debug)]
pub struct Admission {
    caps: Vec<usize>,
    queued: Vec<usize>,
    offered: Vec<u64>,
    admitted: Vec<u64>,
    shed: Vec<u64>,
    max_depth: Vec<usize>,
}

impl Admission {
    /// A controller with one queue budget per tenant. `usize::MAX`
    /// disables shedding for that tenant (the divergence baseline).
    pub fn new(caps: &[usize]) -> Self {
        let n = caps.len();
        Admission {
            caps: caps.to_vec(),
            queued: vec![0; n],
            offered: vec![0; n],
            admitted: vec![0; n],
            shed: vec![0; n],
            max_depth: vec![0; n],
        }
    }

    /// Offers one arrival; returns whether it may join the queue.
    pub fn offer(&mut self, tenant: usize) -> bool {
        self.offered[tenant] += 1;
        if self.queued[tenant] >= self.caps[tenant] {
            self.shed[tenant] += 1;
            return false;
        }
        self.queued[tenant] += 1;
        self.admitted[tenant] += 1;
        self.max_depth[tenant] = self.max_depth[tenant].max(self.queued[tenant]);
        true
    }

    /// Records that one of `tenant`'s queued tasks left the queue (it
    /// spawned or was cancelled), freeing budget.
    pub fn on_dequeue(&mut self, tenant: usize) {
        debug_assert!(self.queued[tenant] > 0, "dequeue from empty budget");
        self.queued[tenant] -= 1;
    }

    /// Returns a popped-but-unspawned task's slot to the queue count
    /// (the dispatcher hit a full TaskTable and put the task back).
    /// Unlike [`Admission::offer`], no counter moves — the task was
    /// already admitted.
    pub fn requeue(&mut self, tenant: usize) {
        self.queued[tenant] += 1;
        self.max_depth[tenant] = self.max_depth[tenant].max(self.queued[tenant]);
    }

    /// Arrivals offered by `tenant` so far.
    pub fn offered(&self, tenant: usize) -> u64 {
        self.offered[tenant]
    }

    /// Arrivals admitted for `tenant` so far.
    pub fn admitted(&self, tenant: usize) -> u64 {
        self.admitted[tenant]
    }

    /// Arrivals shed for `tenant` so far.
    pub fn shed(&self, tenant: usize) -> u64 {
        self.shed[tenant]
    }

    /// Current queued (admitted, unspawned) tasks of `tenant`.
    pub fn depth(&self, tenant: usize) -> usize {
        self.queued[tenant]
    }

    /// High-water mark of `tenant`'s queue depth.
    pub fn max_depth(&self, tenant: usize) -> usize {
        self.max_depth[tenant]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_above_cap_and_recovers_on_dequeue() {
        let mut a = Admission::new(&[2]);
        assert!(a.offer(0));
        assert!(a.offer(0));
        assert!(!a.offer(0), "third arrival must shed at cap 2");
        assert_eq!((a.admitted(0), a.shed(0), a.offered(0)), (2, 1, 3));
        a.on_dequeue(0);
        assert!(a.offer(0), "budget freed by dequeue");
        assert_eq!(a.max_depth(0), 2);
    }

    #[test]
    fn unbounded_tenant_never_sheds() {
        let mut a = Admission::new(&[usize::MAX]);
        for _ in 0..10_000 {
            assert!(a.offer(0));
        }
        assert_eq!(a.shed(0), 0);
        assert_eq!(a.depth(0), 10_000);
    }

    #[test]
    fn budgets_are_per_tenant() {
        let mut a = Admission::new(&[1, 1]);
        assert!(a.offer(0));
        assert!(a.offer(1), "tenant 1 unaffected by tenant 0's backlog");
        assert!(!a.offer(0));
        assert!(!a.offer(1));
    }
}
