//! The [`ServeBackend`] trait: what the serving loop needs from whatever
//! executes its tasks.
//!
//! [`serve`](crate::serve) was written against one [`PagodaRuntime`]; a
//! fleet manager (`pagoda-cluster`) wants to put N of them behind the
//! same front-end. The loop only ever touches a narrow slice of the
//! runtime — non-blocking submit, capacity probe, completion observation,
//! clock control — so that slice is a trait, and
//! [`serve_on`](crate::server::serve_on) drives any implementor. Task
//! keys are plain `u64`s: a single runtime uses its `TaskId` values, a
//! cluster uses fleet-unique ids that never collide across devices.

use desim::{Dur, SimTime};
use pagoda_core::trace::TaskTrace;
use pagoda_core::{Capacity, PagodaRuntime, SubmitError, TaskDesc, TaskId};

/// The executor surface behind the serving loop. All simulated time is
/// the backend's own clock ([`ServeBackend::now`]); implementations must
/// be deterministic for the records-are-byte-identical contract to hold.
pub trait ServeBackend {
    /// Non-blocking spawn of `desc` on behalf of `tenant` (a routing
    /// hint; a single runtime ignores it). Returns a backend-unique task
    /// key, or hands the descriptor back via [`SubmitError::Full`].
    fn submit(&mut self, tenant: u32, desc: TaskDesc) -> Result<u64, SubmitError>;

    /// Admission headroom in the backend's current view.
    fn capacity(&self) -> Capacity;

    /// Whether the completion of `key` has been observed host-side.
    ///
    /// # Panics
    /// May panic if `key` was not issued by this backend.
    fn observed_done(&self, key: u64) -> bool;

    /// When `key`'s output landed in host memory; `None` until its
    /// completion has been observed.
    fn completion_time(&self, key: u64) -> Option<SimTime>;

    /// The backend's current clock.
    fn now(&self) -> SimTime;

    /// Idles the backend to `t` (no-op if in the past), co-simulating
    /// whatever it owns up to that instant.
    fn advance_to(&mut self, t: SimTime);

    /// Refreshes the host view of completions (the §4.2.2 aggregate
    /// copy-back, fleet-wide for a cluster). Costs simulated time.
    fn sync(&mut self);

    /// The polling slice the loop idles for when blocked on capacity.
    fn wait_timeout(&self) -> Dur;

    /// Mean fraction of device warp slots doing useful work so far.
    fn warp_occupancy(&mut self) -> f64;

    /// Runtime-level timelines of spawned tasks, in spawn order. May be
    /// empty for backends whose task keys do not map to one runtime's
    /// trace ids (a cluster exports per-device timelines via `pagoda-obs`
    /// instead).
    fn traces(&self) -> Vec<TaskTrace>;
}

impl ServeBackend for PagodaRuntime {
    fn submit(&mut self, _tenant: u32, desc: TaskDesc) -> Result<u64, SubmitError> {
        PagodaRuntime::submit(self, desc).map(|id| id.0)
    }

    fn capacity(&self) -> Capacity {
        PagodaRuntime::capacity(self)
    }

    fn observed_done(&self, key: u64) -> bool {
        PagodaRuntime::observed_done(self, TaskId(key))
            .expect("invariant: serve loop only passes keys this runtime issued")
    }

    fn completion_time(&self, key: u64) -> Option<SimTime> {
        self.trace(TaskId(key))
            .expect("invariant: serve loop only passes keys this runtime issued")
            .output_done
    }

    fn now(&self) -> SimTime {
        self.host_now()
    }

    fn advance_to(&mut self, t: SimTime) {
        PagodaRuntime::advance_to(self, t);
    }

    fn sync(&mut self) {
        self.sync_table();
    }

    fn wait_timeout(&self) -> Dur {
        self.config().wait_timeout
    }

    fn warp_occupancy(&mut self) -> f64 {
        self.report().avg_running_occupancy
    }

    fn traces(&self) -> Vec<TaskTrace> {
        PagodaRuntime::traces(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::WarpWork;

    #[test]
    fn runtime_backend_round_trips_a_task() {
        let mut rt = PagodaRuntime::titan_x();
        let b: &mut dyn ServeBackend = &mut rt;
        assert!(b.capacity().has_room());
        let key = b
            .submit(0, TaskDesc::uniform(64, WarpWork::compute(10_000, 8.0)))
            .expect("empty table accepts");
        assert!(!b.observed_done(key));
        assert_eq!(b.completion_time(key), None);
        let mut guard = 0;
        while !b.observed_done(key) {
            b.sync();
            let t = b.now() + b.wait_timeout();
            b.advance_to(t);
            guard += 1;
            assert!(guard < 10_000, "task never completed");
        }
        let done = b.completion_time(key).expect("observed done has a time");
        assert!(done <= b.now());
        assert_eq!(b.traces().len(), 1);
    }
}
