//! Serving metrics: per-task records and per-tenant/run aggregates.
//!
//! Everything here derives `Serialize` so a run can be dumped as JSON
//! lines and diffed byte-for-byte across runs — the serving layer's
//! determinism contract is "same config + seed ⇒ identical records".
//! Latencies are *sojourn* times (arrival → output landed in host
//! memory), the serving analogue of the paper's Fig. 10 per-task
//! latency; phase splits come from [`pagoda_core::trace::TaskTrace`].

use serde::Serialize;

/// What became of one offered arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Outcome {
    /// Rejected at admission (queue budget full).
    Shed,
    /// Admitted but cancelled at dispatch: its deadline had already
    /// passed and the policy cancels late work.
    Expired,
    /// Ran to completion.
    Done,
}

/// One offered arrival, from the client's point of view.
#[derive(Debug, Clone, Serialize)]
pub struct TaskRecord {
    /// Tenant index.
    pub tenant: u32,
    /// Global arrival sequence number.
    pub seq: u64,
    /// Arrival instant, µs.
    pub arrival_us: f64,
    /// Fate of the arrival.
    pub outcome: Outcome,
    /// Spawn instant (µs) for tasks that reached the runtime.
    pub spawn_us: Option<f64>,
    /// Completion instant (µs; output copy landed) for finished tasks.
    pub done_us: Option<f64>,
    /// Sojourn time (arrival → done), µs.
    pub sojourn_us: Option<f64>,
    /// The task finished after its deadline (only meaningful when the
    /// tenant declared one and the policy does not cancel late work).
    pub deadline_missed: bool,
}

/// Aggregates for one tenant over a run.
#[derive(Debug, Clone, Serialize)]
pub struct TenantReport {
    /// Tenant display name.
    pub tenant: String,
    /// WFQ weight the run used.
    pub weight: u32,
    /// Arrivals offered.
    pub offered: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Arrivals shed at admission.
    pub shed: u64,
    /// Admitted tasks cancelled for missing their deadline pre-dispatch.
    pub expired: u64,
    /// Tasks completed.
    pub completed: u64,
    /// Completed tasks that finished past their deadline.
    pub deadline_missed: u64,
    /// Queue-depth high-water mark.
    pub max_queue_depth: u64,
    /// Mean sojourn, µs.
    pub mean_sojourn_us: f64,
    /// Median sojourn, µs.
    pub p50_sojourn_us: f64,
    /// 95th-percentile sojourn, µs.
    pub p95_sojourn_us: f64,
    /// 99th-percentile sojourn, µs.
    pub p99_sojourn_us: f64,
}

/// Whole-run aggregates (one serving experiment).
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// QoS policy name (`fifo`, `wfq`, `edf`).
    pub policy: String,
    /// Tenant-mix label.
    pub mix: String,
    /// Experiment seed.
    pub seed: u64,
    /// Offered load relative to the calibrated service capacity.
    pub offered_load: f64,
    /// Host makespan of the run, µs.
    pub makespan_us: f64,
    /// Completed tasks per second of makespan.
    pub throughput_per_s: f64,
    /// Mean TaskTable occupancy over dispatch rounds (0..1).
    pub avg_slot_occupancy: f64,
    /// Device-level mean fraction of warp slots doing useful work.
    pub avg_warp_occupancy: f64,
    /// Per-tenant aggregates.
    pub tenants: Vec<TenantReport>,
    /// SLO outcomes, one per tenant that declared a
    /// [`pagoda_prof::SloSpec`] (tenant-index order; empty when none
    /// did).
    pub slo: Vec<pagoda_prof::SloReport>,
}

/// Nearest-rank percentile of an unsorted sample (q in 0..=100).
/// Returns 0.0 for an empty sample.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((q / 100.0) * v.len() as f64).ceil() as usize;
    v[rank.clamp(1, v.len()) - 1]
}

/// Builds a [`TenantReport`] from completed-task sojourns and counters.
#[allow(clippy::too_many_arguments)]
pub fn tenant_report(
    tenant: String,
    weight: u32,
    offered: u64,
    admitted: u64,
    shed: u64,
    expired: u64,
    deadline_missed: u64,
    max_queue_depth: u64,
    sojourns_us: &[f64],
) -> TenantReport {
    let n = sojourns_us.len();
    let mean = if n == 0 {
        0.0
    } else {
        sojourns_us.iter().sum::<f64>() / n as f64
    };
    TenantReport {
        tenant,
        weight,
        offered,
        admitted,
        shed,
        expired,
        completed: n as u64,
        deadline_missed,
        max_queue_depth,
        mean_sojourn_us: mean,
        p50_sojourn_us: percentile(sojourns_us, 50.0),
        p95_sojourn_us: percentile(sojourns_us, 95.0),
        p99_sojourn_us: percentile(sojourns_us, 99.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 95.0), 95.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn records_serialize_to_stable_json() {
        let r = TaskRecord {
            tenant: 1,
            seq: 42,
            arrival_us: 10.5,
            outcome: Outcome::Done,
            spawn_us: Some(11.0),
            done_us: Some(20.25),
            sojourn_us: Some(9.75),
            deadline_missed: false,
        };
        let a = serde_json::to_string(&r).unwrap();
        let b = serde_json::to_string(&r).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"outcome\":\"Done\""), "{a}");
        assert!(a.contains("\"seq\":42"), "{a}");
    }
}
