//! **pagoda-serve** — a multi-tenant task-serving front-end for the
//! Pagoda runtime.
//!
//! The paper evaluates Pagoda with closed batches: spawn 32 K tasks,
//! `waitAll`, measure. Real deployments of a narrow-task GPU runtime
//! (packet pipelines, camera fleets, inference micro-ops) face the
//! opposite shape: *open-loop* streams from several tenants, each with
//! its own burstiness and latency expectations, all contending for the
//! same 48×32 TaskTable. This crate supplies the serving layer between
//! those clients and [`pagoda_core::runtime`]:
//!
//! * [`arrival`] — seeded Poisson and 2-state MMPP (bursty) arrival
//!   generators per tenant;
//! * [`admission`] — bounded per-tenant queues with explicit shedding,
//!   the backpressure that keeps admitted-task tail latency finite when
//!   offered load exceeds the table's drain rate;
//! * [`qos`] — a pluggable [`qos::QosScheduler`] trait with FIFO,
//!   weighted-fair (starvation-free by construction), and
//!   earliest-deadline-first policies, plus per-task deadlines that can
//!   cancel work already stale at dispatch;
//! * [`metrics`] — serde-serializable per-task records and per-tenant
//!   p50/p95/p99 sojourn aggregates, integrated with
//!   [`pagoda_core::trace`] timelines;
//! * [`error`] — the typed [`ServeError`] returned by the entry points;
//! * [`server`] — the deterministic discrete-event loop driving any
//!   [`Backend`] (a single [`pagoda_core::PagodaRuntime`] via [`serve`],
//!   or an N-device fleet via [`server::serve_on`]) through its
//!   non-blocking spawn probe.
//!
//! Same config + same seed ⇒ byte-identical records; the serving layer
//! inherits the determinism of the simulation substrate. Set
//! [`ServeConfig::obs`] to a `pagoda_obs` recorder to capture admission
//! counters, tenant-tagged task spans, and device timelines for export.
//!
//! # Example
//!
//! ```
//! use pagoda_serve::{serve, Policy, ServeConfig, TenantSpec};
//! use workloads::Bench;
//!
//! let mut video = TenantSpec::new("video", Bench::Dct, 4.0e5);
//! video.weight = 3;
//! let crypto = TenantSpec::new("crypto", Bench::Des3, 8.0e5);
//!
//! let mut cfg = ServeConfig::new(vec![video, crypto], Policy::WeightedFair);
//! cfg.tasks_per_tenant = 64; // keep the doctest quick
//! let out = serve(&cfg).unwrap();
//! let total: u64 = out.report.tenants.iter().map(|t| t.offered).sum();
//! assert_eq!(total, 128);
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod admission;
pub mod arrival;
pub mod error;
pub mod metrics;
pub mod qos;
pub mod server;

pub use admission::Admission;
pub use arrival::{ArrivalGen, ArrivalSpec};
pub use error::ServeError;
pub use metrics::{percentile, Outcome, ServeReport, TaskRecord, TenantReport};
pub use pagoda_host::Backend;
pub use qos::{Edf, Fifo, QosAudit, QosScheduler, QueuedTask, WeightedFair};
pub use server::{
    calibrate_capacity, serve, serve_on, serving_slice, Policy, ServeConfig, ServeOutcome,
    TenantSpec,
};
