//! Pluggable QoS schedulers over the admitted-task queue.
//!
//! The server keeps every admitted-but-not-yet-spawned task in one of
//! these structures; whenever the runtime's TaskTable has capacity, it
//! pops the next task to spawn. Three policies, all deterministic:
//!
//! * [`Fifo`] — global arrival order, tenant-blind;
//! * [`WeightedFair`] — weighted round-robin across per-tenant queues
//!   with credit refill: a backlogged tenant with weight `w` receives
//!   exactly `w` of every full credit cycle (never starves);
//! * [`Edf`] — earliest absolute deadline first; deadline-free tasks
//!   sort last, ties break on arrival sequence.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use desim::SimTime;
use pagoda_core::TaskDesc;

/// An admitted task waiting to be spawned into the runtime.
#[derive(Debug, Clone)]
pub struct QueuedTask {
    /// Index into the experiment's tenant list.
    pub tenant: usize,
    /// Global arrival sequence number (total order over all tenants).
    pub seq: u64,
    /// Arrival instant (sojourn time is measured from here).
    pub arrival: SimTime,
    /// Instant admission control accepted the task (the `admission`
    /// phase of the prof decomposition ends here).
    pub admitted: SimTime,
    /// Absolute completion deadline, if the tenant declared one.
    pub deadline: Option<SimTime>,
    /// The work itself.
    pub desc: TaskDesc,
}

/// A passive observer of scheduler traffic, for invariant checkers.
///
/// The serving loop calls these hooks around every [`QosScheduler`]
/// interaction; an auditor mirrors the queue discipline and validates
/// its ordering contract (FIFO arrival order, EDF deadline order)
/// without touching the scheduler itself. Hooks take `&self` — the
/// auditor is shared behind an `Arc` across the loop, so it brings its
/// own interior mutability. All methods default to no-ops.
pub trait QosAudit: std::fmt::Debug + Send + Sync {
    /// A task was admitted and is entering the queue.
    fn on_push(&self, _t: &QueuedTask) {}
    /// The scheduler chose this task to spawn next.
    fn on_pop(&self, _t: &QueuedTask) {}
    /// A popped task is going *back* into the queue (dispatch raced
    /// capacity away); for order-based disciplines it re-enters as if
    /// newly arrived, so auditors must not flag its later re-pop.
    fn on_requeue(&self, _t: &QueuedTask) {}
}

/// A queue discipline deciding which admitted task spawns next.
pub trait QosScheduler {
    /// Display name of the policy.
    fn name(&self) -> &'static str;
    /// Accepts an admitted task.
    fn push(&mut self, t: QueuedTask);
    /// Removes and returns the next task to spawn.
    fn pop(&mut self) -> Option<QueuedTask>;
    /// Tasks currently queued.
    fn len(&self) -> usize;
    /// Whether no tasks are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Global first-in-first-out, ignoring tenants and deadlines.
#[derive(Debug, Default)]
pub struct Fifo {
    q: VecDeque<QueuedTask>,
}

impl Fifo {
    /// An empty FIFO queue.
    pub fn new() -> Self {
        Fifo::default()
    }
}

impl QosScheduler for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }
    fn push(&mut self, t: QueuedTask) {
        self.q.push_back(t);
    }
    fn pop(&mut self) -> Option<QueuedTask> {
        self.q.pop_front()
    }
    fn len(&self) -> usize {
        self.q.len()
    }
}

/// Weighted round-robin with credit refill (unit-cost deficit round
/// robin): per-tenant FIFO queues; each credit cycle grants tenant `i`
/// up to `weights[i]` pops; credits refill when no backlogged tenant has
/// any left. A continuously backlogged tenant therefore receives exactly
/// its weight share of every cycle — starvation-free by construction.
#[derive(Debug)]
pub struct WeightedFair {
    queues: Vec<VecDeque<QueuedTask>>,
    weights: Vec<u32>,
    credits: Vec<u32>,
    cursor: usize,
    len: usize,
}

impl WeightedFair {
    /// A scheduler for `weights.len()` tenants; every weight must be ≥ 1.
    ///
    /// # Panics
    /// Panics on an empty weight list or a zero weight.
    pub fn new(weights: &[u32]) -> Self {
        assert!(
            !weights.is_empty(),
            "WeightedFair needs at least one tenant"
        );
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        WeightedFair {
            queues: weights.iter().map(|_| VecDeque::new()).collect(),
            credits: weights.to_vec(),
            weights: weights.to_vec(),
            cursor: 0,
            len: 0,
        }
    }

    /// Queued tasks of one tenant.
    pub fn tenant_len(&self, tenant: usize) -> usize {
        self.queues[tenant].len()
    }
}

impl QosScheduler for WeightedFair {
    fn name(&self) -> &'static str {
        "wfq"
    }

    fn push(&mut self, t: QueuedTask) {
        self.len += 1;
        self.queues[t.tenant].push_back(t);
    }

    fn pop(&mut self) -> Option<QueuedTask> {
        if self.len == 0 {
            return None;
        }
        let n = self.queues.len();
        loop {
            for k in 0..n {
                let i = (self.cursor + k) % n;
                if self.credits[i] > 0 && !self.queues[i].is_empty() {
                    self.credits[i] -= 1;
                    // Serve the tenant's whole quantum back-to-back, then
                    // move on (DRR batching).
                    self.cursor = if self.credits[i] == 0 { (i + 1) % n } else { i };
                    self.len -= 1;
                    return self.queues[i].pop_front();
                }
            }
            // Every backlogged tenant exhausted its credits: new cycle.
            self.credits.copy_from_slice(&self.weights);
            self.cursor = 0;
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Heap entry ordered by (deadline, seq); `None` deadlines sort last.
#[derive(Debug)]
struct EdfItem {
    key_ps: u64,
    seq: u64,
    task: QueuedTask,
}

impl PartialEq for EdfItem {
    fn eq(&self, other: &Self) -> bool {
        self.key_ps == other.key_ps && self.seq == other.seq
    }
}
impl Eq for EdfItem {}
impl PartialOrd for EdfItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EdfItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min deadline.
        (other.key_ps, other.seq).cmp(&(self.key_ps, self.seq))
    }
}

/// Earliest-deadline-first across all tenants.
#[derive(Debug, Default)]
pub struct Edf {
    heap: BinaryHeap<EdfItem>,
}

impl Edf {
    /// An empty EDF queue.
    pub fn new() -> Self {
        Edf::default()
    }
}

impl QosScheduler for Edf {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn push(&mut self, t: QueuedTask) {
        self.heap.push(EdfItem {
            key_ps: t.deadline.map_or(u64::MAX, SimTime::as_ps),
            seq: t.seq,
            task: t,
        });
    }

    fn pop(&mut self) -> Option<QueuedTask> {
        self.heap.pop().map(|i| i.task)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::WarpWork;

    fn qt(tenant: usize, seq: u64, deadline_us: Option<u64>) -> QueuedTask {
        QueuedTask {
            tenant,
            seq,
            arrival: SimTime::from_us(seq),
            admitted: SimTime::from_us(seq),
            deadline: deadline_us.map(SimTime::from_us),
            desc: TaskDesc::uniform(32, WarpWork::compute(100, 1.0)),
        }
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut f = Fifo::new();
        for s in 0..10 {
            f.push(qt(s as usize % 2, s, None));
        }
        let order: Vec<u64> = std::iter::from_fn(|| f.pop()).map(|t| t.seq).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn wfq_shares_one_cycle_by_weight() {
        let mut w = WeightedFair::new(&[3, 1]);
        for s in 0..16 {
            w.push(qt((s % 2) as usize, s, None));
        }
        // One full credit cycle = 4 pops: 3 of tenant 0, 1 of tenant 1.
        let cycle: Vec<usize> = (0..4).map(|_| w.pop().unwrap().tenant).collect();
        assert_eq!(cycle.iter().filter(|&&t| t == 0).count(), 3);
        assert_eq!(cycle.iter().filter(|&&t| t == 1).count(), 1);
    }

    #[test]
    fn wfq_skips_idle_tenants_without_stalling() {
        let mut w = WeightedFair::new(&[2, 5]);
        for s in 0..4 {
            w.push(qt(0, s, None));
        }
        // Tenant 1 has nothing queued; tenant 0 must drain immediately.
        let got: Vec<u64> = std::iter::from_fn(|| w.pop()).map(|t| t.seq).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn edf_orders_by_deadline_then_seq() {
        let mut e = Edf::new();
        e.push(qt(0, 0, Some(300)));
        e.push(qt(1, 1, Some(100)));
        e.push(qt(0, 2, None));
        e.push(qt(1, 3, Some(100)));
        let order: Vec<u64> = std::iter::from_fn(|| e.pop()).map(|t| t.seq).collect();
        assert_eq!(order, vec![1, 3, 0, 2]);
    }
}
