//! Typed errors for the serving layer's public entry points.

use pagoda_core::{ConfigError, TaskError};

/// Why a serving entry point refused to run.
#[derive(Debug)]
pub enum ServeError {
    /// The experiment has no tenants.
    NoTenants,
    /// `serving_slice` was asked for a zero-SMM partition.
    EmptySlice,
    /// The embedded runtime configuration failed validation.
    InvalidRuntime(ConfigError),
    /// A tenant's workload generator produced a task description the
    /// runtime can never spawn.
    UnspawnableTask {
        /// Index of the offending tenant.
        tenant: usize,
        /// The runtime's validation error.
        source: TaskError,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoTenants => write!(f, "serve needs at least one tenant"),
            ServeError::EmptySlice => write!(f, "a serving slice needs at least one SMM"),
            ServeError::InvalidRuntime(e) => write!(f, "invalid runtime configuration: {e}"),
            ServeError::UnspawnableTask { tenant, source } => {
                write!(f, "tenant {tenant} produced an unspawnable task: {source}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::NoTenants | ServeError::EmptySlice => None,
            ServeError::InvalidRuntime(e) => Some(e),
            ServeError::UnspawnableTask { source, .. } => Some(source),
        }
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::InvalidRuntime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_sources() {
        assert!(ServeError::NoTenants.to_string().contains("tenant"));
        assert!(ServeError::NoTenants.source().is_none());
        assert!(ServeError::EmptySlice.to_string().contains("SMM"));

        let e = ServeError::from(ConfigError::ZeroRows);
        assert!(e.to_string().contains("invalid runtime"));
        assert!(e.source().is_some());

        let u = ServeError::UnspawnableTask {
            tenant: 3,
            source: TaskError::EmptyTask,
        };
        assert!(u.to_string().contains("tenant 3"));
        assert!(u.source().is_some());
    }
}
