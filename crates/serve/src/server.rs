//! The serving loop: simulated clients → admission → QoS queue →
//! [`PagodaRuntime`].
//!
//! [`serve`] runs one experiment as a discrete-event co-simulation on the
//! runtime's own clock. Per iteration it
//!
//! 1. **admits** every arrival whose instant has passed — each tenant's
//!    stream is open-loop, so arrivals keep coming regardless of backlog,
//!    and the bounded queue sheds what does not fit;
//! 2. **dispatches** queued tasks through the configured
//!    [`QosScheduler`] into the TaskTable via the runtime's non-blocking
//!    [`PagodaRuntime::submit`], until the table is full or the queue
//!    is empty;
//! 3. **retires** tasks whose completion the host has observed;
//! 4. **advances time** — to the next arrival when idle, or through a
//!    [`PagodaRuntime::sync_table`] refresh plus timeout slice when
//!    blocked on table capacity (the serving-side mirror of the
//!    runtime's own §4.2.2 lazy aggregate copy-back loop).
//!
//! Everything is a pure function of the [`ServeConfig`] (including its
//! seed): two runs produce byte-identical metric records.

use desim::Dur;
use pagoda_core::trace::TaskTrace;
use pagoda_core::{PagodaConfig, PagodaRuntime, SubmitError, TaskDesc};
use pagoda_host::Backend;
use pagoda_obs::{Counter, MarkKind, Obs};
use pagoda_prof::{SloSpec, SloTracker};
use workloads::{Bench, GenOpts};

use crate::admission::Admission;
use crate::arrival::{ArrivalGen, ArrivalSpec};
use crate::error::ServeError;
use crate::metrics::{tenant_report, Outcome, ServeReport, TaskRecord};
use crate::qos::{Edf, Fifo, QosAudit, QosScheduler, QueuedTask, WeightedFair};

/// One tenant of the serving experiment.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name.
    pub name: String,
    /// Weighted-fair share (ignored by FIFO/EDF).
    pub weight: u32,
    /// Queue budget for admission control; `usize::MAX` disables
    /// shedding (the divergence baseline).
    pub queue_cap: usize,
    /// Relative completion deadline per task, if any (EDF priority and
    /// miss accounting).
    pub deadline: Option<Dur>,
    /// The tenant's arrival process.
    pub arrival: ArrivalSpec,
    /// Which benchmark's tasks the tenant submits.
    pub bench: Bench,
    /// Workload generator knobs.
    pub gen: GenOpts,
    /// Arrivals this tenant generates; `None` uses the experiment-wide
    /// [`ServeConfig::tasks_per_tenant`]. Setting counts proportional to
    /// each tenant's arrival rate makes all streams span the same wall
    /// clock window, which keeps the aggregate offered rate constant for
    /// the whole run instead of decaying as fast tenants finish early.
    pub tasks: Option<usize>,
    /// Latency objective for this tenant, if declared. Completed tasks'
    /// sojourns are accounted against it and the outcome surfaces as a
    /// [`pagoda_prof::SloReport`] in [`crate::metrics::ServeReport::slo`].
    pub slo: Option<SloSpec>,
}

impl TenantSpec {
    /// A tenant with sensible defaults: weight 1, 64-deep queue, no
    /// deadline, Poisson arrivals at `rate_per_s`.
    pub fn new(name: &str, bench: Bench, rate_per_s: f64) -> Self {
        TenantSpec {
            name: name.to_string(),
            weight: 1,
            queue_cap: 64,
            deadline: None,
            arrival: ArrivalSpec::Poisson { rate_per_s },
            bench,
            gen: GenOpts::default(),
            tasks: None,
            slo: None,
        }
    }
}

/// Which QoS discipline orders the admitted queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Global arrival order.
    Fifo,
    /// Weighted round-robin over per-tenant queues.
    WeightedFair,
    /// Earliest absolute deadline first.
    Edf,
}

impl Policy {
    /// Display name, as emitted in reports.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::WeightedFair => "wfq",
            Policy::Edf => "edf",
        }
    }

    /// Instantiates the scheduler for a tenant set.
    pub fn scheduler(self, weights: &[u32]) -> Box<dyn QosScheduler> {
        match self {
            Policy::Fifo => Box::new(Fifo::new()),
            Policy::WeightedFair => Box::new(WeightedFair::new(weights)),
            Policy::Edf => Box::new(Edf::new()),
        }
    }
}

/// A complete serving experiment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The tenants.
    pub tenants: Vec<TenantSpec>,
    /// Queue discipline.
    pub policy: Policy,
    /// Cancel tasks whose deadline already passed when they reach the
    /// head of the queue (counted as `expired`, never spawned).
    pub cancel_late: bool,
    /// Open-loop arrivals generated per tenant.
    pub tasks_per_tenant: usize,
    /// Master seed; all arrival streams and workloads derive from it.
    pub seed: u64,
    /// Label for the tenant mix, carried into the report.
    pub mix: String,
    /// Offered-load label relative to calibrated capacity (reporting
    /// only; the actual rates live in each tenant's [`ArrivalSpec`]).
    pub offered_load: f64,
    /// Runtime/device configuration.
    pub runtime: PagodaConfig,
    /// Observability sink, forwarded to the runtime (and through it to
    /// the device and bus). The serving loop adds admission counters and
    /// tags every spawned task with its tenant so exporters can draw one
    /// track per tenant. Defaults to [`Obs::off`].
    pub obs: Obs,
    /// Passive scheduler-traffic observer ([`QosAudit`]); invariant
    /// checkers hang here. `None` (the default) costs nothing.
    pub qos_audit: Option<std::sync::Arc<dyn QosAudit>>,
}

impl ServeConfig {
    /// An experiment with default runtime, seed 42, 256 tasks/tenant.
    pub fn new(tenants: Vec<TenantSpec>, policy: Policy) -> Self {
        ServeConfig {
            tenants,
            policy,
            cancel_late: false,
            tasks_per_tenant: 256,
            seed: 42,
            mix: String::new(),
            offered_load: 0.0,
            runtime: PagodaConfig::default(),
            obs: Obs::off(),
            qos_audit: None,
        }
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Aggregated metrics.
    pub report: ServeReport,
    /// One record per offered arrival, in arrival order.
    pub records: Vec<TaskRecord>,
    /// Runtime-level timelines of every *spawned* task, in spawn order
    /// (feed to [`pagoda_core::trace::write_chrome_trace`]).
    pub traces: Vec<TaskTrace>,
}

struct Arrival {
    at: desim::SimTime,
    tenant: usize,
    desc: TaskDesc,
}

struct InFlight {
    key: u64,
    seq: usize,
    tenant: usize,
    arrival: desim::SimTime,
    deadline: Option<desim::SimTime>,
}

/// Runs one serving experiment to completion (all arrivals resolved:
/// completed, shed, or expired) and aggregates its metrics.
///
/// # Errors
/// [`ServeError::NoTenants`] on an empty tenant list,
/// [`ServeError::InvalidRuntime`] if the embedded [`PagodaConfig`] fails
/// validation, and [`ServeError::UnspawnableTask`] if a workload produces
/// an invalid [`TaskDesc`].
pub fn serve(cfg: &ServeConfig) -> Result<ServeOutcome, ServeError> {
    if cfg.tenants.is_empty() {
        return Err(ServeError::NoTenants);
    }
    cfg.runtime.validate()?;
    let mut rt = PagodaRuntime::new(cfg.runtime.clone());
    serve_on(cfg, &mut rt)
}

/// [`serve`] over any [`Backend`] — the same admission/QoS/dispatch
/// loop, executing on `rt` instead of a freshly built single runtime.
/// `cfg.runtime` is ignored (the backend brings its own devices);
/// `cfg.obs` is attached to the backend so runtime-level events land in
/// the same recorder as the serving counters.
///
/// # Errors
/// [`ServeError::NoTenants`] on an empty tenant list and
/// [`ServeError::UnspawnableTask`] if a workload produces an invalid
/// [`TaskDesc`].
pub fn serve_on<B: Backend + ?Sized>(
    cfg: &ServeConfig,
    rt: &mut B,
) -> Result<ServeOutcome, ServeError> {
    if cfg.tenants.is_empty() {
        return Err(ServeError::NoTenants);
    }
    rt.attach_obs(cfg.obs.clone());
    let nt = cfg.tenants.len();
    let obs = cfg.obs.clone();
    let wait_timeout = rt.wait_timeout();

    // ---- client side: pre-generate every tenant's timeline -----------
    let mut all: Vec<Arrival> = Vec::with_capacity(nt * cfg.tasks_per_tenant);
    for (ti, t) in cfg.tenants.iter().enumerate() {
        let mut gen = t.gen.clone();
        gen.seed ^= splitmix(cfg.seed ^ splitmix(ti as u64));
        let descs = t.bench.tasks(t.tasks.unwrap_or(cfg.tasks_per_tenant), &gen);
        let mut ag = ArrivalGen::new(t.arrival, splitmix(cfg.seed).wrapping_add(ti as u64));
        for desc in descs {
            all.push(Arrival {
                at: ag.next_arrival(),
                tenant: ti,
                desc,
            });
        }
    }
    // Stable merge: time, then tenant index (each tenant's own stream is
    // strictly increasing, so this is a total order).
    all.sort_by_key(|a| (a.at, a.tenant));

    // ---- server state ------------------------------------------------
    let weights: Vec<u32> = cfg.tenants.iter().map(|t| t.weight).collect();
    let caps: Vec<usize> = cfg.tenants.iter().map(|t| t.queue_cap).collect();
    let mut sched = cfg.policy.scheduler(&weights);
    let mut admission = Admission::new(&caps);
    let mut slo_trackers: Vec<Option<SloTracker>> = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(ti, t)| t.slo.map(|s| SloTracker::new(ti as u32, s)))
        .collect();
    let mut in_flight: Vec<InFlight> = Vec::new();
    let mut records: Vec<TaskRecord> = Vec::with_capacity(all.len());
    let mut expired = vec![0u64; nt];
    let mut missed = vec![0u64; nt];
    let mut sojourns: Vec<Vec<f64>> = vec![Vec::new(); nt];
    let mut occ_sum = 0.0;
    let mut occ_rounds = 0u64;
    let mut next_arr = 0usize;

    loop {
        // 1. Admit (or shed) every arrival that is due.
        while next_arr < all.len() && all[next_arr].at <= rt.now() {
            let a = &all[next_arr];
            let admitted = admission.offer(a.tenant);
            obs.count(
                if admitted {
                    Counter::AdmissionAdmitted
                } else {
                    Counter::AdmissionShed
                },
                1,
            );
            records.push(TaskRecord {
                tenant: a.tenant as u32,
                seq: next_arr as u64,
                arrival_us: a.at.as_us_f64(),
                outcome: if admitted {
                    Outcome::Done
                } else {
                    Outcome::Shed
                },
                spawn_us: None,
                done_us: None,
                sojourn_us: None,
                deadline_missed: false,
            });
            if admitted {
                let qt = QueuedTask {
                    tenant: a.tenant,
                    seq: next_arr as u64,
                    arrival: a.at,
                    admitted: rt.now(),
                    deadline: cfg.tenants[a.tenant].deadline.map(|d| a.at + d),
                    desc: a.desc.clone(),
                };
                if let Some(audit) = &cfg.qos_audit {
                    audit.on_push(&qt);
                }
                sched.push(qt);
            }
            next_arr += 1;
        }

        // 2. Dispatch into the TaskTable while it has room.
        while rt.capacity().has_room() {
            let Some(qt) = sched.pop() else { break };
            if let Some(audit) = &cfg.qos_audit {
                audit.on_pop(&qt);
            }
            let QueuedTask {
                tenant,
                seq,
                arrival,
                admitted,
                deadline,
                desc,
            } = qt;
            admission.on_dequeue(tenant);
            if cfg.cancel_late && deadline.is_some_and(|d| d < rt.now()) {
                expired[tenant] += 1;
                let r = &mut records[seq as usize];
                r.outcome = Outcome::Expired;
                r.deadline_missed = true;
                continue;
            }
            match rt.submit(tenant as u32, desc) {
                Ok(key) => {
                    records[seq as usize].spawn_us = Some(rt.now().as_us_f64());
                    obs.tenant(key, tenant as u32);
                    // The runtime key exists only now, so the serving-side
                    // timeline marks are emitted retroactively: their
                    // `at_ps` carry the true arrival/admission instants
                    // even though they enter the stream at spawn time.
                    obs.mark(arrival.as_ps(), key, MarkKind::Arrived);
                    obs.mark(admitted.as_ps(), key, MarkKind::Admitted);
                    in_flight.push(InFlight {
                        key,
                        seq: seq as usize,
                        tenant,
                        arrival,
                        deadline,
                    });
                }
                Err(SubmitError::Full(desc)) => {
                    // Defensive: capacity raced away. Put the task back.
                    admission.requeue(tenant);
                    let qt = QueuedTask {
                        tenant,
                        seq,
                        arrival,
                        admitted,
                        deadline,
                        desc,
                    };
                    if let Some(audit) = &cfg.qos_audit {
                        audit.on_requeue(&qt);
                    }
                    sched.push(qt);
                    break;
                }
                Err(SubmitError::Invalid(source)) => {
                    return Err(ServeError::UnspawnableTask { tenant, source });
                }
            }
        }
        let cap = rt.capacity();
        occ_sum += 1.0 - f64::from(cap.known_free) / f64::from(cap.total.max(1));
        occ_rounds += 1;

        // 3. Retire completions the host has observed via copy-backs.
        in_flight.retain(|f| {
            if !rt.observed_done(f.key) {
                return true;
            }
            let done = rt
                .completion_time(f.key)
                .expect("invariant: observed-done task has an output time");
            obs.mark(done.as_ps(), f.key, MarkKind::Observed);
            if let Some(tr) = &mut slo_trackers[f.tenant] {
                tr.observe(f.key, done.as_ps().saturating_sub(f.arrival.as_ps()));
            }
            let sojourn = (done - f.arrival).as_us_f64();
            let r = &mut records[f.seq];
            r.outcome = Outcome::Done;
            r.done_us = Some(done.as_us_f64());
            r.sojourn_us = Some(sojourn);
            if f.deadline.is_some_and(|d| done > d) {
                r.deadline_missed = true;
                missed[f.tenant] += 1;
            }
            sojourns[f.tenant].push(sojourn);
            false
        });

        // 4. Advance the clock, or finish.
        let arrivals_left = next_arr < all.len();
        if !arrivals_left && sched.is_empty() && in_flight.is_empty() {
            break;
        }
        if !sched.is_empty() || (!arrivals_left && !in_flight.is_empty()) {
            // Blocked on table capacity, or draining the tail: refresh
            // the CPU's view (costs the aggregate copy-back's bus time)
            // and, if still stuck, idle one timeout slice — the same
            // pacing the runtime's own blocking spawn uses.
            rt.sync();
            let stuck_full = !rt.capacity().has_room() && !sched.is_empty();
            let draining = sched.is_empty() && !arrivals_left && !in_flight.is_empty();
            if stuck_full || draining {
                let t = rt.now() + wait_timeout;
                rt.advance_to(t);
            }
        } else if arrivals_left {
            // Idle: sleep until the next client submits.
            rt.advance_to(all[next_arr].at);
        }
    }

    debug_assert!(records.iter().all(|r| match r.outcome {
        Outcome::Done => r.sojourn_us.is_some(),
        Outcome::Shed | Outcome::Expired => r.sojourn_us.is_none(),
    }));

    // ---- aggregate ---------------------------------------------------
    let makespan = rt.now();
    let completed: u64 = sojourns.iter().map(|s| s.len() as u64).sum();
    let tenants = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(ti, t)| {
            tenant_report(
                t.name.clone(),
                t.weight,
                admission.offered(ti),
                admission.admitted(ti),
                admission.shed(ti),
                expired[ti],
                missed[ti],
                admission.max_depth(ti) as u64,
                &sojourns[ti],
            )
        })
        .collect();
    let report = ServeReport {
        policy: cfg.policy.name().to_string(),
        mix: cfg.mix.clone(),
        seed: cfg.seed,
        offered_load: cfg.offered_load,
        makespan_us: makespan.as_us_f64(),
        throughput_per_s: completed as f64 / makespan.as_secs_f64().max(1e-12),
        avg_slot_occupancy: occ_sum / occ_rounds.max(1) as f64,
        avg_warp_occupancy: rt.warp_occupancy(),
        tenants,
        slo: slo_trackers
            .iter()
            .flatten()
            .map(SloTracker::report)
            .collect(),
    };
    Ok(ServeOutcome {
        report,
        records,
        traces: rt.traces(),
    })
}

/// SplitMix64 — decorrelates the per-tenant seeds derived from the
/// master seed.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A MIG-style slice of the Titan X: identical per-SMM resources, clocks
/// and TaskTable protocol, but only `num_sms` SMMs — so `2 * num_sms`
/// MTB columns and a proportionally smaller table. Multi-tenant serving
/// typically runs on such a partition, and the smaller table is what
/// makes admission control bind at realistic experiment sizes (the full
/// 48×32 table absorbs ~1.5 K tasks of backlog before any queue forms).
pub fn serving_slice(num_sms: u32) -> Result<PagodaConfig, ServeError> {
    if num_sms == 0 {
        return Err(ServeError::EmptySlice);
    }
    let mut cfg = PagodaConfig::default();
    cfg.device.spec.num_sms = num_sms;
    Ok(cfg)
}

/// Measures a runtime's saturated service capacity for `bench` tasks
/// (tasks/second) — the natural normalizer when sweeping offered load.
///
/// Uses the serving loop itself rather than the runtime's blocking spawn
/// path: every probe arrival lands at ≈ t = 0 in an unbounded queue, so
/// the dispatcher keeps the TaskTable as full as the loop ever can and
/// the measured throughput is the rate the serving system genuinely
/// sustains (the blocking spawn path idles in whole `wait_timeout`
/// slices and would understate it). Deterministic.
///
/// # Errors
/// Propagates [`serve`]'s validation errors.
pub fn calibrate_capacity(
    runtime: &PagodaConfig,
    bench: Bench,
    gen: &GenOpts,
    probe_tasks: usize,
) -> Result<f64, ServeError> {
    let mut probe = TenantSpec::new("probe", bench, 1.0e12);
    probe.queue_cap = usize::MAX;
    probe.gen = gen.clone();
    let mut cfg = ServeConfig::new(vec![probe], Policy::Fifo);
    cfg.tasks_per_tenant = probe_tasks;
    cfg.runtime = runtime.clone();
    cfg.mix = "calibration".into();
    Ok(serve(&cfg)?.report.throughput_per_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(policy: Policy) -> ServeConfig {
        let mut a = TenantSpec::new("a", Bench::Des3, 2.0e6);
        a.queue_cap = 16;
        let mut b = TenantSpec::new("b", Bench::Mb, 1.0e6);
        b.queue_cap = 16;
        b.weight = 2;
        b.deadline = Some(Dur::from_us(400));
        let mut cfg = ServeConfig::new(vec![a, b], policy);
        cfg.tasks_per_tenant = 48;
        cfg.mix = "test".into();
        cfg
    }

    #[test]
    fn serve_conserves_tasks_across_policies() {
        for policy in [Policy::Fifo, Policy::WeightedFair, Policy::Edf] {
            let out = serve(&tiny_cfg(policy)).unwrap();
            for tr in &out.report.tenants {
                assert_eq!(tr.offered, tr.admitted + tr.shed, "{policy:?}");
                assert_eq!(tr.admitted, tr.completed + tr.expired, "{policy:?}");
            }
            let offered: u64 = out.report.tenants.iter().map(|t| t.offered).sum();
            assert_eq!(offered as usize, out.records.len());
        }
    }

    #[test]
    fn serve_is_deterministic() {
        let cfg = tiny_cfg(Policy::WeightedFair);
        let a = serve(&cfg).unwrap();
        let b = serve(&cfg).unwrap();
        let ja = serde_json::to_string(&a.records).unwrap();
        let jb = serde_json::to_string(&b.records).unwrap();
        assert_eq!(ja, jb);
        assert_eq!(
            serde_json::to_string(&a.report).unwrap(),
            serde_json::to_string(&b.report).unwrap()
        );
    }

    #[test]
    fn overload_sheds_under_bounded_queues() {
        let mut cfg = tiny_cfg(Policy::Fifo);
        // Crank tenant a far past service capacity.
        cfg.tenants[0].arrival = ArrivalSpec::Poisson { rate_per_s: 5.0e7 };
        cfg.tenants[0].queue_cap = 8;
        let out = serve(&cfg).unwrap();
        assert!(
            out.report.tenants[0].shed > 0,
            "overloaded bounded tenant must shed: {:?}",
            out.report.tenants[0]
        );
        // Bounded queue ⇒ bounded backlog ahead of any admitted task.
        assert!(out.report.tenants[0].max_queue_depth <= 8);
    }

    #[test]
    fn cancel_late_expires_stale_work() {
        let mut cfg = tiny_cfg(Policy::Edf);
        cfg.cancel_late = true;
        cfg.tenants[1].deadline = Some(Dur::from_us(1)); // hopeless deadline
        cfg.tenants[1].arrival = ArrivalSpec::Poisson { rate_per_s: 3.0e7 };
        let out = serve(&cfg).unwrap();
        let t1 = &out.report.tenants[1];
        assert!(t1.expired > 0, "stale tasks must be cancelled: {t1:?}");
        assert_eq!(t1.admitted, t1.completed + t1.expired);
    }
}
