//! Open-loop arrival processes for simulated clients.
//!
//! A serving experiment is *open-loop*: clients submit on their own
//! schedule regardless of how backed up the server is, which is what
//! exposes queueing divergence (a closed loop self-throttles and hides
//! it). Two processes cover the interesting regimes:
//!
//! * [`ArrivalSpec::Poisson`] — memoryless arrivals at a constant mean
//!   rate, the classic M/G/k offered load;
//! * [`ArrivalSpec::Mmpp`] — a 2-state Markov-modulated Poisson process
//!   that alternates exponentially-dwelling *calm* and *burst* phases,
//!   the standard compact model of bursty request traffic.
//!
//! Both are driven by a seeded [`SmallRng`], so an arrival timeline is a
//! pure function of `(spec, seed)`.

use desim::{Dur, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PS_PER_S: f64 = 1e12;

/// Statistical shape of one tenant's request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Poisson arrivals at `rate_per_s` tasks/second.
    Poisson {
        /// Mean arrival rate, tasks per second.
        rate_per_s: f64,
    },
    /// 2-state MMPP: Poisson at `calm_rate_per_s` in the calm state and
    /// `burst_rate_per_s` in the burst state, with exponentially
    /// distributed state dwell times.
    Mmpp {
        /// Arrival rate in the calm state, tasks per second.
        calm_rate_per_s: f64,
        /// Arrival rate in the burst state, tasks per second.
        burst_rate_per_s: f64,
        /// Mean dwell time in the calm state, microseconds.
        mean_calm_us: f64,
        /// Mean dwell time in the burst state, microseconds.
        mean_burst_us: f64,
    },
}

impl ArrivalSpec {
    /// Long-run mean arrival rate in tasks/second (burst-weighted for
    /// MMPP) — the "offered load" a curve sweeps.
    pub fn mean_rate_per_s(&self) -> f64 {
        match *self {
            ArrivalSpec::Poisson { rate_per_s } => rate_per_s,
            ArrivalSpec::Mmpp {
                calm_rate_per_s,
                burst_rate_per_s,
                mean_calm_us,
                mean_burst_us,
            } => {
                let total = mean_calm_us + mean_burst_us;
                (calm_rate_per_s * mean_calm_us + burst_rate_per_s * mean_burst_us) / total
            }
        }
    }

    /// Returns a copy whose mean rate is scaled by `factor` (dwell times
    /// untouched — bursts keep their shape, only intensity scales).
    pub fn scaled(&self, factor: f64) -> ArrivalSpec {
        match *self {
            ArrivalSpec::Poisson { rate_per_s } => ArrivalSpec::Poisson {
                rate_per_s: rate_per_s * factor,
            },
            ArrivalSpec::Mmpp {
                calm_rate_per_s,
                burst_rate_per_s,
                mean_calm_us,
                mean_burst_us,
            } => ArrivalSpec::Mmpp {
                calm_rate_per_s: calm_rate_per_s * factor,
                burst_rate_per_s: burst_rate_per_s * factor,
                mean_calm_us,
                mean_burst_us,
            },
        }
    }
}

/// A deterministic stream of absolute arrival instants.
#[derive(Debug)]
pub struct ArrivalGen {
    spec: ArrivalSpec,
    rng: SmallRng,
    /// Virtual clock of the process (time of the last arrival emitted).
    now_ps: f64,
    /// MMPP only: currently in the burst state.
    bursting: bool,
    /// MMPP only: instant of the next state switch.
    switch_ps: f64,
}

impl ArrivalGen {
    /// A generator whose whole timeline is determined by `(spec, seed)`.
    pub fn new(spec: ArrivalSpec, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0a22_17a1_5eed);
        let (bursting, switch_ps) = match spec {
            ArrivalSpec::Poisson { .. } => (false, f64::INFINITY),
            ArrivalSpec::Mmpp { mean_calm_us, .. } => {
                (false, exp_sample(&mut rng, 1.0 / (mean_calm_us * 1e6)))
            }
        };
        ArrivalGen {
            spec,
            rng,
            now_ps: 0.0,
            bursting,
            switch_ps,
        }
    }

    /// The next absolute arrival instant (strictly increasing).
    pub fn next_arrival(&mut self) -> SimTime {
        match self.spec {
            ArrivalSpec::Poisson { rate_per_s } => {
                self.now_ps += exp_sample(&mut self.rng, rate_per_s / PS_PER_S).max(1.0);
            }
            ArrivalSpec::Mmpp {
                calm_rate_per_s,
                burst_rate_per_s,
                mean_calm_us,
                mean_burst_us,
            } => loop {
                let rate = if self.bursting {
                    burst_rate_per_s
                } else {
                    calm_rate_per_s
                };
                let gap = exp_sample(&mut self.rng, rate / PS_PER_S).max(1.0);
                if self.now_ps + gap <= self.switch_ps {
                    self.now_ps += gap;
                    break;
                }
                // The modulating chain switches first. Poisson arrivals are
                // memoryless, so restart the draw from the switch instant
                // at the new state's rate.
                self.now_ps = self.switch_ps;
                self.bursting = !self.bursting;
                let mean_dwell_ps = 1e6
                    * if self.bursting {
                        mean_burst_us
                    } else {
                        mean_calm_us
                    };
                self.switch_ps = self.now_ps + exp_sample(&mut self.rng, 1.0 / mean_dwell_ps);
            },
        }
        SimTime::from_ps(self.now_ps as u64)
    }

    /// The first `n` arrivals as a sorted timeline.
    pub fn take_arrivals(&mut self, n: usize) -> Vec<SimTime> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

/// One draw from Exp(`rate_per_ps`), in picoseconds.
fn exp_sample(rng: &mut SmallRng, rate_per_ps: f64) -> f64 {
    assert!(rate_per_ps > 0.0, "arrival rate must be positive");
    let u: f64 = rng.gen(); // [0, 1)
    -(1.0 - u).ln() / rate_per_ps
}

/// Mean inter-arrival gap of `spec` (convenience for sizing horizons).
pub fn mean_gap(spec: &ArrivalSpec) -> Dur {
    Dur::from_ps((PS_PER_S / spec.mean_rate_per_s()) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_increasing() {
        let spec = ArrivalSpec::Poisson { rate_per_s: 1e6 };
        let a = ArrivalGen::new(spec, 7).take_arrivals(500);
        let b = ArrivalGen::new(spec, 7).take_arrivals(500);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        let c = ArrivalGen::new(spec, 8).take_arrivals(500);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_rate_calibrated() {
        let spec = ArrivalSpec::Poisson { rate_per_s: 1e6 }; // 1 task/us
        let arr = ArrivalGen::new(spec, 42).take_arrivals(20_000);
        let span_s = arr.last().unwrap().as_ps() as f64 / PS_PER_S;
        let rate = arr.len() as f64 / span_s;
        assert!((0.95e6..1.05e6).contains(&rate), "measured {rate}");
    }

    #[test]
    fn mmpp_rate_between_calm_and_burst() {
        let spec = ArrivalSpec::Mmpp {
            calm_rate_per_s: 2e5,
            burst_rate_per_s: 4e6,
            mean_calm_us: 400.0,
            mean_burst_us: 100.0,
        };
        let arr = ArrivalGen::new(spec, 3).take_arrivals(20_000);
        assert!(arr.windows(2).all(|w| w[0] < w[1]));
        let span_s = arr.last().unwrap().as_ps() as f64 / PS_PER_S;
        let rate = arr.len() as f64 / span_s;
        assert!(
            rate > 2e5 && rate < 4e6,
            "MMPP rate {rate} outside its state rates"
        );
        // And close-ish to the dwell-weighted mean.
        let mean = spec.mean_rate_per_s();
        assert!((0.7 * mean..1.3 * mean).contains(&rate), "{rate} vs {mean}");
    }

    #[test]
    fn scaling_scales_mean_rate() {
        let spec = ArrivalSpec::Mmpp {
            calm_rate_per_s: 1e5,
            burst_rate_per_s: 1e6,
            mean_calm_us: 300.0,
            mean_burst_us: 100.0,
        };
        let s2 = spec.scaled(2.0);
        let r = s2.mean_rate_per_s() / spec.mean_rate_per_s();
        assert!((r - 2.0).abs() < 1e-9);
    }
}
