//! Property tests of the QoS schedulers and the serving loop's
//! conservation law.
//!
//! * weighted-fair never starves a backlogged tenant: while a tenant has
//!   queued work, it is served at least once in any window of two full
//!   credit cycles, whatever the weights;
//! * EDF pops in (deadline, seq) order, deadline-less tasks strictly
//!   last;
//! * the serving loop conserves arrivals under arbitrary rates, caps,
//!   policies and seeds: offered = admitted + shed and
//!   admitted = completed + expired, per tenant.

use desim::{Dur, SimTime};
use gpu_sim::WarpWork;
use pagoda_core::TaskDesc;
use pagoda_serve::{
    serve, ArrivalSpec, Edf, Outcome, Policy, QosScheduler, QueuedTask, ServeConfig, TenantSpec,
    WeightedFair,
};
use proptest::prelude::*;
use workloads::Bench;

fn item(tenant: usize, seq: u64, deadline_ps: Option<u64>) -> QueuedTask {
    QueuedTask {
        tenant,
        seq,
        arrival: SimTime::from_ps(seq),
        admitted: SimTime::from_ps(seq),
        deadline: deadline_ps.map(SimTime::from_ps),
        desc: TaskDesc::uniform(64, WarpWork::compute(10_000, 4.0)),
    }
}

proptest! {
    #[test]
    fn wfq_never_starves_a_backlogged_tenant(
        weights in prop::collection::vec(1u32..6, 2..5),
        per_tenant in 4usize..24,
    ) {
        let nt = weights.len();
        let cycle: u32 = weights.iter().sum();
        let mut wfq = WeightedFair::new(&weights);
        let mut seq = 0u64;
        for _ in 0..per_tenant {
            for t in 0..nt {
                wfq.push(item(t, seq, None));
                seq += 1;
            }
        }

        // Pop everything; record each tenant's serve positions.
        let mut pops: Vec<usize> = Vec::new();
        while let Some(qt) = wfq.pop() {
            pops.push(qt.tenant);
        }
        prop_assert_eq!(pops.len(), nt * per_tenant);

        for t in 0..nt {
            let positions: Vec<usize> = pops
                .iter()
                .enumerate()
                .filter(|(_, &x)| x == t)
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(positions.len(), per_tenant, "counts conserved");
            // Starvation bound: while tenant t is backlogged (which it
            // is until its final pop), consecutive serves are at most
            // two full credit cycles apart.
            let bound = 2 * cycle as usize;
            prop_assert!(positions[0] < bound, "first serve within a window");
            for w in positions.windows(2) {
                prop_assert!(
                    w[1] - w[0] <= bound,
                    "tenant {} starved: gap {} > {}",
                    t, w[1] - w[0], bound
                );
            }
        }
    }

    #[test]
    fn wfq_shares_track_weights_under_saturation(
        weights in prop::collection::vec(1u32..6, 2..5),
    ) {
        // With every tenant permanently backlogged, any prefix of whole
        // credit cycles serves tenant t exactly weight[t] per cycle.
        let nt = weights.len();
        let cycle: u32 = weights.iter().sum();
        let cycles = 5usize;
        let mut wfq = WeightedFair::new(&weights);
        let mut seq = 0u64;
        for _ in 0..cycles {
            for (t, w) in weights.iter().enumerate() {
                for _ in 0..*w {
                    wfq.push(item(t, seq, None));
                    seq += 1;
                }
            }
        }
        let mut counts = vec![0u32; nt];
        for _ in 0..(cycle as usize * cycles) {
            counts[wfq.pop().expect("backlogged").tenant] += 1;
        }
        for (t, w) in weights.iter().enumerate() {
            prop_assert_eq!(counts[t], w * cycles as u32, "tenant {}", t);
        }
    }

    #[test]
    fn edf_pops_in_deadline_order(
        deadlines in prop::collection::vec(0u64..2_000, 1..64),
        none_every in 2u64..5,
    ) {
        let mut edf = Edf::new();
        for (i, d) in deadlines.iter().enumerate() {
            // A sprinkling of deadline-less (best-effort) tasks.
            let dl = if (i as u64).is_multiple_of(none_every) { None } else { Some(*d) };
            edf.push(item(0, i as u64, dl));
        }
        let mut prev: Option<(u64, u64)> = None;
        while let Some(qt) = edf.pop() {
            let key = (
                qt.deadline.map_or(u64::MAX, SimTime::as_ps),
                qt.seq,
            );
            if let Some(p) = prev {
                prop_assert!(p <= key, "EDF order violated: {:?} before {:?}", p, key);
            }
            prev = Some(key);
        }
    }

    #[test]
    fn serve_conserves_arrivals(
        policy_ix in 0usize..3,
        rate_exp in 0u32..6,
        cap in 1usize..32,
        seed in 0u64..1_000,
        cancel_late in proptest::bool::ANY,
    ) {
        let policy = [Policy::Fifo, Policy::WeightedFair, Policy::Edf][policy_ix];
        // Rates from well under to far over capacity (~3e5/s slice rate).
        let rate = 5.0e4 * f64::from(1u32 << rate_exp);
        let mut a = TenantSpec::new("a", Bench::Des3, rate);
        a.queue_cap = cap;
        a.deadline = Some(Dur::from_us(300));
        let mut b = TenantSpec::new("b", Bench::Mb, 0.6 * rate);
        b.queue_cap = cap;
        b.weight = 3;
        b.arrival = ArrivalSpec::Mmpp {
            calm_rate_per_s: 0.3 * rate,
            burst_rate_per_s: 1.8 * rate,
            mean_calm_us: 120.0,
            mean_burst_us: 40.0,
        };
        let mut cfg = ServeConfig::new(vec![a, b], policy);
        cfg.tasks_per_tenant = 40;
        cfg.seed = seed;
        cfg.cancel_late = cancel_late;
        let out = serve(&cfg).unwrap();

        let mut done = [0u64; 2];
        let mut shed = [0u64; 2];
        let mut expired = [0u64; 2];
        for r in &out.records {
            match r.outcome {
                Outcome::Done => {
                    prop_assert!(r.sojourn_us.is_some());
                    prop_assert!(r.spawn_us.is_some());
                    done[r.tenant as usize] += 1;
                }
                Outcome::Shed => {
                    prop_assert!(r.spawn_us.is_none());
                    shed[r.tenant as usize] += 1;
                }
                Outcome::Expired => {
                    prop_assert!(cancel_late, "only cancel_late runs expire tasks");
                    expired[r.tenant as usize] += 1;
                }
            }
        }
        for (ti, tr) in out.report.tenants.iter().enumerate() {
            prop_assert_eq!(tr.offered, 40);
            prop_assert_eq!(tr.offered, tr.admitted + tr.shed);
            prop_assert_eq!(tr.admitted, tr.completed + tr.expired);
            prop_assert_eq!(tr.completed, done[ti]);
            prop_assert_eq!(tr.shed, shed[ti]);
            prop_assert_eq!(tr.expired, expired[ti]);
            prop_assert!(tr.max_queue_depth <= cap as u64);
        }
    }
}
