//! Bounded run-ahead windows for multi-instance simulations.
//!
//! When several independent [`Engine`](crate::Engine)-driven instances are
//! stepped under one shared clock, each instance may simulate *ahead* of
//! the others without exchanging state — but only up to the next point
//! where cross-instance effects could matter. [`Horizon`] captures that
//! contract as a quantum: it slices a fleet-time interval into successive
//! windows of at most `quantum` each, and the driver synchronizes (merges
//! cross-instance effects deterministically) at every window end.
//!
//! The window sequence is a pure function of `(from, to, quantum)`, so a
//! serial driver and a parallel driver that both iterate the same horizon
//! observe the same synchronization instants — a prerequisite for
//! byte-identical results.

use crate::time::{Dur, SimTime};

/// A run-ahead quantum: how far instances may simulate past the last
/// synchronization point before the next merge.
///
/// ```
/// use desim::{Dur, Horizon, SimTime};
///
/// let h = Horizon::new(Dur::from_us(10));
/// let ends: Vec<_> = h.windows(SimTime::from_us(5), SimTime::from_us(28)).collect();
/// assert_eq!(ends, vec![
///     SimTime::from_us(15),
///     SimTime::from_us(25),
///     SimTime::from_us(28), // final window is clipped to the target
/// ]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Horizon {
    quantum: Dur,
}

impl Horizon {
    /// Creates a horizon with the given quantum.
    ///
    /// # Panics
    /// Panics if `quantum` is zero — a zero-width window would never make
    /// progress. Validating configs should reject this before reaching
    /// the simulator (see `ClusterConfig::builder`).
    pub fn new(quantum: Dur) -> Self {
        assert!(
            quantum > Dur::from_ps(0),
            "Horizon quantum must be positive"
        );
        Horizon { quantum }
    }

    /// The run-ahead quantum.
    pub fn quantum(&self) -> Dur {
        self.quantum
    }

    /// Iterator over successive window-*end* instants covering
    /// `(from, to]`: each end is `min(prev + quantum, to)`. Empty when
    /// `from >= to`.
    pub fn windows(&self, from: SimTime, to: SimTime) -> Windows {
        Windows {
            cur: from,
            to,
            quantum: self.quantum,
        }
    }
}

/// Iterator returned by [`Horizon::windows`].
#[derive(Debug, Clone)]
pub struct Windows {
    cur: SimTime,
    to: SimTime,
    quantum: Dur,
}

impl Iterator for Windows {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.cur >= self.to {
            return None;
        }
        let end = (self.cur + self.quantum).min(self.to);
        self.cur = end;
        Some(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_interval_into_quantum_windows() {
        let h = Horizon::new(Dur::from_us(10));
        let ends: Vec<_> = h.windows(SimTime::ZERO, SimTime::from_us(25)).collect();
        assert_eq!(
            ends,
            vec![
                SimTime::from_us(10),
                SimTime::from_us(20),
                SimTime::from_us(25)
            ]
        );
    }

    #[test]
    fn exact_multiple_has_no_stub_window() {
        let h = Horizon::new(Dur::from_us(5));
        let ends: Vec<_> = h
            .windows(SimTime::from_us(5), SimTime::from_us(15))
            .collect();
        assert_eq!(ends, vec![SimTime::from_us(10), SimTime::from_us(15)]);
    }

    #[test]
    fn empty_interval_yields_nothing() {
        let h = Horizon::new(Dur::from_us(5));
        assert_eq!(
            h.windows(SimTime::from_us(9), SimTime::from_us(9)).count(),
            0
        );
    }

    #[test]
    fn single_window_when_quantum_covers_interval() {
        let h = Horizon::new(Dur::from_us(100));
        let ends: Vec<_> = h.windows(SimTime::ZERO, SimTime::from_us(7)).collect();
        assert_eq!(ends, vec![SimTime::from_us(7)]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_quantum_panics() {
        Horizon::new(Dur::from_ps(0));
    }
}
