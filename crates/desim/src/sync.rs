//! Clock mapping between a shared *fleet* timeline and a per-instance
//! *local* timeline — the wiring that lets one simulation step several
//! independent [`Engine`](crate::Engine)-driven instances in lockstep.
//!
//! A fleet manager owns one global clock and advances every member
//! instance to each global instant. Healthy members run at rate 1.0
//! (local time ≡ fleet time, offset by nothing); a degraded member runs
//! *slower*: while the fleet advances Δt, the slowed instance only gets
//! `rate · Δt` of its own simulated time, so the same event queue drains
//! later in fleet terms. [`ClockMap`] records the piecewise-linear
//! mapping — rate changes only at explicit [`ClockMap::set_rate`] calls —
//! and converts instants in both directions, including instants that fall
//! in *earlier* segments (needed when harvesting completion timestamps
//! recorded on a local clock before a slowdown landed).
//!
//! The mapping is pure `u64`/`f64` arithmetic on picosecond counts; given
//! the same segment history it is bit-stable across runs, preserving the
//! determinism contract of the engine it sits beside.

use crate::time::{Dur, SimTime};

/// One linear segment of the mapping: from `fleet`/`local` onward, local
/// time advances `rate` picoseconds per fleet picosecond.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Segment {
    fleet: SimTime,
    local: SimTime,
    rate: f64,
}

/// A piecewise-linear, monotone mapping between fleet time and one
/// instance's local time.
///
/// ```
/// use desim::{ClockMap, SimTime};
///
/// let mut c = ClockMap::identity();
/// c.set_rate(SimTime::from_us(10), 0.5); // instance halves speed at t=10us
/// assert_eq!(c.local_of(SimTime::from_us(10)), SimTime::from_us(10));
/// assert_eq!(c.local_of(SimTime::from_us(30)), SimTime::from_us(20));
/// assert_eq!(c.fleet_of(SimTime::from_us(20)), SimTime::from_us(30));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClockMap {
    segs: Vec<Segment>,
}

impl Default for ClockMap {
    fn default() -> Self {
        Self::identity()
    }
}

impl ClockMap {
    /// The identity mapping: local time ≡ fleet time (rate 1.0).
    pub fn identity() -> Self {
        ClockMap {
            segs: vec![Segment {
                fleet: SimTime::ZERO,
                local: SimTime::ZERO,
                rate: 1.0,
            }],
        }
    }

    /// The current (latest-segment) rate.
    pub fn rate(&self) -> f64 {
        self.last().rate
    }

    fn last(&self) -> &Segment {
        self.segs.last().expect("ClockMap always has a segment")
    }

    /// Changes the rate from fleet instant `at` onward. Local time is
    /// continuous across the change.
    ///
    /// # Panics
    /// Panics if `at` precedes the last rate change (segments must be
    /// appended in fleet-time order) or if `rate` is not finite and
    /// positive (a zero rate would make [`ClockMap::fleet_of`] undefined
    /// — model a dead instance by not advancing it at all instead).
    pub fn set_rate(&mut self, at: SimTime, rate: f64) {
        assert!(
            rate.is_finite() && rate > 0.0,
            "ClockMap rate must be finite and positive, got {rate}"
        );
        assert!(
            at >= self.last().fleet,
            "ClockMap rate changes must be appended in fleet order"
        );
        let local = self.local_of(at);
        self.segs.push(Segment {
            fleet: at,
            local,
            rate,
        });
    }

    /// The local instant corresponding to fleet instant `t`.
    ///
    /// # Panics
    /// Panics if `t` precedes the first segment (fleet time starts at 0).
    pub fn local_of(&self, t: SimTime) -> SimTime {
        let seg = self
            .segs
            .iter()
            .rev()
            .find(|s| s.fleet <= t)
            .expect("fleet instant precedes ClockMap origin");
        let dt = (t - seg.fleet).as_ps();
        seg.local + Dur::from_ps(scale(dt, seg.rate))
    }

    /// The fleet instant corresponding to local instant `t`. Inverse of
    /// [`ClockMap::local_of`] up to picosecond rounding.
    ///
    /// # Panics
    /// Panics if `t` precedes the first segment.
    pub fn fleet_of(&self, t: SimTime) -> SimTime {
        let seg = self
            .segs
            .iter()
            .rev()
            .find(|s| s.local <= t)
            .expect("local instant precedes ClockMap origin");
        let dt = (t - seg.local).as_ps();
        seg.fleet + Dur::from_ps(scale(dt, 1.0 / seg.rate))
    }
}

/// Scales a picosecond count by a rate, rounding to nearest. Exact for
/// rate 1.0 (the common, healthy-instance case takes the integer path).
fn scale(ps: u64, rate: f64) -> u64 {
    if rate == 1.0 {
        ps
    } else {
        (ps as f64 * rate).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_both_ways() {
        let c = ClockMap::identity();
        let t = SimTime::from_us(123);
        assert_eq!(c.local_of(t), t);
        assert_eq!(c.fleet_of(t), t);
        assert_eq!(c.rate(), 1.0);
    }

    #[test]
    fn slowdown_stretches_fleet_time() {
        let mut c = ClockMap::identity();
        c.set_rate(SimTime::from_us(100), 0.25);
        // Before the change: identity.
        assert_eq!(c.local_of(SimTime::from_us(40)), SimTime::from_us(40));
        // After: 100us of fleet time yields 25us of local time.
        assert_eq!(c.local_of(SimTime::from_us(200)), SimTime::from_us(125));
        assert_eq!(c.fleet_of(SimTime::from_us(125)), SimTime::from_us(200));
        // Historical local instants still map through the old segment.
        assert_eq!(c.fleet_of(SimTime::from_us(70)), SimTime::from_us(70));
    }

    #[test]
    fn stacked_rate_changes_compose() {
        let mut c = ClockMap::identity();
        c.set_rate(SimTime::from_us(10), 0.5);
        c.set_rate(SimTime::from_us(20), 2.0);
        // 10us @ 1.0 + 10us @ 0.5 = 15us local at fleet 20us.
        assert_eq!(c.local_of(SimTime::from_us(20)), SimTime::from_us(15));
        // +5us fleet @ 2.0 = +10us local.
        assert_eq!(c.local_of(SimTime::from_us(25)), SimTime::from_us(25));
        assert_eq!(c.fleet_of(SimTime::from_us(25)), SimTime::from_us(25));
    }

    #[test]
    fn roundtrip_is_exact_at_rate_one_and_close_otherwise() {
        let mut c = ClockMap::identity();
        c.set_rate(SimTime::from_us(7), 1.0 / 3.0);
        for ps in [0u64, 6_999_999, 7_000_001, 1_000_000_000, 123_456_789_123] {
            let t = SimTime::from_ps(ps);
            let back = c.fleet_of(c.local_of(t));
            let err = back.as_ps().abs_diff(t.as_ps());
            assert!(err <= 4, "roundtrip error {err} ps at {ps}");
        }
    }

    #[test]
    fn monotone_under_slowdown() {
        let mut c = ClockMap::identity();
        c.set_rate(SimTime::from_us(1), 0.1);
        let mut prev = SimTime::ZERO;
        for us in 0..100 {
            let l = c.local_of(SimTime::from_us(us));
            assert!(l >= prev, "local clock went backwards at {us}us");
            prev = l;
        }
    }

    #[test]
    #[should_panic(expected = "appended in fleet order")]
    fn out_of_order_rate_change_panics() {
        let mut c = ClockMap::identity();
        c.set_rate(SimTime::from_us(10), 0.5);
        c.set_rate(SimTime::from_us(5), 0.5);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_rate_panics() {
        let mut c = ClockMap::identity();
        c.set_rate(SimTime::from_us(1), 0.0);
    }
}
