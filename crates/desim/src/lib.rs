//! Deterministic discrete-event simulation engine.
//!
//! This crate is the temporal substrate for the Pagoda reproduction. Every
//! other component — the PCIe bus model, the GPU device simulator, the
//! Pagoda runtime, the baseline runtimes — advances time exclusively through
//! an [`Engine`], which maintains a picosecond-resolution virtual clock and a
//! priority queue of pending events.
//!
//! # Design
//!
//! The engine is generic over the event payload type `E`. Components do not
//! register callbacks; instead the *owner* of the simulation (e.g. the GPU
//! device model) pops `(time, event)` pairs in nondecreasing time order and
//! dispatches on the payload. This keeps all mutable state in one place and
//! sidesteps the borrow gymnastics of callback-style DES designs, at no cost
//! in expressiveness.
//!
//! Determinism guarantees:
//!
//! * Events scheduled for the same instant are delivered in the order they
//!   were scheduled (a monotone sequence number breaks ties).
//! * No wall-clock time, OS entropy, or thread scheduling influences event
//!   order; two runs of the same program produce identical traces.
//!
//! # Queue implementation
//!
//! The queue is an **indexed 4-ary heap**: a compact `Vec<u32>` of slot ids
//! ordered by `(time, seq)`, over a slab of slots that each remember their
//! current heap position. The [`EventKey`] returned at scheduling time names
//! a slot plus a generation, so [`Engine::cancel`] is a true O(log n)
//! *removal* — no tombstones, no dead weight riding in the heap until its
//! timestamp comes up — and [`Engine::reschedule`] re-aims a pending event
//! in place. This matters because the GPU warp engine re-predicts an SMM's
//! next warp completion on every resident-warp-set change: under the earlier
//! lazy-deletion design each re-prediction left a cancelled entry behind,
//! and heaps grew with churn instead of with live events. A 4-ary layout
//! (rather than binary) halves the tree depth, trading slightly wider
//! sift-down comparisons for fewer cache-missing levels — the right trade
//! for the small-but-hot queues this workspace runs. [`EngineStats`] counts
//! comparisons and live high-water so the effect is observable.

mod horizon;
mod sync;
mod time;

pub use horizon::{Horizon, Windows};
pub use sync::ClockMap;
pub use time::{Dur, SimTime};

/// Opaque handle to a scheduled event, usable to cancel or reschedule it.
///
/// Keys are unique for the lifetime of an [`Engine`]; a key from one engine
/// must not be used with another (cancellation would silently target the
/// wrong event if slot generations collide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey(u64);

impl EventKey {
    /// The key's raw bits, for storage in untyped slots (benches,
    /// FFI-ish tables). Round-trips through [`EventKey::from_raw`].
    pub fn into_raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a key from [`EventKey::into_raw`] bits. Only bits that
    /// came from the same engine's `into_raw` name a real event.
    pub fn from_raw(raw: u64) -> Self {
        EventKey(raw)
    }

    fn new(slot: u32, gen: u32) -> Self {
        EventKey((u64::from(gen) << 32) | u64::from(slot))
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// One slab entry. Lives in the heap while pending; freed slots chain into
/// a free list through `pos` and bump `gen` so stale keys can never alias
/// a recycled slot.
#[derive(Debug)]
struct Slot<E> {
    /// Incremented every time the slot is freed; the high half of the key.
    gen: u32,
    /// Heap position while pending; next-free link (or `NIL`) while free.
    pos: u32,
    at: SimTime,
    /// Monotone tie-break: same-instant events deliver in schedule order.
    seq: u64,
    /// `Some` while pending; taken at delivery, dropped at cancellation.
    event: Option<E>,
}

const NIL: u32 = u32::MAX;

/// Heap arity. See the crate docs for why 4.
const ARITY: usize = 4;

/// Counters describing a finished (or in-progress) simulation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Events delivered through [`Engine::pop`].
    pub delivered: u64,
    /// Events scheduled over the engine's lifetime.
    pub scheduled: u64,
    /// Events cancelled (removed) before delivery.
    pub cancelled: u64,
    /// Pending events re-aimed in place via [`Engine::reschedule`].
    pub rescheduled: u64,
    /// High-water mark of the pending-event queue (live events only —
    /// the queue holds no cancelled entries).
    pub max_queue_len: usize,
    /// `(time, seq)` key comparisons spent maintaining the heap. Divide
    /// by `delivered` for the comparisons-per-pop figure of merit.
    pub comparisons: u64,
}

impl EngineStats {
    /// Heap comparisons amortized over delivered events — the
    /// queue-efficiency figure the `hotpath` bench tracks.
    pub fn comparisons_per_pop(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.comparisons as f64 / self.delivered as f64
        }
    }
}

/// A deterministic discrete-event simulator clock and event queue.
///
/// See the [crate docs](crate) for the overall design. Typical driving loop:
///
/// ```
/// use desim::{Engine, SimTime, Dur};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut eng = Engine::new();
/// eng.schedule_in(Dur::from_ns(5), Ev::Pong);
/// eng.schedule_in(Dur::from_ns(2), Ev::Ping);
///
/// let (t1, e1) = eng.pop().unwrap();
/// assert_eq!((t1, e1), (SimTime::from_ns(2), Ev::Ping));
/// let (t2, e2) = eng.pop().unwrap();
/// assert_eq!((t2, e2), (SimTime::from_ns(5), Ev::Pong));
/// assert!(eng.pop().is_none());
/// ```
pub struct Engine<E> {
    now: SimTime,
    /// Slot ids ordered as a 4-ary min-heap on `(at, seq)`.
    heap: Vec<u32>,
    /// Slab backing the heap; holds every slot ever allocated.
    slots: Vec<Slot<E>>,
    /// Head of the freed-slot list threaded through `Slot::pos`.
    free_head: u32,
    next_seq: u64,
    stats: EngineStats,
    /// Observability tap: called once per delivered event with its
    /// timestamp. `None` (the default) costs one discriminant test.
    pop_hook: Option<Box<dyn FnMut(SimTime) + Send>>,
}

impl<E: std::fmt::Debug> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("queue_len", &self.heap.len())
            .field("stats", &self.stats)
            .field("pop_hook", &self.pop_hook.is_some())
            .finish_non_exhaustive()
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            heap: Vec::new(),
            slots: Vec::new(),
            free_head: NIL,
            next_seq: 0,
            stats: EngineStats::default(),
            pop_hook: None,
        }
    }

    /// Installs the event-pop observability hook, returning whatever hook
    /// was installed before (or `None`). The hook fires once per
    /// delivered event, after the clock advances — the tap observability
    /// and invariant-checking layers use to watch engine events without
    /// the engine depending on them. A layer that wants to *add* a tap
    /// rather than replace one chains the returned hook inside its own:
    ///
    /// ```
    /// # use desim::{Engine, SimTime};
    /// # let mut eng: Engine<u32> = Engine::new();
    /// let mut prev = eng.set_pop_hook(Box::new(|_| {}));
    /// eng.set_pop_hook(Box::new(move |t: SimTime| {
    ///     // ... this layer's tap ...
    ///     if let Some(h) = prev.as_mut() {
    ///         h(t);
    ///     }
    /// }));
    /// ```
    pub fn set_pop_hook(
        &mut self,
        hook: Box<dyn FnMut(SimTime) + Send>,
    ) -> Option<Box<dyn FnMut(SimTime) + Send>> {
        self.pop_hook.replace(hook)
    }

    /// Removes the event-pop hook, restoring the zero-cost path. Returns
    /// the removed hook, if any.
    pub fn clear_pop_hook(&mut self) -> Option<Box<dyn FnMut(SimTime) + Send>> {
        self.pop_hook.take()
    }

    /// Current virtual time. Advances only inside [`Engine::pop`].
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (`at < self.now()`); delivering events
    /// out of time order would corrupt every model built on the engine.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.alloc(at, seq, event);
        let key = EventKey::new(slot, self.slots[slot as usize].gen);
        let pos = self.heap.len();
        self.heap.push(slot);
        self.slots[slot as usize].pos = pos as u32;
        self.sift_up(pos);
        self.stats.scheduled += 1;
        self.stats.max_queue_len = self.stats.max_queue_len.max(self.heap.len());
        key
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Dur, event: E) -> EventKey {
        self.schedule(self.now + delay, event)
    }

    /// Schedules `event` at the current instant, after all events already
    /// scheduled for this instant.
    pub fn schedule_now(&mut self, event: E) -> EventKey {
        self.schedule(self.now, event)
    }

    /// Cancels a pending event, removing it from the queue outright.
    /// Returns `true` only if the event had been scheduled and not yet
    /// delivered or cancelled. O(log n).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let Some(slot) = self.live_slot(key) else {
            return false; // unknown, already delivered, or already cancelled
        };
        let pos = self.slots[slot as usize].pos as usize;
        self.remove_at(pos);
        self.free(slot);
        self.stats.cancelled += 1;
        true
    }

    /// Re-aims a pending event at a new time, in place: the event keeps
    /// its key and payload but moves to `at`, taking a **fresh** sequence
    /// number — a rescheduled event orders after everything already
    /// scheduled for the same instant, exactly as if it had been
    /// cancelled and rescheduled, without the allocation or the second
    /// key. Returns `false` (and changes nothing, consuming no sequence
    /// number) if the key is unknown, delivered, or cancelled.
    ///
    /// # Panics
    /// Panics if `at` is in the past, like [`Engine::schedule`].
    pub fn reschedule(&mut self, key: EventKey, at: SimTime) -> bool {
        let Some(slot) = self.live_slot(key) else {
            return false;
        };
        assert!(
            at >= self.now,
            "rescheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = &mut self.slots[slot as usize];
        s.at = at;
        s.seq = seq;
        let pos = s.pos as usize;
        // A fresh seq can only order the entry later among equals, but
        // the new time can move it either way: re-sift both directions.
        let up = self.sift_up(pos);
        if up == pos {
            self.sift_down(pos);
        }
        self.stats.rescheduled += 1;
        true
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when no events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let &slot = self.heap.first()?;
        self.remove_at(0);
        let s = &mut self.slots[slot as usize];
        let at = s.at;
        let event = s.event.take().expect("pending slot holds an event");
        debug_assert!(at >= self.now, "event queue went backwards");
        self.free(slot);
        self.now = at;
        self.stats.delivered += 1;
        if let Some(hook) = &mut self.pop_hook {
            hook(at);
        }
        Some((at, event))
    }

    /// Timestamp of the next pending event without delivering it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|&s| self.slots[s as usize].at)
    }

    /// True when no deliverable events remain.
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events. Cancelled events are removed outright,
    /// so this is exact.
    pub fn queue_len(&self) -> usize {
        self.heap.len()
    }

    /// Lifetime counters for this engine.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Advances the clock to `t` without delivering events.
    ///
    /// # Panics
    /// Panics if a pending event is scheduled before `t` (skipping it would
    /// break causality) or if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to into the past");
        if let Some(next) = self.peek_time() {
            assert!(
                next >= t,
                "advance_to({t:?}) would skip a pending event at {next:?}"
            );
        }
        self.now = t;
    }

    /// Resolves a key to its slot id iff the slot is still pending and
    /// the generations match (i.e. the key is not stale).
    fn live_slot(&self, key: EventKey) -> Option<u32> {
        let slot = key.slot();
        let s = self.slots.get(slot as usize)?;
        (s.gen == key.gen() && s.event.is_some()).then_some(slot)
    }

    /// Takes a slot from the free list or grows the slab.
    fn alloc(&mut self, at: SimTime, seq: u64, event: E) -> u32 {
        if self.free_head != NIL {
            let slot = self.free_head;
            let s = &mut self.slots[slot as usize];
            self.free_head = s.pos;
            s.at = at;
            s.seq = seq;
            s.event = Some(event);
            slot
        } else {
            self.slots.push(Slot {
                gen: 0,
                pos: NIL,
                at,
                seq,
                event: Some(event),
            });
            (self.slots.len() - 1) as u32
        }
    }

    /// Returns a slot to the free list, invalidating outstanding keys.
    fn free(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.event = None;
        s.gen = s.gen.wrapping_add(1);
        s.pos = self.free_head;
        self.free_head = slot;
    }

    /// Whether slot `a` orders strictly before slot `b`. Every heap
    /// comparison funnels through here for the stats counter.
    #[inline]
    fn before(&mut self, a: u32, b: u32) -> bool {
        self.stats.comparisons += 1;
        let sa = &self.slots[a as usize];
        let sb = &self.slots[b as usize];
        (sa.at, sa.seq) < (sb.at, sb.seq)
    }

    /// Removes the heap entry at `pos`, filling the hole with the last
    /// entry and re-sifting it. Does not touch the removed slot itself.
    fn remove_at(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        if pos == last {
            self.heap.pop();
            return;
        }
        let moved = self.heap[last];
        self.heap[pos] = moved;
        self.slots[moved as usize].pos = pos as u32;
        self.heap.pop();
        let up = self.sift_up(pos);
        if up == pos {
            self.sift_down(pos);
        }
    }

    /// Restores the heap property upward from `pos`; returns the entry's
    /// final position.
    fn sift_up(&mut self, mut pos: usize) -> usize {
        while pos > 0 {
            let parent = (pos - 1) / ARITY;
            if !self.before(self.heap[pos], self.heap[parent]) {
                break;
            }
            self.swap(pos, parent);
            pos = parent;
        }
        pos
    }

    /// Restores the heap property downward from `pos`.
    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let first = ARITY * pos + 1;
            if first >= self.heap.len() {
                return;
            }
            let end = (first + ARITY).min(self.heap.len());
            let mut best = first;
            for child in first + 1..end {
                if self.before(self.heap[child], self.heap[best]) {
                    best = child;
                }
            }
            if !self.before(self.heap[best], self.heap[pos]) {
                return;
            }
            self.swap(pos, best);
            pos = best;
        }
    }

    /// Swaps two heap entries, keeping their slots' back-pointers exact.
    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.slots[self.heap[a] as usize].pos = a as u32;
        self.slots[self.heap[b] as usize].pos = b as u32;
    }
}

// An engine over `Send` events is itself `Send` (the pop hook is already
// constrained to `Send`), so whole simulated instances can be stepped on
// worker threads by a parallel fleet driver. This assertion keeps the
// property from regressing silently if a non-`Send` field is added.
const _: () = {
    fn assert_send<T: Send>() {}
    #[allow(dead_code)]
    fn engine_is_send<E: Send>() {
        assert_send::<Engine<E>>();
    }
};

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone, Copy)]
    enum Ev {
        A,
        B,
        C,
    }

    #[test]
    fn delivers_in_time_order() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_ns(30), Ev::C);
        e.schedule(SimTime::from_ns(10), Ev::A);
        e.schedule(SimTime::from_ns(20), Ev::B);
        assert_eq!(e.pop(), Some((SimTime::from_ns(10), Ev::A)));
        assert_eq!(e.pop(), Some((SimTime::from_ns(20), Ev::B)));
        assert_eq!(e.pop(), Some((SimTime::from_ns(30), Ev::C)));
        assert_eq!(e.pop(), None);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut e = Engine::new();
        let t = SimTime::from_ns(5);
        e.schedule(t, Ev::A);
        e.schedule(t, Ev::B);
        e.schedule(t, Ev::C);
        assert_eq!(e.pop().unwrap().1, Ev::A);
        assert_eq!(e.pop().unwrap().1, Ev::B);
        assert_eq!(e.pop().unwrap().1, Ev::C);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_ns(7), Ev::A);
        assert_eq!(e.now(), SimTime::ZERO);
        e.pop();
        assert_eq!(e.now(), SimTime::from_ns(7));
    }

    #[test]
    fn cancel_suppresses_delivery() {
        let mut e = Engine::new();
        let k = e.schedule(SimTime::from_ns(1), Ev::A);
        e.schedule(SimTime::from_ns(2), Ev::B);
        assert!(e.cancel(k));
        assert!(!e.cancel(k), "double cancel reports false");
        assert_eq!(e.pop(), Some((SimTime::from_ns(2), Ev::B)));
        assert_eq!(e.pop(), None);
        assert_eq!(e.stats().cancelled, 1);
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut e: Engine<Ev> = Engine::new();
        assert!(!e.cancel(EventKey(42)));
    }

    #[test]
    fn cancel_removes_from_queue_immediately() {
        let mut e = Engine::new();
        let keys: Vec<_> = (0..100u64)
            .map(|i| e.schedule(SimTime::from_ns(i), Ev::A))
            .collect();
        for k in &keys[1..] {
            e.cancel(*k);
        }
        assert_eq!(e.queue_len(), 1, "cancelled events leave no dead weight");
        assert_eq!(e.pop(), Some((SimTime::ZERO, Ev::A)));
    }

    #[test]
    fn stale_key_cannot_alias_a_recycled_slot() {
        let mut e = Engine::new();
        let k1 = e.schedule(SimTime::from_ns(1), Ev::A);
        e.cancel(k1);
        // The freed slot is recycled for the next schedule; the stale
        // key must not cancel or reschedule the new occupant.
        let _k2 = e.schedule(SimTime::from_ns(2), Ev::B);
        assert!(!e.cancel(k1));
        assert!(!e.reschedule(k1, SimTime::from_ns(9)));
        assert_eq!(e.pop(), Some((SimTime::from_ns(2), Ev::B)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut e = Engine::new();
        let k = e.schedule(SimTime::from_ns(1), Ev::A);
        e.schedule(SimTime::from_ns(9), Ev::B);
        e.cancel(k);
        assert_eq!(e.peek_time(), Some(SimTime::from_ns(9)));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_ns(10), Ev::A);
        e.pop();
        e.schedule(SimTime::from_ns(5), Ev::B);
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        let mut e = Engine::new();
        e.schedule(SimTime::ZERO, Ev::A);
        e.schedule_now(Ev::B);
        assert_eq!(e.pop().unwrap().1, Ev::A);
        assert_eq!(e.pop().unwrap().1, Ev::B);
    }

    #[test]
    fn reschedule_moves_delivery() {
        let mut e = Engine::new();
        let k = e.schedule(SimTime::from_ns(10), Ev::A);
        e.schedule(SimTime::from_ns(20), Ev::B);
        assert!(e.reschedule(k, SimTime::from_ns(30)));
        assert_eq!(e.pop(), Some((SimTime::from_ns(20), Ev::B)));
        assert_eq!(e.pop(), Some((SimTime::from_ns(30), Ev::A)));
        assert_eq!(e.stats().rescheduled, 1);
    }

    #[test]
    fn reschedule_orders_after_same_instant_events() {
        // A rescheduled event takes a fresh seq: re-aiming A onto B's
        // instant delivers B first, exactly as cancel + schedule would.
        let mut e = Engine::new();
        let k = e.schedule(SimTime::from_ns(5), Ev::A);
        e.schedule(SimTime::from_ns(7), Ev::B);
        assert!(e.reschedule(k, SimTime::from_ns(7)));
        assert_eq!(e.pop().unwrap().1, Ev::B);
        assert_eq!(e.pop().unwrap().1, Ev::A);
    }

    #[test]
    fn reschedule_dead_key_is_false() {
        let mut e = Engine::new();
        let k = e.schedule(SimTime::from_ns(1), Ev::A);
        e.pop();
        assert!(!e.reschedule(k, SimTime::from_ns(5)), "delivered");
        let k2 = e.schedule(SimTime::from_ns(2), Ev::B);
        e.cancel(k2);
        assert!(!e.reschedule(k2, SimTime::from_ns(5)), "cancelled");
        assert_eq!(e.stats().rescheduled, 0);
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut e: Engine<Ev> = Engine::new();
        e.advance_to(SimTime::from_us(3));
        assert_eq!(e.now(), SimTime::from_us(3));
    }

    #[test]
    #[should_panic(expected = "skip a pending event")]
    fn advance_past_pending_event_panics() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_ns(5), Ev::A);
        e.advance_to(SimTime::from_ns(6));
    }

    #[test]
    fn pop_hook_fires_per_delivered_event() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let hits = Arc::new(AtomicU64::new(0));
        let mut e = Engine::new();
        let k = e.schedule(SimTime::from_ns(1), Ev::A);
        e.schedule(SimTime::from_ns(2), Ev::B);
        e.schedule(SimTime::from_ns(3), Ev::C);
        e.cancel(k);
        let h = hits.clone();
        e.set_pop_hook(Box::new(move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        }));
        while e.pop().is_some() {}
        assert_eq!(
            hits.load(Ordering::Relaxed),
            2,
            "cancelled event not counted"
        );
        e.clear_pop_hook();
        e.schedule(SimTime::from_ns(9), Ev::A);
        e.pop();
        assert_eq!(
            hits.load(Ordering::Relaxed),
            2,
            "cleared hook must not fire"
        );
    }

    #[test]
    fn stats_track_counts() {
        let mut e = Engine::new();
        for i in 0..10u64 {
            e.schedule(SimTime::from_ns(i), Ev::A);
        }
        let k = e.schedule(SimTime::from_ns(100), Ev::B);
        e.cancel(k);
        while e.pop().is_some() {}
        let s = e.stats();
        assert_eq!(s.scheduled, 11);
        assert_eq!(s.delivered, 10);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.max_queue_len, 11);
        assert!(s.comparisons > 0);
        assert!(s.comparisons_per_pop() > 0.0);
    }

    /// Exhaustive-ish churn over a few hundred ops: the slab free list,
    /// generation bumps, and back-pointers must stay consistent under
    /// interleaved schedule/cancel/reschedule/pop.
    #[test]
    fn slab_survives_interleaved_churn() {
        let mut e = Engine::new();
        let mut keys = Vec::new();
        let mut x = 7u64;
        for step in 0..600u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let at = e.now() + Dur::from_ps(1 + (x >> 33) % 1000);
            match step % 5 {
                0 | 1 => keys.push(e.schedule(at, Ev::A)),
                2 => {
                    if let Some(k) = keys.pop() {
                        e.cancel(k);
                    }
                }
                3 => {
                    if let Some(k) = keys.last() {
                        e.reschedule(*k, at);
                    }
                }
                _ => {
                    e.pop();
                }
            }
            // The live count is exactly the heap length, and every live
            // slot's back-pointer must point at its heap entry.
            for (i, &slot) in e.heap.iter().enumerate() {
                assert_eq!(e.slots[slot as usize].pos as usize, i);
                assert!(e.slots[slot as usize].event.is_some());
            }
        }
        while e.pop().is_some() {}
        assert!(e.is_idle());
    }
}
