//! Deterministic discrete-event simulation engine.
//!
//! This crate is the temporal substrate for the Pagoda reproduction. Every
//! other component — the PCIe bus model, the GPU device simulator, the
//! Pagoda runtime, the baseline runtimes — advances time exclusively through
//! an [`Engine`], which maintains a picosecond-resolution virtual clock and a
//! priority queue of pending events.
//!
//! # Design
//!
//! The engine is generic over the event payload type `E`. Components do not
//! register callbacks; instead the *owner* of the simulation (e.g. the GPU
//! device model) pops `(time, event)` pairs in nondecreasing time order and
//! dispatches on the payload. This keeps all mutable state in one place and
//! sidesteps the borrow gymnastics of callback-style DES designs, at no cost
//! in expressiveness.
//!
//! Determinism guarantees:
//!
//! * Events scheduled for the same instant are delivered in the order they
//!   were scheduled (a monotone sequence number breaks ties).
//! * No wall-clock time, OS entropy, or thread scheduling influences event
//!   order; two runs of the same program produce identical traces.
//!
//! Events can be cancelled via the [`EventKey`] returned at scheduling time;
//! cancellation is O(1) (lazy deletion at pop time). This is used heavily by
//! the GPU warp engine, which must invalidate predicted completion events
//! whenever the resident-warp set of an SMM changes.

mod horizon;
mod sync;
mod time;

pub use horizon::{Horizon, Windows};
pub use sync::ClockMap;
pub use time::{Dur, SimTime};

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Opaque handle to a scheduled event, usable to cancel it.
///
/// Keys are unique for the lifetime of an [`Engine`]; a key from one engine
/// must not be used with another (cancellation would silently target the
/// wrong event if sequence numbers collide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey(u64);

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Primary: time. Secondary: insertion order (determinism).
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// Counters describing a finished (or in-progress) simulation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Events delivered through [`Engine::pop`].
    pub delivered: u64,
    /// Events scheduled over the engine's lifetime.
    pub scheduled: u64,
    /// Events cancelled before delivery.
    pub cancelled: u64,
    /// High-water mark of the pending-event queue.
    pub max_queue_len: usize,
}

/// A deterministic discrete-event simulator clock and event queue.
///
/// See the [crate docs](crate) for the overall design. Typical driving loop:
///
/// ```
/// use desim::{Engine, SimTime, Dur};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut eng = Engine::new();
/// eng.schedule_in(Dur::from_ns(5), Ev::Pong);
/// eng.schedule_in(Dur::from_ns(2), Ev::Ping);
///
/// let (t1, e1) = eng.pop().unwrap();
/// assert_eq!((t1, e1), (SimTime::from_ns(2), Ev::Ping));
/// let (t2, e2) = eng.pop().unwrap();
/// assert_eq!((t2, e2), (SimTime::from_ns(5), Ev::Pong));
/// assert!(eng.pop().is_none());
/// ```
pub struct Engine<E> {
    now: SimTime,
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    /// Sequence numbers scheduled but not yet delivered or cancelled —
    /// makes [`Engine::cancel`]'s return value exact.
    pending: HashSet<u64>,
    stats: EngineStats,
    /// Observability tap: called once per delivered event with its
    /// timestamp. `None` (the default) costs one discriminant test.
    pop_hook: Option<Box<dyn FnMut(SimTime) + Send>>,
}

impl<E: std::fmt::Debug> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("queue_len", &self.heap.len())
            .field("stats", &self.stats)
            .field("pop_hook", &self.pop_hook.is_some())
            .finish_non_exhaustive()
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: HashSet::new(),
            pending: HashSet::new(),
            stats: EngineStats::default(),
            pop_hook: None,
        }
    }

    /// Installs the event-pop observability hook, returning whatever hook
    /// was installed before (or `None`). The hook fires once per
    /// delivered event, after the clock advances — the tap observability
    /// and invariant-checking layers use to watch engine events without
    /// the engine depending on them. A layer that wants to *add* a tap
    /// rather than replace one chains the returned hook inside its own:
    ///
    /// ```
    /// # use desim::{Engine, SimTime};
    /// # let mut eng: Engine<u32> = Engine::new();
    /// let mut prev = eng.set_pop_hook(Box::new(|_| {}));
    /// eng.set_pop_hook(Box::new(move |t: SimTime| {
    ///     // ... this layer's tap ...
    ///     if let Some(h) = prev.as_mut() {
    ///         h(t);
    ///     }
    /// }));
    /// ```
    pub fn set_pop_hook(
        &mut self,
        hook: Box<dyn FnMut(SimTime) + Send>,
    ) -> Option<Box<dyn FnMut(SimTime) + Send>> {
        self.pop_hook.replace(hook)
    }

    /// Removes the event-pop hook, restoring the zero-cost path. Returns
    /// the removed hook, if any.
    pub fn clear_pop_hook(&mut self) -> Option<Box<dyn FnMut(SimTime) + Send>> {
        self.pop_hook.take()
    }

    /// Current virtual time. Advances only inside [`Engine::pop`].
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (`at < self.now()`); delivering events
    /// out of time order would corrupt every model built on the engine.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventKey {
        assert!(
            at >= self.now,
            "scheduled event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
        self.pending.insert(seq);
        self.stats.scheduled += 1;
        self.stats.max_queue_len = self.stats.max_queue_len.max(self.heap.len());
        EventKey(seq)
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Dur, event: E) -> EventKey {
        self.schedule(self.now + delay, event)
    }

    /// Schedules `event` at the current instant, after all events already
    /// scheduled for this instant.
    pub fn schedule_now(&mut self, event: E) -> EventKey {
        self.schedule(self.now, event)
    }

    /// Cancels a pending event. Returns `true` only if the event had been
    /// scheduled and not yet delivered or cancelled. O(1); the heap slot
    /// is dropped lazily at pop.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if !self.pending.remove(&key.0) {
            return false; // unknown, already delivered, or already cancelled
        }
        self.cancelled.insert(key.0);
        self.stats.cancelled += 1;
        true
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when no (non-cancelled) events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(s)) = self.heap.pop() {
            if self.cancelled.remove(&s.seq) {
                continue; // lazily dropped
            }
            debug_assert!(s.at >= self.now, "event queue went backwards");
            self.pending.remove(&s.seq);
            self.now = s.at;
            self.stats.delivered += 1;
            if let Some(hook) = &mut self.pop_hook {
                hook(s.at);
            }
            return Some((s.at, s.event));
        }
        None
    }

    /// Timestamp of the next pending event without delivering it, skipping
    /// cancelled entries.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(s)) = self.heap.peek() {
            if self.cancelled.contains(&s.seq) {
                let seq = s.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(s.at);
        }
        None
    }

    /// True when no deliverable events remain.
    pub fn is_idle(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of pending (possibly cancelled-but-not-yet-dropped) events.
    pub fn queue_len(&self) -> usize {
        self.heap.len()
    }

    /// Lifetime counters for this engine.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Advances the clock to `t` without delivering events.
    ///
    /// # Panics
    /// Panics if a pending event is scheduled before `t` (skipping it would
    /// break causality) or if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "advance_to into the past");
        if let Some(next) = self.peek_time() {
            assert!(
                next >= t,
                "advance_to({t:?}) would skip a pending event at {next:?}"
            );
        }
        self.now = t;
    }
}

// An engine over `Send` events is itself `Send` (the pop hook is already
// constrained to `Send`), so whole simulated instances can be stepped on
// worker threads by a parallel fleet driver. This assertion keeps the
// property from regressing silently if a non-`Send` field is added.
const _: () = {
    fn assert_send<T: Send>() {}
    #[allow(dead_code)]
    fn engine_is_send<E: Send>() {
        assert_send::<Engine<E>>();
    }
};

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    enum Ev {
        A,
        B,
        C,
    }

    #[test]
    fn delivers_in_time_order() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_ns(30), Ev::C);
        e.schedule(SimTime::from_ns(10), Ev::A);
        e.schedule(SimTime::from_ns(20), Ev::B);
        assert_eq!(e.pop(), Some((SimTime::from_ns(10), Ev::A)));
        assert_eq!(e.pop(), Some((SimTime::from_ns(20), Ev::B)));
        assert_eq!(e.pop(), Some((SimTime::from_ns(30), Ev::C)));
        assert_eq!(e.pop(), None);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut e = Engine::new();
        let t = SimTime::from_ns(5);
        e.schedule(t, Ev::A);
        e.schedule(t, Ev::B);
        e.schedule(t, Ev::C);
        assert_eq!(e.pop().unwrap().1, Ev::A);
        assert_eq!(e.pop().unwrap().1, Ev::B);
        assert_eq!(e.pop().unwrap().1, Ev::C);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_ns(7), Ev::A);
        assert_eq!(e.now(), SimTime::ZERO);
        e.pop();
        assert_eq!(e.now(), SimTime::from_ns(7));
    }

    #[test]
    fn cancel_suppresses_delivery() {
        let mut e = Engine::new();
        let k = e.schedule(SimTime::from_ns(1), Ev::A);
        e.schedule(SimTime::from_ns(2), Ev::B);
        assert!(e.cancel(k));
        assert!(!e.cancel(k), "double cancel reports false");
        assert_eq!(e.pop(), Some((SimTime::from_ns(2), Ev::B)));
        assert_eq!(e.pop(), None);
        assert_eq!(e.stats().cancelled, 1);
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut e: Engine<Ev> = Engine::new();
        assert!(!e.cancel(EventKey(42)));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut e = Engine::new();
        let k = e.schedule(SimTime::from_ns(1), Ev::A);
        e.schedule(SimTime::from_ns(9), Ev::B);
        e.cancel(k);
        assert_eq!(e.peek_time(), Some(SimTime::from_ns(9)));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_ns(10), Ev::A);
        e.pop();
        e.schedule(SimTime::from_ns(5), Ev::B);
    }

    #[test]
    fn schedule_now_runs_after_existing_same_instant_events() {
        let mut e = Engine::new();
        e.schedule(SimTime::ZERO, Ev::A);
        e.schedule_now(Ev::B);
        assert_eq!(e.pop().unwrap().1, Ev::A);
        assert_eq!(e.pop().unwrap().1, Ev::B);
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut e: Engine<Ev> = Engine::new();
        e.advance_to(SimTime::from_us(3));
        assert_eq!(e.now(), SimTime::from_us(3));
    }

    #[test]
    #[should_panic(expected = "skip a pending event")]
    fn advance_past_pending_event_panics() {
        let mut e = Engine::new();
        e.schedule(SimTime::from_ns(5), Ev::A);
        e.advance_to(SimTime::from_ns(6));
    }

    #[test]
    fn pop_hook_fires_per_delivered_event() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let hits = Arc::new(AtomicU64::new(0));
        let mut e = Engine::new();
        let k = e.schedule(SimTime::from_ns(1), Ev::A);
        e.schedule(SimTime::from_ns(2), Ev::B);
        e.schedule(SimTime::from_ns(3), Ev::C);
        e.cancel(k);
        let h = hits.clone();
        e.set_pop_hook(Box::new(move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        }));
        while e.pop().is_some() {}
        assert_eq!(
            hits.load(Ordering::Relaxed),
            2,
            "cancelled event not counted"
        );
        e.clear_pop_hook();
        e.schedule(SimTime::from_ns(9), Ev::A);
        e.pop();
        assert_eq!(
            hits.load(Ordering::Relaxed),
            2,
            "cleared hook must not fire"
        );
    }

    #[test]
    fn stats_track_counts() {
        let mut e = Engine::new();
        for i in 0..10u64 {
            e.schedule(SimTime::from_ns(i), Ev::A);
        }
        let k = e.schedule(SimTime::from_ns(100), Ev::B);
        e.cancel(k);
        while e.pop().is_some() {}
        let s = e.stats();
        assert_eq!(s.scheduled, 11);
        assert_eq!(s.delivered, 10);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.max_queue_len, 11);
    }
}
