//! Simulated time: a picosecond-resolution monotone clock.
//!
//! Picoseconds are fine enough to represent single cycles of every clock
//! domain in the model exactly (1 GHz GPU core → 1000 ps, 2.6 GHz CPU core →
//! ~385 ps, PCIe symbol times) while a `u64` still spans ~213 days of
//! simulated time — many orders of magnitude beyond any experiment here.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute instant on the simulation clock, in picoseconds since the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds. `SimTime + Dur = SimTime`,
/// `SimTime - SimTime = Dur`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far"
    /// sentinel for completion predictions of stalled warps.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Constructs from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }
    /// Constructs from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }
    /// Constructs from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// This instant expressed in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// This instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// This instant expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Span since an earlier instant. Saturates at zero rather than
    /// panicking, so callers comparing concurrently-updated timestamps do
    /// not have to order-check first.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// A zero-length span.
    pub const ZERO: Dur = Dur(0);

    /// Constructs from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Dur(ps)
    }
    /// Constructs from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Dur(ns * PS_PER_NS)
    }
    /// Constructs from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Dur(us * PS_PER_US)
    }
    /// Constructs from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Dur(ms * PS_PER_MS)
    }
    /// Constructs from fractional seconds, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        Dur((s * PS_PER_S as f64).round() as u64)
    }

    /// `n` cycles of a clock running at `ghz` GHz, rounded up to whole
    /// picoseconds (a partial cycle still occupies the resource).
    pub fn from_cycles(n: u64, ghz: f64) -> Self {
        assert!(ghz > 0.0, "non-positive clock frequency");
        let ps_per_cycle = 1_000.0 / ghz; // 1 GHz -> 1000 ps
        Dur((n as f64 * ps_per_cycle).ceil() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// This span expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }
    /// This span expressed in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Scales the span by an integer factor.
    #[inline]
    pub const fn saturating_mul(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: Dur) -> SimTime {
        SimTime(self.0.checked_add(d.0).expect("SimTime overflow"))
    }
}

impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Dur;
    /// # Panics
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: SimTime) -> Dur {
        Dur(self
            .0
            .checked_sub(rhs.0)
            .expect("SimTime subtraction underflow"))
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, d: Dur) -> Dur {
        Dur(self.0.checked_add(d.0).expect("Dur overflow"))
    }
}

impl AddAssign<Dur> for Dur {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        *self = *self + d;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{:.3}ns", self.as_ns_f64())
        }
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        SimTime(self.0).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_roundtrip() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_us(3).as_us_f64(), 3.0);
        assert_eq!(Dur::from_ms(2).as_secs_f64(), 0.002);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(100) + Dur::from_ns(50);
        assert_eq!(t, SimTime::from_ns(150));
        assert_eq!(t - SimTime::from_ns(100), Dur::from_ns(50));
        assert_eq!(
            SimTime::from_ns(10).saturating_since(SimTime::from_ns(20)),
            Dur::ZERO
        );
    }

    #[test]
    fn cycles_at_1ghz_are_exact() {
        assert_eq!(Dur::from_cycles(1, 1.0).as_ps(), 1_000);
        assert_eq!(Dur::from_cycles(1_000, 1.0).as_ps(), 1_000_000);
    }

    #[test]
    fn cycles_round_up() {
        // 2.6 GHz -> 384.6 ps/cycle; 1 cycle must occupy at least 385 ps.
        assert_eq!(Dur::from_cycles(1, 2.6).as_ps(), 385);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(Dur::from_secs_f64(1e-9).as_ps(), 1_000);
        assert_eq!(Dur::from_secs_f64(0.0).as_ps(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_secs_rejects_negative() {
        Dur::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_ns(5)), "5.000ns");
        assert_eq!(format!("{}", SimTime::from_us(5)), "5.000us");
        assert_eq!(format!("{}", SimTime::from_ms(5)), "5.000ms");
    }
}
