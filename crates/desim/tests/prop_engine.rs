//! Property tests of the event engine: delivery order, cancellation
//! semantics, and clock monotonicity under arbitrary op interleavings.

use desim::{Engine, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Schedule(u64),
    CancelNth(usize),
    Pop,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1_000_000).prop_map(Op::Schedule),
        (0usize..64).prop_map(Op::CancelNth),
        Just(Op::Pop),
    ]
}

proptest! {
    #[test]
    fn delivery_is_time_ordered_and_complete(ops in prop::collection::vec(arb_op(), 1..300)) {
        let mut e = Engine::new();
        let mut keys = Vec::new();
        let mut live = std::collections::HashMap::new(); // seq -> time
        let mut next_id = 0u32;
        let mut delivered: Vec<(u64, u32)> = Vec::new();

        for op in ops {
            match op {
                Op::Schedule(t) => {
                    // Never schedule into the past.
                    let at = SimTime::from_ps(e.now().as_ps() + t);
                    let k = e.schedule(at, next_id);
                    keys.push((k, next_id, at));
                    live.insert(next_id, at);
                    next_id += 1;
                }
                Op::CancelNth(i) if !keys.is_empty() => {
                    let (k, id, _) = keys[i % keys.len()];
                    if e.cancel(k) {
                        prop_assert!(live.remove(&id).is_some(), "cancel of undelivered only");
                    }
                }
                Op::Pop => {
                    if let Some((t, id)) = e.pop() {
                        let expected = live.remove(&id);
                        prop_assert_eq!(expected, Some(t));
                        delivered.push((t.as_ps(), id));
                    }
                }
                _ => {}
            }
        }
        // Drain the rest.
        while let Some((t, id)) = e.pop() {
            prop_assert!(live.remove(&id).is_some());
            delivered.push((t.as_ps(), id));
        }
        prop_assert!(live.is_empty(), "everything scheduled is delivered or cancelled");
        // Global time order (FIFO ties by construction of ids).
        for w in delivered.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated: {w:?}");
        }
    }

    #[test]
    fn clock_never_goes_backwards(delays in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut e = Engine::new();
        for (i, d) in delays.iter().enumerate() {
            e.schedule(SimTime::from_ps(*d), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = e.pop() {
            prop_assert!(t >= last);
            last = t;
            prop_assert_eq!(e.now(), t);
        }
    }
}
