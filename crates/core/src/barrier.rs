//! Named-barrier ID management (paper §5.2).
//!
//! Pagoda implements `syncBlock()` — sub-threadblock synchronization among
//! only the warps of one *task* threadblock — with PTX named barriers
//! (`bar.sync id, count`). The PTX model exposes 16 barrier IDs per
//! threadblock, so each MTB owns a pool of 16 IDs that are handed to task
//! threadblocks at scheduling time (Algorithm 1, line 19) and recycled when
//! the threadblock finishes (line 39).

/// Barrier IDs available per MTB under the PTX model.
pub const NUM_BARRIER_IDS: u16 = 16;

/// A named-barrier ID in `0..16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BarrierId(pub u8);

/// Fixed pool of 16 recyclable barrier IDs.
#[derive(Debug, Clone)]
pub struct BarrierPool {
    /// Bit i set = ID i is free.
    free: u16,
}

impl Default for BarrierPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BarrierPool {
    /// A pool with all 16 IDs free.
    pub fn new() -> Self {
        BarrierPool { free: u16::MAX }
    }

    /// Takes the lowest free ID, or `None` if all 16 are in use (the
    /// scheduler warp then stalls until a threadblock recycles one).
    pub fn alloc(&mut self) -> Option<BarrierId> {
        if self.free == 0 {
            return None;
        }
        let id = self.free.trailing_zeros() as u8;
        self.free &= !(1 << id);
        Some(BarrierId(id))
    }

    /// Recycles an ID.
    ///
    /// # Panics
    /// Panics on double release or an out-of-range ID.
    pub fn release(&mut self, id: BarrierId) {
        assert!(id.0 < 16, "barrier id out of range: {id:?}");
        let bit = 1u16 << id.0;
        assert_eq!(self.free & bit, 0, "double release of {id:?}");
        self.free |= bit;
    }

    /// IDs currently free.
    pub fn available(&self) -> u32 {
        self.free.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_all_sixteen_then_stalls() {
        let mut p = BarrierPool::new();
        let ids: Vec<_> = (0..16).map(|_| p.alloc().unwrap()).collect();
        assert_eq!(p.available(), 0);
        assert!(p.alloc().is_none(), "17th alloc must stall");
        // Distinct IDs.
        let mut seen = [false; 16];
        for id in &ids {
            assert!(!seen[id.0 as usize]);
            seen[id.0 as usize] = true;
        }
    }

    #[test]
    fn recycling_enables_reuse() {
        let mut p = BarrierPool::new();
        let ids: Vec<_> = (0..16).map(|_| p.alloc().unwrap()).collect();
        p.release(ids[5]);
        let again = p.alloc().unwrap();
        assert_eq!(again, ids[5], "lowest free ID is recycled");
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut p = BarrierPool::new();
        let id = p.alloc().unwrap();
        p.release(id);
        p.release(id);
    }
}
