//! Software shared-memory management: the buddy allocator of paper §5.1.
//!
//! Each MTB statically reserves 32 KB of its SMM's shared memory and hands
//! pieces of it to the threadblocks of scheduled tasks. CUDA offers no
//! dynamic shared-memory allocation once a kernel is launched, so Pagoda
//! manages the region in software with a buddy system chosen for its O(log)
//! operations and tree-in-array layout (128 nodes fit in shared memory
//! alongside the WarpTable).
//!
//! The tree covers 32 KB at the root; each level halves the block size down
//! to the 512 B minimum granularity (7 levels, 127 nodes). The invariant —
//! *if a node is marked, its parent is marked* — is exactly the paper's:
//! allocation marks the chosen node, all its descendants, and all its
//! ancestors (Fig. 3); deallocation unmarks the descendants, then walks
//! rootward unmarking each parent whose other child is also unmarked
//! (Fig. 4).
//!
//! Deallocation is *deferred*: executor warps may not free shared memory
//! themselves (they would race the scheduler warp's allocations), so the
//! last warp of a threadblock only *marks* its block for deallocation
//! ([`BuddyAllocator::mark_for_dealloc`]) and the scheduler warp drains the
//! marks ([`BuddyAllocator::dealloc_marked`]) before attempting any new
//! allocation (Algorithm 1, line 22).

/// Bytes managed per MTB on the paper's Titan X (96 KB SMM shared
/// memory: 32 KB per MTB plus scheduling structures). Machines with less
/// shared memory get a smaller power-of-two pool
/// ([`BuddyAllocator::with_pool`]).
pub const SMEM_POOL_BYTES: u32 = 32 * 1024;
/// Smallest allocatable block.
pub const MIN_BLOCK_BYTES: u32 = 512;
/// Tree levels at the maximum pool size: 32 KB, 16 KB, …, 512 B.
pub const MAX_LEVELS: usize = 7;
/// Node capacity of the tree array (2^7 − 1, sized for the largest pool).
pub const NUM_NODES: usize = (1 << MAX_LEVELS) - 1;

/// Index of a tree node; doubles as the allocation handle (the paper's
/// `SMindex` stored in the WarpTable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u16);

/// Allocation failure: no free block large enough.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfSharedMemory {
    /// The rounded block size that could not be found.
    pub wanted: u32,
}

/// The per-MTB buddy allocator.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    /// Paper's marked bit per node: true = part of an allocation (as the
    /// allocated node itself, a descendant of one, or an ancestor).
    marked: [bool; NUM_NODES],
    /// True only for nodes returned by [`BuddyAllocator::alloc`] that have
    /// not been deallocated — guards against bogus frees.
    is_root: [bool; NUM_NODES],
    /// Blocks waiting for the scheduler warp to reclaim.
    pending_dealloc: Vec<NodeId>,
    /// Bytes currently allocated (sum of live allocation block sizes).
    allocated: u32,
    /// Pool size (root block), a power of two in 512 B ..= 32 KB.
    pool: u32,
    /// Tree depth for this pool.
    levels: usize,
}

impl Default for BuddyAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl BuddyAllocator {
    /// An empty pool of the Titan X's 32 KB MTB slice.
    pub fn new() -> Self {
        Self::with_pool(SMEM_POOL_BYTES)
    }

    /// An empty pool of `pool` bytes (for machines whose SMMs hold less
    /// shared memory, e.g. the K40's 48 KB → 16 KB per-MTB pool).
    ///
    /// # Panics
    /// Panics unless `pool` is a power of two in 512 ..= 32768.
    pub fn with_pool(pool: u32) -> Self {
        assert!(
            pool.is_power_of_two() && (MIN_BLOCK_BYTES..=SMEM_POOL_BYTES).contains(&pool),
            "pool must be a power of two in 512..=32768, got {pool}"
        );
        let levels = ((pool / MIN_BLOCK_BYTES).trailing_zeros() + 1) as usize;
        BuddyAllocator {
            marked: [false; NUM_NODES],
            is_root: [false; NUM_NODES],
            pending_dealloc: Vec::new(),
            allocated: 0,
            pool,
            levels,
        }
    }

    /// Pool size in bytes.
    pub fn pool_bytes(&self) -> u32 {
        self.pool
    }

    /// Level of a node (0 = root).
    fn level_of(node: usize) -> usize {
        (usize::BITS - 1 - (node + 1).leading_zeros()) as usize
    }

    /// Block size at a level.
    fn size_at(&self, level: usize) -> u32 {
        self.pool >> level
    }

    /// First node index at a level.
    fn level_base(level: usize) -> usize {
        (1 << level) - 1
    }

    /// Index one past the last node of this pool's tree.
    fn node_limit(&self) -> usize {
        (1 << self.levels) - 1
    }

    /// The level whose block size is the smallest not below `bytes`, or
    /// `None` if `bytes` exceeds the pool.
    fn level_for(&self, bytes: u32) -> Option<usize> {
        if bytes > self.pool {
            return None;
        }
        let want = bytes.max(MIN_BLOCK_BYTES).next_power_of_two();
        Some((self.pool / want).trailing_zeros() as usize)
    }

    /// Byte offset and size of a node's block within the pool.
    pub fn block_of(&self, node: NodeId) -> (u32, u32) {
        let n = node.0 as usize;
        let level = Self::level_of(n);
        let size = self.size_at(level);
        let idx_in_level = n - Self::level_base(level);
        (idx_in_level as u32 * size, size)
    }

    /// Allocates a block of at least `bytes`. Mirrors Fig. 3: find a free
    /// node on the right level, mark it plus all descendants and ancestors.
    pub fn alloc(&mut self, bytes: u32) -> Result<NodeId, OutOfSharedMemory> {
        assert!(bytes > 0, "zero-byte shared-memory request");
        let Some(level) = self.level_for(bytes) else {
            return Err(OutOfSharedMemory { wanted: bytes });
        };
        let base = Self::level_base(level);
        let count = 1 << level;
        // The scheduler warp's 32 threads scan this level in parallel on the
        // GPU; sequentially here, lowest index first (deterministic).
        let node = (base..base + count).find(|&n| self.node_fully_free(n));
        let Some(n) = node else {
            return Err(OutOfSharedMemory {
                wanted: self.size_at(level),
            });
        };
        self.marked[n] = true;
        self.is_root[n] = true;
        self.mark_descendants(n, true);
        // Ancestors.
        let mut a = n;
        while a > 0 {
            a = (a - 1) / 2;
            self.marked[a] = true;
        }
        self.allocated += self.size_at(level);
        Ok(NodeId(n as u16))
    }

    /// A node is usable iff neither it nor any descendant is marked.
    /// (Ancestor marks alone do not disqualify it: an ancestor is marked
    /// whenever *any* block under it is allocated.)
    fn node_fully_free(&self, n: usize) -> bool {
        if self.marked[n] {
            return false;
        }
        let l = 2 * n + 1;
        let r = 2 * n + 2;
        if l >= self.node_limit() {
            return true;
        }
        self.node_fully_free(l) && self.node_fully_free(r)
    }

    fn mark_descendants(&mut self, n: usize, v: bool) {
        let l = 2 * n + 1;
        if l >= self.node_limit() {
            return;
        }
        let r = l + 1;
        self.marked[l] = v;
        self.marked[r] = v;
        self.mark_descendants(l, v);
        self.mark_descendants(r, v);
    }

    /// Immediately frees an allocation (Fig. 4). Only the scheduler warp
    /// calls this; executor warps use [`BuddyAllocator::mark_for_dealloc`].
    ///
    /// # Panics
    /// Panics if `node` is not a live allocation root.
    pub fn dealloc(&mut self, node: NodeId) {
        let n = node.0 as usize;
        assert!(self.is_root[n], "dealloc of non-allocated node {node:?}");
        self.is_root[n] = false;
        self.mark_descendants(n, false);
        self.marked[n] = false;
        self.allocated -= self.size_at(Self::level_of(n));
        // Walk up while the sibling is also unmarked.
        let mut cur = n;
        while cur > 0 {
            let parent = (cur - 1) / 2;
            let sibling = if cur % 2 == 1 { cur + 1 } else { cur - 1 };
            if self.marked[sibling] {
                break;
            }
            self.marked[parent] = false;
            cur = parent;
        }
    }

    /// Defers a free until the next [`BuddyAllocator::dealloc_marked`] —
    /// the executor-warp side of Algorithm 1 (line 37, `markSMForDealloc`).
    pub fn mark_for_dealloc(&mut self, node: NodeId) {
        assert!(
            self.is_root[node.0 as usize],
            "marking non-allocated node {node:?} for dealloc"
        );
        assert!(
            !self.pending_dealloc.contains(&node),
            "node {node:?} marked twice"
        );
        self.pending_dealloc.push(node);
    }

    /// Drains deferred frees (Algorithm 1, line 22, `deallocMarkedSM`).
    /// Returns how many blocks were reclaimed.
    pub fn dealloc_marked(&mut self) -> usize {
        let pending = std::mem::take(&mut self.pending_dealloc);
        let n = pending.len();
        for node in pending {
            self.dealloc(node);
        }
        n
    }

    /// Whether an [`BuddyAllocator::alloc`] of `bytes` would currently
    /// succeed, without mutating anything. The scheduler warp uses this to
    /// decide whether attempting an allocation is worth its cycles.
    pub fn can_alloc(&self, bytes: u32) -> bool {
        let Some(level) = self.level_for(bytes) else {
            return false;
        };
        let base = Self::level_base(level);
        (base..base + (1 << level)).any(|n| self.node_fully_free(n))
    }

    /// Bytes in live allocations (marked-for-dealloc blocks still count).
    pub fn allocated_bytes(&self) -> u32 {
        self.allocated
    }

    /// Whether any frees are waiting for the scheduler warp.
    pub fn has_pending_deallocs(&self) -> bool {
        !self.pending_dealloc.is_empty()
    }

    /// Checks the paper's structural invariant: a marked node implies a
    /// marked parent. Test/diagnostic use.
    pub fn check_invariant(&self) -> bool {
        (1..self.node_limit()).all(|n| !self.marked[n] || self.marked[(n - 1) / 2])
    }

    /// Live allocation roots (diagnostics/property tests).
    pub fn live_allocations(&self) -> Vec<NodeId> {
        (0..self.node_limit())
            .filter(|&n| self.is_root[n])
            .map(|n| NodeId(n as u16))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_math() {
        let b = BuddyAllocator::new();
        assert_eq!(b.level_for(32 * 1024), Some(0));
        assert_eq!(b.level_for(16 * 1024), Some(1));
        assert_eq!(b.level_for(512), Some(6));
        assert_eq!(b.level_for(1), Some(6), "rounds up to 512B");
        assert_eq!(b.level_for(513), Some(5), "rounds to 1K");
        assert_eq!(b.level_for(33 * 1024), None);
    }

    #[test]
    fn smaller_pool_variant() {
        // The K40 configuration: 16 KB per MTB.
        let mut b = BuddyAllocator::with_pool(16 * 1024);
        assert_eq!(b.pool_bytes(), 16 * 1024);
        assert!(b.alloc(32 * 1024).is_err(), "bigger than the pool");
        let n = b.alloc(16 * 1024).unwrap();
        assert_eq!(b.block_of(n), (0, 16 * 1024));
        b.dealloc(n);
        // 32 x 512B fills it exactly.
        for _ in 0..32 {
            b.alloc(512).unwrap();
        }
        assert!(b.alloc(512).is_err());
        assert!(b.check_invariant());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_pool_rejected() {
        BuddyAllocator::with_pool(24 * 1024);
    }

    #[test]
    fn paper_fig3_alloc_8k() {
        let mut b = BuddyAllocator::new();
        let n = b.alloc(8 * 1024).unwrap();
        let (off, size) = b.block_of(n);
        assert_eq!((off, size), (0, 8 * 1024));
        assert!(b.check_invariant());
        assert_eq!(b.allocated_bytes(), 8 * 1024);
        // Root and the path down must be marked; the sibling 8K free.
        let n2 = b.alloc(8 * 1024).unwrap();
        assert_eq!(b.block_of(n2).0, 8 * 1024);
    }

    #[test]
    fn paper_fig4_dealloc_merges_up() {
        let mut b = BuddyAllocator::new();
        let a = b.alloc(4 * 1024).unwrap();
        let c = b.alloc(4 * 1024).unwrap();
        b.dealloc(a);
        assert!(b.check_invariant());
        // c still allocated: ancestors stay marked, so a 32K alloc fails...
        assert!(b.alloc(32 * 1024).is_err());
        b.dealloc(c);
        assert!(b.check_invariant());
        // ...but after both frees the whole tree merged back.
        let full = b.alloc(32 * 1024).unwrap();
        assert_eq!(b.block_of(full), (0, 32 * 1024));
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut b = BuddyAllocator::new();
        let mut blocks = Vec::new();
        // 4 x 4K + 8 x 1K + 16 x 512B = 32K exactly.
        for _ in 0..4 {
            let n = b.alloc(4 * 1024).unwrap();
            blocks.push(b.block_of(n));
        }
        for _ in 0..8 {
            let n = b.alloc(1024).unwrap();
            blocks.push(b.block_of(n));
        }
        for _ in 0..16 {
            let n = b.alloc(512).unwrap();
            blocks.push(b.block_of(n));
        }
        assert_eq!(b.allocated_bytes(), 32 * 1024);
        assert!(b.alloc(512).is_err(), "pool exhausted");
        blocks.sort();
        for w in blocks.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {w:?}");
        }
    }

    #[test]
    fn fragmentation_blocks_large_alloc() {
        let mut b = BuddyAllocator::new();
        // Two 512B blocks land in the first 1K region...
        let x = b.alloc(512).unwrap();
        let y = b.alloc(512).unwrap();
        b.dealloc(x);
        // ...16K is still available on the other half of the tree.
        assert!(b.alloc(16 * 1024).is_ok());
        // But 32K cannot be satisfied while y lives.
        assert!(b.alloc(32 * 1024).is_err());
        let _ = y;
    }

    #[test]
    fn deferred_dealloc_flow() {
        let mut b = BuddyAllocator::new();
        let n = b.alloc(32 * 1024).unwrap();
        // Executor warp marks; memory still counts as allocated.
        b.mark_for_dealloc(n);
        assert!(b.has_pending_deallocs());
        assert!(b.alloc(512).is_err(), "not yet reclaimed");
        // Scheduler warp drains before its next allocation.
        assert_eq!(b.dealloc_marked(), 1);
        assert!(b.alloc(512).is_ok());
    }

    #[test]
    #[should_panic(expected = "dealloc of non-allocated")]
    fn dealloc_of_free_node_panics() {
        let mut b = BuddyAllocator::new();
        b.dealloc(NodeId(0));
    }

    #[test]
    #[should_panic(expected = "marked twice")]
    fn double_mark_panics() {
        let mut b = BuddyAllocator::new();
        let n = b.alloc(1024).unwrap();
        b.mark_for_dealloc(n);
        b.mark_for_dealloc(n);
    }

    #[test]
    fn alloc_prefers_lowest_offset() {
        let mut b = BuddyAllocator::new();
        let a = b.alloc(1024).unwrap();
        assert_eq!(b.block_of(a).0, 0);
        let c = b.alloc(1024).unwrap();
        assert_eq!(b.block_of(c).0, 1024);
        b.dealloc(a);
        let d = b.alloc(512).unwrap();
        assert_eq!(b.block_of(d).0, 0, "reuses the freed hole");
    }

    #[test]
    fn node_block_geometry() {
        let b = BuddyAllocator::new();
        assert_eq!(b.block_of(NodeId(0)), (0, 32 * 1024));
        assert_eq!(b.block_of(NodeId(1)), (0, 16 * 1024));
        assert_eq!(b.block_of(NodeId(2)), (16 * 1024, 16 * 1024));
        // Last leaf.
        assert_eq!(b.block_of(NodeId(126)), (32 * 1024 - 512, 512));
    }
}
