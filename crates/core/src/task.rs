//! Task descriptions: what `taskSpawn` takes (paper Table 1).
//!
//! A Pagoda task is a narrow kernel: a handful of threadblocks, each well
//! under 1024 threads (the paper's narrow tasks use 32-512). Because every
//! warp of a task executes inside one MTB, a task threadblock may use at
//! most the MTB's 31 executor warps (992 threads) and at most the MTB's
//! 32 KB shared-memory slice.

use gpu_arch::WARP_SIZE;
use gpu_sim::BlockWork;

use crate::smem::SMEM_POOL_BYTES;
use crate::warptable::EXECUTORS_PER_MTB;

/// Maximum threads per task threadblock (31 executor warps).
pub const MAX_THREADS_PER_TASK_TB: u32 = (EXECUTORS_PER_MTB as u32) * WARP_SIZE;

/// Everything `taskSpawn` needs (paper Table 1): launch shape, shared
/// memory, the sync flag, the kernel work, and the task's I/O volume.
#[derive(Debug, Clone)]
pub struct TaskDesc {
    /// Threads per threadblock (1 ..= 992).
    pub threads_per_tb: u32,
    /// Threadblocks in the task.
    pub num_tbs: u32,
    /// Dynamic shared memory per threadblock, bytes (0 ..= 32768).
    pub smem_per_tb: u32,
    /// Whether the task uses `syncBlock()` (threadblock-level barriers).
    pub sync: bool,
    /// The kernel work, one [`BlockWork`] per threadblock.
    pub blocks: Vec<BlockWork>,
    /// Input bytes copied host→device before the task can run.
    pub input_bytes: u64,
    /// Output bytes copied device→host after the task completes.
    pub output_bytes: u64,
    /// Operation count of the task's *sequential CPU* implementation. The
    /// GPU-side [`TaskDesc::total_instrs`] charges whole warps for their
    /// slowest lane (SIMT divergence); a CPU executes only the real work,
    /// so the CPU baselines use this count instead.
    pub cpu_ops: u64,
}

/// Why a task description is rejected by `submit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskError {
    /// Threadblock larger than the 31 executor warps of an MTB.
    TooManyThreadsPerTb {
        /// Requested threads per threadblock.
        requested: u32,
    },
    /// Zero threads or zero threadblocks.
    EmptyTask,
    /// More shared memory per threadblock than an MTB's 32 KB slice.
    SmemTooLarge {
        /// Requested bytes.
        requested: u32,
    },
    /// `blocks.len()` disagrees with `num_tbs`, or a block's warp count
    /// disagrees with `threads_per_tb`.
    ShapeMismatch,
    /// Blocks contain barriers but `sync` is false — on real hardware the
    /// task would synchronize on a barrier ID it never allocated.
    UndeclaredSync,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::TooManyThreadsPerTb { requested } => write!(
                f,
                "task threadblock of {requested} threads exceeds the \
                 {MAX_THREADS_PER_TASK_TB}-thread MTB executor capacity"
            ),
            TaskError::EmptyTask => write!(f, "task with zero threads or threadblocks"),
            TaskError::SmemTooLarge { requested } => write!(
                f,
                "task requests {requested} B shared memory per threadblock; \
                 an MTB manages {SMEM_POOL_BYTES} B"
            ),
            TaskError::ShapeMismatch => {
                write!(f, "block work disagrees with the declared task shape")
            }
            TaskError::UndeclaredSync => {
                write!(f, "task uses barriers but did not set the sync flag")
            }
        }
    }
}

impl std::error::Error for TaskError {}

impl TaskDesc {
    /// A single-threadblock task whose warps all run `work`, with no
    /// shared memory and no I/O — the common microbenchmark shape.
    pub fn uniform(threads: u32, work: gpu_sim::WarpWork) -> Self {
        let warps = threads.div_ceil(WARP_SIZE);
        let sync = work.barrier_count() > 0;
        let cpu_ops = work.total_instrs() * u64::from(warps);
        TaskDesc {
            threads_per_tb: threads,
            num_tbs: 1,
            smem_per_tb: 0,
            sync,
            blocks: vec![BlockWork::uniform(warps, work)],
            input_bytes: 0,
            output_bytes: 0,
            cpu_ops,
        }
    }

    /// Warps per threadblock (partial warps round up).
    pub fn warps_per_tb(&self) -> u32 {
        self.threads_per_tb.div_ceil(WARP_SIZE)
    }

    /// Total warps across the task.
    pub fn total_warps(&self) -> u32 {
        self.warps_per_tb() * self.num_tbs
    }

    /// Whether scheduling must go threadblock-by-threadblock (Algorithm 1,
    /// line 17): any task that needs shared memory or synchronization.
    pub fn per_tb_scheduling(&self) -> bool {
        self.smem_per_tb > 0 || self.sync
    }

    /// Validates against the MTB capacity rules above.
    pub fn validate(&self) -> Result<(), TaskError> {
        if self.threads_per_tb == 0 || self.num_tbs == 0 {
            return Err(TaskError::EmptyTask);
        }
        if self.threads_per_tb > MAX_THREADS_PER_TASK_TB {
            return Err(TaskError::TooManyThreadsPerTb {
                requested: self.threads_per_tb,
            });
        }
        if self.smem_per_tb > SMEM_POOL_BYTES {
            return Err(TaskError::SmemTooLarge {
                requested: self.smem_per_tb,
            });
        }
        if self.blocks.len() != self.num_tbs as usize {
            return Err(TaskError::ShapeMismatch);
        }
        for b in &self.blocks {
            if b.num_warps() != self.warps_per_tb() {
                return Err(TaskError::ShapeMismatch);
            }
            if !self.sync && b.warps().iter().any(|w| w.barrier_count() > 0) {
                return Err(TaskError::UndeclaredSync);
            }
        }
        Ok(())
    }

    /// Total thread-instructions in the task.
    pub fn total_instrs(&self) -> u64 {
        self.blocks.iter().map(BlockWork::total_instrs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::WarpWork;

    #[test]
    fn uniform_narrow_task_validates() {
        let t = TaskDesc::uniform(128, WarpWork::compute(1000, 2.0));
        t.validate().unwrap();
        assert_eq!(t.warps_per_tb(), 4);
        assert_eq!(t.total_warps(), 4);
        assert!(!t.per_tb_scheduling());
        assert_eq!(t.total_instrs(), 4000);
    }

    #[test]
    fn sync_detected_from_work() {
        let t = TaskDesc::uniform(64, WarpWork::phased(1000, 2, 1.0));
        assert!(t.sync);
        assert!(t.per_tb_scheduling());
        t.validate().unwrap();
    }

    #[test]
    fn rejects_oversized_tb() {
        let t = TaskDesc::uniform(993, WarpWork::compute(1, 1.0));
        assert_eq!(
            t.validate(),
            Err(TaskError::TooManyThreadsPerTb { requested: 993 })
        );
    }

    #[test]
    fn rejects_oversized_smem() {
        let mut t = TaskDesc::uniform(32, WarpWork::compute(1, 1.0));
        t.smem_per_tb = 33 * 1024;
        assert!(matches!(t.validate(), Err(TaskError::SmemTooLarge { .. })));
    }

    #[test]
    fn rejects_undeclared_sync() {
        let mut t = TaskDesc::uniform(64, WarpWork::phased(1000, 2, 1.0));
        t.sync = false;
        assert_eq!(t.validate(), Err(TaskError::UndeclaredSync));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut t = TaskDesc::uniform(64, WarpWork::compute(1, 1.0));
        t.num_tbs = 2;
        assert_eq!(t.validate(), Err(TaskError::ShapeMismatch));
    }

    #[test]
    fn max_tb_exactly_992_threads() {
        let t = TaskDesc::uniform(992, WarpWork::compute(1, 1.0));
        t.validate().unwrap();
        assert_eq!(t.warps_per_tb(), 31);
    }

    #[test]
    fn errors_render() {
        let e = TaskError::SmemTooLarge { requested: 40000 };
        assert!(e.to_string().contains("40000"));
    }
}
