//! Per-MTB (MasterKernel ThreadBlock) state.
//!
//! Each of the 48 MTBs owns: one scheduler warp and 31 executor warps on a
//! fixed SMM, a [`WarpTable`](crate::warptable::WarpTable) tracking the
//! executors, a 32 KB [`BuddyAllocator`](crate::smem::BuddyAllocator) slice
//! of shared memory, a pool of 16 named barrier IDs, and one column of the
//! TaskTable.
//!
//! The scheduler warp is modelled as a sequential actor: it performs one
//! *action* at a time (chain update, entry pickup, barrier/shared-memory
//! allocation, a `pSched` placement burst), each charged as real compute on
//! the scheduler warp in the device simulator — so scheduling overhead
//! contends for SMM issue slots exactly as the paper's measurements
//! include.

use gpu_sim::WarpHandle;

use crate::barrier::{BarrierId, BarrierPool};
use crate::smem::{BuddyAllocator, NodeId};
use crate::table::{EntryIndex, TaskId};
use crate::warptable::WarpTable;

/// What the scheduler warp is currently spending cycles on; applied when
/// the charged compute completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Action {
    /// Algorithm 1 lines 5-13: settle `cur` (Ref → Copied) and mark its
    /// predecessor schedulable.
    ChainUpdate {
        /// The entry whose `ready` field holds a task reference.
        cur: EntryIndex,
    },
    /// Algorithm 1 lines 14-16: clear the sched flag and open a placement
    /// job for the entry's task.
    StartEntry {
        /// The entry with a set sched flag.
        entry: EntryIndex,
    },
    /// One step of the open placement job (barrier alloc, smem alloc, or a
    /// `pSched` placement burst), per Algorithm 1 lines 17-28.
    JobStep,
}

/// Progress of scheduling one task onto this MTB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum JobPhase {
    /// Waiting to allocate a named barrier ID for the current threadblock.
    NeedBarrier,
    /// Waiting to allocate shared memory for the current threadblock.
    NeedSmem,
    /// Placing warps onto free executors (`pSched`).
    Placing,
}

/// A task being scheduled: the paper's in-flight `pSched`/allocation state.
/// At most one job per MTB exists — Algorithm 1 processes entries strictly
/// in sequence.
#[derive(Debug)]
pub(crate) struct PlacementJob {
    /// The TaskTable entry being scheduled.
    pub entry: EntryIndex,
    /// Its task.
    pub task: TaskId,
    /// Threadblock-by-threadblock scheduling (smem or sync tasks).
    pub per_tb: bool,
    /// Current threadblock (per-TB mode).
    pub next_tb: u32,
    /// Current phase.
    pub phase: JobPhase,
    /// Barrier ID allocated for the current threadblock.
    pub cur_bar: Option<BarrierId>,
    /// Shared-memory block allocated for the current threadblock.
    pub cur_smem: Option<NodeId>,
    /// Warps placed in the current placement unit (one TB in per-TB mode,
    /// the whole task otherwise).
    pub placed_in_unit: u32,
    /// Executor slots reserved for the current sync threadblock; its warps
    /// are dispatched together once the block is complete so the barrier
    /// group is fully formed.
    pub reserved: Vec<usize>,
}

/// All state of one MTB.
#[derive(Debug)]
pub(crate) struct MtbState {
    /// SMM hosting this MTB (diagnostics; the warps carry placement).
    #[allow(dead_code)]
    pub sm: u32,
    /// The scheduler warp (warp 0 of the MTB).
    pub sched_warp: WarpHandle,
    /// Executor warps (warps 1-31).
    pub exec_warps: Vec<WarpHandle>,
    /// Executor bookkeeping (paper Table 2).
    pub warp_table: WarpTable,
    /// The MTB's 32 KB shared-memory slice.
    pub buddy: BuddyAllocator,
    /// Named-barrier IDs.
    pub barriers: BarrierPool,
    /// Scheduler warp has an action's cycles in flight.
    pub busy: bool,
    /// The in-flight action, applied when its cycles complete.
    pub action: Option<Action>,
    /// The open placement job, if any.
    pub job: Option<PlacementJob>,
}

impl MtbState {
    pub(crate) fn new(
        sm: u32,
        sched_warp: WarpHandle,
        exec_warps: Vec<WarpHandle>,
        smem_pool: u32,
    ) -> Self {
        MtbState {
            sm,
            sched_warp,
            exec_warps,
            warp_table: WarpTable::new(),
            buddy: BuddyAllocator::with_pool(smem_pool),
            barriers: BarrierPool::new(),
            busy: false,
            action: None,
            job: None,
        }
    }
}
