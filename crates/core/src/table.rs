//! The TaskTable: Pagoda's CPU/GPU-mirrored spawning structure (paper §4.2).
//!
//! The TaskTable is a 48-column × 32-row array of task entries, mirrored in
//! host and device memory. Column *c* belongs to MTB *c*: only that MTB's
//! scheduler warp schedules from it. The protocol exploits an ownership
//! split that makes simultaneous host/device updates safe without PCIe
//! atomics:
//!
//! * the **CPU** only writes entries whose `ready` field is `Free` (0);
//! * the **GPU** only writes entries whose `ready` field is non-zero.
//!
//! Each entry's state is `(ready, sched)` per Fig. 2a:
//!
//! | `ready`       | meaning                                             |
//! |---------------|-----------------------------------------------------|
//! | `Free` (0)    | entry unused; CPU may claim it                      |
//! | `Ref(t)` (>1) | entry copied; `t` = previously spawned task whose   |
//! |               | parameters are now guaranteed complete (pipelining) |
//! | `Copied` (−1) | chain-processed; parameters complete, awaiting the  |
//! |               | *next* task's arrival (or a CPU flush) to schedule  |
//! | `Scheduling` (1) | being scheduled / executing on the MTB           |
//!
//! `sched = true` tells the scheduler warp to begin placing the task.
//!
//! This module holds the pure state machine with its transition rules; the
//! runtime layers PCIe visibility timing on top.

/// A Pagoda task identifier. The paper requires task IDs > 1 so the `ready`
/// field can overload 0/−1/1 as protocol states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl TaskId {
    /// The smallest legal task ID.
    pub const FIRST: TaskId = TaskId(2);

    /// The next ID after this one.
    pub fn next(self) -> TaskId {
        TaskId(self.0 + 1)
    }
}

/// The `ready` field of an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ready {
    /// 0 — unoccupied.
    #[default]
    Free,
    /// −1 — parameters copied; waiting for the pipeline to advance.
    Copied,
    /// 1 — under consideration for scheduling / executing.
    Scheduling,
    /// A task ID > 1: reference to the previously spawned task.
    Ref(TaskId),
}

/// Full per-entry protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EntryState {
    /// The four-state `ready` field.
    pub ready: Ready,
    /// The scheduling flag.
    pub sched: bool,
}

/// Position of an entry: column = owning MTB, row within the column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryIndex {
    /// Owning MTB / TaskTable column.
    pub col: u32,
    /// Row within the column.
    pub row: u32,
}

/// One side (CPU or GPU) of the mirrored table.
#[derive(Debug, Clone)]
pub struct TaskTableSide {
    cols: u32,
    rows: u32,
    entries: Vec<EntryState>,
    /// Non-free entries per column, maintained at every transition so
    /// occupancy reads (per-MTB samples, capacity checks) need no scan.
    used_per_col: Vec<u32>,
    /// Non-free entries across the whole table.
    used_total: u32,
}

impl TaskTableSide {
    /// An all-free table.
    pub fn new(cols: u32, rows: u32) -> Self {
        TaskTableSide {
            cols,
            rows,
            entries: vec![EntryState::default(); (cols * rows) as usize],
            used_per_col: vec![0; cols as usize],
            used_total: 0,
        }
    }

    /// Columns (= MTBs).
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Rows per column.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    fn idx(&self, e: EntryIndex) -> usize {
        assert!(e.col < self.cols && e.row < self.rows, "bad index {e:?}");
        (e.col * self.rows + e.row) as usize
    }

    /// Reads an entry.
    pub fn get(&self, e: EntryIndex) -> EntryState {
        self.entries[self.idx(e)]
    }

    /// Raw write (used when applying a DMA-visible snapshot).
    pub fn set(&mut self, e: EntryIndex, s: EntryState) {
        let i = self.idx(e);
        let was_free = self.entries[i].ready == Ready::Free;
        let now_free = s.ready == Ready::Free;
        self.entries[i] = s;
        match (was_free, now_free) {
            (true, false) => self.occupy(e.col),
            (false, true) => self.vacate(e.col),
            _ => {}
        }
    }

    fn occupy(&mut self, col: u32) {
        self.used_per_col[col as usize] += 1;
        self.used_total += 1;
    }

    fn vacate(&mut self, col: u32) {
        self.used_per_col[col as usize] -= 1;
        self.used_total -= 1;
    }

    /// CPU spawn (Fig. 2b step 1): claim a free entry, recording either
    /// `Copied` (first task of a chain) or `Ref(prev)`.
    ///
    /// # Panics
    /// Panics if the entry is not free (the CPU may only touch free
    /// entries) or if `ready` is not one of the two legal spawn values.
    pub fn cpu_claim(&mut self, e: EntryIndex, ready: Ready) {
        let i = self.idx(e);
        assert_eq!(
            self.entries[i].ready,
            Ready::Free,
            "CPU spawning into occupied entry {e:?}"
        );
        assert!(
            matches!(ready, Ready::Copied | Ready::Ref(_)),
            "illegal spawn ready value {ready:?}"
        );
        self.entries[i] = EntryState {
            ready,
            sched: false,
        };
        self.occupy(e.col);
    }

    /// GPU chain step, previous entry (Algorithm 1, lines 12-13):
    /// `Copied → (Scheduling, sched=1)`.
    ///
    /// # Panics
    /// Panics unless the entry is in `Copied` state.
    pub fn chain_mark_schedulable(&mut self, e: EntryIndex) {
        let i = self.idx(e);
        assert_eq!(
            self.entries[i].ready,
            Ready::Copied,
            "chain_mark_schedulable on {e:?} in state {:?}",
            self.entries[i]
        );
        self.entries[i] = EntryState {
            ready: Ready::Scheduling,
            sched: true,
        };
    }

    /// GPU chain step, current entry: `Ref(_) → Copied` (parameters now
    /// known complete).
    ///
    /// # Panics
    /// Panics unless the entry holds a task reference.
    pub fn chain_settle(&mut self, e: EntryIndex) {
        let i = self.idx(e);
        assert!(
            matches!(self.entries[i].ready, Ready::Ref(_)),
            "chain_settle on {e:?} in state {:?}",
            self.entries[i]
        );
        self.entries[i] = EntryState {
            ready: Ready::Copied,
            sched: false,
        };
    }

    /// Scheduler warp begins placing the task (Algorithm 1, line 15):
    /// clears `sched`.
    ///
    /// # Panics
    /// Panics if `sched` was not set.
    pub fn clear_sched(&mut self, e: EntryIndex) {
        let i = self.idx(e);
        assert!(self.entries[i].sched, "clear_sched on {e:?} without flag");
        self.entries[i].sched = false;
    }

    /// Last executor warp of the task resets `ready` (Algorithm 1, line
    /// 42), freeing the entry for the CPU.
    ///
    /// # Panics
    /// Panics unless the entry was `Scheduling`.
    pub fn complete(&mut self, e: EntryIndex) {
        let i = self.idx(e);
        assert_eq!(
            self.entries[i].ready,
            Ready::Scheduling,
            "completing {e:?} in state {:?}",
            self.entries[i]
        );
        self.entries[i] = EntryState::default();
        self.vacate(e.col);
    }

    /// All entries of one column, row order (the scheduler warp's scan).
    pub fn column(&self, col: u32) -> impl Iterator<Item = (EntryIndex, EntryState)> + '_ {
        (0..self.rows).map(move |row| {
            let e = EntryIndex { col, row };
            (e, self.get(e))
        })
    }

    /// Non-free entries in one column, O(1) (maintained incrementally —
    /// equals what a `column` scan would count).
    pub fn used_in_col(&self, col: u32) -> u32 {
        self.used_per_col[col as usize]
    }

    /// Number of free entries, O(1).
    pub fn free_entries(&self) -> usize {
        (self.cols * self.rows - self.used_total) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(col: u32, row: u32) -> EntryIndex {
        EntryIndex { col, row }
    }

    #[test]
    fn fig2b_sequence_for_two_tasks() {
        // GPU-side table following Fig. 2b: TA spawned first (Copied), TB
        // spawned with Ref(TA); scheduler settles the chain.
        let mut t = TaskTableSide::new(2, 2);
        let ta = e(0, 0);
        let tb = e(1, 0);
        let id_a = TaskId::FIRST;

        // H2D copies arrive:
        t.set(
            ta,
            EntryState {
                ready: Ready::Copied,
                sched: false,
            },
        );
        t.set(
            tb,
            EntryState {
                ready: Ready::Ref(id_a),
                sched: false,
            },
        );

        // S2 (TB's scheduler) sees Ref(TA): marks TA schedulable, settles TB.
        t.chain_mark_schedulable(ta);
        t.chain_settle(tb);
        assert_eq!(
            t.get(ta),
            EntryState {
                ready: Ready::Scheduling,
                sched: true
            }
        );
        assert_eq!(
            t.get(tb),
            EntryState {
                ready: Ready::Copied,
                sched: false
            }
        );

        // S1 schedules TA: clears sched, runs, completes.
        t.clear_sched(ta);
        t.complete(ta);
        assert_eq!(t.get(ta), EntryState::default());

        // CPU flush path for TB: (Copied, 0) -> (Scheduling, sched).
        t.chain_mark_schedulable(tb);
        t.clear_sched(tb);
        t.complete(tb);
        assert_eq!(t.free_entries(), 4);
    }

    #[test]
    fn cpu_claim_rules() {
        let mut t = TaskTableSide::new(1, 2);
        t.cpu_claim(e(0, 0), Ready::Copied);
        t.cpu_claim(e(0, 1), Ready::Ref(TaskId(2)));
        assert_eq!(t.free_entries(), 0);
    }

    #[test]
    #[should_panic(expected = "occupied entry")]
    fn cpu_cannot_claim_occupied() {
        let mut t = TaskTableSide::new(1, 1);
        t.cpu_claim(e(0, 0), Ready::Copied);
        t.cpu_claim(e(0, 0), Ready::Copied);
    }

    #[test]
    #[should_panic(expected = "illegal spawn ready")]
    fn cpu_cannot_spawn_scheduling_state() {
        let mut t = TaskTableSide::new(1, 1);
        t.cpu_claim(e(0, 0), Ready::Scheduling);
    }

    #[test]
    #[should_panic(expected = "chain_mark_schedulable")]
    fn chain_mark_requires_copied() {
        let mut t = TaskTableSide::new(1, 1);
        t.chain_mark_schedulable(e(0, 0));
    }

    #[test]
    #[should_panic(expected = "completing")]
    fn complete_requires_scheduling() {
        let mut t = TaskTableSide::new(1, 1);
        t.complete(e(0, 0));
    }

    #[test]
    fn task_ids_start_above_one() {
        assert_eq!(TaskId::FIRST.0, 2);
        assert_eq!(TaskId::FIRST.next().0, 3);
    }

    #[test]
    fn incremental_used_counts_match_scans() {
        let mut t = TaskTableSide::new(2, 3);
        let scan_used = |t: &TaskTableSide, col: u32| {
            t.column(col)
                .filter(|(_, s)| s.ready != Ready::Free)
                .count() as u32
        };
        t.cpu_claim(e(0, 0), Ready::Copied);
        t.cpu_claim(e(1, 1), Ready::Ref(TaskId(2)));
        // Raw `set` transitions in both directions, including writes that
        // do not change free-ness.
        t.set(
            e(1, 2),
            EntryState {
                ready: Ready::Copied,
                sched: false,
            },
        );
        t.set(
            e(1, 2),
            EntryState {
                ready: Ready::Scheduling,
                sched: true,
            },
        );
        t.set(e(1, 1), EntryState::default());
        t.chain_mark_schedulable(e(0, 0));
        t.clear_sched(e(0, 0));
        t.complete(e(0, 0));
        for col in 0..2 {
            assert_eq!(t.used_in_col(col), scan_used(&t, col), "col {col}");
        }
        assert_eq!(
            t.free_entries(),
            6 - (scan_used(&t, 0) + scan_used(&t, 1)) as usize
        );
    }

    #[test]
    fn column_iterates_rows_in_order() {
        let mut t = TaskTableSide::new(2, 3);
        t.cpu_claim(e(1, 2), Ready::Copied);
        let col: Vec<_> = t.column(1).collect();
        assert_eq!(col.len(), 3);
        assert_eq!(col[2].0, e(1, 2));
        assert_eq!(col[2].1.ready, Ready::Copied);
        assert_eq!(col[0].1.ready, Ready::Free);
    }
}
