//! The Pagoda runtime: host API, task spawning, and the MasterKernel.
//!
//! [`PagodaRuntime`] co-simulates three timelines against one clock:
//!
//! * the **host CPU** executing the user's program (spawn loops, `wait`
//!   polling, TaskTable copy-backs) — modelled by `host_now`, which only
//!   moves forward as API calls consume CPU time or block;
//! * the **PCIe bus** carrying task inputs, TaskTable entries, flush
//!   writes, copy-backs, and task outputs — the [`pcie::PcieBus`] model;
//! * the **GPU** running the MasterKernel — scheduler-warp actions and
//!   executor-warp task work are *real work assigned to real warps* of a
//!   persistent kernel in the [`gpu_sim::GpuDevice`], so every scheduling
//!   cycle Pagoda spends contends with task execution for SMM issue slots,
//!   exactly as on hardware.
//!
//! The public API mirrors the paper's Table 1 behind one spawn entry
//! point: [`PagodaRuntime::submit`] (with [`PagodaRuntime::capacity`] as
//! its headroom probe), plus [`PagodaRuntime::wait`],
//! [`PagodaRuntime::check`], [`PagodaRuntime::wait_all`]. The GPU-side API
//! (`getTid`, `syncBlock`, `getSMPtr`) appears structurally: a task's
//! [`TaskDesc::blocks`] encode per-warp work and barriers, and
//! shared-memory requests are granted from the MTB's buddy-managed slice.
//!
//! Fallible calls return [`PagodaError`]/[`SubmitError`] values; the
//! runtime panics only on *internal invariant* violations (messages name
//! the invariant). Attach a [`pagoda_obs::Recorder`] via
//! [`PagodaRuntime::attach_obs`] to capture task lifecycle spans, per-MTB
//! occupancy timelines, and counters across the host, bus, and device
//! layers.

use std::collections::HashMap;

use desim::{Dur, SimTime};
use gpu_arch::TaskShape;
use gpu_sim::{GpuDevice, GroupId, Notify, Segment, WarpWork};
use pagoda_obs::{Counter, MtbSample, Obs, TaskState};
use pcie::{Direction, PcieBus, StreamId};

use crate::config::PagodaConfig;
use crate::errors::{Capacity, PagodaError, SubmitError};
use crate::mtb::{Action, JobPhase, MtbState, PlacementJob};
use crate::table::{EntryIndex, EntryState, Ready, TaskId, TaskTableSide};
use crate::task::{TaskDesc, TaskError};
use crate::trace::TaskTrace;
use crate::warptable::Slot;

/// Tag prefix for scheduler-warp action completions.
const TAG_SCHED: u64 = 1 << 40;
/// Tag prefix for executor-warp task completions.
const TAG_EXEC: u64 = 2 << 40;
const TAG_KIND_MASK: u64 = 3 << 40;
const TAG_PAYLOAD_MASK: u64 = (1 << 40) - 1;

/// Host-event payloads staged for PCIe visibility instants.
#[derive(Debug)]
enum HostEv {
    /// A spawned entry's H2D copy became visible in device memory.
    EntryVisible {
        e: EntryIndex,
        st: EntryState,
        task: TaskId,
    },
    /// The final-task flush write became visible.
    FlushWriteVisible { e: EntryIndex },
}

/// Bookkeeping for one spawned task.
#[derive(Debug)]
struct TaskRecord {
    desc: TaskDesc,
    entry: EntryIndex,
    /// Host time of the `submit` call.
    spawn_time: SimTime,
    /// Executor-warp completions so far.
    warps_done: u32,
    /// Per-threadblock completions.
    tb_warps_done: Vec<u32>,
    /// Barrier groups of sync threadblocks.
    tb_groups: Vec<Option<GroupId>>,
    /// When the last warp finished on the GPU.
    gpu_done: Option<SimTime>,
    /// When the output D2H copy completes (== `gpu_done` if no output).
    output_done: Option<SimTime>,
    /// When the first warp started executing (scheduling-latency metric).
    first_start: Option<SimTime>,
    /// When the entry's H2D copy became visible on the device.
    entry_visible: Option<SimTime>,
    /// When the entry was marked (Scheduling, sched) by chain or flush.
    schedulable: Option<SimTime>,
    /// The CPU has observed completion via a copy-back.
    observed_done: bool,
}

/// End-of-run measurements, the quantities the paper's figures plot.
#[derive(Debug, Clone, Copy)]
pub struct RunReport {
    /// Host time when the workload finished (copies included) — the
    /// "execution time" of Figs. 5, 6, 9, 11.
    pub makespan: Dur,
    /// Instant the last task finished computing on the GPU — the
    /// "compute time" of Figs. 7, 8 and Table 5.
    pub compute_done: SimTime,
    /// Tasks completed.
    pub tasks: u64,
    /// Mean spawn→GPU-completion latency — Fig. 10's metric.
    pub mean_task_latency: Dur,
    /// Mean fraction of device warp slots doing useful work.
    pub avg_running_occupancy: f64,
    /// Host→device channel busy time.
    pub h2d_busy: Dur,
    /// Device→host channel busy time.
    pub d2h_busy: Dur,
    /// Average per-SMM busy time (≥1 warp running).
    pub gpu_busy: Dur,
}

/// The runtime. Create one per workload run; drive it with the Table 1
/// API; read a [`RunReport`] at the end.
#[derive(Debug)]
pub struct PagodaRuntime {
    cfg: PagodaConfig,
    device: GpuDevice,
    bus: PcieBus,
    h2d: StreamId,
    d2h: StreamId,
    gpu_table: TaskTableSide,
    cpu_table: TaskTableSide,
    mtbs: Vec<MtbState>,
    tasks: Vec<TaskRecord>,
    /// GPU-side occupant of each entry (col-major, `col*rows + row`).
    occupant: Vec<Option<TaskId>>,
    /// CPU-side belief of each entry's occupant.
    cpu_occupant: Vec<Option<TaskId>>,
    /// Entry's spawn H2D copy still in flight.
    spawn_inflight: Vec<bool>,
    /// Successor entry of each task (for chain-update wakeups).
    succ_entry: HashMap<TaskId, EntryIndex>,
    last_spawned: Option<TaskId>,
    /// The current spawn chain has an unflushed tail.
    chain_open: bool,
    host_now: SimTime,
    spawn_cursor: u32,
    staged: HashMap<u64, HostEv>,
    next_stage_tag: u64,
    obs: Obs,
}

impl PagodaRuntime {
    /// Boots the runtime: launches the MasterKernel (2 MTBs per SMM at
    /// 100 % occupancy) and builds the mirrored TaskTable.
    ///
    /// # Panics
    /// Panics if the MasterKernel shape cannot occupy the configured
    /// device (it fits every supported spec).
    pub fn new(cfg: PagodaConfig) -> Self {
        let mut device = GpuDevice::new(cfg.device.clone());
        let smem_slice = cfg.mtb_pool_bytes();
        let mk_shape = TaskShape {
            threads_per_tb: 1024,
            num_tbs: cfg.num_mtbs(),
            regs_per_thread: 32, // the paper's -maxrregcount cap
            smem_per_tb: smem_slice,
        };
        let tbs = device
            .launch_persistent(mk_shape)
            .expect("MasterKernel must fit the device");
        let mtbs: Vec<MtbState> = tbs
            .into_iter()
            .map(|tb| {
                let sched = tb.warps[0];
                let execs = tb.warps[1..].to_vec();
                MtbState::new(tb.sm, sched, execs, smem_slice)
            })
            .collect();
        let mut bus = PcieBus::new(cfg.pcie.clone());
        let h2d = bus.create_stream();
        let d2h = bus.create_stream();
        let cols = cfg.num_mtbs();
        let rows = cfg.rows_per_column;
        let entries = (cols * rows) as usize;
        PagodaRuntime {
            device,
            bus,
            h2d,
            d2h,
            gpu_table: TaskTableSide::new(cols, rows),
            cpu_table: TaskTableSide::new(cols, rows),
            mtbs,
            tasks: Vec::new(),
            occupant: vec![None; entries],
            cpu_occupant: vec![None; entries],
            spawn_inflight: vec![false; entries],
            succ_entry: HashMap::new(),
            last_spawned: None,
            chain_open: false,
            host_now: SimTime::ZERO,
            spawn_cursor: 0,
            staged: HashMap::new(),
            next_stage_tag: 0,
            obs: Obs::off(),
            cfg,
        }
    }

    /// Attaches an observability sink to every layer this runtime drives:
    /// the runtime itself (task lifecycle spans, TaskTable counters, MTB
    /// occupancy samples), the device (per-SMM residency samples, engine
    /// events), and the bus (PCIe transaction/byte counters). Pass
    /// [`Obs::off`] to detach.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.device.attach_obs(obs.clone());
        self.bus.attach_obs(obs.clone());
        self.obs = obs;
    }

    /// A runtime on the paper's Titan X with default calibration.
    pub fn titan_x() -> Self {
        Self::new(PagodaConfig::default())
    }

    /// Current host-thread time.
    pub fn host_now(&self) -> SimTime {
        self.host_now
    }

    // ==================================================================
    // Table 1 API — CPU side
    // ==================================================================

    /// `taskSpawn`: submits a task without blocking. Copies the task's
    /// input and its TaskTable entry to the GPU asynchronously and returns
    /// a task ID. Spawns only if the CPU's current view of the TaskTable
    /// has a free entry, otherwise hands the description back immediately
    /// with [`SubmitError::Full`].
    ///
    /// A full table costs *no* simulated host time — the caller decides
    /// whether to pay for a [`PagodaRuntime::sync_table`] refresh, shed
    /// the task, or try again later. This is the hook an admission
    /// controller in front of the runtime builds on; a blocking spawn is
    /// the retry loop `sync_table` + `advance_to` around it.
    pub fn submit(&mut self, desc: TaskDesc) -> Result<TaskId, SubmitError> {
        self.validate_for_device(&desc)?;
        let Some(entry) = self.find_free_entry() else {
            return Err(SubmitError::Full(desc));
        };
        self.host_advance(self.cfg.spawn_cpu_cost);
        Ok(self.spawn_at(entry, desc))
    }

    /// TaskTable headroom in the CPU's current view: how many consecutive
    /// [`PagodaRuntime::submit`] calls are guaranteed to succeed before
    /// the next table refresh. The GPU may have freed more (the CPU only
    /// learns via copy-backs; §4.2.2's lazy updates).
    pub fn capacity(&self) -> Capacity {
        Capacity {
            known_free: self.cpu_table.free_entries() as u32,
            total: self.cfg.total_entries(),
        }
    }

    /// Refreshes the CPU's view of the TaskTable: flushes the spawn
    /// chain's tail if needed, then performs the aggregate D2H copy-back
    /// of §4.2.2. Costs the simulated bus time of both transfers and
    /// marks tasks whose entries the GPU freed as observably done.
    pub fn sync_table(&mut self) {
        self.flush_last();
        self.copyback_all();
    }

    /// Advances the simulated host clock to `t` (no-op if in the past),
    /// co-simulating the device up to that instant. Lets an external
    /// driver (e.g. a serving layer's discrete-event loop) idle the host
    /// until its next event.
    pub fn advance_to(&mut self, t: SimTime) {
        self.host_advance_to(t);
    }

    /// Whether the CPU has already observed `t`'s completion via a
    /// copy-back. Free, unlike [`PagodaRuntime::check`] — it reads host
    /// state and never touches the bus.
    ///
    /// # Errors
    /// [`PagodaError::UnknownTask`] if this runtime never issued `t`.
    pub fn observed_done(&self, t: TaskId) -> Result<bool, PagodaError> {
        Ok(self.tasks[self.tix(t)?].observed_done)
    }

    /// The configuration this runtime was booted with.
    pub fn config(&self) -> &PagodaConfig {
        &self.cfg
    }

    /// Shape/resource validation against this device (not just the
    /// generic MTB bounds `TaskDesc::validate` enforces).
    fn validate_for_device(&self, desc: &TaskDesc) -> Result<(), TaskError> {
        desc.validate()?;
        if desc.smem_per_tb > self.mtbs[0].buddy.pool_bytes() {
            // Smaller machines (K40) manage a smaller per-MTB slice than
            // the generic 32 KB upper bound `validate` enforces.
            return Err(TaskError::SmemTooLarge {
                requested: desc.smem_per_tb,
            });
        }
        Ok(())
    }

    /// The claim-and-copy spawn body behind [`PagodaRuntime::submit`];
    /// `entry` must be free in the CPU view.
    fn spawn_at(&mut self, entry: EntryIndex, desc: TaskDesc) -> TaskId {
        let id = TaskId(TaskId::FIRST.0 + self.tasks.len() as u64);

        let ready = match (self.chain_open, self.last_spawned) {
            (true, Some(prev)) => {
                self.succ_entry.insert(prev, entry);
                Ready::Ref(prev)
            }
            _ => Ready::Copied,
        };
        self.chain_open = true;
        self.cpu_table.cpu_claim(entry, ready);
        let ei = self.eidx(entry);
        self.cpu_occupant[ei] = Some(id);
        self.spawn_inflight[ei] = true;

        // One transaction per spawn: the TaskTable entry embeds the task
        // inputs (paper §4.2, entry field 6), so parameters and data travel
        // together — "in the steady-state, we achieve 1 cudamemcopy per
        // task table entry" (§4.2.1).
        let tr = self.bus.transfer(
            self.host_now,
            self.h2d,
            Direction::HostToDevice,
            self.cfg.entry_bytes + desc.input_bytes,
        );
        self.stage(
            tr.complete,
            HostEv::EntryVisible {
                e: entry,
                st: EntryState {
                    ready,
                    sched: false,
                },
                task: id,
            },
        );

        let num_tbs = desc.num_tbs as usize;
        self.tasks.push(TaskRecord {
            desc,
            entry,
            spawn_time: self.host_now,
            warps_done: 0,
            tb_warps_done: vec![0; num_tbs],
            tb_groups: vec![None; num_tbs],
            gpu_done: None,
            output_done: None,
            first_start: None,
            entry_visible: None,
            schedulable: None,
            observed_done: false,
        });
        self.last_spawned = Some(id);
        self.obs.count(Counter::TasksSpawned, 1);
        self.obs
            .task(self.host_now.as_ps(), id.0, TaskState::Spawned);
        id
    }

    /// `check`: non-blocking completion query (costs one TaskTable-entry
    /// copy-back, since completion is only observable from device memory).
    ///
    /// # Errors
    /// [`PagodaError::UnknownTask`] if this runtime never issued `t`.
    pub fn check(&mut self, t: TaskId) -> Result<bool, PagodaError> {
        self.tix(t)?;
        if self.rec(t).observed_done {
            return Ok(true);
        }
        self.flush_last();
        let e = self.rec(t).entry;
        self.copyback_entry(e);
        Ok(self.rec(t).observed_done)
    }

    /// `wait`: blocks (simulated) until task `t` completes and its output
    /// copy has landed in host memory.
    ///
    /// # Errors
    /// [`PagodaError::UnknownTask`] if this runtime never issued `t`.
    pub fn wait(&mut self, t: TaskId) -> Result<(), PagodaError> {
        self.tix(t)?;
        self.flush_last();
        let mut iterations = 0u64;
        while !self.rec(t).observed_done {
            self.host_advance(self.cfg.wait_timeout);
            let e = self.rec(t).entry;
            self.copyback_entry(e);
            self.flush_last();
            iterations += 1;
            assert!(iterations < 100_000_000, "wait({t:?}) livelocked");
        }
        let out = self
            .rec(t)
            .output_done
            .expect("invariant: observed_done task has an output_done time");
        if out > self.host_now {
            self.host_advance_to(out);
        }
        Ok(())
    }

    /// `waitAll`: blocks until every spawned task completes, using bulk
    /// copy-backs.
    pub fn wait_all(&mut self) {
        self.flush_last();
        let mut iterations = 0u64;
        while !self.tasks.iter().all(|r| r.observed_done) {
            self.host_advance(self.cfg.wait_timeout);
            self.copyback_all();
            self.flush_last();
            iterations += 1;
            assert!(iterations < 100_000_000, "wait_all livelocked");
        }
        if let Some(last_out) = self.tasks.iter().filter_map(|r| r.output_done).max() {
            if last_out > self.host_now {
                self.host_advance_to(last_out);
            }
        }
    }

    /// The device event-engine's counters (scheduled/delivered/...):
    /// the denominator of the `obs_overhead` bench's events/sec and a
    /// cheap determinism fingerprint (identical runs deliver identical
    /// event counts).
    pub fn engine_stats(&self) -> desim::EngineStats {
        self.device.engine_stats()
    }

    /// Measurements for the run so far. Call after [`PagodaRuntime::wait_all`].
    pub fn report(&mut self) -> RunReport {
        let n = self.tasks.len().max(1) as u64;
        let lat_sum: u64 = self
            .tasks
            .iter()
            .filter_map(|r| r.gpu_done.map(|d| (d - r.spawn_time).as_ps()))
            .sum();
        let compute_done = self
            .tasks
            .iter()
            .filter_map(|r| r.gpu_done)
            .max()
            .unwrap_or(SimTime::ZERO);
        RunReport {
            makespan: self.host_now - SimTime::ZERO,
            compute_done,
            tasks: self.tasks.iter().filter(|r| r.gpu_done.is_some()).count() as u64,
            mean_task_latency: Dur::from_ps(lat_sum / n),
            avg_running_occupancy: self.device.avg_running_occupancy(),
            h2d_busy: self.bus.stats(Direction::HostToDevice).busy,
            d2h_busy: self.bus.stats(Direction::DeviceToHost).busy,
            gpu_busy: Dur::from_ps(
                self.device.stats().busy_ps / u64::from(self.device.spec().num_sms),
            ),
        }
    }

    /// Spawn→GPU-completion latency of one task. `None` until the task
    /// completes (or if `t` was never issued by this runtime).
    pub fn task_latency(&self, t: TaskId) -> Option<Dur> {
        let r = self.tasks.get(t.0.checked_sub(TaskId::FIRST.0)? as usize)?;
        r.gpu_done.map(|d| d - r.spawn_time)
    }

    /// The recorded timeline of one task (see [`crate::trace`]).
    ///
    /// # Errors
    /// [`PagodaError::UnknownTask`] if this runtime never issued `t`.
    pub fn trace(&self, t: TaskId) -> Result<TaskTrace, PagodaError> {
        Ok(self.trace_at(self.tix(t)?))
    }

    fn trace_at(&self, tix: usize) -> TaskTrace {
        let r = &self.tasks[tix];
        TaskTrace {
            task: TaskId(TaskId::FIRST.0 + tix as u64),
            column: r.entry.col,
            spawned: r.spawn_time,
            entry_visible: r.entry_visible,
            schedulable: r.schedulable,
            first_exec: r.first_start,
            gpu_done: r.gpu_done,
            output_done: r.output_done,
        }
    }

    /// Timelines of every spawned task, in spawn order.
    pub fn traces(&self) -> Vec<TaskTrace> {
        (0..self.tasks.len()).map(|i| self.trace_at(i)).collect()
    }

    /// Number of tasks spawned so far.
    pub fn spawned(&self) -> u64 {
        self.tasks.len() as u64
    }

    // ==================================================================
    // Host internals
    // ==================================================================

    /// Bounds-checks a caller-supplied [`TaskId`] and resolves it to an
    /// index into `tasks`.
    fn tix(&self, t: TaskId) -> Result<usize, PagodaError> {
        t.0.checked_sub(TaskId::FIRST.0)
            .map(|i| i as usize)
            .filter(|&i| i < self.tasks.len())
            .ok_or(PagodaError::UnknownTask {
                task: t,
                spawned: self.tasks.len() as u64,
            })
    }

    /// Internal lookup for ids the runtime itself issued; unlike
    /// [`Self::tix`] an out-of-range id here is an invariant violation.
    fn rec(&mut self, t: TaskId) -> &mut TaskRecord {
        &mut self.tasks[(t.0 - TaskId::FIRST.0) as usize]
    }

    fn eidx(&self, e: EntryIndex) -> usize {
        (e.col * self.cfg.rows_per_column + e.row) as usize
    }

    /// Advances the host clock by `d`, co-simulating the device.
    fn host_advance(&mut self, d: Dur) {
        self.host_advance_to(self.host_now.max(self.device.now()) + d);
    }

    fn host_advance_to(&mut self, t: SimTime) {
        self.host_now = self.host_now.max(t);
        self.pump();
    }

    /// Processes every device event up to `host_now`.
    fn pump(&mut self) {
        while let Some((time, batch)) = self.device.step_bounded(self.host_now) {
            for n in batch {
                self.on_notify(time, n);
            }
        }
    }

    fn stage(&mut self, at: SimTime, ev: HostEv) {
        let tag = self.next_stage_tag;
        self.next_stage_tag += 1;
        self.staged.insert(tag, ev);
        self.device.schedule_host(at, tag);
    }

    /// One non-blocking pass of the round-robin column scan; claims
    /// nothing, just locates a CPU-side free entry and advances the
    /// cursor past its column.
    ///
    /// Consecutive spawns round-robin across *columns* so the load (and
    /// the ready chain's links) spreads over all 48 MTB schedulers; piling
    /// a burst into one column would serialize the whole pipeline behind
    /// that single MTB's executor capacity.
    fn find_free_entry(&mut self) -> Option<EntryIndex> {
        let cols = self.gpu_table.cols();
        let rows = self.cfg.rows_per_column;
        for k in 0..cols {
            let col = (self.spawn_cursor + k) % cols;
            for row in 0..rows {
                let e = EntryIndex { col, row };
                if self.cpu_table.get(e).ready == Ready::Free {
                    self.spawn_cursor = (col + 1) % cols;
                    return Some(e);
                }
            }
        }
        None
    }

    /// Bulk D2H copy-back of the whole TaskTable; merges freed entries
    /// into the CPU view.
    fn copyback_all(&mut self) {
        self.obs.count(Counter::TaskTableCopybacks, 1);
        let bytes = u64::from(self.cfg.total_entries()) * self.cfg.entry_bytes;
        let tr = self
            .bus
            .transfer(self.host_now, self.d2h, Direction::DeviceToHost, bytes);
        self.host_advance_to(tr.complete);
        for col in 0..self.gpu_table.cols() {
            for row in 0..self.gpu_table.rows() {
                self.merge_entry(EntryIndex { col, row });
            }
        }
    }

    /// Copy-back of a single entry (the `wait` timeout path).
    fn copyback_entry(&mut self, e: EntryIndex) {
        self.obs.count(Counter::TaskTablePolls, 1);
        let tr = self.bus.transfer(
            self.host_now,
            self.d2h,
            Direction::DeviceToHost,
            self.cfg.entry_bytes,
        );
        self.host_advance_to(tr.complete);
        self.merge_entry(e);
    }

    /// Applies one snapshot entry to the CPU view: the CPU only learns
    /// about *freed* entries (every other state is GPU-internal). The
    /// in-flight guard prevents a snapshot older than our own H2D copy
    /// from releasing an entry we just claimed.
    fn merge_entry(&mut self, e: EntryIndex) {
        let ei = self.eidx(e);
        if self.cpu_table.get(e).ready == Ready::Free || self.spawn_inflight[ei] {
            return;
        }
        if self.gpu_table.get(e).ready == Ready::Free {
            self.cpu_table.set(e, EntryState::default());
            if let Some(t) = self.cpu_occupant[ei].take() {
                self.rec(t).observed_done = true;
            }
        }
    }

    /// The final-task flush of §4.2.2: if no further task will arrive to
    /// advance the pipeline, read the last entry back; if it sits at
    /// `(Copied, 0)`, write `(Scheduling, sched=1)` to the GPU.
    fn flush_last(&mut self) {
        if !self.chain_open {
            return;
        }
        let Some(lt) = self.last_spawned else {
            return;
        };
        let e = self.tasks[(lt.0 - TaskId::FIRST.0) as usize].entry;
        self.obs.count(Counter::TaskTablePolls, 1);
        let tr = self.bus.transfer(
            self.host_now,
            self.d2h,
            Direction::DeviceToHost,
            self.cfg.entry_bytes,
        );
        self.host_advance_to(tr.complete);
        if self.spawn_inflight[self.eidx(e)] {
            // The entry's own H2D copy has not landed: the D2H read-back
            // returned stale contents. Retry on the caller's next timeout.
            return;
        }
        match self.gpu_table.get(e).ready {
            Ready::Copied if self.occupant[self.eidx(e)] == Some(lt) => {
                let trw = self.bus.transfer(
                    self.host_now,
                    self.h2d,
                    Direction::HostToDevice,
                    self.cfg.flag_write_bytes,
                );
                self.stage(trw.complete, HostEv::FlushWriteVisible { e });
                self.chain_open = false;
            }
            Ready::Ref(_) => {
                // Chain processing still pending on the GPU; the caller's
                // timeout loop will retry.
            }
            _ => {
                // Already advanced past Copied (an earlier flush write
                // landed, or the task ran): nothing to do.
                self.chain_open = false;
            }
        }
    }

    // ==================================================================
    // Event dispatch
    // ==================================================================

    fn on_notify(&mut self, time: SimTime, n: Notify) {
        match n {
            Notify::Host(tag) => {
                let ev = self.staged.remove(&tag).expect("unknown staged event");
                match ev {
                    HostEv::EntryVisible { e, st, task } => self.entry_visible(e, st, task),
                    HostEv::FlushWriteVisible { e } => self.flush_visible(e),
                }
            }
            Notify::WarpDone { tag, .. } => match tag & TAG_KIND_MASK {
                TAG_SCHED => {
                    let mi = (tag & TAG_PAYLOAD_MASK) as usize;
                    self.sched_action_done(time, mi);
                }
                TAG_EXEC => {
                    let p = tag & TAG_PAYLOAD_MASK;
                    let mi = (p / 64) as usize;
                    let slot = (p % 64) as usize;
                    self.executor_done(time, mi, slot);
                }
                _ => unreachable!("unknown warp tag {tag:#x}"),
            },
            Notify::KernelDone { .. } => {
                unreachable!("Pagoda launches no native kernels")
            }
        }
    }

    fn entry_visible(&mut self, e: EntryIndex, st: EntryState, task: TaskId) {
        assert_eq!(
            self.gpu_table.get(e).ready,
            Ready::Free,
            "entry copy landed on a non-free GPU entry"
        );
        self.gpu_table.set(e, st);
        let ei = self.eidx(e);
        self.occupant[ei] = Some(task);
        self.spawn_inflight[ei] = false;
        let now = self.device.now();
        self.rec(task).entry_visible = Some(now);
        self.obs.task(now.as_ps(), task.0, TaskState::Enqueued);
        self.sample_mtb(now, e.col as usize);
        self.poke(e.col as usize);
    }

    fn flush_visible(&mut self, e: EntryIndex) {
        // Argued in flush_last: between the read-back and this write's
        // visibility, only this flush can touch a Copied tail entry.
        assert_eq!(
            self.gpu_table.get(e).ready,
            Ready::Copied,
            "flush write raced the scheduler"
        );
        self.gpu_table.chain_mark_schedulable(e);
        let now = self.device.now();
        if let Some(t) = self.occupant[self.eidx(e)] {
            self.rec(t).schedulable = Some(now);
        }
        self.poke(e.col as usize);
    }

    // ==================================================================
    // MTB scheduler-warp state machine
    // ==================================================================

    /// Wakes MTB `mi`'s scheduler warp if it is idle.
    fn poke(&mut self, mi: usize) {
        if !self.mtbs[mi].busy {
            self.begin_action(mi);
        }
    }

    /// Picks the scheduler's next action and charges its cycles on the
    /// scheduler warp. Idle (no action possible) costs nothing — the real
    /// polling loop spins on shared-memory flags at negligible bandwidth.
    fn begin_action(&mut self, mi: usize) {
        debug_assert!(!self.mtbs[mi].busy);
        let Some((action, cycles)) = self.decide(mi) else {
            return;
        };
        self.obs.count(Counter::SchedulerDecisions, 1);
        let m = &mut self.mtbs[mi];
        m.busy = true;
        m.action = Some(action);
        let total_cycles = cycles + self.cfg.sched_scan_cycles;
        let work = WarpWork::compute(total_cycles * 32, self.cfg.sched_cpi);
        self.device
            .assign_warp(m.sched_warp, work, TAG_SCHED | mi as u64);
    }

    fn sched_action_done(&mut self, time: SimTime, mi: usize) {
        let m = &mut self.mtbs[mi];
        m.busy = false;
        let action = m.action.take().expect("SCHED_DONE without action");
        self.apply_action(time, mi, action);
        // `apply_action` may already have re-armed this scheduler through a
        // self-poke (e.g. a chain update whose predecessor shares the MTB).
        self.poke(mi);
    }

    fn decide(&mut self, mi: usize) -> Option<(Action, u64)> {
        let c = &self.cfg;
        if let Some(job) = &self.mtbs[mi].job {
            let m = &self.mtbs[mi];
            return match job.phase {
                JobPhase::NeedBarrier => (m.barriers.available() > 0)
                    .then_some((Action::JobStep, c.barrier_alloc_cycles)),
                JobPhase::NeedSmem => {
                    let size = self.tasks[(job.task.0 - TaskId::FIRST.0) as usize]
                        .desc
                        .smem_per_tb;
                    (m.buddy.has_pending_deallocs() || m.buddy.can_alloc(size))
                        .then_some((Action::JobStep, c.smem_alloc_cycles))
                }
                JobPhase::Placing => {
                    let free = m.warp_table.free_count() as u64;
                    let d = &self.tasks[(job.task.0 - TaskId::FIRST.0) as usize].desc;
                    let unit = if job.per_tb {
                        u64::from(d.warps_per_tb())
                    } else {
                        u64::from(d.total_warps())
                    };
                    let remaining = unit - u64::from(job.placed_in_unit);
                    (free > 0).then(|| {
                        (
                            Action::JobStep,
                            c.psched_cycles_base + c.psched_cycles_per_warp * free.min(remaining),
                        )
                    })
                }
            };
        }
        // Column scan (Algorithm 1's row loop): first actionable row wins.
        let col = mi as u32;
        for row in 0..self.gpu_table.rows() {
            let e = EntryIndex { col, row };
            let st = self.gpu_table.get(e);
            if st.sched {
                return Some((Action::StartEntry { entry: e }, 0));
            }
            if let Ready::Ref(prev) = st.ready {
                let pe = self.tasks[(prev.0 - TaskId::FIRST.0) as usize].entry;
                if self.gpu_table.get(pe).ready == Ready::Copied {
                    return Some((Action::ChainUpdate { cur: e }, c.chain_update_cycles));
                }
            }
        }
        None
    }

    fn apply_action(&mut self, time: SimTime, mi: usize, action: Action) {
        match action {
            Action::ChainUpdate { cur } => self.apply_chain_update(cur),
            Action::StartEntry { entry } => self.apply_start_entry(entry),
            Action::JobStep => self.apply_job_step(time, mi),
        }
    }

    fn apply_chain_update(&mut self, cur: EntryIndex) {
        let Ready::Ref(prev) = self.gpu_table.get(cur).ready else {
            return; // settled already (stale decision)
        };
        let pe = self.tasks[(prev.0 - TaskId::FIRST.0) as usize].entry;
        if self.gpu_table.get(pe).ready != Ready::Copied {
            return; // predecessor not settled yet; retried on its wakeup
        }
        self.gpu_table.chain_mark_schedulable(pe);
        self.gpu_table.chain_settle(cur);
        self.obs.count(Counter::ChainUpdates, 1);
        let now = self.device.now();
        self.rec(prev).schedulable = Some(now);
        self.poke(pe.col as usize);
        // `cur` just became Copied: its own successor (if it has arrived)
        // can now chain-update in its column.
        let cur_task = self.occupant[self.eidx(cur)].expect("settling unoccupied entry");
        if let Some(se) = self.succ_entry.get(&cur_task).copied() {
            self.poke(se.col as usize);
        }
    }

    fn apply_start_entry(&mut self, entry: EntryIndex) {
        let st = self.gpu_table.get(entry);
        assert!(st.sched, "StartEntry on entry without sched flag");
        self.gpu_table.clear_sched(entry);
        let task = self.occupant[self.eidx(entry)].expect("sched flag on unoccupied entry");
        self.obs
            .task(self.device.now().as_ps(), task.0, TaskState::Placed);
        let desc = &self.tasks[(task.0 - TaskId::FIRST.0) as usize].desc;
        let per_tb = desc.per_tb_scheduling();
        let phase = initial_phase(desc.sync, desc.smem_per_tb);
        let mi = entry.col as usize;
        let m = &mut self.mtbs[mi];
        assert!(
            m.job.is_none(),
            "Algorithm 1 schedules entries sequentially"
        );
        m.job = Some(PlacementJob {
            entry,
            task,
            per_tb,
            next_tb: 0,
            phase,
            cur_bar: None,
            cur_smem: None,
            placed_in_unit: 0,
            reserved: Vec::new(),
        });
    }

    fn apply_job_step(&mut self, time: SimTime, mi: usize) {
        self.obs.count(Counter::PlacementSteps, 1);
        let mut job = self.mtbs[mi].job.take().expect("JobStep without job");
        let tix = (job.task.0 - TaskId::FIRST.0) as usize;
        let (sync, smem, warps_per_tb, num_tbs) = {
            let d = &self.tasks[tix].desc;
            (d.sync, d.smem_per_tb, d.warps_per_tb(), d.num_tbs)
        };
        match job.phase {
            JobPhase::NeedBarrier => {
                if let Some(b) = self.mtbs[mi].barriers.alloc() {
                    job.cur_bar = Some(b);
                    job.phase = if smem > 0 {
                        JobPhase::NeedSmem
                    } else {
                        JobPhase::Placing
                    };
                }
            }
            JobPhase::NeedSmem => {
                // Algorithm 1 line 22: drain deferred frees, then try.
                self.mtbs[mi].buddy.dealloc_marked();
                if let Ok(n) = self.mtbs[mi].buddy.alloc(smem) {
                    job.cur_smem = Some(n);
                    job.phase = JobPhase::Placing;
                }
            }
            JobPhase::Placing => {
                let unit_total = if job.per_tb {
                    warps_per_tb
                } else {
                    warps_per_tb * num_tbs
                };
                while job.placed_in_unit < unit_total {
                    let Some(slot) = self.mtbs[mi].warp_table.find_free() else {
                        break;
                    };
                    let (tb, w) = if job.per_tb {
                        (job.next_tb, job.placed_in_unit)
                    } else {
                        (
                            job.placed_in_unit / warps_per_tb,
                            job.placed_in_unit % warps_per_tb,
                        )
                    };
                    let sdata = Slot {
                        warp_id: tb * warps_per_tb + w,
                        e_num: job.entry,
                        tb_index: tb,
                        sm_index: job.cur_smem,
                        bar_id: job.cur_bar,
                    };
                    self.mtbs[mi].warp_table.dispatch(slot, sdata);
                    if sync {
                        // Dispatch together once the barrier group is whole.
                        job.reserved.push(slot);
                    } else {
                        self.assign_exec(time, mi, slot, job.task, tb, w);
                    }
                    job.placed_in_unit += 1;
                }
                if job.placed_in_unit == unit_total {
                    if sync {
                        let tb = job.next_tb;
                        let handles: Vec<_> = job
                            .reserved
                            .iter()
                            .map(|&s| self.mtbs[mi].exec_warps[s])
                            .collect();
                        let g = self.device.create_group(&handles);
                        self.tasks[tix].tb_groups[tb as usize] = Some(g);
                        let reserved = std::mem::take(&mut job.reserved);
                        for (w, slot) in reserved.into_iter().enumerate() {
                            self.assign_exec(time, mi, slot, job.task, tb, w as u32);
                        }
                    }
                    if job.per_tb {
                        job.next_tb += 1;
                        if job.next_tb == num_tbs {
                            self.mtbs[mi].job = None;
                            self.sample_mtb(time, mi);
                            return;
                        }
                        job.placed_in_unit = 0;
                        job.cur_bar = None;
                        job.cur_smem = None;
                        job.phase = initial_phase(sync, smem);
                    } else {
                        self.mtbs[mi].job = None;
                        self.sample_mtb(time, mi);
                        return;
                    }
                }
            }
        }
        self.mtbs[mi].job = Some(job);
        self.sample_mtb(time, mi);
    }

    /// Dispatches one executor warp: builds its work (task kernel segments
    /// plus the completion epilogue of Algorithm 1 lines 34-43) and assigns
    /// it in the device.
    fn assign_exec(
        &mut self,
        time: SimTime,
        mi: usize,
        slot: usize,
        task: TaskId,
        tb: u32,
        w: u32,
    ) {
        let tix = (task.0 - TaskId::FIRST.0) as usize;
        let mut work = self.tasks[tix].desc.blocks[tb as usize].warps()[w as usize].clone();
        work.segments
            .push(Segment::Compute(self.cfg.exec_epilogue_cycles * 32));
        if self.tasks[tix].first_start.is_none() {
            self.tasks[tix].first_start = Some(time);
            self.obs.task(time.as_ps(), task.0, TaskState::Running);
        }
        let warp = self.mtbs[mi].exec_warps[slot];
        self.device
            .assign_warp(warp, work, TAG_EXEC | (mi as u64 * 64 + slot as u64));
    }

    fn executor_done(&mut self, time: SimTime, mi: usize, slot: usize) {
        let s = self.mtbs[mi].warp_table.complete(slot);
        let ei = self.eidx(s.e_num);
        let task = self.occupant[ei].expect("executor finished for unoccupied entry");
        let tix = (task.0 - TaskId::FIRST.0) as usize;
        let (warps_per_tb, total_warps, out_bytes) = {
            let d = &self.tasks[tix].desc;
            (d.warps_per_tb(), d.total_warps(), d.output_bytes)
        };
        let r = &mut self.tasks[tix];
        r.tb_warps_done[s.tb_index as usize] += 1;
        r.warps_done += 1;
        let tb_complete = r.tb_warps_done[s.tb_index as usize] == warps_per_tb;
        let task_complete = r.warps_done == total_warps;
        if tb_complete {
            // Last warp of the threadblock (Algorithm 1, lines 35-39).
            if let Some(n) = s.sm_index {
                self.mtbs[mi].buddy.mark_for_dealloc(n);
            }
            if let Some(b) = s.bar_id {
                self.mtbs[mi].barriers.release(b);
            }
            if let Some(g) = self.tasks[tix].tb_groups[s.tb_index as usize].take() {
                self.device.release_group(g);
            }
        }
        if task_complete {
            // Lines 41-42: free the TaskTable entry.
            self.gpu_table.complete(s.e_num);
            self.occupant[ei] = None;
            self.obs.count(Counter::TasksFreed, 1);
            self.obs.task(time.as_ps(), task.0, TaskState::Freed);
            let r = &mut self.tasks[tix];
            r.gpu_done = Some(time);
            if out_bytes > 0 {
                let tr = self
                    .bus
                    .transfer(time, self.d2h, Direction::DeviceToHost, out_bytes);
                r.output_done = Some(tr.complete);
            } else {
                r.output_done = Some(time);
            }
        }
        // A slot freed, shared memory possibly marked, a barrier possibly
        // recycled: all reasons the scheduler warp may now make progress.
        self.sample_mtb(time, mi);
        self.poke(mi);
    }

    /// Emits one [`MtbSample`] for MTB `mi` if a recorder is attached;
    /// called at the state-change events that move its occupancy (entry
    /// arrivals, placement steps, executor completions).
    fn sample_mtb(&self, at: SimTime, mi: usize) {
        if !self.obs.enabled() {
            return;
        }
        let m = &self.mtbs[mi];
        let used = self.gpu_table.used_in_col(mi as u32);
        self.obs.mtb(MtbSample {
            at_ps: at.as_ps(),
            mtb: mi as u32,
            free_warp_slots: m.warp_table.free_count() as u32,
            free_smem: u64::from(m.buddy.pool_bytes() - m.buddy.allocated_bytes()),
            used_entries: used,
        });
    }
}

fn initial_phase(sync: bool, smem: u32) -> JobPhase {
    if sync {
        JobPhase::NeedBarrier
    } else if smem > 0 {
        JobPhase::NeedSmem
    } else {
        JobPhase::Placing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::WarpWork;

    fn tiny_task() -> TaskDesc {
        TaskDesc::uniform(32, WarpWork::compute(10_000, 2.0))
    }

    #[test]
    fn submit_fills_table_then_reports_full() {
        let mut rt = PagodaRuntime::titan_x();
        let total = rt.config().total_entries();
        assert_eq!(rt.capacity().known_free, total);
        assert_eq!(rt.capacity().total, total);

        let mut ids = Vec::new();
        for i in 0..total {
            assert_eq!(rt.capacity().known_free, total - i);
            ids.push(rt.submit(tiny_task()).expect("free entry available"));
        }
        assert!(!rt.capacity().has_room());

        // Table full in the CPU view: the probe declines without blocking
        // and without consuming simulated time, handing the desc back.
        let before = rt.host_now();
        match rt.submit(tiny_task()) {
            Err(SubmitError::Full(desc)) => assert_eq!(desc.threads_per_tb, 32),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rt.host_now(), before);

        // A sync (plus timeout-paced retries while the GPU drains) must
        // eventually reveal freed entries, unblocking the probe.
        let mut iterations = 0;
        loop {
            rt.sync_table();
            if rt.capacity().has_room() {
                break;
            }
            rt.advance_to(rt.host_now() + rt.config().wait_timeout);
            iterations += 1;
            assert!(iterations < 100_000, "table never drained");
        }
        rt.submit(tiny_task()).expect("capacity after sync");
        rt.wait_all();
        assert_eq!(rt.report().tasks, u64::from(total) + 1);
    }

    #[test]
    fn submit_rejects_invalid_desc() {
        let mut rt = PagodaRuntime::titan_x();
        let mut bad = tiny_task();
        bad.num_tbs = 3; // blocks.len() still 1
        match rt.submit(bad) {
            Err(SubmitError::Invalid(TaskError::ShapeMismatch)) => {}
            other => panic!("expected Invalid(ShapeMismatch), got {other:?}"),
        }
    }

    #[test]
    fn observed_done_tracks_copybacks_only() {
        let mut rt = PagodaRuntime::titan_x();
        let t = rt.submit(tiny_task()).unwrap();
        assert!(!rt.observed_done(t).unwrap());
        rt.wait(t).unwrap();
        assert!(rt.observed_done(t).unwrap());
    }

    #[test]
    fn unknown_task_ids_error_instead_of_panicking() {
        let mut rt = PagodaRuntime::titan_x();
        let bogus = TaskId(TaskId::FIRST.0 + 7);
        match rt.wait(bogus) {
            Err(PagodaError::UnknownTask { task, spawned }) => {
                assert_eq!(task, bogus);
                assert_eq!(spawned, 0);
            }
            other => panic!("expected UnknownTask, got {other:?}"),
        }
        assert!(rt.check(bogus).is_err());
        assert!(rt.observed_done(bogus).is_err());
        assert!(rt.trace(bogus).is_err());
        assert_eq!(rt.task_latency(bogus), None);
        // Pre-FIRST ids (checked_sub underflow) must also be rejected.
        assert!(rt.trace(TaskId(0)).is_err());
    }

    #[test]
    fn obs_records_full_lifecycle_and_counters() {
        let mut rt = PagodaRuntime::titan_x();
        let (obs, rec) = Obs::recording();
        rt.attach_obs(obs);
        let t = rt.submit(tiny_task()).unwrap();
        rt.wait(t).unwrap();
        let buf = rec.snapshot();

        let tl = buf.task_timeline(t.0);
        let mut prev = 0u64;
        for (i, at) in tl.iter().enumerate() {
            let at = at.unwrap_or_else(|| panic!("missing lifecycle state #{i}"));
            assert!(at >= prev, "lifecycle timestamps out of order");
            prev = at;
        }
        assert_eq!(buf.counter(Counter::TasksSpawned), 1);
        assert_eq!(buf.counter(Counter::TasksFreed), 1);
        assert!(buf.counter(Counter::SchedulerDecisions) > 0);
        assert!(buf.counter(Counter::PcieH2dTransactions) > 0);
        assert!(buf.counter(Counter::TaskTablePolls) > 0);
        assert!(buf.counter(Counter::EngineEvents) > 0);
        assert!(!buf.mtb.is_empty(), "expected MTB occupancy samples");
        assert!(!buf.smm.is_empty(), "expected SMM residency samples");
        // The spawned task's lifecycle maps onto the recorded trace.
        let tr = rt.trace(t).unwrap();
        assert_eq!(tl[0], Some(tr.spawned.as_ps()));
        assert_eq!(tl[3], tr.first_exec.map(|x| x.as_ps()));
        assert_eq!(tl[4], tr.gpu_done.map(|x| x.as_ps()));

        // Detaching stops recording.
        rt.attach_obs(Obs::off());
        rt.submit(tiny_task()).unwrap();
        assert_eq!(rec.snapshot().counter(Counter::TasksSpawned), 1);
    }
}
